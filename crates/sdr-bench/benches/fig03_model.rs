//! Criterion bench for the Figure 3 model kernels: the Appendix A analytic
//! expectation and the stochastic SR/EC samplers. Also prints the Figure 3c
//! slowdown rows so `cargo bench` output contains the reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sdr_bench::{fmt, logspace, paper_channel};
use sdr_model::{ec_sample, sr_mean_analytic, sr_sample, EcConfig, SrConfig};
use std::hint::black_box;

fn print_fig3c_rows() {
    println!("\n[fig03] mean slowdown, 128 MiB @ 400G/25ms (SR RTO 3RTT vs MDS EC(32,8)):");
    for p in logspace(1e-6, 1e-2, 5) {
        let ch = paper_channel(p);
        let ideal = ch.ideal_time(128 << 20);
        let sr = sr_mean_analytic(&ch, 128 << 20, &SrConfig::rto_multiple(&ch, 3.0)) / ideal;
        let mut rng = SmallRng::seed_from_u64(1);
        let ec_cfg = EcConfig::mds(32, 8);
        let sr_cfg = SrConfig::rto_multiple(&ch, 3.0);
        let ec: f64 = (0..800)
            .map(|_| ec_sample(&ch, 128 << 20, &ec_cfg, &sr_cfg, &mut rng))
            .sum::<f64>()
            / 800.0
            / ideal;
        println!("  P={p:.0e}: SR {} EC {}", fmt(sr), fmt(ec));
    }
}

fn bench_model(c: &mut Criterion) {
    print_fig3c_rows();
    let ch = paper_channel(1e-5);
    let sr_cfg = SrConfig::rto_multiple(&ch, 3.0);
    let ec_cfg = EcConfig::mds(32, 8);

    c.bench_function("sr_mean_analytic_128MiB", |b| {
        b.iter(|| black_box(sr_mean_analytic(&ch, black_box(128 << 20), &sr_cfg)))
    });

    let mut rng = SmallRng::seed_from_u64(7);
    c.bench_function("sr_sample_128MiB", |b| {
        b.iter(|| black_box(sr_sample(&ch, black_box(128 << 20), &sr_cfg, &mut rng)))
    });

    c.bench_function("ec_sample_128MiB", |b| {
        b.iter(|| {
            black_box(ec_sample(
                &ch,
                black_box(128 << 20),
                &ec_cfg,
                &sr_cfg,
                &mut rng,
            ))
        })
    });

    c.bench_function("sr_sample_8GiB", |b| {
        b.iter(|| black_box(sr_sample(&ch, black_box(8 << 30), &sr_cfg, &mut rng)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_model
}
criterion_main!(benches);
