//! Criterion bench for the Figure 11 encode kernels: XOR vs Reed–Solomon
//! with the paper's (32, 8) split on 64 KiB chunks, serial and parallel,
//! plus the MDS decode path — and a per-kernel-tier comparison (scalar vs
//! SWAR vs SIMD) of both the raw GF(256) slice kernel and the full
//! single-thread MDS encode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdr_erasure::{
    encode_parallel_into, encode_parallel_into_spawn, ErasureCode, Kernel, ReedSolomon, XorCode,
};
use std::hint::black_box;

const CHUNK: usize = 64 * 1024;
const K: usize = 32;
const M: usize = 8;

fn data() -> Vec<Vec<u8>> {
    (0..K)
        .map(|i| {
            (0..CHUNK)
                .map(|j| ((i * 131 + j * 7) % 251) as u8)
                .collect()
        })
        .collect()
}

/// Per-tier GB/s for the raw `mul_add_slice` kernel and the full (32, 8)
/// single-thread MDS encode on 64 KiB shards — the numbers behind the
/// "SIMD ≥ 2× table-lookup baseline" acceptance bar.
fn bench_kernels(c: &mut Criterion) {
    let data = data();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let rs = ReedSolomon::new(K, M);

    let mut g = c.benchmark_group("gf256_mul_add_64KiB");
    g.throughput(Throughput::Bytes(CHUNK as u64));
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(1));
    let src = &data[0];
    let mut dst = vec![0u8; CHUNK];
    for kernel in Kernel::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            kernel,
            |b, k| b.iter(|| k.mul_add_slice(black_box(&mut dst), black_box(src), 133)),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("mds_encode_1thread_per_kernel");
    g.throughput(Throughput::Bytes((K * CHUNK) as u64));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    // `encode_into_with_kernel` is the exact production strip walk with
    // the dispatch pinned, so the per-tier rows measure the real path.
    let mut parity = vec![vec![0u8; CHUNK]; M];
    for kernel in Kernel::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            kernel,
            |b, k| {
                b.iter(|| {
                    let mut views: Vec<&mut [u8]> =
                        parity.iter_mut().map(|p| p.as_mut_slice()).collect();
                    rs.encode_into_with_kernel(k, black_box(&refs), black_box(&mut views));
                })
            },
        );
    }
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let data = data();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let xor = XorCode::new(K, M);
    let rs = ReedSolomon::new(K, M);
    let submsg_bytes = (K * CHUNK) as u64;

    let mut g = c.benchmark_group("ec_encode_2MiB_submessage");
    g.throughput(Throughput::Bytes(submsg_bytes));
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(3));

    g.bench_function("xor_serial", |b| {
        b.iter(|| black_box(xor.encode(black_box(&refs))))
    });
    g.bench_function("mds_serial", |b| {
        b.iter(|| black_box(rs.encode(black_box(&refs))))
    });
    // `*_2threads` rows dispatch through the persistent EncodePool;
    // `*_2threads_spawn` keeps the per-call `thread::scope` baseline so
    // the pool's dispatch saving stays measurable PR over PR.
    let mut parity_xor = vec![vec![0u8; CHUNK]; M];
    let mut parity_rs = vec![vec![0u8; CHUNK]; M];
    g.bench_function("xor_2threads", |b| {
        b.iter(|| {
            let mut views: Vec<&mut [u8]> =
                parity_xor.iter_mut().map(|p| p.as_mut_slice()).collect();
            encode_parallel_into(&xor, black_box(&refs), black_box(&mut views), 2);
        })
    });
    g.bench_function("xor_2threads_spawn", |b| {
        b.iter(|| {
            let mut views: Vec<&mut [u8]> =
                parity_xor.iter_mut().map(|p| p.as_mut_slice()).collect();
            encode_parallel_into_spawn(&xor, black_box(&refs), black_box(&mut views), 2);
        })
    });
    g.bench_function("mds_2threads", |b| {
        b.iter(|| {
            let mut views: Vec<&mut [u8]> =
                parity_rs.iter_mut().map(|p| p.as_mut_slice()).collect();
            encode_parallel_into(&rs, black_box(&refs), black_box(&mut views), 2);
        })
    });
    g.bench_function("mds_2threads_spawn", |b| {
        b.iter(|| {
            let mut views: Vec<&mut [u8]> =
                parity_rs.iter_mut().map(|p| p.as_mut_slice()).collect();
            encode_parallel_into_spawn(&rs, black_box(&refs), black_box(&mut views), 2);
        })
    });
    g.finish();

    // Decode path: reconstruct 8 erased shards from the remaining 32.
    let parity = rs.encode(&refs);
    c.bench_function("mds_decode_8_erasures", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .map(Some)
                .chain(parity.iter().cloned().map(Some))
                .collect();
            for e in [0usize, 4, 9, 13, 20, 27, 31, 35] {
                shards[e] = None;
            }
            rs.reconstruct(&mut shards).expect("recoverable");
            black_box(shards)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_kernels, bench_encode
}
criterion_main!(benches);
