//! Criterion bench for the Figure 11 encode kernels: XOR vs Reed–Solomon
//! with the paper's (32, 8) split on 64 KiB chunks, serial and parallel,
//! plus the MDS decode path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sdr_erasure::{encode_parallel, ErasureCode, ReedSolomon, XorCode};
use std::hint::black_box;

const CHUNK: usize = 64 * 1024;
const K: usize = 32;
const M: usize = 8;

fn data() -> Vec<Vec<u8>> {
    (0..K)
        .map(|i| (0..CHUNK).map(|j| ((i * 131 + j * 7) % 251) as u8).collect())
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let data = data();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let xor = XorCode::new(K, M);
    let rs = ReedSolomon::new(K, M);
    let submsg_bytes = (K * CHUNK) as u64;

    let mut g = c.benchmark_group("ec_encode_2MiB_submessage");
    g.throughput(Throughput::Bytes(submsg_bytes));
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(3));

    g.bench_function("xor_serial", |b| {
        b.iter(|| black_box(xor.encode(black_box(&refs))))
    });
    g.bench_function("mds_serial", |b| {
        b.iter(|| black_box(rs.encode(black_box(&refs))))
    });
    g.bench_function("xor_2threads", |b| {
        b.iter(|| black_box(encode_parallel(&xor, black_box(&refs), 2)))
    });
    g.bench_function("mds_2threads", |b| {
        b.iter(|| black_box(encode_parallel(&rs, black_box(&refs), 2)))
    });
    g.finish();

    // Decode path: reconstruct 8 erased shards from the remaining 32.
    let parity = rs.encode(&refs);
    c.bench_function("mds_decode_8_erasures", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .map(Some)
                .chain(parity.iter().cloned().map(Some))
                .collect();
            for e in [0usize, 4, 9, 13, 20, 27, 31, 35] {
                shards[e] = None;
            }
            rs.reconstruct(&mut shards).expect("recoverable");
            black_box(shards)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_encode
}
criterion_main!(benches);
