//! Criterion bench for the Figure 14 loopback datapath: message transfers
//! through the DPA engine at two message sizes (repost-bound vs
//! packet-bound), reported as throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sdr_core::ImmLayout;
use sdr_dpa::{run_loopback, DpaConfig, LoopbackConfig};
use std::hint::black_box;

fn cfg(msg_bytes: u64, messages: u64) -> LoopbackConfig {
    LoopbackConfig {
        dpa: DpaConfig {
            workers: 2,
            msg_slots: 64,
            ring_capacity: 8192,
            layout: ImmLayout::default(),
            batch_budget: 256,
        },
        msg_bytes,
        mtu_bytes: 4096,
        chunk_bytes: 64 * 1024,
        inflight: 16,
        messages,
        drop_rate: 0.0,
        seed: 1,
        batch_repost: false,
    }
}

fn bench_loopback(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpa_loopback");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(4));

    g.throughput(Throughput::Bytes(64 * 4096)); // 64 msgs × 4 KiB
    g.bench_function("small_4KiB_msgs_repost_bound", |b| {
        b.iter(|| black_box(run_loopback(cfg(4096, 64))))
    });

    g.throughput(Throughput::Bytes(16 * (1 << 20))); // 16 msgs × 1 MiB
    g.bench_function("large_1MiB_msgs_packet_bound", |b| {
        b.iter(|| black_box(run_loopback(cfg(1 << 20, 16))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_loopback
}
criterion_main!(benches);
