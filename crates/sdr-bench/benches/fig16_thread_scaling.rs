//! Criterion bench for the Figure 16 kernel: end-to-end loopback packet
//! rate at 1, 2 and 4 receive workers (64-byte transport writes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdr_core::ImmLayout;
use sdr_dpa::{run_loopback, DpaConfig, LoopbackConfig};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpa_worker_scaling_64B");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(4));
    const MESSAGES: u64 = 96;
    const PKTS_PER_MSG: u64 = 16384;
    g.throughput(Throughput::Elements(MESSAGES * PKTS_PER_MSG));

    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(run_loopback(LoopbackConfig {
                    dpa: DpaConfig {
                        workers: w,
                        msg_slots: 64,
                        ring_capacity: 16384,
                        layout: ImmLayout::default(),
                        batch_budget: 256,
                    },
                    msg_bytes: 64 * PKTS_PER_MSG,
                    mtu_bytes: 64,
                    chunk_bytes: 64 * 1024,
                    inflight: 16,
                    messages: MESSAGES,
                    drop_rate: 0.0,
                    seed: 5,
                    batch_repost: false,
                }))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_scaling
}
criterion_main!(benches);
