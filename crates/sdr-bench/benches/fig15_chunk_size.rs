//! Criterion bench for the Figure 15 kernel: per-packet completion
//! processing cost as a function of bitmap chunk size (the worker-side
//! cycle footprint must be independent of chunk size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdr_core::ImmLayout;
use sdr_dpa::{DpaCqe, DpaMsgTable, ProcessStats};
use std::hint::black_box;

fn bench_chunk_sizes(c: &mut Criterion) {
    let layout = ImmLayout::default();
    let mut g = c.benchmark_group("dpa_process_per_chunk_size");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    const PKTS: usize = 16 * 1024;
    g.throughput(Throughput::Elements(PKTS as u64));

    for chunk_pkts in [1u32, 4, 16, 64] {
        g.bench_with_input(
            BenchmarkId::from_parameter(chunk_pkts),
            &chunk_pkts,
            |b, &cp| {
                b.iter_batched(
                    || {
                        let t = DpaMsgTable::new(4, layout);
                        t.post(0, 0, PKTS, cp);
                        t
                    },
                    |t| {
                        let mut st = ProcessStats::default();
                        for pkt in 0..PKTS as u32 {
                            t.process(
                                DpaCqe {
                                    imm: layout.encode(0, pkt, 0),
                                    generation: 0,
                                    null_write: false,
                                },
                                &mut st,
                            );
                        }
                        black_box(st)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_chunk_sizes
}
criterion_main!(benches);
