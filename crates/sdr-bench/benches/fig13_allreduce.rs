//! Criterion bench for the Figure 13 kernel: one ring-Allreduce completion
//! sample under SR and EC protection, plus a printed speedup row.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sdr_bench::paper_channel;
use sdr_collectives::{allreduce_sample, allreduce_summary, AllreduceParams, StepProtocol};
use std::hint::black_box;

fn bench_allreduce(c: &mut Criterion) {
    let params = AllreduceParams {
        n_dc: 4,
        buffer_bytes: 128 << 20,
        channel: paper_channel(1e-4),
    };
    // Print the Figure 13 headline row into the bench log.
    let sr = allreduce_summary(&params, StepProtocol::SrRto { mult: 3.0 }, 6000, 1);
    let ec = allreduce_summary(&params, StepProtocol::EcMds { k: 32, m: 8 }, 6000, 2);
    println!(
        "\n[fig13] 4 DCs, 128 MiB, P=1e-4: p999 speedup EC over SR = {:.2}",
        sr.p999 / ec.p999
    );

    let mut rng = SmallRng::seed_from_u64(3);
    c.bench_function("allreduce_sample_sr_4dc", |b| {
        b.iter(|| {
            black_box(allreduce_sample(
                &params,
                StepProtocol::SrRto { mult: 3.0 },
                &mut rng,
            ))
        })
    });
    c.bench_function("allreduce_sample_ec_4dc", |b| {
        b.iter(|| {
            black_box(allreduce_sample(
                &params,
                StepProtocol::EcMds { k: 32, m: 8 },
                &mut rng,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_allreduce
}
criterion_main!(benches);
