//! Figure 12 — impact of inter-DC distance and bandwidth on a 128 MiB
//! Write: completion time normalized by the lossless channel, for
//! `SR RTO(3 RTT)` and `MDS EC(32,8)` at P_drop = 1e-5.

use sdr_bench::{fmt, table_header, table_row};
use sdr_model::{ec_summary, sr_mean_analytic, Channel, EcConfig, SrConfig};

fn main() {
    println!("# Figure 12 — distance × bandwidth grid (128 MiB, P_drop = 1e-5)");
    let bytes = 128u64 << 20;
    table_header(
        "normalized completion time: SR / EC (winner marked)",
        &[
            "distance [km]",
            "100 Gbit/s",
            "400 Gbit/s",
            "1.6 Tbit/s",
            "3.2 Tbit/s",
        ],
    );
    for km in [75.0f64, 750.0, 1500.0, 3000.0, 4500.0, 6000.0] {
        let mut cells = vec![format!("{km:.0}")];
        for bw in [100e9, 400e9, 1600e9, 3200e9] {
            let ch = Channel::from_km(km, bw, 1e-5);
            let ideal = ch.ideal_time(bytes);
            let sr = sr_mean_analytic(&ch, bytes, &SrConfig::rto_multiple(&ch, 3.0)) / ideal;
            let ec = ec_summary(
                &ch,
                bytes,
                &EcConfig::mds(32, 8),
                &SrConfig::rto_multiple(&ch, 3.0),
                1500,
                11,
            )
            .mean
                / ideal;
            let winner = if ec < sr { "EC" } else { "SR" };
            cells.push(format!("{} / {} ({winner})", fmt(sr), fmt(ec)));
        }
        table_row(&cells);
    }
    println!(
        "\nExpected shape: at short distance / low bandwidth the message is\n\
         injection-bound (T_inj dominates) and SR ≈ EC ≈ 1; as distance and\n\
         bandwidth grow, the BDP overtakes the message, retransmissions are\n\
         exposed, and EC's advantage grows (RTT impact increases)."
    );
}
