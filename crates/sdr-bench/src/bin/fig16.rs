//! Figure 16 — SDR packet-rate scaling vs the number of receive workers,
//! against the line-rate targets of current and next-generation links
//! (400 Gbit/s ⇒ 12 Mpps at 4 KiB MTU … 3.2 Tbit/s ⇒ 98 Mpps).
//!
//! §5.4.3 methodology: 64-byte transport writes, 64 KiB chunks. The paper
//! scales 4→128 DPA threads nearly linearly; this host has 2 physical
//! cores, so the reproduced claim is per-worker rate × linear scaling up to
//! the core count (oversubscribed rows included for completeness).

use sdr_bench::{fmt, table_header, table_row};
use sdr_core::ImmLayout;
use sdr_dpa::{run_loopback, DpaConfig, LoopbackConfig};

fn main() {
    println!("# Figure 16 — packet-rate scaling vs receive workers (64 B writes)");
    let targets = [
        ("400 Gbit/s", 12.0),
        ("800 Gbit/s", 24.0),
        ("1.6 Tbit/s", 49.0),
        ("3.2 Tbit/s", 98.0),
    ];
    let smoke = std::env::var_os("SDR_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let messages: u64 = if smoke { 48 } else { 768 };
    table_header(
        "sustained packet rate",
        &["workers", "pkts/s [M]", "highest link target met"],
    );
    for workers in [1usize, 2, 4, 8, 16] {
        let cfg = LoopbackConfig {
            dpa: DpaConfig {
                workers,
                msg_slots: 64,
                ring_capacity: 16384,
                layout: ImmLayout::default(),
                batch_budget: 256,
            },
            msg_bytes: 64 * 16384,
            mtu_bytes: 64,
            chunk_bytes: 64 * 1024, // 1024 writes per chunk at 64 B payloads
            inflight: 16,
            messages,
            drop_rate: 0.0,
            seed: 3,
            batch_repost: false,
        };
        let r = run_loopback(cfg);
        let mpps = r.pkts_per_sec / 1e6;
        let met = targets
            .iter()
            .rev()
            .find(|(_, t)| mpps >= *t)
            .map(|(n, _)| *n)
            .unwrap_or("below 400G");
        table_row(&[workers.to_string(), fmt(mpps), met.to_string()]);
    }
    println!(
        "\nLine-rate targets at 4 KiB MTU: 400G = 12 Mpps, 800G = 24 Mpps,\n\
         1.6T = 49 Mpps, 3.2T = 98 Mpps. Expected shape: near-linear scaling\n\
         to the physical core count (the paper reaches 1.6 Tbit/s rates with\n\
         32 of 256 DPA threads and ~3.2 Tbit/s with 128)."
    );

    // The §3.4.2 batching ablation at the packet-rate extreme: 64 B writes
    // maximize CQEs per byte, so per-CQE overheads dominate and the
    // coalesced path shows its full effect.
    table_header(
        "batched completion A/B (2 workers, 64 B writes)",
        &["batch budget", "pkts/s [M]"],
    );
    for budget in [1usize, 32, 256, 1024] {
        let cfg = LoopbackConfig {
            dpa: DpaConfig {
                workers: 2,
                msg_slots: 64,
                ring_capacity: 16384,
                layout: ImmLayout::default(),
                batch_budget: budget,
            },
            msg_bytes: 64 * 16384,
            mtu_bytes: 64,
            chunk_bytes: 64 * 1024,
            inflight: 16,
            messages,
            drop_rate: 0.0,
            seed: 3,
            batch_repost: false,
        };
        let r = run_loopback(cfg);
        table_row(&[budget.to_string(), fmt(r.pkts_per_sec / 1e6)]);
    }
    println!(
        "Expected shape: rate climbs with the budget as ring pops, message\n\
         lookups, bitmap words and chunk publishes amortize per batch, then\n\
         plateaus once batches cover the ring's typical occupancy."
    );

    // The §5.4.1 repost ablation: with receive-side completion batched,
    // small messages are bound by repost work (slot reallocation + bitmap
    // cleanup). The batched repost path retires every completed slot per
    // drain in one `post_batch` sweep and recycles same-shape bitmaps in
    // place instead of reallocating them.
    table_header(
        "batched repost A/B (2 workers, single-packet 4 KiB messages)",
        &["repost path", "msgs/s [k]", "pkts/s [M]"],
    );
    let small_msgs: u64 = if smoke { 4096 } else { 262144 };
    for (name, batch_repost) in [("per-slot post", false), ("post_batch sweep", true)] {
        let cfg = LoopbackConfig {
            dpa: DpaConfig {
                workers: 2,
                msg_slots: 64,
                ring_capacity: 16384,
                layout: ImmLayout::default(),
                batch_budget: 256,
            },
            // Figure 14's left panel: one packet per message, so the
            // msgs/s rate is pure slot-lifecycle (repost) cost.
            msg_bytes: 4096,
            mtu_bytes: 4096,
            chunk_bytes: 4096,
            inflight: 16,
            messages: small_msgs,
            drop_rate: 0.0,
            seed: 9,
            batch_repost,
        };
        let r = run_loopback(cfg);
        table_row(&[
            name.to_string(),
            fmt(r.msgs_per_sec / 1e3),
            fmt(r.pkts_per_sec / 1e6),
        ]);
    }
    println!(
        "Expected shape: the sweep lifts the repost-bound msgs/s rate —\n\
         bitmap recycling removes the per-message allocation and the batch\n\
         retires whole runs of completed slots per drain. (On hosts with\n\
         fewer cores than workers the loopback is scheduling-bound and the\n\
         gap compresses; the microbench below isolates the repost cost.)"
    );

    // Direct repost-cost microbench: complete + repost a 64-slot table in
    // a tight loop (no workers), per-slot `post` vs one `post_batch`
    // sweep. This is exactly the §5.4.1 slot-lifecycle work — bitmap
    // allocation + cleanup — with everything else subtracted.
    table_header(
        "repost microbench (64 slots, 16384-packet messages, 64 B writes)",
        &["repost path", "reposts/s [M]"],
    );
    let rounds: usize = if smoke { 2_000 } else { 40_000 };
    for (name, batched) in [("per-slot post", false), ("post_batch sweep", true)] {
        use sdr_dpa::{DpaMsgTable, SlotPost};
        let table = DpaMsgTable::new(64, ImmLayout::default());
        let posts: Vec<SlotPost> = (0..64)
            .map(|slot| SlotPost {
                slot,
                generation: 0,
                total_packets: 16384,
                pkts_per_chunk: 1024,
            })
            .collect();
        let mut posts = posts;
        let start = std::time::Instant::now();
        for round in 0..rounds {
            for p in posts.iter_mut() {
                p.generation = round as u32;
            }
            if batched {
                table.post_batch(&posts);
            } else {
                for p in &posts {
                    table.post(p.slot, p.generation, p.total_packets, p.pkts_per_chunk);
                }
            }
            for p in &posts {
                table.complete(p.slot);
            }
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        table_row(&[name.to_string(), fmt((rounds * 64) as f64 / secs / 1e6)]);
    }
    println!(
        "Expected shape: the sweep recycles same-shape bitmaps in place\n\
         (one memset-sized reset instead of an allocation + zero-fill per\n\
         repost), multiplying the pure repost rate."
    );
}
