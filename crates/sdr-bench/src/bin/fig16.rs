//! Figure 16 — SDR packet-rate scaling vs the number of receive workers,
//! against the line-rate targets of current and next-generation links
//! (400 Gbit/s ⇒ 12 Mpps at 4 KiB MTU … 3.2 Tbit/s ⇒ 98 Mpps).
//!
//! §5.4.3 methodology: 64-byte transport writes, 64 KiB chunks. The paper
//! scales 4→128 DPA threads nearly linearly; this host has 2 physical
//! cores, so the reproduced claim is per-worker rate × linear scaling up to
//! the core count (oversubscribed rows included for completeness).

use sdr_bench::{fmt, table_header, table_row};
use sdr_core::ImmLayout;
use sdr_dpa::{run_loopback, DpaConfig, LoopbackConfig};

fn main() {
    println!("# Figure 16 — packet-rate scaling vs receive workers (64 B writes)");
    let targets = [
        ("400 Gbit/s", 12.0),
        ("800 Gbit/s", 24.0),
        ("1.6 Tbit/s", 49.0),
        ("3.2 Tbit/s", 98.0),
    ];
    let smoke = std::env::var_os("SDR_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let messages: u64 = if smoke { 48 } else { 768 };
    table_header(
        "sustained packet rate",
        &["workers", "pkts/s [M]", "highest link target met"],
    );
    for workers in [1usize, 2, 4, 8, 16] {
        let cfg = LoopbackConfig {
            dpa: DpaConfig {
                workers,
                msg_slots: 64,
                ring_capacity: 16384,
                layout: ImmLayout::default(),
                batch_budget: 256,
            },
            msg_bytes: 64 * 16384,
            mtu_bytes: 64,
            chunk_bytes: 64 * 1024, // 1024 writes per chunk at 64 B payloads
            inflight: 16,
            messages,
            drop_rate: 0.0,
            seed: 3,
        };
        let r = run_loopback(cfg);
        let mpps = r.pkts_per_sec / 1e6;
        let met = targets
            .iter()
            .rev()
            .find(|(_, t)| mpps >= *t)
            .map(|(n, _)| *n)
            .unwrap_or("below 400G");
        table_row(&[workers.to_string(), fmt(mpps), met.to_string()]);
    }
    println!(
        "\nLine-rate targets at 4 KiB MTU: 400G = 12 Mpps, 800G = 24 Mpps,\n\
         1.6T = 49 Mpps, 3.2T = 98 Mpps. Expected shape: near-linear scaling\n\
         to the physical core count (the paper reaches 1.6 Tbit/s rates with\n\
         32 of 256 DPA threads and ~3.2 Tbit/s with 128)."
    );

    // The §3.4.2 batching ablation at the packet-rate extreme: 64 B writes
    // maximize CQEs per byte, so per-CQE overheads dominate and the
    // coalesced path shows its full effect.
    table_header(
        "batched completion A/B (2 workers, 64 B writes)",
        &["batch budget", "pkts/s [M]"],
    );
    for budget in [1usize, 32, 256, 1024] {
        let cfg = LoopbackConfig {
            dpa: DpaConfig {
                workers: 2,
                msg_slots: 64,
                ring_capacity: 16384,
                layout: ImmLayout::default(),
                batch_budget: budget,
            },
            msg_bytes: 64 * 16384,
            mtu_bytes: 64,
            chunk_bytes: 64 * 1024,
            inflight: 16,
            messages,
            drop_rate: 0.0,
            seed: 3,
        };
        let r = run_loopback(cfg);
        table_row(&[budget.to_string(), fmt(r.pkts_per_sec / 1e6)]);
    }
    println!(
        "Expected shape: rate climbs with the budget as ring pops, message\n\
         lookups, bitmap words and chunk publishes amortize per batch, then\n\
         plateaus once batches cover the ring's typical occupancy."
    );
}
