//! Figure 9, adaptive edition — mid-transfer loss steps across the SR ⇄ EC
//! boundary, adaptive scheme switching vs the static oracle.
//!
//! Figure 9 maps where each scheme wins *statically*; this harness answers
//! the operational question the paper leaves open: when the drop rate
//! steps mid-transfer (Figure 2's congestion episodes), how close does the
//! `estimate → advise → hand over` loop get to the best single scheme
//! chosen with perfect foreknowledge of the step?
//!
//! Scenario: 40 MiB over an 8 Gbit/s, 1000 km (6.67 ms RTT) link, 2 MiB
//! segments. The channel starts at `P_drop = 1e-6` and steps to the row's
//! rate at 8 ms (~20% in). Per row the table reports the adaptive
//! transfer's delivery time, the static SR-NACK and MDS-EC(32,8)
//! full-message runs on the same stepped channel, the oracle (their
//! minimum), the adaptive/oracle ratio, and the committed handovers.
//!
//! Emits machine-readable `BENCH_fig09.json` next to `BENCH_fig11.json`.
//! `SDR_BENCH_SMOKE=1` runs a single step for CI.

use std::cell::RefCell;
use std::rc::Rc;

use sdr_bench::{fmt, table_header, table_row};
use sdr_core::testkit::{pattern, sdr_pair};
use sdr_core::SdrConfig;
use sdr_reliability::{
    AdaptConfig, AdaptReport, AdaptiveController, ControlEndpoint, EcCodeChoice, EcProtoConfig,
    EcReceiver, EcSender, SchemeSpec, SrProtoConfig, SrReceiver, SrSender, TelemetryConfig,
};
use sdr_sim::{LinkConfig, LossModel, SimTime};

const BW: f64 = 8e9;
const KM: f64 = 1000.0;
const MSG: u64 = 40 << 20;
const SEG: u64 = 2 << 20;
const P_BEFORE: f64 = 1e-6;
const STEP_AT: f64 = 0.008;
const SEED: u64 = 9;

fn qp_cfg(max_msg: u64) -> SdrConfig {
    SdrConfig {
        max_msg_bytes: max_msg,
        msg_slots: 64,
        mtu_bytes: 4096,
        chunk_bytes: 64 * 1024,
        channels: 2,
        generations: 2,
        ..SdrConfig::default()
    }
}

struct Deployment {
    p: sdr_core::testkit::SdrPair,
    ctrl_a: Rc<ControlEndpoint>,
    ctrl_b: Rc<ControlEndpoint>,
    rtt: SimTime,
    data: Vec<u8>,
    src: u64,
    dst: u64,
}

fn deploy(p_after: f64, max_msg: u64) -> Deployment {
    let link = LinkConfig::wan(KM, BW, P_BEFORE).with_seed(SEED);
    let mut p = sdr_pair(link, qp_cfg(max_msg), 128 << 20);
    let rtt = p.fabric.rtt(p.node_a, p.node_b).unwrap();
    let data = pattern(MSG as usize, SEED ^ 0xF19);
    let src = p.ctx_a.alloc_buffer(MSG);
    let dst = p.ctx_b.alloc_buffer(MSG);
    p.ctx_a.write_buffer(src, &data);
    let ctrl_a = Rc::new(ControlEndpoint::new(&p.fabric, p.node_a));
    let ctrl_b = Rc::new(ControlEndpoint::new(&p.fabric, p.node_b));
    let (fab, a, b) = (p.fabric.clone(), p.node_a, p.node_b);
    p.eng
        .schedule_at(SimTime::from_secs_f64(STEP_AT), move |_eng| {
            fab.set_loss_duplex(a, b, LossModel::Iid { p: p_after });
        });
    Deployment {
        p,
        ctrl_a,
        ctrl_b,
        rtt,
        data,
        src,
        dst,
    }
}

/// Runs the adaptive transfer; returns `(delivery instant, report,
/// registry snapshot)` — the snapshot is the fabric + engine metrics of
/// this row's deployment, embedded in the JSON artifact so the adaptive
/// counters (`adapt.proposals`, `adapt.handovers`, `ctrl.*`) ship with
/// the timing numbers they explain.
fn run_adaptive(p_after: f64) -> (f64, AdaptReport, String) {
    let mut d = deploy(p_after, SEG * 2);
    let mut acfg = AdaptConfig::new(BW, d.rtt, SEG);
    acfg.telemetry = TelemetryConfig {
        loss_alpha: 1.0 / 1024.0,
        min_packets: 768,
        ..TelemetryConfig::default()
    };
    if std::env::var_os("SDR_FIG09_NO_CONSERVATIVE").is_some() {
        // A/B hook: neutralize the step-freshness detector so the
        // controller commits the advisor's raw point estimate (the
        // pre-rule behavior), for measuring what the conservative
        // first-split rule buys.
        acfg.telemetry.step_ratio = f64::INFINITY;
    }
    let rep = Rc::new(RefCell::new(None));
    let r2 = rep.clone();
    let _tx = AdaptiveController::start_sender(
        &mut d.p.eng,
        &d.p.qp_a,
        &d.p.ctx_a,
        d.ctrl_a.clone(),
        d.ctrl_b.addr(),
        d.src,
        MSG,
        SchemeSpec::SrNack,
        acfg.clone(),
        move |_e, r| *r2.borrow_mut() = Some(r),
    );
    let done = Rc::new(RefCell::new(None));
    let d2 = done.clone();
    let _rx = AdaptiveController::start_receiver(
        &mut d.p.eng,
        &d.p.qp_b,
        &d.p.ctx_b,
        d.ctrl_b.clone(),
        d.ctrl_a.addr(),
        d.dst,
        MSG,
        SchemeSpec::SrNack,
        acfg,
        move |_e, t, _rep| *d2.borrow_mut() = Some(t),
    );
    d.p.eng.set_event_limit(200_000_000);
    d.p.eng.run();
    assert_eq!(
        d.p.ctx_b.read_buffer(d.dst, MSG as usize),
        d.data,
        "adaptive delivery intact"
    );
    let report = rep.borrow_mut().take().expect("adaptive sender finished");
    let t = done
        .borrow_mut()
        .take()
        .expect("adaptive receiver finished");
    let snapshot = format!(
        "{{\"fabric\": {}, \"engine\": {}}}",
        d.p.fabric.metrics().snapshot().to_json(),
        d.p.eng.metrics().snapshot().to_json()
    );
    (t.as_secs_f64(), report, snapshot)
}

/// Runs one static full-message scheme; returns the delivery instant.
fn run_static(p_after: f64, which: SchemeSpec) -> f64 {
    let mut d = deploy(p_after, MSG);
    let done = Rc::new(RefCell::new(None));
    match which {
        SchemeSpec::SrNack => {
            let proto = SrProtoConfig::nack(d.rtt);
            SrSender::start(
                &mut d.p.eng,
                &d.p.qp_a,
                d.ctrl_a.clone(),
                d.ctrl_b.addr(),
                d.src,
                MSG,
                proto,
                |_e, _r| {},
            );
            let d2 = done.clone();
            SrReceiver::start(
                &mut d.p.eng,
                &d.p.qp_b,
                d.ctrl_b.clone(),
                d.ctrl_a.addr(),
                d.dst,
                MSG,
                proto,
                move |eng, _t| *d2.borrow_mut() = Some(eng.now()),
            );
        }
        SchemeSpec::EcMds { k, m } => {
            let ch = sdr_model::Channel::new(BW, d.rtt.as_secs_f64(), p_after);
            let proto = EcProtoConfig::for_channel(
                k as usize,
                m as usize,
                EcCodeChoice::Mds,
                &ch,
                MSG,
                d.rtt,
            );
            EcSender::start(
                &mut d.p.eng,
                &d.p.qp_a,
                &d.p.ctx_a,
                d.ctrl_a.clone(),
                d.ctrl_b.addr(),
                d.src,
                MSG,
                proto,
                |_e, _r| {},
            );
            let d2 = done.clone();
            EcReceiver::start(
                &mut d.p.eng,
                &d.p.qp_b,
                &d.p.ctx_b,
                d.ctrl_b.clone(),
                d.ctrl_a.addr(),
                d.dst,
                MSG,
                proto,
                move |eng, _t, _s| *d2.borrow_mut() = Some(eng.now()),
            );
        }
        other => panic!("no static runner for {other}"),
    }
    d.p.eng.set_event_limit(200_000_000);
    d.p.eng.run();
    assert_eq!(
        d.p.ctx_b.read_buffer(d.dst, MSG as usize),
        d.data,
        "static delivery intact"
    );
    let taken = done.borrow_mut().take();
    taken.expect("static receiver finished").as_secs_f64()
}

fn main() {
    let smoke = std::env::var_os("SDR_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    println!("# Figure 9 (adaptive) — loss steps across the SR/EC boundary, mid-transfer handover");
    println!(
        "deployment: {KM} km ({:.2} ms RTT), {} Gbit/s, {} MiB in {} MiB segments, \
         step {P_BEFORE:e} → p at {:.0} ms",
        sdr_sim::rtt_from_km(KM).as_secs_f64() * 1e3,
        BW / 1e9,
        MSG >> 20,
        SEG >> 20,
        STEP_AT * 1e3
    );
    // The 1e-2 row is the ROADMAP gap the conservative first-split rule
    // closes: the estimator reads the step as ~2e-3 when confidence first
    // arrives, the advisor's point estimate picks a split that is too
    // weak, and the late refinement handshake used to blow the oracle
    // ratio. With the step-freshness detector the first committed split
    // is one rung stronger than the (under-)estimate suggests.
    let steps: Vec<f64> = if let Ok(list) = std::env::var("SDR_FIG09_STEPS") {
        // Debug hook: run an explicit comma-separated row list.
        list.split(',')
            .map(|s| s.trim().parse().expect("SDR_FIG09_STEPS: float list"))
            .collect()
    } else if smoke {
        vec![3e-3]
    } else {
        vec![1e-4, 3e-4, 1e-3, 3e-3, 1e-2]
    };

    table_header(
        "adaptive vs static oracle (delivery time, ms)",
        &[
            "P_after", "adaptive", "SR NACK", "EC(32,8)", "oracle", "ratio", "switches", "final",
        ],
    );
    let mut json = String::from("{\n  \"fig\": \"09_adaptive\",\n  \"rows\": [\n");
    let mut last_snapshot = String::from("{}");
    for (n, &p_after) in steps.iter().enumerate() {
        let (adaptive, report, snapshot) = run_adaptive(p_after);
        last_snapshot = snapshot;
        let sr = run_static(p_after, SchemeSpec::SrNack);
        let ec = run_static(p_after, SchemeSpec::EcMds { k: 32, m: 8 });
        let oracle = sr.min(ec);
        let ratio = adaptive / oracle;
        table_row(&[
            format!("{p_after:.0e}"),
            fmt(adaptive * 1e3),
            fmt(sr * 1e3),
            fmt(ec * 1e3),
            fmt(oracle * 1e3),
            format!("{ratio:.3}"),
            report.switches.to_string(),
            report.final_spec.to_string(),
        ]);
        json.push_str(&format!(
            "    {{\"p_after\": {p_after:e}, \"adaptive_ms\": {:.3}, \"sr_nack_ms\": {:.3}, \
             \"ec_ms\": {:.3}, \"oracle_ms\": {:.3}, \"ratio\": {ratio:.4}, \
             \"switches\": {}, \"proposals\": {}, \"final\": \"{}\"}}{}\n",
            adaptive * 1e3,
            sr * 1e3,
            ec * 1e3,
            oracle * 1e3,
            report.switches,
            report.proposals,
            report.final_spec,
            if n + 1 < steps.len() { "," } else { "" }
        ));
        // Steps decisively past the boundary (hysteresis-cleared within
        // the estimator's convergence window) must hand over; marginal
        // steps may legitimately ride out the transfer on SR.
        if p_after >= 3e-3 {
            assert!(
                report.switches >= 1,
                "a step to {p_after:e} must hand over (got {report:?})"
            );
            // The conservative first-split rule: the first EC split the
            // controller commits while the estimate is still climbing
            // must not be the advisor's weakest ladder rung — a step to
            // 1e-2 read as ~1e-3 used to commit (32,4), whose 4-chunk
            // parity budget the converged channel blows through.
            let first_ec = report
                .history
                .iter()
                .map(|(_, _, s)| *s)
                .find(|s| s.is_ec());
            if let Some(spec) = first_ec {
                assert_ne!(
                    spec,
                    sdr_reliability::SchemeSpec::EcMds { k: 32, m: 4 },
                    "a fresh upward step must commit a stronger first split"
                );
            }
        }
        // Loss is drawn at *delivery* time, so a step applies to the
        // pre-posted pipeline the moment it lands and the estimator sees
        // it a full BDP earlier than it did under posting-time draws
        // (which blinded it for ~1.5 RTT of in-flight traffic). That
        // moved the 1e-2 row from 1.367x to a measured 1.172x — the
        // residual gap is the two-step handover (32,8) → (16,8) this row
        // now takes as the estimator converges on the true rate. Rows at
        // or below 3e-3 keep the usual 1.3x envelope.
        let bound = if p_after > 3e-3 { 1.25 } else { 1.3 };
        assert!(
            ratio <= bound,
            "adaptive must stay within {bound}x of the oracle at {p_after:e}: {ratio:.3}"
        );
    }
    json.push_str("  ],\n");
    // Registry specimen of the final (highest-step) adaptive row: the
    // adapt.* / ctrl.* counters behind the table above.
    json.push_str(&format!("  \"metrics\": {last_snapshot}\n}}\n"));
    println!(
        "\nExpected shape: steps at or past the fig09 boundary hand over to\n\
         EC and the adaptive run tracks the oracle within ~1.3x (estimator\n\
         convergence + one handshake RTT + the pipeline lead); steps below\n\
         the boundary stay on SR and track it even closer."
    );
    std::fs::write("BENCH_fig09.json", &json).expect("write BENCH_fig09.json");
    println!("\nwrote BENCH_fig09.json");
}
