//! Figure 14 — SDR loopback throughput with 16 in-flight Writes and 64 KiB
//! bitmap chunks. Left: goodput vs message size (small messages are
//! repost-bound, large ones saturate). Right: receive-worker scaling at
//! 16 MiB messages.
//!
//! Substitution note: the paper measures 400 Gbit/s RoCEv2 on BlueField-3;
//! here the same receive datapath (generation check + two-level bitmap
//! update + chunk publication + repost) runs on host threads, so absolute
//! Gbit/s depends on the machine. The *shape* — repost-bound small
//! messages, saturation by ~512 KiB, near-linear worker scaling up to the
//! physical core count — is the reproduced result.

use sdr_bench::{bytes_label, fmt, table_header, table_row};
use sdr_core::ImmLayout;
use sdr_dpa::{run_loopback, DpaConfig, LoopbackConfig};

fn cfg(msg_bytes: u64, workers: usize, messages: u64) -> LoopbackConfig {
    LoopbackConfig {
        dpa: DpaConfig {
            workers,
            msg_slots: 64,
            ring_capacity: 8192,
            layout: ImmLayout::default(),
        },
        msg_bytes,
        mtu_bytes: 4096,
        chunk_bytes: 64 * 1024,
        inflight: 16,
        messages,
        drop_rate: 0.0,
        seed: 1,
    }
}

fn main() {
    println!("# Figure 14 — SDR loopback throughput (16 in-flight, 64 KiB chunks)");

    table_header(
        "Left: throughput vs message size (2 receive workers)",
        &["message", "goodput [Gbit/s]", "messages/s", "pkts/s [M]"],
    );
    for shift in [16u32, 18, 19, 20, 22, 24, 26] {
        let msg = 1u64 << shift;
        // Scale message count so each row runs ~the same volume.
        let messages = ((1u64 << 32) / msg).clamp(16, 4096);
        let r = run_loopback(cfg(msg, 2, messages));
        table_row(&[
            bytes_label(msg),
            fmt(r.goodput_gbps),
            fmt(r.msgs_per_sec),
            fmt(r.pkts_per_sec / 1e6),
        ]);
    }
    println!(
        "Expected shape: throughput rises with message size — small messages\n\
         are bound by receive repost overhead (slot reallocation, key-table\n\
         update, bitmap cleanup) — and saturates by ~512 KiB (paper: line\n\
         rate at 512 KiB with 20 of 256 DPA threads)."
    );

    table_header(
        "Right: worker scaling at 16 MiB messages",
        &["receive workers", "goodput [Gbit/s]", "pkts/s [M]"],
    );
    for workers in [1usize, 2, 4, 8] {
        let r = run_loopback(cfg(16 << 20, workers, 192));
        table_row(&[
            workers.to_string(),
            fmt(r.goodput_gbps),
            fmt(r.pkts_per_sec / 1e6),
        ]);
    }
    println!(
        "Expected shape: near-linear scaling up to the physical core count\n\
         (2 on this host); beyond that, oversubscription flattens the curve."
    );
}
