//! Figure 14 — SDR loopback throughput with 16 in-flight Writes and 64 KiB
//! bitmap chunks. Left: goodput vs message size (small messages are
//! repost-bound, large ones saturate). Right: receive-worker scaling at
//! 16 MiB messages.
//!
//! Substitution note: the paper measures 400 Gbit/s RoCEv2 on BlueField-3;
//! here the same receive datapath (generation check + two-level bitmap
//! update + chunk publication + repost) runs on host threads, so absolute
//! Gbit/s depends on the machine. The *shape* — repost-bound small
//! messages, saturation by ~512 KiB, near-linear worker scaling up to the
//! physical core count — is the reproduced result.

use sdr_bench::{bytes_label, fmt, table_header, table_row};
use sdr_core::ImmLayout;
use sdr_dpa::{run_loopback, DpaConfig, LoopbackConfig};

fn cfg(msg_bytes: u64, workers: usize, messages: u64, batch_budget: usize) -> LoopbackConfig {
    LoopbackConfig {
        dpa: DpaConfig {
            workers,
            msg_slots: 64,
            ring_capacity: 8192,
            layout: ImmLayout::default(),
            batch_budget,
        },
        msg_bytes,
        mtu_bytes: 4096,
        chunk_bytes: 64 * 1024,
        inflight: 16,
        messages,
        drop_rate: 0.0,
        seed: 1,
        batch_repost: false,
    }
}

fn main() {
    println!("# Figure 14 — SDR loopback throughput (16 in-flight, 64 KiB chunks)");
    let smoke = std::env::var_os("SDR_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let scale = if smoke { 16 } else { 1 };

    table_header(
        "Left: throughput vs message size (2 receive workers)",
        &["message", "goodput [Gbit/s]", "messages/s", "pkts/s [M]"],
    );
    for shift in [16u32, 18, 19, 20, 22, 24, 26] {
        let msg = 1u64 << shift;
        // Scale message count so each row runs ~the same volume.
        let messages = (((1u64 << 32) / msg) / scale).clamp(8, 4096);
        let r = run_loopback(cfg(msg, 2, messages, 256));
        table_row(&[
            bytes_label(msg),
            fmt(r.goodput_gbps),
            fmt(r.msgs_per_sec),
            fmt(r.pkts_per_sec / 1e6),
        ]);
    }
    println!(
        "Expected shape: throughput rises with message size — small messages\n\
         are bound by receive repost overhead (slot reallocation, key-table\n\
         update, bitmap cleanup) — and saturates by ~512 KiB (paper: line\n\
         rate at 512 KiB with 20 of 256 DPA threads)."
    );

    table_header(
        "Right: worker scaling at 16 MiB messages",
        &["receive workers", "goodput [Gbit/s]", "pkts/s [M]"],
    );
    for workers in [1usize, 2, 4, 8] {
        let r = run_loopback(cfg(16 << 20, workers, 192 / scale, 256));
        table_row(&[
            workers.to_string(),
            fmt(r.goodput_gbps),
            fmt(r.pkts_per_sec / 1e6),
        ]);
    }
    println!(
        "Expected shape: near-linear scaling up to the physical core count\n\
         (2 on this host); beyond that, oversubscription flattens the curve."
    );

    table_header(
        "Batched completion A/B at 16 MiB, 2 workers (budget = CQEs per poll)",
        &["batch budget", "goodput [Gbit/s]", "pkts/s [M]"],
    );
    for budget in [1usize, 32, 256] {
        let r = run_loopback(cfg(16 << 20, 2, 192 / scale, budget));
        table_row(&[
            budget.to_string(),
            fmt(r.goodput_gbps),
            fmt(r.pkts_per_sec / 1e6),
        ]);
    }
    println!(
        "Expected shape: budget 1 reproduces the one-CQE-at-a-time baseline\n\
         (one lock acquisition + two atomic RMWs per packet); larger budgets\n\
         coalesce bitmap words and chunk publishes per message (§3.4.2)."
    );
}
