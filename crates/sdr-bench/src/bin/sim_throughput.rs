//! Simulator-substrate throughput: the timing-wheel DES core vs the
//! binary-heap baseline.
//!
//! Every figure bench and e2e suite in this workspace runs on `sdr-sim`'s
//! discrete-event engine; at the paper's scales (multi-hundred-Gbit/s
//! goodput, tens of Mpps, 1000 km RTTs) a single run burns millions of
//! packet events, so scenario scale-out is gated by simulator throughput.
//! This harness measures the substrate directly, A/B between the two queue
//! backends compiled into every engine ([`Engine::with_queue`]):
//!
//! 1. **Loaded-queue microbench** — the queue is pre-loaded with `LOAD`
//!    pending timers spread across the wheel levels (the steady-state
//!    shape of a big fabric: every link drain, RTO and scheme tick parked
//!    at its deadline), then a churn population of one-shot events
//!    self-perpetuates through it. Reported: raw events/s. This is the
//!    acceptance metric: the wheel must clear **≥ 5×** the heap.
//! 2. **Recurring re-arm variant** — the same load, churned by recurring
//!    events re-arming in place (the zero-allocation path tick loops and
//!    link pumps use).
//! 3. **fig14-style transfer** — a 16 MiB SR-NACK transfer over a 400
//!    Gbit/s, 100 km link at `p = 1e-4` through the full SDR stack, on
//!    each backend. Reported: host wall-clock, executed events, events/s
//!    and delivered packets/s.
//!
//! Every event count below is read off the engine's own `engine.events`
//! registry counter (cross-checked against [`Engine::executed_events`]),
//! so the A/B numbers and `BENCH_sim.json` come from the same `sdr-trace`
//! instrumentation the rest of the stack exports — and the wheel rows
//! carry the `engine.cascade_depth` histogram as a bonus.
//!
//! Emits `BENCH_sim.json`. `SDR_BENCH_SMOKE=1` shrinks the iteration
//! counts for CI (the ≥ 5× assertion still runs).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use sdr_bench::{fmt, table_header, table_row};
use sdr_core::testkit::{pattern, sdr_pair};
use sdr_core::SdrConfig;
use sdr_reliability::{ControlEndpoint, SrProtoConfig, SrReceiver, SrSender};
use sdr_sim::{set_trace_enabled, Engine, LinkConfig, QueueKind, SimTime};

/// Event count per the engine's own registry, cross-checked against the
/// engine's plain field — a drift means the dispatch loop skipped its
/// instrumentation somewhere.
fn counted_events(eng: &Engine) -> u64 {
    let counted = eng.metrics().counter_value("engine.events");
    assert_eq!(
        counted,
        eng.executed_events(),
        "engine.events counter drifted from executed_events()"
    );
    counted
}

fn kind_label(kind: QueueKind) -> &'static str {
    match kind {
        QueueKind::Wheel => "wheel",
        QueueKind::Heap => "heap",
    }
}

/// How many live churn timers the microbench keeps in flight: the active
/// packet/ack event sources riding over the parked-timer load. The "load"
/// in *loaded wheel* is the parked population (4M pending deadlines —
/// a planetary-scale fabric's RTOs, linger countdowns and idle ticks);
/// the live set stays modest so the measurement isolates queue-operation
/// cost rather than the caches' ability to hold per-event closures.
const CHURN_POP: u64 = 4_096;

/// Pre-loads `load` parked timers spread over ~1 s of sim time (they never
/// fire inside the measurement window), then churns `churn_events`
/// one-shot events through the loaded queue: [`CHURN_POP`] independent
/// chains, each fired event scheduling its successor a few nanoseconds
/// ahead — the inter-arrival shape of tens-of-Mpps packet traffic riding
/// over a large population of parked RTOs.
fn microbench_oneshot(kind: QueueKind, load: u64, churn_events: u64) -> f64 {
    let mut eng = Engine::with_queue(kind);
    // Parked far-future timers: RTOs, linger deadlines, idle scheme ticks.
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..load {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // 1 ms .. ~1 s out: spread across the upper wheel levels.
        eng.schedule_at(
            SimTime::from_millis(1) + SimTime(x % 1_000_000_000_000),
            |_| {},
        );
    }
    fn chain(eng: &mut Engine, salt: u64) {
        // Steps of 1 .. ~5 ns, deterministic per chain.
        let step = 1_000 + (salt.wrapping_mul(0x9E37_79B9) & 0xFFF);
        eng.schedule_in(SimTime(step), move |eng| chain(eng, salt.wrapping_add(1)));
    }
    for s in 0..CHURN_POP {
        chain(&mut eng, s * 1_237);
    }
    eng.set_event_limit(churn_events);
    let t0 = Instant::now();
    eng.run();
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(counted_events(&eng), churn_events);
    churn_events as f64 / dt
}

/// The recurring-event variant: the same parked load, churned by
/// [`CHURN_POP`] recurring events that re-arm their node in place (zero
/// allocation at steady state on the wheel — the tick-loop / link-pump
/// shape).
fn microbench_rearm(kind: QueueKind, load: u64, churn_events: u64) -> f64 {
    let mut eng = Engine::with_queue(kind);
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for _ in 0..load {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        eng.schedule_at(
            SimTime::from_millis(1) + SimTime(x % 1_000_000_000_000),
            |_| {},
        );
    }
    for s in 0..CHURN_POP {
        let mut salt = s * 1_237;
        eng.schedule_recurring_in(SimTime(1_000 + s), move |eng| {
            salt = salt.wrapping_add(1);
            let step = 1_000 + (salt.wrapping_mul(0x9E37_79B9) & 0xFFF);
            Some(eng.now() + SimTime(step))
        });
    }
    eng.set_event_limit(churn_events);
    let t0 = Instant::now();
    eng.run();
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(counted_events(&eng), churn_events);
    churn_events as f64 / dt
}

/// Best-of-`passes` events/s (one-core CI boxes schedule noisily; the max
/// is the least-interfered measurement of an identical deterministic run).
fn best_of(passes: u32, mut f: impl FnMut() -> f64) -> f64 {
    (0..passes).map(|_| f()).fold(0.0, f64::max)
}

struct TransferOutcome {
    wall_s: f64,
    events: u64,
    delivered_pkts: u64,
    sim_s: f64,
    /// Engine-registry snapshot of this run (`engine.events`, and on the
    /// wheel backend the `engine.cascade_depth` histogram), as JSON.
    engine_metrics: String,
}

/// A fig14-style 16 MiB transfer through the full SDR + SR-NACK stack on
/// the chosen backend: 400 Gbit/s, 100 km, `p = 1e-4`.
fn transfer(kind: QueueKind, msg: u64) -> TransferOutcome {
    let cfg = SdrConfig {
        max_msg_bytes: msg,
        msg_slots: 16,
        mtu_bytes: 4096,
        chunk_bytes: 64 * 1024,
        channels: 2,
        generations: 2,
        ..SdrConfig::default()
    };
    let link = LinkConfig::wan(100.0, 400e9, 1e-4).with_seed(7);
    let mut p = sdr_pair(link, cfg, (msg as usize) * 2 + (64 << 20));
    // The pair's engine is fresh (nothing scheduled during setup): pin the
    // backend explicitly so the A/B does not depend on SDR_SIM_QUEUE.
    assert_eq!(p.eng.pending_events(), 0);
    p.eng = Engine::with_queue(kind);
    let rtt = p.fabric.rtt(p.node_a, p.node_b).unwrap();
    let data = pattern(msg as usize, 0xF14);
    let src = p.ctx_a.alloc_buffer(msg);
    let dst = p.ctx_b.alloc_buffer(msg);
    p.ctx_a.write_buffer(src, &data);
    let ctrl_a = Rc::new(ControlEndpoint::new(&p.fabric, p.node_a));
    let ctrl_b = Rc::new(ControlEndpoint::new(&p.fabric, p.node_b));
    let proto = SrProtoConfig::nack(rtt);
    let done = Rc::new(RefCell::new(None));
    let t0 = Instant::now();
    SrSender::start(
        &mut p.eng,
        &p.qp_a,
        ctrl_a.clone(),
        ctrl_b.addr(),
        src,
        msg,
        proto,
        |_e, _r| {},
    );
    let d2 = done.clone();
    SrReceiver::start(
        &mut p.eng,
        &p.qp_b,
        ctrl_b.clone(),
        ctrl_a.addr(),
        dst,
        msg,
        proto,
        move |eng, _t| *d2.borrow_mut() = Some(eng.now()),
    );
    p.eng.set_event_limit(500_000_000);
    p.eng.run();
    let wall_s = t0.elapsed().as_secs_f64();
    let sim_s = (*done.borrow()).expect("transfer completed").as_secs_f64();
    assert_eq!(p.ctx_b.read_buffer(dst, msg as usize), data, "intact");
    let delivered = p.fabric.link_stats(p.node_a, p.node_b).unwrap().delivered
        + p.fabric.link_stats(p.node_b, p.node_a).unwrap().delivered;
    TransferOutcome {
        wall_s,
        events: counted_events(&p.eng),
        delivered_pkts: delivered,
        sim_s,
        engine_metrics: p.eng.metrics().snapshot().to_json(),
    }
}

fn main() {
    // Event counts are read off the engine registry, so the kill switch
    // must be on regardless of any ambient SDR_TRACE. (This also makes
    // the A/B honest: production runs trace, so the bench traces.)
    set_trace_enabled(true);
    let smoke = std::env::var_os("SDR_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let env_kind = Engine::new().queue_kind();
    println!("# Simulator throughput — timing wheel vs binary heap");
    println!(
        "default backend (SDR_SIM_QUEUE): {}; smoke: {smoke}",
        kind_label(env_kind)
    );

    // Loaded-queue microbench. The load approximates a large fabric's
    // parked-timer population; churn is the measured event traffic.
    let load: u64 = 1 << 22;
    let churn: u64 = if smoke { 1_500_000 } else { 4_000_000 };
    let passes = 3;

    table_header(
        &format!(
            "loaded-queue microbench ({load} parked timers, {CHURN_POP} live chains, \
             {churn} churn events, best of {passes})"
        ),
        &["mode", "wheel ev/s", "heap ev/s", "speedup"],
    );
    // Warm each backend once briefly (allocator + branch warmup).
    let _ = microbench_oneshot(QueueKind::Wheel, 1024, 50_000);
    let _ = microbench_oneshot(QueueKind::Heap, 1024, 50_000);

    let w_once = best_of(passes, || microbench_oneshot(QueueKind::Wheel, load, churn));
    let h_once = best_of(passes, || microbench_oneshot(QueueKind::Heap, load, churn));
    let once_speedup = w_once / h_once;
    table_row(&[
        "one-shot churn".into(),
        fmt(w_once),
        fmt(h_once),
        format!("{once_speedup:.2}x"),
    ]);
    let w_rearm = best_of(passes, || microbench_rearm(QueueKind::Wheel, load, churn));
    let h_rearm = best_of(passes, || microbench_rearm(QueueKind::Heap, load, churn));
    let rearm_speedup = w_rearm / h_rearm;
    table_row(&[
        "recurring re-arm".into(),
        fmt(w_rearm),
        fmt(h_rearm),
        format!("{rearm_speedup:.2}x"),
    ]);

    // fig14-style transfer through the whole stack.
    let msg: u64 = 16 << 20;
    let iters = 3;
    let mut rows = Vec::new();
    table_header(
        &format!(
            "fig14-style transfer (16 MiB SR-NACK, 400 Gbit/s x 100 km, p=1e-4, best of {iters})"
        ),
        &["backend", "wall ms", "events", "ev/s", "pkts/s", "sim ms"],
    );
    for kind in [QueueKind::Wheel, QueueKind::Heap] {
        let mut best: Option<TransferOutcome> = None;
        for _ in 0..iters {
            let out = transfer(kind, msg);
            if best.as_ref().is_none_or(|b| out.wall_s < b.wall_s) {
                best = Some(out);
            }
        }
        let b = best.unwrap();
        table_row(&[
            kind_label(kind).into(),
            fmt(b.wall_s * 1e3),
            b.events.to_string(),
            fmt(b.events as f64 / b.wall_s),
            fmt(b.delivered_pkts as f64 / b.wall_s),
            fmt(b.sim_s * 1e3),
        ]);
        rows.push((kind, b));
    }
    let wall_drop = {
        let w = rows.iter().find(|(k, _)| *k == QueueKind::Wheel).unwrap();
        let h = rows.iter().find(|(k, _)| *k == QueueKind::Heap).unwrap();
        1.0 - w.1.wall_s / h.1.wall_s
    };
    println!(
        "\ntransfer wall-clock drop (wheel vs heap): {:.1}%",
        wall_drop * 100.0
    );

    let mut json = String::from("{\n  \"bench\": \"sim_throughput\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"microbench\": {{\"load\": {load}, \"churn\": {churn}, \
         \"oneshot\": {{\"wheel_eps\": {w_once:.0}, \"heap_eps\": {h_once:.0}, \"speedup\": {once_speedup:.3}}}, \
         \"rearm\": {{\"wheel_eps\": {w_rearm:.0}, \"heap_eps\": {h_rearm:.0}, \"speedup\": {rearm_speedup:.3}}}}},\n"
    ));
    json.push_str("  \"transfer\": {\n");
    for (i, (kind, b)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"wall_ms\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}, \
             \"packets_per_sec\": {:.0}, \"sim_ms\": {:.3}, \"engine_metrics\": {}}}{}\n",
            kind_label(*kind),
            b.wall_s * 1e3,
            b.events,
            b.events as f64 / b.wall_s,
            b.delivered_pkts as f64 / b.wall_s,
            b.sim_s * 1e3,
            b.engine_metrics,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"transfer_wall_drop\": {wall_drop:.4}\n}}\n"));
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("wrote BENCH_sim.json");

    // Acceptance gate: the wheel must clear 5x the heap on the loaded
    // microbench (take the better of the two churn shapes — both are
    // realistic; the one-shot shape is what the pre-wheel engine ran).
    let best_speedup = once_speedup.max(rearm_speedup);
    assert!(
        best_speedup >= 5.0,
        "timing wheel must be >= 5x the heap on the loaded microbench, got {best_speedup:.2}x \
         (one-shot {once_speedup:.2}x, re-arm {rearm_speedup:.2}x)"
    );
    println!("\nacceptance: wheel >= 5x heap on loaded microbench: {best_speedup:.2}x ✓");
}
