//! Figure 11 — MDS vs XOR erasure codes: encoding throughput vs CPU
//! threads (can the encode hide behind 400 Gbit/s injection?) and
//! resilience (fallback probability vs chunk drop rate).
//!
//! Paper setup: 128 MiB buffer, 64 KiB chunks, (k, m) = (32, 8), Xeon 8580.
//! Substitution: our from-scratch Reed–Solomon vs the XOR modulo-group code
//! on the host CPU (2 physical cores here — thread counts beyond that
//! measure oversubscription).

use std::time::Instant;

use sdr_bench::{fmt, logspace, table_header, table_row};
use sdr_erasure::{encode_parallel, ErasureCode, ReedSolomon, XorCode};
use sdr_model::{p_fallback, Channel, EcConfig};

const CHUNK: usize = 64 * 1024;
const K: usize = 32;
const M: usize = 8;

fn encode_throughput(code: &dyn ErasureCode, threads: usize, submessages: usize) -> f64 {
    // One submessage = 32 × 64 KiB = 2 MiB of data.
    let data: Vec<Vec<u8>> = (0..K)
        .map(|i| {
            (0..CHUNK)
                .map(|j| ((i * 131 + j * 7) % 251) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    // Warm up once.
    let _ = encode_parallel(code, &refs, threads);
    let start = Instant::now();
    for _ in 0..submessages {
        let parity = encode_parallel(code, &refs, threads);
        std::hint::black_box(&parity);
    }
    let secs = start.elapsed().as_secs_f64();
    (submessages * K * CHUNK) as f64 * 8.0 / secs // encoded data bits/s
}

fn main() {
    println!("# Figure 11 — MDS vs XOR EC: encode cost and resilience");
    println!(
        "GF(256) kernel: {} (available: {})",
        sdr_erasure::Kernel::active().name(),
        sdr_erasure::Kernel::all()
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    // CI pins tiers via SDR_GF256_KERNEL; a pin the host can't honor must
    // fail the run loudly, not silently re-measure the fallback tier.
    if let Ok(want) = std::env::var("SDR_GF256_KERNEL") {
        assert_eq!(
            sdr_erasure::Kernel::active().name(),
            want,
            "pinned GF(256) kernel unavailable on this host"
        );
    }
    let smoke = std::env::var_os("SDR_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let submessages = if smoke { 2 } else { 64 }; // 128 MiB total data per measurement

    table_header(
        "Encode throughput vs threads (128 MiB buffer, 64 KiB chunks, k=32 m=8)",
        &["threads", "XOR [Gbit/s]", "MDS [Gbit/s]", "XOR/MDS"],
    );
    let xor = XorCode::new(K, M);
    let rs = ReedSolomon::new(K, M);
    for threads in [1usize, 2, 4, 8] {
        let tx = encode_throughput(&xor, threads, submessages) / 1e9;
        let tm = encode_throughput(&rs, threads, submessages) / 1e9;
        table_row(&[threads.to_string(), fmt(tx), fmt(tm), fmt(tx / tm)]);
    }
    println!(
        "Expected shape: XOR ≈ 2x MDS throughput per core (paper: XOR hides\n\
         400 Gbit/s behind 4 cores, MDS needs ~8). Absolute numbers depend on\n\
         the host CPU; scaling flattens beyond the physical core count."
    );

    table_header(
        "Resilience: fallback probability vs chunk drop rate (128 MiB)",
        &["P_drop (chunk)", "XOR(32,8) fallback", "MDS(32,8) fallback"],
    );
    let ch = Channel::new(400e9, 0.025, 0.0);
    let m_chunks = ch.chunks_for(128 << 20);
    for p in logspace(1e-4, 5e-2, 7) {
        let fx = p_fallback(&EcConfig::xor(32, 8), m_chunks, p);
        let fm = p_fallback(&EcConfig::mds(32, 8), m_chunks, p);
        table_row(&[format!("{p:.1e}"), fmt(fx), fmt(fm)]);
    }
    println!(
        "Expected shape: XOR parity becomes ineffective around 1e-3 (falls\n\
         back to SR) while MDS remains robust beyond 1e-2."
    );
}
