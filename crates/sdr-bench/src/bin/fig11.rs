//! Figure 11 — MDS vs XOR erasure codes: encoding throughput vs CPU
//! threads (can the encode hide behind 400 Gbit/s injection?) and
//! resilience (fallback probability vs chunk drop rate).
//!
//! Paper setup: 128 MiB buffer, 64 KiB chunks, (k, m) = (32, 8), Xeon 8580.
//! Substitution: our from-scratch Reed–Solomon vs the XOR modulo-group code
//! on the host CPU. Two pipeline measurements ride along:
//!
//! * persistent [`EncodePool`] dispatch vs the per-call `thread::scope`
//!   spawn baseline (the `*_2threads` rows of the paper's figure), and
//! * EC sender wall-clock time-to-first-byte: streamed encode→inject
//!   pipeline vs stage-all-parity-upfront.
//!
//! Emits machine-readable `BENCH_fig11.json` next to the working directory
//! so successive PRs can track the perf trajectory.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use sdr_bench::{fmt, logspace, table_header, table_row};
use sdr_core::testkit::{pattern, sdr_pair};
use sdr_core::SdrConfig;
use sdr_erasure::{
    encode_parallel_into, encode_parallel_into_spawn, ErasureCode, ReedSolomon, XorCode,
};
use sdr_model::{p_fallback, Channel, EcConfig};
use sdr_reliability::{
    ControlEndpoint, EcCodeChoice, EcProtoConfig, EcReceiver, EcReport, EcSender, EcStaging,
};
use sdr_sim::LinkConfig;

const CHUNK: usize = 64 * 1024;
const K: usize = 32;
const M: usize = 8;

type EncodeInto = fn(&dyn ErasureCode, &[&[u8]], &mut [&mut [u8]], usize);

fn encode_throughput(
    code: &dyn ErasureCode,
    threads: usize,
    submessages: usize,
    encode: EncodeInto,
) -> f64 {
    // One submessage = 32 × 64 KiB = 2 MiB of data; parity buffers are
    // reused so both paths measure dispatch + encode, not allocation.
    let data: Vec<Vec<u8>> = (0..K)
        .map(|i| {
            (0..CHUNK)
                .map(|j| ((i * 131 + j * 7) % 251) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let mut parity = vec![vec![0u8; CHUNK]; code.parity_shards()];
    let mut run = |n: usize| {
        for _ in 0..n {
            let mut views: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
            encode(code, &refs, &mut views, threads);
            std::hint::black_box(&parity);
        }
    };
    run(1); // warm up (and prime the pool)
    let start = Instant::now();
    run(submessages);
    let secs = start.elapsed().as_secs_f64();
    (submessages * K * CHUNK) as f64 * 8.0 / secs // encoded data bits/s
}

/// Wall-clock TTFB of the EC sender under a staging mode and stripe
/// width, through the real protocol stack over a simulated channel.
fn measure_ttfb_striped(staging: EcStaging, msg: u64, stripes: usize) -> EcReport {
    let link = LinkConfig::wan(50.0, 8e9, 0.0).with_seed(42);
    let cfg = SdrConfig {
        max_msg_bytes: 64 << 20,
        msg_slots: 64,
        chunk_bytes: CHUNK as u64,
        channels: 2,
        generations: 2,
        ..SdrConfig::default()
    };
    let mut p = sdr_pair(link, cfg, 256 << 20);
    let rtt = p.fabric.rtt(p.node_a, p.node_b).unwrap();
    let src = p.ctx_a.alloc_buffer(msg);
    let dst = p.ctx_b.alloc_buffer(msg);
    p.ctx_a.write_buffer(src, &pattern(msg as usize, 5));
    let ctrl_a = Rc::new(ControlEndpoint::new(&p.fabric, p.node_a));
    let ctrl_b = Rc::new(ControlEndpoint::new(&p.fabric, p.node_b));
    let model_ch = Channel::new(8e9, rtt.as_secs_f64(), 0.0);
    let mut proto = EcProtoConfig::for_channel(K, M, EcCodeChoice::Mds, &model_ch, msg, rtt);
    proto.staging = staging;
    proto.encode_stripes = stripes;
    let rep = Rc::new(RefCell::new(None));
    let r2 = rep.clone();
    EcSender::start(
        &mut p.eng,
        &p.qp_a,
        &p.ctx_a,
        ctrl_a.clone(),
        ctrl_b.addr(),
        src,
        msg,
        proto,
        move |_e, r| *r2.borrow_mut() = Some(r),
    );
    EcReceiver::start(
        &mut p.eng,
        &p.qp_b,
        &p.ctx_b,
        ctrl_b,
        ctrl_a.addr(),
        dst,
        msg,
        proto,
        |_e, _t, _st| {},
    );
    p.eng.set_event_limit(50_000_000);
    p.eng.run();
    let taken = rep.borrow_mut().take();
    taken.expect("sender finished")
}

fn main() {
    println!("# Figure 11 — MDS vs XOR EC: encode cost and resilience");
    println!(
        "GF(256) kernel: {} (available: {})",
        sdr_erasure::Kernel::active().name(),
        sdr_erasure::Kernel::all()
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    // CI pins tiers via SDR_GF256_KERNEL; a pin the host can't honor must
    // fail the run loudly, not silently re-measure the fallback tier.
    if let Ok(want) = std::env::var("SDR_GF256_KERNEL") {
        assert_eq!(
            sdr_erasure::Kernel::active().name(),
            want,
            "pinned GF(256) kernel unavailable on this host"
        );
    }
    let smoke = std::env::var_os("SDR_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let submessages = if smoke { 2 } else { 64 }; // 128 MiB total data per measurement

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"kernel\": \"{}\",\n  \"smoke\": {},\n",
        sdr_erasure::Kernel::active().name(),
        smoke
    ));

    table_header(
        "Encode throughput vs threads (128 MiB buffer, 64 KiB chunks, k=32 m=8)",
        &["threads", "XOR [Gbit/s]", "MDS [Gbit/s]", "XOR/MDS"],
    );
    let xor = XorCode::new(K, M);
    let rs = ReedSolomon::new(K, M);
    json.push_str("  \"encode_threads\": [\n");
    let sweep = [1usize, 2, 4, 8];
    // Pooled rates, measured once and reused by the pool-vs-spawn table.
    let mut pooled: Vec<(usize, f64, f64)> = Vec::new();
    for (n, threads) in sweep.into_iter().enumerate() {
        let tx = encode_throughput(&xor, threads, submessages, encode_parallel_into) / 1e9;
        let tm = encode_throughput(&rs, threads, submessages, encode_parallel_into) / 1e9;
        pooled.push((threads, tx, tm));
        table_row(&[threads.to_string(), fmt(tx), fmt(tm), fmt(tx / tm)]);
        json.push_str(&format!(
            "    {{\"threads\": {threads}, \"xor_gbps\": {tx:.3}, \"mds_gbps\": {tm:.3}}}{}\n",
            if n + 1 < sweep.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    println!(
        "Expected shape: XOR ≈ 2x MDS throughput per core (paper: XOR hides\n\
         400 Gbit/s behind 4 cores, MDS needs ~8). Absolute numbers depend on\n\
         the host CPU; scaling flattens beyond the physical core count."
    );

    table_header(
        "Persistent EncodePool vs per-call thread spawn (MDS 32,8 / XOR 32,8)",
        &[
            "threads",
            "MDS spawn",
            "MDS pool",
            "speedup",
            "XOR spawn",
            "XOR pool",
            "speedup",
        ],
    );
    json.push_str("  \"pool_vs_spawn\": [\n");
    let spawn_sweep: Vec<&(usize, f64, f64)> = pooled.iter().filter(|(t, _, _)| *t > 1).collect();
    for (n, &&(threads, xp, mp)) in spawn_sweep.iter().enumerate() {
        let ms = encode_throughput(&rs, threads, submessages, encode_parallel_into_spawn) / 1e9;
        let xs = encode_throughput(&xor, threads, submessages, encode_parallel_into_spawn) / 1e9;
        table_row(&[
            threads.to_string(),
            fmt(ms),
            fmt(mp),
            fmt(mp / ms),
            fmt(xs),
            fmt(xp),
            fmt(xp / xs),
        ]);
        json.push_str(&format!(
            "    {{\"threads\": {threads}, \"mds_spawn_gbps\": {ms:.3}, \"mds_pool_gbps\": {mp:.3}, \
             \"xor_spawn_gbps\": {xs:.3}, \"xor_pool_gbps\": {xp:.3}}}{}\n",
            if n + 1 < spawn_sweep.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    println!(
        "Expected shape: the pool wins at every width — it pays one channel\n\
         enqueue per stripe instead of a thread spawn + join. The gap widens\n\
         with submessage rate, not size."
    );

    // Time-to-first-byte: streamed encode→inject pipeline vs upfront
    // staging, through the real sender over a simulated WAN.
    let ttfb_msg: u64 = if smoke { 8 << 20 } else { 32 << 20 };
    let streamed = measure_ttfb_striped(EcStaging::Streamed, ttfb_msg, 1);
    let upfront = measure_ttfb_striped(EcStaging::Upfront, ttfb_msg, 1);
    table_header(
        "EC sender wall-clock time-to-first-byte (MDS 32,8)",
        &["staging", "TTFB [µs]"],
    );
    table_row(&[
        "upfront (stage all parity)".into(),
        fmt(upfront.ttfb_wall.as_secs_f64() * 1e6),
    ]);
    table_row(&[
        "streamed (pipeline)".into(),
        fmt(streamed.ttfb_wall.as_secs_f64() * 1e6),
    ]);
    println!(
        "Expected shape: upfront TTFB grows with the full message's parity\n\
         encode; streamed TTFB is ~one pool submission (data needs no\n\
         encode; submessage i+1 encodes while i injects)."
    );
    json.push_str(&format!(
        "  \"ttfb\": {{\"msg_bytes\": {ttfb_msg}, \"upfront_us\": {:.1}, \"streamed_us\": {:.1}}},\n",
        upfront.ttfb_wall.as_secs_f64() * 1e6,
        streamed.ttfb_wall.as_secs_f64() * 1e6
    ));

    // Striped in-flight encode jobs: `encode_stripes` splits each
    // submessage's shard length across the pool's workers
    // (`EncodePool::submit(job, n)`), shortening the per-submessage encode
    // latency the streamed sender's completion rides on.
    table_header(
        "Streamed sender vs encode stripes (MDS 32,8, total sim+encode wall)",
        &["stripes", "TTFB [µs]", "transfer wall [ms]"],
    );
    json.push_str("  \"encode_stripes\": [\n");
    let stripe_sweep = [1usize, 2, 4];
    for (n, stripes) in stripe_sweep.into_iter().enumerate() {
        let wall = Instant::now();
        let rep = measure_ttfb_striped(EcStaging::Streamed, ttfb_msg, stripes);
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        table_row(&[
            stripes.to_string(),
            fmt(rep.ttfb_wall.as_secs_f64() * 1e6),
            fmt(wall_ms),
        ]);
        json.push_str(&format!(
            "    {{\"stripes\": {stripes}, \"ttfb_us\": {:.1}, \"transfer_wall_ms\": {wall_ms:.2}}}{}\n",
            rep.ttfb_wall.as_secs_f64() * 1e6,
            if n + 1 < stripe_sweep.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    println!(
        "Expected shape: on multi-core hosts wider stripes shorten each\n\
         in-flight submessage encode, pulling the whole-transfer wall time\n\
         down; on one core the widths tie (same total work, same pool)."
    );

    // CRC32C kernel tiers: every integrity check (control trailers,
    // per-packet payload checksums, EC shard audits, the whole-message
    // delivery digest) funnels through this primitive, so its throughput
    // bounds the checksum overhead the reliability layer can afford.
    table_header(
        "CRC32C kernel throughput (64 KiB chunks — the payload checksum grain)",
        &["tier", "GiB/s"],
    );
    let crc_buf = pattern(64 * 1024, 0xCC);
    let crc_rounds = if smoke { 512 } else { 16 * 1024 }; // 32 MiB / 1 GiB per tier
    json.push_str("  \"crc32c\": [\n");
    let tiers = sdr_erasure::Crc32c::all();
    for (n, tier) in tiers.iter().enumerate() {
        // Warm up, then time; fold each checksum back in so the loop
        // can't be hoisted.
        let mut acc = tier.checksum(&crc_buf);
        let start = Instant::now();
        for _ in 0..crc_rounds {
            acc ^= tier.checksum(&crc_buf);
        }
        let secs = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        let gibps = (crc_rounds * crc_buf.len()) as f64 / secs / (1u64 << 30) as f64;
        table_row(&[tier.name().to_string(), fmt(gibps)]);
        json.push_str(&format!(
            "    {{\"tier\": \"{}\", \"gib_per_s\": {gibps:.2}, \"active\": {}}}{}\n",
            tier.name(),
            tier.name() == sdr_erasure::Crc32c::active().name(),
            if n + 1 < tiers.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    println!(
        "Expected shape: the hardware tier (sse42, three CRC32 qword ops in\n\
         flight) runs an order of magnitude above slice-by-8; both sit far\n\
         above link rate, so per-packet checksums cost a vanishing slice of\n\
         the goodput budget."
    );

    table_header(
        "Resilience: fallback probability vs chunk drop rate (128 MiB)",
        &["P_drop (chunk)", "XOR(32,8) fallback", "MDS(32,8) fallback"],
    );
    let ch = Channel::new(400e9, 0.025, 0.0);
    let m_chunks = ch.chunks_for(128 << 20);
    json.push_str("  \"resilience\": [\n");
    let drops: Vec<f64> = logspace(1e-4, 5e-2, 7);
    for (n, p) in drops.iter().enumerate() {
        let fx = p_fallback(&EcConfig::xor(32, 8), m_chunks, *p);
        let fm = p_fallback(&EcConfig::mds(32, 8), m_chunks, *p);
        table_row(&[format!("{p:.1e}"), fmt(fx), fmt(fm)]);
        json.push_str(&format!(
            "    {{\"p_drop\": {p:.1e}, \"xor_fallback\": {fx:.4}, \"mds_fallback\": {fm:.4}}}{}\n",
            if n + 1 < drops.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    println!(
        "Expected shape: XOR parity becomes ineffective around 1e-3 (falls\n\
         back to SR) while MDS remains robust beyond 1e-2."
    );

    std::fs::write("BENCH_fig11.json", &json).expect("write BENCH_fig11.json");
    println!("\nwrote BENCH_fig11.json");
}
