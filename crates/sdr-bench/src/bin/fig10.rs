//! Figure 10 — deep dive at 400 Gbit/s / 25 ms RTT: (a) size sweep at
//! P = 1e-5 with mean and 99.9th percentile; (b) mean and (c) p99.9 for a
//! 128 MiB Write across drop rates; (d) MDS data/parity splits.

use sdr_bench::{bytes_label, fmt, logspace, paper_channel, table_header, table_row};
use sdr_model::{ec_summary, sr_summary, EcConfig, SrConfig, Summary};

const TRIALS: usize = 12_000; // p99.9 needs ≥ 10k samples

fn three_schemes(ch: &sdr_model::Channel, bytes: u64) -> (Summary, Summary, Summary) {
    let sr_rto = sr_summary(ch, bytes, &SrConfig::rto_multiple(ch, 3.0), TRIALS, 1);
    let sr_nack = sr_summary(ch, bytes, &SrConfig::nack(ch), TRIALS, 2);
    let ec = ec_summary(
        ch,
        bytes,
        &EcConfig::mds(32, 8),
        &SrConfig::rto_multiple(ch, 3.0),
        TRIALS,
        3,
    );
    (sr_rto, sr_nack, ec)
}

fn main() {
    println!("# Figure 10 — 128 MiB Write under three reliability schemes");

    table_header(
        "(a) slowdown vs Write size at P_drop = 1e-5 (mean / p99.9)",
        &["size", "SR RTO", "SR NACK", "MDS EC(32,8)"],
    );
    let ch = paper_channel(1e-5);
    for shift in [20u32, 23, 26, 27, 29, 31, 33] {
        let bytes = 1u64 << shift;
        let ideal = ch.ideal_time(bytes);
        let (rto, nack, ec) = three_schemes(&ch, bytes);
        table_row(&[
            bytes_label(bytes),
            format!("{} / {}", fmt(rto.mean / ideal), fmt(rto.p999 / ideal)),
            format!("{} / {}", fmt(nack.mean / ideal), fmt(nack.p999 / ideal)),
            format!("{} / {}", fmt(ec.mean / ideal), fmt(ec.p999 / ideal)),
        ]);
    }
    println!(
        "Expected: SR RTO up to ~6.5x mean / ~12x p99.9 near the critical\n\
         size; NACK improves both ~4x; EC near its parity floor."
    );

    table_header(
        "(b,c) 128 MiB: mean and p99.9 slowdown vs drop rate",
        &[
            "P_drop",
            "SR RTO mean",
            "SR NACK mean",
            "EC mean",
            "SR RTO p999",
            "SR NACK p999",
            "EC p999",
        ],
    );
    for p in logspace(1e-6, 1e-2, 7) {
        let ch = paper_channel(p);
        let ideal = ch.ideal_time(128 << 20);
        let (rto, nack, ec) = three_schemes(&ch, 128 << 20);
        table_row(&[
            format!("{p:.0e}"),
            fmt(rto.mean / ideal),
            fmt(nack.mean / ideal),
            fmt(ec.mean / ideal),
            fmt(rto.p999 / ideal),
            fmt(nack.p999 / ideal),
            fmt(ec.p999 / ideal),
        ]);
    }
    println!(
        "Expected: completion grows 3x→10x for SR as single packets need\n\
         multiple retransmission rounds; the RTT-scale penalty per drop is\n\
         fundamental to ARQ (c); EC recovers in place until ~1e-2 where\n\
         parity is overwhelmed and it falls back (b)."
    );

    table_header(
        "(d) MDS splits, 128 MiB mean slowdown vs drop rate",
        &["P_drop", "EC(32,8)", "EC(32,4)", "EC(16,8)", "EC(8,8)"],
    );
    for p in logspace(1e-5, 3e-2, 6) {
        let ch = paper_channel(p);
        let ideal = ch.ideal_time(128 << 20);
        let mut cells = vec![format!("{p:.1e}")];
        for (k, m) in [(32u32, 8u32), (32, 4), (16, 8), (8, 8)] {
            let s = ec_summary(
                &ch,
                128 << 20,
                &EcConfig::mds(k, m),
                &SrConfig::rto_multiple(&ch, 3.0),
                4000,
                7,
            );
            cells.push(fmt(s.mean / ideal));
        }
        table_row(&cells);
    }
    println!(
        "Expected: lower data-to-parity ratios tolerate higher drop rates at\n\
         more bandwidth; (32,8) is the paper's balanced pick — >1e-2 drop\n\
         tolerance for ≤20-25% inflation."
    );
}
