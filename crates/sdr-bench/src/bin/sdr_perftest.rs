//! `sdr_perftest` — an `ib_write_bw`-style command-line tool for the
//! simulated SDR stack (§5.4.1's benchmarking loop as a reusable utility).
//!
//! Runs either the **DPA loopback** throughput loop (real threads, measures
//! packet-completion processing) or a **WAN latency** evaluation (model
//! based, reports completion-time statistics for SR/EC schemes).
//!
//! ```text
//! sdr_perftest loopback [--msg-bytes N] [--mtu N] [--chunk N]
//!                       [--workers N] [--inflight N] [--messages N]
//! sdr_perftest wan      [--msg-bytes N] [--km KM] [--gbps G]
//!                       [--p-drop P] [--trials N]
//! ```

use std::collections::HashMap;

use sdr_core::ImmLayout;
use sdr_dpa::{run_loopback, DpaConfig, LoopbackConfig};
use sdr_model::{ec_summary, sr_quantile_analytic, sr_summary, Channel, EcConfig, SrConfig};

fn parse_args(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                map.insert(key.to_string(), args[i + 1].clone());
                i += 2;
                continue;
            }
        }
        eprintln!("warning: ignoring argument {:?}", args[i]);
        i += 1;
    }
    map
}

fn get<T: std::str::FromStr>(map: &HashMap<String, String>, key: &str, default: T) -> T {
    map.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn usage() -> ! {
    eprintln!(
        "usage: sdr_perftest <loopback|wan> [--key value]...\n\
         loopback: --msg-bytes --mtu --chunk --workers --inflight --messages\n\
         wan:      --msg-bytes --km --gbps --p-drop --trials"
    );
    std::process::exit(2);
}

fn run_loopback_mode(opts: &HashMap<String, String>) {
    let cfg = LoopbackConfig {
        dpa: DpaConfig {
            workers: get(opts, "workers", 2usize),
            msg_slots: 64,
            ring_capacity: 8192,
            layout: ImmLayout::default(),
            batch_budget: 256,
        },
        msg_bytes: get(opts, "msg-bytes", 16u64 << 20),
        mtu_bytes: get(opts, "mtu", 4096u64),
        chunk_bytes: get(opts, "chunk", 64u64 * 1024),
        inflight: get(opts, "inflight", 16usize),
        messages: get(opts, "messages", 128u64),
        drop_rate: get(opts, "p-drop", 0.0f64),
        seed: get(opts, "seed", 1u64),
        batch_repost: false,
    };
    println!(
        "# sdr_perftest loopback: {} msgs × {} B, MTU {}, chunk {}, {} workers, {} in-flight",
        cfg.messages, cfg.msg_bytes, cfg.mtu_bytes, cfg.chunk_bytes, cfg.dpa.workers, cfg.inflight
    );
    let r = run_loopback(cfg);
    println!("  elapsed        : {:?}", r.elapsed);
    println!("  goodput        : {:.2} Gbit/s", r.goodput_gbps);
    println!("  packet rate    : {:.2} Mpps", r.pkts_per_sec / 1e6);
    println!("  message rate   : {:.0} msgs/s", r.msgs_per_sec);
    println!(
        "  worker stats   : {} pkts, {} chunks, {} dups, {} gen-filtered",
        r.stats.packets, r.stats.chunks, r.stats.duplicates, r.stats.generation_filtered
    );
}

fn run_wan_mode(opts: &HashMap<String, String>) {
    let msg = get(opts, "msg-bytes", 128u64 << 20);
    let km = get(opts, "km", 3750.0f64);
    let gbps = get(opts, "gbps", 400.0f64);
    let p = get(opts, "p-drop", 1e-5f64);
    let trials = get(opts, "trials", 8000usize);
    let ch = Channel::from_km(km, gbps * 1e9, p);
    println!(
        "# sdr_perftest wan: {} B over {} km ({:.2} ms RTT), {} Gbit/s, P_drop {:.1e}",
        msg,
        km,
        ch.rtt_s * 1e3,
        gbps,
        p
    );
    println!(
        "  ideal (lossless)       : {:.3} ms",
        ch.ideal_time(msg) * 1e3
    );
    let sr_rto = SrConfig::rto_multiple(&ch, 3.0);
    let schemes: [(&str, Box<dyn Fn() -> sdr_model::Summary>); 3] = [
        (
            "SR RTO(3RTT)",
            Box::new(|| sr_summary(&ch, msg, &sr_rto, trials, 1)),
        ),
        (
            "SR NACK",
            Box::new(|| sr_summary(&ch, msg, &SrConfig::nack(&ch), trials, 2)),
        ),
        (
            "MDS EC(32,8)",
            Box::new(|| ec_summary(&ch, msg, &EcConfig::mds(32, 8), &sr_rto, trials, 3)),
        ),
    ];
    for (name, f) in schemes {
        let s = f();
        println!(
            "  {name:<22}: mean {:9.3} ms   p99 {:9.3} ms   p99.9 {:9.3} ms",
            s.mean * 1e3,
            s.p99 * 1e3,
            s.p999 * 1e3
        );
    }
    println!(
        "  SR RTO p99.9 (analytic): {:9.3} ms (closed-form tail inversion)",
        sr_quantile_analytic(&ch, msg, &sr_rto, 0.999) * 1e3
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else { usage() };
    let opts = parse_args(&args[1..]);
    match mode.as_str() {
        "loopback" => run_loopback_mode(&opts),
        "wan" => run_wan_mode(&opts),
        _ => usage(),
    }
}
