//! Figure 15 — impact of the SDR bitmap chunk size on packet-processing
//! rate and on the theoretical chunk drop probability.
//!
//! Methodology from §5.4.2: 64-byte transport Writes maximize packet-rate
//! load while the per-packet DPA work stays constant (workers process
//! completions, not payloads). Larger chunks raise the chance that a chunk
//! observes a drop (P_chunk = 1 − (1−p)^N) but reduce host bitmap traffic.

use sdr_bench::{fmt, table_header, table_row};
use sdr_core::ImmLayout;
use sdr_dpa::{run_loopback, DpaConfig, LoopbackConfig};
use sdr_model::chunk_drop_probability;

fn main() {
    println!("# Figure 15 — bitmap chunk size vs packet rate (64 B writes)");
    table_header(
        "2 receive workers; P_drop = 1e-5 for the probability column",
        &[
            "chunk [MTUs]",
            "pkts/s [M]",
            "chunk completions/s [M]",
            "P_chunk_drop",
        ],
    );
    for chunk_pkts in [1u64, 2, 4, 8, 16, 32, 64] {
        let cfg = LoopbackConfig {
            dpa: DpaConfig {
                workers: 2,
                msg_slots: 64,
                ring_capacity: 8192,
                layout: ImmLayout::default(),
                batch_budget: 256,
            },
            // 16 Ki packets per message keeps the repost path off the
            // critical path regardless of chunk size.
            msg_bytes: 64 * 16384,
            mtu_bytes: 64,
            chunk_bytes: 64 * chunk_pkts,
            inflight: 16,
            messages: 512,
            drop_rate: 0.0,
            seed: 2,
            batch_repost: false,
        };
        let r = run_loopback(cfg);
        table_row(&[
            chunk_pkts.to_string(),
            fmt(r.pkts_per_sec / 1e6),
            fmt(r.stats.chunks as f64 / r.elapsed.as_secs_f64() / 1e6),
            format!("{:.1e}", chunk_drop_probability(1e-5, chunk_pkts)),
        ]);
    }
    println!(
        "\nExpected shape: packet rate roughly flat in chunk size (per-packet\n\
         worker cost is constant; only the chunk-publication rate falls with\n\
         larger chunks — the paper's 15→24.5 Mpps spread comes from reduced\n\
         PCIe traffic, which the host model has no equivalent of), while the\n\
         theoretical chunk drop probability doubles per doubling:\n\
         1e-5, 2e-5, 4e-5, 8e-5, 1.6e-4, 3.2e-4, 6.4e-4 (paper's annotations)."
    );
}
