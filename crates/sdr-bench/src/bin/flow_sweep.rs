//! Many-flow sweep — one node serving 100/1k/10k concurrent transfers.
//!
//! Companion to the `sdr-reliability` flow-engine tests: this binary
//! quantifies what the `FlowManager` buys at population scale. Per row it
//! opens `n` equal-sized flows at t = 0 against a 16-shard manager (1024
//! concurrent admissions; the rest park and recycle slots), runs to
//! quiescence, and reports aggregate goodput, per-flow completion
//! p50/p99, Jain's fairness index over per-flow goodput, and simulator
//! events/s. A single-flow baseline per size anchors the ideal:
//! `min(n × g1, link bandwidth)`.
//!
//! Fairness is Jain's index over per-flow *completion times* of a
//! same-size population opened together: a fluid-fair scheduler finishes
//! everyone in lockstep (→ 1.0), FIFO serialization spreads completions
//! uniformly (→ 0.75). The fairness rows use multi-chunk flows — a
//! single-chunk flow is one indivisible work item, so its "fair share"
//! is whole-chunk granular by construction.
//!
//! Gates (the bench doubles as a test): every flow delivers byte-exact,
//! the 100-flow row reaches ≥ 0.8× ideal aggregate goodput, the 1k-flow
//! row keeps Jain ≥ 0.9, and the 10k-flow row completes inside its event
//! budget with the parking lot fully drained.
//!
//! The fairness row also carries the **instrumentation overhead gate**:
//! it reruns with the `sdr-trace` kill switch off and asserts sim-time
//! goodput within 2 % of the metrics-on run. Instrumentation never
//! changes the event order — counters and ring writes are side effects —
//! so the two runs should be *identical* in sim time; the gate is thus
//! really a non-perturbation check, and the wall-clock events/s of both
//! runs quantify what tracing costs the simulator itself. A second
//! **checksum overhead gate** reruns the row with per-packet payload
//! checksums off and asserts sim-time goodput within 5 % — the CRC32C
//! work is pure computation, so the delta shows up in wall-clock
//! events/s, not in the delivered schedule.
//!
//! Emits machine-readable `BENCH_flows.json` (rows + an `sdr-trace`
//! registry snapshot of the fairness row). `SDR_BENCH_SMOKE=1` runs a
//! reduced matrix (50/200 flows) for CI; `SDR_FLOW_GATE=1` runs the
//! full-size 100/1000 rows without the 10k tail — the overhead gate at
//! production scale, CI-affordable.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use sdr_bench::{fmt, table_header, table_row};
use sdr_core::testkit::pattern;
use sdr_core::{SdrConfig, SdrContext};
use sdr_reliability::{ControlEndpoint, FlowCfg, FlowManager, FlowReport, RxFlowDone};
use sdr_sim::{set_trace_enabled, Engine, Fabric, LinkConfig, SimTime};

const BW: f64 = 10e9;
const KM: f64 = 10.0;
const P_DROP: f64 = 1e-4;
const NODE_MEM: usize = 1 << 30;
const EVENT_LIMIT: u64 = 400_000_000;

fn qp_cfg() -> SdrConfig {
    SdrConfig {
        msg_slots: 64,
        ..SdrConfig::default()
    }
}

struct RowStats {
    flows: u64,
    flow_bytes: u64,
    agg_gbps: f64,
    p50_ms: f64,
    p99_ms: f64,
    jain: f64,
    events: u64,
    events_per_sec: f64,
    retransmits: u64,
    parked_opens: u64,
    /// `{"fabric": .., "engine": ..}` registry snapshot of the row.
    snapshot: String,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Jain's fairness index: 1.0 = perfectly even, 1/n = fully concentrated.
fn jain(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    sum * sum / (xs.len() as f64 * sum_sq)
}

/// Runs one row: `n` flows of `bytes` each, all opened at t = 0. Verifies
/// byte-exact delivery for every `verify_stride`-th flow and panics on
/// any non-delivery, event-limit hit, or leftover parked open.
/// `checksums` is the per-packet payload-checksum knob (the checksum
/// overhead gate below needs both states).
fn run_row(n: u64, bytes: u64, verify_stride: u64, checksums: bool) -> RowStats {
    let mut eng = Engine::new();
    let fabric = Fabric::new();
    let node_a = fabric.add_node(NODE_MEM);
    let node_b = fabric.add_node(NODE_MEM);
    fabric.link_duplex(node_a, node_b, LinkConfig::wan(KM, BW, P_DROP).with_seed(7));
    let rtt = fabric.rtt(node_a, node_b).unwrap();
    let ctx_a = SdrContext::new(&fabric, node_a);
    let ctx_b = SdrContext::new(&fabric, node_b);
    let ctrl_a = Rc::new(ControlEndpoint::new(&fabric, node_a));
    let ctrl_b = Rc::new(ControlEndpoint::new(&fabric, node_b));
    let qp = SdrConfig {
        payload_checksums: checksums,
        ..qp_cfg()
    };
    let mut cfg = FlowCfg::new(qp, BW, rtt);
    cfg.shards = 16;
    let mgr_a = FlowManager::new(&fabric, node_a, ctrl_a, cfg.clone());
    let mgr_b = FlowManager::new(&fabric, node_b, ctrl_b, cfg);
    FlowManager::connect(&mgr_a, &mgr_b);

    let reports: Rc<RefCell<Vec<FlowReport>>> = Rc::new(RefCell::new(Vec::new()));
    let rx: Rc<RefCell<Vec<RxFlowDone>>> = Rc::new(RefCell::new(Vec::new()));
    let r = rx.clone();
    mgr_b.on_rx_done(move |_eng, d| r.borrow_mut().push(d));
    for i in 0..n {
        let src = ctx_a.alloc_buffer(bytes);
        ctx_a.write_buffer(src, &pattern(bytes as usize, i));
        let rep = reports.clone();
        mgr_a.open_flow(&mut eng, node_b, src, bytes, move |_e, r| {
            rep.borrow_mut().push(r)
        });
    }
    eng.set_event_limit(EVENT_LIMIT);
    let wall = Instant::now();
    eng.run();
    let wall_s = wall.elapsed().as_secs_f64().max(1e-9);
    let events = eng.executed_events();
    assert!(
        events < EVENT_LIMIT,
        "row n={n}: event limit hit before quiescence"
    );

    let reports = reports.borrow();
    let rx = rx.borrow();
    assert_eq!(reports.len() as u64, n, "row n={n}: every flow must report");
    assert_eq!(rx.len() as u64, n, "row n={n}: every flow must arrive");
    let mut last_done = SimTime::ZERO;
    let mut durations_ms: Vec<f64> = Vec::with_capacity(n as usize);
    for rep in reports.iter() {
        assert!(rep.delivered, "row n={n}: flow {} not delivered", rep.id);
        let t = rep.done_at.saturating_sub(rep.opened_at).as_secs_f64();
        durations_ms.push(t * 1e3);
        last_done = last_done.max(rep.done_at);
    }
    for done in rx.iter() {
        // Flow ids are assigned sequentially from 1 in open order, so the
        // id recovers which pattern this flow carried.
        let i = done.id - 1;
        if i.is_multiple_of(verify_stride) {
            let got = ctx_b.read_buffer(done.addr, bytes as usize);
            assert_eq!(
                got,
                pattern(bytes as usize, i),
                "row n={n}: flow {} corrupt",
                done.id
            );
        }
    }
    assert_eq!(mgr_b.parked_opens(), 0, "row n={n}: parking lot must drain");
    let (tx_live, rx_live) = mgr_a.live_flows();
    assert_eq!((tx_live, rx_live), (0, 0), "row n={n}: flows must drain");
    // The aggregate bookkeeping must agree with the report walk — the
    // same invariant `flow_many.rs` asserts, cross-checked here where the
    // published numbers actually come from.
    let st = mgr_a.stats();
    assert_eq!(st.delivered, n, "row n={n}: FlowStats.delivered drifted");
    assert_eq!(
        st.bytes_delivered,
        n * bytes,
        "row n={n}: FlowStats.bytes_delivered drifted"
    );
    durations_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    RowStats {
        flows: n,
        flow_bytes: bytes,
        agg_gbps: n as f64 * bytes as f64 * 8.0 / last_done.as_secs_f64() / 1e9,
        p50_ms: percentile(&durations_ms, 0.50),
        p99_ms: percentile(&durations_ms, 0.99),
        jain: jain(&durations_ms),
        events,
        events_per_sec: events as f64 / wall_s,
        retransmits: st.retransmits,
        parked_opens: mgr_b.stats().parked_opens,
        snapshot: format!(
            "{{\"fabric\": {}, \"engine\": {}}}",
            fabric.metrics().snapshot().to_json(),
            eng.metrics().snapshot().to_json()
        ),
    }
}

fn main() {
    // The bench drives the kill switch itself (the overhead gate below
    // needs both states), so any ambient `SDR_TRACE` is overridden.
    set_trace_enabled(true);
    let smoke = std::env::var_os("SDR_BENCH_SMOKE").is_some();
    let gate_only = std::env::var_os("SDR_FLOW_GATE").is_some();
    // (population, flow bytes); the first row carries the goodput gate,
    // the second the fairness + tracing-overhead gates, the third the
    // scale gate. `SDR_FLOW_GATE=1` runs the full-size first two rows
    // without the long 10k tail — the CI shape for gating the 1k-flow
    // tracing overhead at production scale.
    let rows: &[(u64, u64)] = if smoke {
        &[(50, 256 << 10), (200, 256 << 10)]
    } else if gate_only {
        &[(100, 256 << 10), (1000, 256 << 10)]
    } else {
        &[(100, 256 << 10), (1000, 256 << 10), (10_000, 32 << 10)]
    };
    println!("# Many-flow sweep — aggregate goodput, fairness, and scale");
    println!(
        "deployment: {KM} km ({:.0} µs RTT), {} Gbit/s, p_drop {P_DROP:e}, \
         16 shards × {} slots = 1024 concurrent admissions",
        2.0 * KM * 5e-6 * 1e6 + 4096.0 * 8.0 / BW * 1e6,
        BW / 1e9,
        qp_cfg().msg_slots
    );

    table_header(
        "population sweep (all flows open at t=0)",
        &[
            "flows", "size", "agg Gb/s", "ideal", "eff", "p50 ms", "p99 ms", "Jain", "Mev/s",
            "parked",
        ],
    );
    let mut json = String::from("{\n  \"bench\": \"flow_sweep\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n  \"rows\": [\n"));
    let mut gate_json = String::new();
    let mut gate_snapshot = String::from("{}");
    for (idx, &(n, bytes)) in rows.iter().enumerate() {
        // Single-flow baseline at this size anchors the ideal.
        let single = run_row(1, bytes, 1, true);
        let row = run_row(n, bytes, if n > 1000 { 37 } else { 1 }, true);
        let ideal_gbps = (n as f64 * single.agg_gbps).min(BW / 1e9);
        let eff = row.agg_gbps / ideal_gbps;
        table_row(&[
            n.to_string(),
            sdr_bench::bytes_label(bytes),
            fmt(row.agg_gbps),
            fmt(ideal_gbps),
            format!("{:.2}", eff),
            fmt(row.p50_ms),
            fmt(row.p99_ms),
            format!("{:.3}", row.jain),
            fmt(row.events_per_sec / 1e6),
            row.parked_opens.to_string(),
        ]);
        json.push_str(&format!(
            "    {{\"flows\": {n}, \"flow_bytes\": {bytes}, \
             \"agg_goodput_gbps\": {:.4}, \"single_flow_gbps\": {:.4}, \
             \"ideal_gbps\": {ideal_gbps:.4}, \"efficiency\": {eff:.4}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"jain\": {:.4}, \
             \"events\": {}, \"events_per_sec\": {:.0}, \
             \"retransmits\": {}, \"parked_opens\": {}}}{}\n",
            row.agg_gbps,
            single.agg_gbps,
            row.p50_ms,
            row.p99_ms,
            row.jain,
            row.events,
            row.events_per_sec,
            row.retransmits,
            row.parked_opens,
            if idx + 1 == rows.len() { "" } else { "," }
        ));
        // The gates: goodput must not collapse under fan-out, and DRR must
        // keep an equal-sized population finishing evenly.
        if idx == 0 {
            assert!(
                eff >= 0.8,
                "{n}-flow aggregate goodput collapsed: {:.2} Gb/s vs ideal {ideal_gbps:.2}",
                row.agg_gbps
            );
        }
        if idx == 1 {
            assert!(
                row.jain >= 0.9,
                "{n}-flow fairness collapsed: Jain {:.3}",
                row.jain
            );
            // Instrumentation overhead gate: the same row with the
            // kill switch off. Counters and ring writes are pure side
            // effects, so sim-time goodput must agree within 2 % (in
            // practice: exactly — any drift means instrumentation
            // perturbed the event order). Wall-clock events/s of the two
            // runs is the honest cost of tracing.
            set_trace_enabled(false);
            let off = run_row(n, bytes, if n > 1000 { 37 } else { 1 }, true);
            set_trace_enabled(true);
            let ratio = row.agg_gbps / off.agg_gbps;
            println!(
                "\noverhead gate ({n} flows): metrics-on {:.3} Gb/s vs off {:.3} Gb/s \
                 (ratio {ratio:.4}); wall {:.2} vs {:.2} Mev/s",
                row.agg_gbps,
                off.agg_gbps,
                row.events_per_sec / 1e6,
                off.events_per_sec / 1e6,
            );
            assert!(
                (ratio - 1.0).abs() <= 0.02,
                "instrumentation perturbed the {n}-flow row: on {:.4} vs off {:.4} Gb/s",
                row.agg_gbps,
                off.agg_gbps
            );
            // Checksum-overhead gate: the same row with per-packet payload
            // checksums off. The CRC32C work (sender-side attach, NIC
            // pre-DMA verify) is pure computation — it adds no events and
            // shifts no timestamps — so sim-time goodput must stay within
            // 5 % (in practice: identical on an uncorrupted wire). The
            // wall-clock events/s delta is the honest CPU cost of
            // checksumming every payload at this scale.
            let plain = run_row(n, bytes, if n > 1000 { 37 } else { 1 }, false);
            let csum_ratio = row.agg_gbps / plain.agg_gbps;
            println!(
                "checksum gate ({n} flows): checksums-on {:.3} Gb/s vs off {:.3} Gb/s \
                 (ratio {csum_ratio:.4}); wall {:.2} vs {:.2} Mev/s",
                row.agg_gbps,
                plain.agg_gbps,
                row.events_per_sec / 1e6,
                plain.events_per_sec / 1e6,
            );
            assert!(
                (csum_ratio - 1.0).abs() <= 0.05,
                "payload checksums cost sim-time goodput on the {n}-flow row: \
                 on {:.4} vs off {:.4} Gb/s",
                row.agg_gbps,
                plain.agg_gbps
            );
            gate_json = format!(
                "  \"overhead_gate\": {{\"flows\": {n}, \"on_gbps\": {:.4}, \
                 \"off_gbps\": {:.4}, \"goodput_ratio\": {ratio:.6}, \
                 \"on_events_per_sec\": {:.0}, \"off_events_per_sec\": {:.0}}},\n  \
                 \"checksum_gate\": {{\"flows\": {n}, \"checksums_on_gbps\": {:.4}, \
                 \"checksums_off_gbps\": {:.4}, \"goodput_ratio\": {csum_ratio:.6}, \
                 \"on_events_per_sec\": {:.0}, \"off_events_per_sec\": {:.0}}},\n",
                row.agg_gbps,
                off.agg_gbps,
                row.events_per_sec,
                off.events_per_sec,
                row.agg_gbps,
                plain.agg_gbps,
                row.events_per_sec,
                plain.events_per_sec
            );
            gate_snapshot = row.snapshot.clone();
        }
        let _ = row.flows;
        let _ = row.flow_bytes;
    }
    json.push_str("  ],\n");
    json.push_str(&gate_json);
    // Registry specimen of the fairness row (metrics-on run): the same
    // counters the engine increments on its hot paths.
    json.push_str(&format!("  \"metrics\": {gate_snapshot}\n}}\n"));

    println!(
        "\nExpected shape: the 100-flow row saturates the link (eff ≥ 0.8 of\n\
         the single-flow-times-N ideal, capped at line rate); the 1k-flow\n\
         row — all admitted concurrently under DRR — finishes nearly in\n\
         lockstep (Jain ≥ 0.9); the 10k-flow row wraps the 1024 admission\n\
         slots ~10× deep, so its p99 stretches with parking-lot queueing\n\
         while the engine stays allocation- and event-bounded."
    );
    std::fs::write("BENCH_flows.json", &json).expect("write BENCH_flows.json");
    println!("\nwrote BENCH_flows.json");
}
