//! Figure 13 — 99.9th-percentile completion-time speedup of ring Allreduce
//! with `MDS EC(32,8)` over `SR RTO(3 RTT)` across inter-datacenter rings.
//! Left: 128 MiB buffer, varying datacenter count. Right: 4 datacenters,
//! varying buffer size. Series: drop rates.

use sdr_bench::{bytes_label, fmt, paper_channel, table_header, table_row};
use sdr_collectives::{allreduce_summary, AllreduceParams, StepProtocol};

const TRIALS: usize = 12_000;

fn speedup(n: usize, buffer: u64, p: f64) -> f64 {
    let params = AllreduceParams {
        n_dc: n,
        buffer_bytes: buffer,
        channel: paper_channel(p),
    };
    let sr = allreduce_summary(&params, StepProtocol::SrRto { mult: 3.0 }, TRIALS, 5);
    let ec = allreduce_summary(&params, StepProtocol::EcMds { k: 32, m: 8 }, TRIALS, 6);
    sr.p999 / ec.p999
}

fn main() {
    println!("# Figure 13 — ring Allreduce p99.9 speedup (MDS EC over SR RTO)");

    table_header(
        "Left: 128 MiB buffer, speedup vs datacenter count",
        &["datacenters", "P=1e-5", "P=1e-4", "P=1e-3"],
    );
    for n in [2usize, 4, 8] {
        table_row(&[
            n.to_string(),
            fmt(speedup(n, 128 << 20, 1e-5)),
            fmt(speedup(n, 128 << 20, 1e-4)),
            fmt(speedup(n, 128 << 20, 1e-3)),
        ]);
    }

    table_header(
        "Right: 4 datacenters, speedup vs buffer size",
        &["buffer", "P=1e-5", "P=1e-4", "P=1e-3"],
    );
    for shift in [25u32, 27, 29, 31] {
        let buffer = 1u64 << shift;
        table_row(&[
            bytes_label(buffer),
            fmt(speedup(4, buffer, 1e-5)),
            fmt(speedup(4, buffer, 1e-4)),
            fmt(speedup(4, buffer, 1e-3)),
        ]);
    }
    println!(
        "\nExpected shape: EC's per-step advantage compounds over the 2N-2\n\
         interdependent stages; speedups grow with drop rate from ~3x to >6x\n\
         (per-stage message size shrinks as N grows, keeping messages in the\n\
         size band where SR suffers)."
    );
}
