//! Figure 9 — Erasure Coding speedup over Selective Repeat at 400 Gbit/s
//! and 25 ms RTT, across message size × drop rate. Cells > 1 are the
//! paper's red region ("use EC"); cells < 1 favour SR.

use sdr_bench::{bytes_label, logspace, paper_channel, table_header, table_row};
use sdr_model::{ec_summary, sr_mean_analytic, EcConfig, SrConfig};

fn main() {
    println!("# Figure 9 — mean-slowdown speedup of MDS EC(32,8) over SR RTO(3 RTT)");
    let drops: Vec<f64> = logspace(1e-6, 1e-2, 7);
    let mut cols = vec!["message \\ P_drop".to_string()];
    cols.extend(drops.iter().map(|p| format!("{p:.0e}")));
    table_header(
        "speedup = mean(SR) / mean(EC)",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    // Paper rows: 128 KiB … 8 GiB (largest where EC still matters).
    for shift in [17u32, 20, 23, 26, 27, 30, 33] {
        let bytes = 1u64 << shift;
        let mut cells = vec![bytes_label(bytes)];
        for &p in &drops {
            let ch = paper_channel(p);
            let sr = sr_mean_analytic(&ch, bytes, &SrConfig::rto_multiple(&ch, 3.0));
            let ec = ec_summary(
                &ch,
                bytes,
                &EcConfig::mds(32, 8),
                &SrConfig::rto_multiple(&ch, 3.0),
                1200,
                9,
            )
            .mean;
            cells.push(format!("{:.2}", sr / ec));
        }
        table_row(&cells);
    }
    println!(
        "\nExpected shape: a red region (speedup up to ~6.5x) for 128 KiB-1 GiB\n\
         messages at 1e-6..1e-2 drop rates; ~1 or below for small messages and\n\
         for multi-GiB messages at low drop rates where SR hides\n\
         retransmissions in the injection pipeline."
    );
}
