//! Chaos soak bench — transfer survivability vs fault density.
//!
//! Companion to the `sdr-reliability` chaos soak *test* (which asserts
//! the delivery-or-clean-abort dichotomy on randomized fault scripts):
//! this binary quantifies it. Per fault-density bucket (0–3 scripted
//! fault events on the duplex link) it runs a matrix of seeded adaptive
//! transfers under a fixed operational deadline and reports the survival
//! rate (delivered byte-identical within the deadline) and the p50/p99
//! completion time of the survivors.
//!
//! Every case — survivor or not — must still satisfy the dichotomy:
//! terminal reports on both ends, a fully drained engine, every receive
//! slot released exactly once. A violation aborts the binary.
//!
//! Emits machine-readable `BENCH_chaos.json`. `SDR_BENCH_SMOKE=1` runs a
//! reduced matrix for CI; `CHAOS_BENCH_CASES=<n>` pins the per-bucket
//! case count. Each case derives from a deterministic key printed on
//! failure, so any row reproduces exactly.

use std::cell::RefCell;
use std::rc::Rc;

use sdr_bench::{fmt, table_header, table_row};
use sdr_core::testkit::{pattern, sdr_pair};
use sdr_core::SdrConfig;
use sdr_reliability::{
    AbortReason, AdaptConfig, AdaptRecvReport, AdaptReport, AdaptiveController, ControlEndpoint,
    SchemeSpec, TelemetryConfig, TransferOutcome,
};
use sdr_sim::{FaultEvent, FaultPlan, LinkConfig, LossModel, SimTime};

const BW: f64 = 8e9;
const KM: f64 = 1000.0;
const MSG: u64 = 4 << 20;
const SEG: u64 = 1 << 20;
/// Operational deadline per transfer. Calibrated against the fault-free
/// worst case (~40 ms: a GBN tail loss eats one full RTO backoff ramp on
/// top of the ~12 ms nominal run), so a clean channel always survives
/// while dense fault scripts can genuinely blow the budget. Recalibrate
/// with `CHAOS_NO_DEADLINE=1` (prints per-case completion times).
const DEADLINE_S: f64 = 0.050;
const EVENT_LIMIT: u64 = 120_000_000;

fn qp_cfg() -> SdrConfig {
    SdrConfig {
        max_msg_bytes: 2 << 20,
        msg_slots: 32,
        mtu_bytes: 4096,
        chunk_bytes: 64 * 1024,
        channels: 2,
        generations: 2,
        ..SdrConfig::default()
    }
}

/// splitmix64 — the per-case deterministic stream (the bench's analogue
/// of the test suite's proptest `TestRng::for_case`).
struct CaseRng(u64);

impl CaseRng {
    fn for_case(key: u64) -> Self {
        CaseRng(key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC5A5_C5A5_C5A5_C5A5)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Draws `density` fault events in the same families and ranges the soak
/// test sweeps: i.i.d. steps, Gilbert–Elliott shifts, blackouts, flaps,
/// diurnal drift. Plans are finite and rest at a recoverable rate.
fn gen_plan(rng: &mut CaseRng, density: u32) -> FaultPlan {
    let mut plan = FaultPlan::new_duplex();
    for _ in 0..density {
        let at = SimTime::from_secs_f64(0.0005 + rng.next_f64() * 0.012);
        let ev = match rng.below(5) {
            0 => FaultEvent::SetLoss {
                at,
                model: LossModel::Iid {
                    p: 10f64.powf(-(2.0 + rng.next_f64() * 2.0)),
                },
            },
            1 => FaultEvent::SetLoss {
                at,
                model: LossModel::GilbertElliott {
                    p_good_to_bad: 0.001 + rng.next_f64() * 0.004,
                    p_bad_to_good: 0.02 + rng.next_f64() * 0.1,
                    loss_good: 1e-5,
                    loss_bad: 0.1 + rng.next_f64() * 0.15,
                },
            },
            2 => FaultEvent::Blackout {
                at,
                duration: SimTime::from_secs_f64(0.0003 + rng.next_f64() * 0.0022),
            },
            3 => FaultEvent::Flap {
                at,
                cycles: 1 + rng.below(3) as u32,
                down: SimTime::from_secs_f64(0.0002 + rng.next_f64() * 0.0006),
                up: SimTime::from_secs_f64(0.0003 + rng.next_f64() * 0.0008),
            },
            _ => FaultEvent::Drift {
                at,
                period: SimTime::from_secs_f64(0.004),
                steps: 4,
                floor_p: 1e-4,
                peak_p: 0.008 + rng.next_f64() * 0.01,
                cycles: 1,
            },
        };
        plan = plan.with(ev);
    }
    plan
}

enum CaseOutcome {
    /// Delivered byte-identical within the deadline, at this instant.
    Survived(f64),
    /// Aborted cleanly (deadline) on at least one end.
    Aborted,
}

/// Runs one seeded case at the given fault density; panics on any
/// dichotomy violation (the bench is also a gate).
fn run_case(key: u64, density: u32) -> CaseOutcome {
    let mut rng = CaseRng::for_case(key);
    let initial = [
        SchemeSpec::SrNack,
        SchemeSpec::SrRto,
        SchemeSpec::Gbn,
        SchemeSpec::EcMds { k: 32, m: 8 },
    ][rng.below(4) as usize];
    // Baseline loss stays at or below 1e-3: the scripted faults are the
    // stressor here, not a pathological resting channel (the soak test
    // covers those — it has no fixed deadline to calibrate).
    let p_base = 10f64.powf(-(3.0 + rng.next_f64() * 2.0));
    let plan = gen_plan(&mut rng, density);
    let link_seed = rng.next_u64();

    let link = LinkConfig::wan(KM, BW, p_base).with_seed(link_seed);
    let mut p = sdr_pair(link, qp_cfg(), 64 << 20);
    let rtt = p.fabric.rtt(p.node_a, p.node_b).unwrap();
    let data = pattern(MSG as usize, link_seed ^ 0xC0DE);
    let src = p.ctx_a.alloc_buffer(MSG);
    let dst = p.ctx_b.alloc_buffer(MSG);
    p.ctx_a.write_buffer(src, &data);
    let ctrl_a = Rc::new(ControlEndpoint::new(&p.fabric, p.node_a));
    let ctrl_b = Rc::new(ControlEndpoint::new(&p.fabric, p.node_b));
    if !plan.events.is_empty() {
        p.fabric
            .apply_fault_plan(&mut p.eng, p.node_a, p.node_b, &plan)
            .unwrap_or_else(|e| panic!("case {key}: fault plan rejected: {e}"));
    }

    let mut acfg = AdaptConfig::new(BW, rtt, SEG);
    acfg.telemetry = TelemetryConfig {
        loss_alpha: 1.0 / 1024.0,
        min_packets: 512,
        ..TelemetryConfig::default()
    };
    // `CHAOS_NO_DEADLINE=1` is the calibration mode: no deadline, print
    // every completion instant, so the constant above can be re-derived.
    acfg.deadline = if std::env::var_os("CHAOS_NO_DEADLINE").is_some() {
        None
    } else {
        Some(SimTime::from_secs_f64(DEADLINE_S))
    };

    let tx_cell: Rc<RefCell<Option<AdaptReport>>> = Rc::new(RefCell::new(None));
    let tc = tx_cell.clone();
    let _tx = AdaptiveController::start_sender(
        &mut p.eng,
        &p.qp_a,
        &p.ctx_a,
        ctrl_a.clone(),
        ctrl_b.addr(),
        src,
        MSG,
        initial,
        acfg.clone(),
        move |_e, r| *tc.borrow_mut() = Some(r),
    );
    let rx_cell: Rc<RefCell<Option<(SimTime, AdaptRecvReport)>>> = Rc::new(RefCell::new(None));
    let rc = rx_cell.clone();
    let _rx = AdaptiveController::start_receiver(
        &mut p.eng,
        &p.qp_b,
        &p.ctx_b,
        ctrl_b.clone(),
        ctrl_a.addr(),
        dst,
        MSG,
        initial,
        acfg,
        move |_eng, t, rep| *rc.borrow_mut() = Some((t, rep)),
    );
    p.eng.set_event_limit(EVENT_LIMIT);
    p.eng.run();

    // The dichotomy, enforced exactly as in the soak test.
    assert!(
        p.eng.executed_events() < EVENT_LIMIT,
        "case {key} density {density}: event limit hit before quiescence"
    );
    let tx = tx_cell
        .borrow_mut()
        .take()
        .unwrap_or_else(|| panic!("case {key}: sender never reported"));
    let (rx_done, rx) = rx_cell
        .borrow_mut()
        .take()
        .unwrap_or_else(|| panic!("case {key}: receiver never reported"));
    assert_eq!(
        p.eng.pending_events(),
        0,
        "case {key}: teardown leaked events ({:?}/{:?})",
        tx.outcome,
        rx.outcome
    );
    let spare = p.ctx_b.alloc_buffer(64 * 1024);
    for n in 0..qp_cfg().msg_slots {
        p.qp_b
            .recv_post(&mut p.eng, spare, 64 * 1024)
            .unwrap_or_else(|e| panic!("case {key}: slot {n} not released exactly once: {e:?}"));
    }

    match (tx.outcome, rx.outcome) {
        (TransferOutcome::Delivered, TransferOutcome::Delivered) => {
            assert_eq!(
                p.ctx_b.read_buffer(dst, MSG as usize),
                data,
                "case {key}: delivered but bytes differ"
            );
            if std::env::var_os("CHAOS_NO_DEADLINE").is_none() {
                assert!(
                    tx.duration <= SimTime::from_secs_f64(DEADLINE_S),
                    "case {key}: delivered past the deadline"
                );
            } else {
                eprintln!(
                    "  done: key={key} initial={initial} p_base={p_base:.1e} t={:.2}ms",
                    rx_done.as_secs_f64() * 1e3
                );
            }
            CaseOutcome::Survived(rx_done.as_secs_f64())
        }
        (TransferOutcome::Delivered, TransferOutcome::Aborted(_)) => {
            panic!("case {key}: sender delivered while receiver aborted")
        }
        (TransferOutcome::Aborted(r), _) => {
            assert_ne!(
                r,
                AbortReason::Requested,
                "case {key}: nobody requested an abort"
            );
            eprintln!(
                "  abort: key={key} density={density} initial={initial} p_base={p_base:.1e} reason={r}"
            );
            CaseOutcome::Aborted
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let smoke = std::env::var_os("SDR_BENCH_SMOKE").is_some();
    let cases: u64 = std::env::var("CHAOS_BENCH_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 5 } else { 20 });
    println!("# Chaos soak — survival rate and completion tail vs fault density");
    println!(
        "deployment: {} km ({:.2} ms RTT), {} Gbit/s, 4 MiB adaptive transfers, \
         deadline {:.0} ms, {cases} cases per density",
        KM,
        2.0 * KM * 5e-6 * 1e3 + 4096.0 * 8.0 / BW * 1e3,
        BW / 1e9,
        DEADLINE_S * 1e3
    );

    table_header(
        "survivability vs scripted fault events per transfer",
        &[
            "faults", "cases", "survived", "rate", "p50 ms", "p99 ms", "worst ms",
        ],
    );
    let mut json = String::from("{\n  \"bench\": \"chaos_soak\",\n");
    json.push_str(&format!(
        "  \"deadline_ms\": {:.1}, \"cases_per_density\": {cases},\n  \"rows\": [\n",
        DEADLINE_S * 1e3
    ));
    for density in 0u32..=3 {
        let mut done_ms: Vec<f64> = Vec::new();
        let mut aborted = 0u64;
        for n in 0..cases {
            // Disjoint key ranges per bucket keep every case independent.
            let key = (u64::from(density) << 32) | n;
            match run_case(key, density) {
                CaseOutcome::Survived(t) => done_ms.push(t * 1e3),
                CaseOutcome::Aborted => aborted += 1,
            }
        }
        done_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let survived = done_ms.len() as u64;
        let rate = survived as f64 / cases as f64;
        let (p50, p99, worst) = if done_ms.is_empty() {
            (f64::NAN, f64::NAN, f64::NAN)
        } else {
            (
                percentile(&done_ms, 0.50),
                percentile(&done_ms, 0.99),
                *done_ms.last().unwrap(),
            )
        };
        table_row(&[
            density.to_string(),
            cases.to_string(),
            survived.to_string(),
            format!("{:.0}%", rate * 100.0),
            fmt(p50),
            fmt(p99),
            fmt(worst),
        ]);
        json.push_str(&format!(
            "    {{\"fault_density\": {density}, \"cases\": {cases}, \"survived\": {survived}, \
             \"survival_rate\": {rate:.3}, \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \
             \"aborted\": {aborted}}}{}\n",
            if density == 3 { "" } else { "," }
        ));
        // A fault-free channel at these loss rates never blows a 2.3x
        // deadline; faulted buckets may abort but must mostly survive.
        if density == 0 {
            assert_eq!(survived, cases, "fault-free bucket must fully survive");
        } else {
            assert!(
                rate >= 0.5,
                "density {density}: survival collapsed to {rate:.2}"
            );
        }
    }
    json.push_str("  ]\n}\n");
    println!(
        "\nExpected shape: survival starts at 100% on the fault-free bucket\n\
         and degrades gently with density; the completion tail (p99)\n\
         stretches as blackouts and RTO backoff ramps push survivors\n\
         toward the deadline. Non-survivors abort cleanly — the dichotomy\n\
         is asserted per case, so this bench doubles as a gate."
    );
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("\nwrote BENCH_chaos.json");
}
