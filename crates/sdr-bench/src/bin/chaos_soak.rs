//! Chaos soak bench — transfer survivability vs fault density.
//!
//! Companion to the `sdr-reliability` chaos soak *test* (which asserts
//! the delivery-or-clean-abort dichotomy on randomized fault scripts):
//! this binary quantifies it. Per fault-density bucket (0–3 scripted
//! fault events on the duplex link) it runs a matrix of seeded adaptive
//! transfers under a fixed operational deadline and reports the survival
//! rate (delivered byte-identical within the deadline) and the p50/p99
//! completion time of the survivors. Half the wires also duplicate and
//! reorder packets (the soak test's unfaithful-wire ranges); each row
//! reports what the stack filtered — stale/duplicate control datagrams
//! dropped by the incarnation-stamp filter (`ctrl.*`) and wire-level
//! duplicates/displacements (`link.*`) — straight from the same
//! `sdr-trace` registry the engine exports, so the published survival
//! numbers and the filter counters can never drift apart.
//!
//! A second sweep replaces the scripted faults with a bit-flipping wire
//! (corruption density 0 → 1e-4 per bit) and reports what the integrity
//! machinery absorbed: packets the link corrupted (`link.corrupted`),
//! payloads the NIC refused to DMA (`crc_skipped`), control datagrams the
//! CRC32C trailer dropped (`ctrl.corrupt`).
//!
//! Every case — survivor or not — must still satisfy the dichotomy:
//! terminal reports on both ends, a fully drained engine, every receive
//! slot released exactly once, zero malformed control datagrams, and
//! delivery (even a partial one cut by the deadline) always lands
//! byte-identical — silent corruption aborts the binary.
//!
//! Emits machine-readable `BENCH_chaos.json`. `SDR_BENCH_SMOKE=1` runs a
//! reduced matrix for CI; `CHAOS_BENCH_CASES=<n>` pins the per-bucket
//! case count. Each case derives from a deterministic key printed on
//! failure, so any row reproduces exactly.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use sdr_bench::{fmt, table_header, table_row};
use sdr_core::testkit::{pattern, sdr_pair};
use sdr_core::SdrConfig;
use sdr_reliability::{
    AbortReason, AdaptConfig, AdaptRecvReport, AdaptReport, AdaptiveController, ControlEndpoint,
    DeliveryManifest, SchemeSpec, TelemetryConfig, TransferOutcome,
};
use sdr_sim::{FaultEvent, FaultPlan, LinkConfig, LossModel, RestartSide, SimTime};

const BW: f64 = 8e9;
const KM: f64 = 1000.0;
const MSG: u64 = 4 << 20;
const SEG: u64 = 1 << 20;
/// Operational deadline per transfer. Calibrated against the fault-free
/// worst case (~40 ms: a GBN tail loss eats one full RTO backoff ramp on
/// top of the ~12 ms nominal run), so a clean channel always survives
/// while dense fault scripts can genuinely blow the budget. Recalibrate
/// with `CHAOS_NO_DEADLINE=1` (prints per-case completion times).
const DEADLINE_S: f64 = 0.050;
const EVENT_LIMIT: u64 = 120_000_000;

fn qp_cfg() -> SdrConfig {
    SdrConfig {
        max_msg_bytes: 2 << 20,
        msg_slots: 32,
        mtu_bytes: 4096,
        chunk_bytes: 64 * 1024,
        channels: 2,
        generations: 2,
        ..SdrConfig::default()
    }
}

/// splitmix64 — the per-case deterministic stream (the bench's analogue
/// of the test suite's proptest `TestRng::for_case`).
struct CaseRng(u64);

impl CaseRng {
    fn for_case(key: u64) -> Self {
        CaseRng(key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC5A5_C5A5_C5A5_C5A5)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Draws `density` fault events in the same families and ranges the soak
/// test sweeps: i.i.d. steps, Gilbert–Elliott shifts, blackouts, flaps,
/// diurnal drift. Plans are finite and rest at a recoverable rate.
fn gen_plan(rng: &mut CaseRng, density: u32) -> FaultPlan {
    let mut plan = FaultPlan::new_duplex();
    for _ in 0..density {
        let at = SimTime::from_secs_f64(0.0005 + rng.next_f64() * 0.012);
        let ev = match rng.below(5) {
            0 => FaultEvent::SetLoss {
                at,
                model: LossModel::Iid {
                    p: 10f64.powf(-(2.0 + rng.next_f64() * 2.0)),
                },
            },
            1 => FaultEvent::SetLoss {
                at,
                model: LossModel::GilbertElliott {
                    p_good_to_bad: 0.001 + rng.next_f64() * 0.004,
                    p_bad_to_good: 0.02 + rng.next_f64() * 0.1,
                    loss_good: 1e-5,
                    loss_bad: 0.1 + rng.next_f64() * 0.15,
                },
            },
            2 => FaultEvent::Blackout {
                at,
                duration: SimTime::from_secs_f64(0.0003 + rng.next_f64() * 0.0022),
            },
            3 => FaultEvent::Flap {
                at,
                cycles: 1 + rng.below(3) as u32,
                down: SimTime::from_secs_f64(0.0002 + rng.next_f64() * 0.0006),
                up: SimTime::from_secs_f64(0.0003 + rng.next_f64() * 0.0008),
            },
            _ => FaultEvent::Drift {
                at,
                period: SimTime::from_secs_f64(0.004),
                steps: 4,
                floor_p: 1e-4,
                peak_p: 0.008 + rng.next_f64() * 0.01,
                cycles: 1,
            },
        };
        plan = plan.with(ev);
    }
    plan
}

enum CaseOutcome {
    /// Delivered byte-identical within the deadline, at this instant.
    Survived(f64),
    /// Aborted cleanly (deadline) on at least one end.
    Aborted,
}

/// What the stack's filters absorbed during one case, read from the
/// fabric's `sdr-trace` registry (both nodes share the counters), plus a
/// full snapshot for the JSON report.
#[derive(Default)]
struct CaseWire {
    /// Control datagrams dropped as stale incarnations.
    ctrl_stale: u64,
    /// Control datagrams dropped as duplicates/replays.
    ctrl_dupes: u64,
    /// Control datagrams dropped by the CRC32C trailer.
    ctrl_corrupt: u64,
    /// Wire-level packet duplications injected by the link.
    link_dup: u64,
    /// Wire-level packet displacements injected by the link.
    link_reorder: u64,
    /// Wire-level packets the link flipped bits in.
    link_corrupt: u64,
    /// Write payloads whose checksum failed at the NIC: the DMA was
    /// suppressed, the packet became a loss (summed over both nodes).
    nic_crc_skipped: u64,
    /// `{"fabric": .., "engine": ..}` registry snapshot of this case.
    snapshot: String,
}

impl CaseWire {
    fn accumulate(&mut self, other: &CaseWire) {
        self.ctrl_stale += other.ctrl_stale;
        self.ctrl_dupes += other.ctrl_dupes;
        self.ctrl_corrupt += other.ctrl_corrupt;
        self.link_dup += other.link_dup;
        self.link_reorder += other.link_reorder;
        self.link_corrupt += other.link_corrupt;
        self.nic_crc_skipped += other.nic_crc_skipped;
    }
}

/// Runs one seeded case at the given fault density and per-bit corruption
/// rate; panics on any dichotomy violation (the bench is also a gate).
fn run_case(key: u64, density: u32, corrupt_p: f64) -> (CaseOutcome, CaseWire) {
    let mut rng = CaseRng::for_case(key);
    let initial = [
        SchemeSpec::SrNack,
        SchemeSpec::SrRto,
        SchemeSpec::Gbn,
        SchemeSpec::EcMds { k: 32, m: 8 },
    ][rng.below(4) as usize];
    // Baseline loss stays at or below 1e-3: the scripted faults are the
    // stressor here, not a pathological resting channel (the soak test
    // covers those — it has no fixed deadline to calibrate).
    let p_base = 10f64.powf(-(3.0 + rng.next_f64() * 2.0));
    let plan = gen_plan(&mut rng, density);
    let link_seed = rng.next_u64();
    // Half the wires are unfaithful (the soak test's ranges): the stamp
    // filter must absorb duplicated and displaced control datagrams
    // without double-applying a handshake, and the row reports how many.
    let dup_p = if rng.below(2) == 0 {
        0.0
    } else {
        0.002 + rng.next_f64() * 0.03
    };
    let reorder = if rng.below(2) == 0 {
        None
    } else {
        Some((0.01 + rng.next_f64() * 0.06, 2 + rng.below(14) as u32))
    };

    let mut link = LinkConfig::wan(KM, BW, p_base).with_seed(link_seed);
    if dup_p > 0.0 {
        link = link.with_duplication(dup_p);
    }
    if let Some((rp, span)) = reorder {
        link = link.with_reordering(rp, span);
    }
    if corrupt_p > 0.0 {
        link = link.with_corruption(corrupt_p);
    }
    let mut p = sdr_pair(link, qp_cfg(), 64 << 20);
    let rtt = p.fabric.rtt(p.node_a, p.node_b).unwrap();
    let data = pattern(MSG as usize, link_seed ^ 0xC0DE);
    let src = p.ctx_a.alloc_buffer(MSG);
    let dst = p.ctx_b.alloc_buffer(MSG);
    p.ctx_a.write_buffer(src, &data);
    let ctrl_a = Rc::new(ControlEndpoint::new(&p.fabric, p.node_a));
    let ctrl_b = Rc::new(ControlEndpoint::new(&p.fabric, p.node_b));
    if !plan.events.is_empty() {
        p.fabric
            .apply_fault_plan(&mut p.eng, p.node_a, p.node_b, &plan)
            .unwrap_or_else(|e| panic!("case {key}: fault plan rejected: {e}"));
    }

    let mut acfg = AdaptConfig::new(BW, rtt, SEG);
    acfg.telemetry = TelemetryConfig {
        loss_alpha: 1.0 / 1024.0,
        min_packets: 512,
        ..TelemetryConfig::default()
    };
    // `CHAOS_NO_DEADLINE=1` is the calibration mode: no deadline, print
    // every completion instant, so the constant above can be re-derived.
    acfg.deadline = if std::env::var_os("CHAOS_NO_DEADLINE").is_some() {
        None
    } else {
        Some(SimTime::from_secs_f64(DEADLINE_S))
    };

    let tx_cell: Rc<RefCell<Option<AdaptReport>>> = Rc::new(RefCell::new(None));
    let tc = tx_cell.clone();
    let _tx = AdaptiveController::start_sender(
        &mut p.eng,
        &p.qp_a,
        &p.ctx_a,
        ctrl_a.clone(),
        ctrl_b.addr(),
        src,
        MSG,
        initial,
        acfg.clone(),
        move |_e, r| *tc.borrow_mut() = Some(r),
    );
    let rx_cell: Rc<RefCell<Option<(SimTime, AdaptRecvReport)>>> = Rc::new(RefCell::new(None));
    let rc = rx_cell.clone();
    let _rx = AdaptiveController::start_receiver(
        &mut p.eng,
        &p.qp_b,
        &p.ctx_b,
        ctrl_b.clone(),
        ctrl_a.addr(),
        dst,
        MSG,
        initial,
        acfg,
        move |_eng, t, rep| *rc.borrow_mut() = Some((t, rep)),
    );
    p.eng.set_event_limit(EVENT_LIMIT);
    p.eng.run();

    // The dichotomy, enforced exactly as in the soak test.
    assert!(
        p.eng.executed_events() < EVENT_LIMIT,
        "case {key} density {density}: event limit hit before quiescence"
    );
    let tx = tx_cell
        .borrow_mut()
        .take()
        .unwrap_or_else(|| panic!("case {key}: sender never reported"));
    let (rx_done, rx) = rx_cell
        .borrow_mut()
        .take()
        .unwrap_or_else(|| panic!("case {key}: receiver never reported"));
    assert_eq!(
        p.eng.pending_events(),
        0,
        "case {key}: teardown leaked events ({:?}/{:?})",
        tx.outcome,
        rx.outcome
    );
    let spare = p.ctx_b.alloc_buffer(64 * 1024);
    for n in 0..qp_cfg().msg_slots {
        p.qp_b
            .recv_post(&mut p.eng, spare, 64 * 1024)
            .unwrap_or_else(|e| panic!("case {key}: slot {n} not released exactly once: {e:?}"));
    }

    // What the filters absorbed, straight from the fabric registry (the
    // same counters the control plane and links increment on their hot
    // paths — not a parallel bookkeeping).
    let reg = p.fabric.metrics();
    assert_eq!(
        reg.counter_value("ctrl.malformed"),
        0,
        "case {key}: the stamped control plane must stay parseable"
    );
    let wire = CaseWire {
        ctrl_stale: reg.counter_value("ctrl.stale"),
        ctrl_dupes: reg.counter_value("ctrl.duplicates"),
        ctrl_corrupt: reg.counter_value("ctrl.corrupt"),
        link_dup: reg.counter_value("link.duplicated"),
        link_reorder: reg.counter_value("link.reordered"),
        link_corrupt: reg.counter_value("link.corrupted"),
        nic_crc_skipped: p.fabric.node(p.node_a, |n| n.stats().crc_skipped)
            + p.fabric.node(p.node_b, |n| n.stats().crc_skipped),
        snapshot: format!(
            "{{\"fabric\": {}, \"engine\": {}}}",
            reg.snapshot().to_json(),
            p.eng.metrics().snapshot().to_json()
        ),
    };

    let outcome = match (tx.outcome, rx.outcome) {
        (TransferOutcome::Delivered, TransferOutcome::Delivered) => {
            assert_eq!(
                p.ctx_b.read_buffer(dst, MSG as usize),
                data,
                "case {key}: delivered but bytes differ"
            );
            if std::env::var_os("CHAOS_NO_DEADLINE").is_none() {
                assert!(
                    tx.duration <= SimTime::from_secs_f64(DEADLINE_S),
                    "case {key}: delivered past the deadline"
                );
            } else {
                eprintln!(
                    "  done: key={key} initial={initial} p_base={p_base:.1e} t={:.2}ms",
                    rx_done.as_secs_f64() * 1e3
                );
            }
            CaseOutcome::Survived(rx_done.as_secs_f64())
        }
        (TransferOutcome::Delivered, TransferOutcome::Aborted { reason: r, .. }) => {
            // The sender's Delivered rides the final scheme ACK; the
            // receiver's waits on the whole-message digest round trip. A
            // deadline expiring inside that window is a clean abort — but
            // the sender's Delivered implies every bitmap completed over
            // the checksummed wire, so the landed bytes must already be
            // identical (the zero-silent-corruption gate).
            assert_eq!(
                r,
                AbortReason::Deadline,
                "case {key}: sender delivered while receiver aborted ({r})"
            );
            assert_eq!(
                p.ctx_b.read_buffer(dst, MSG as usize),
                data,
                "case {key}: receiver aborted mid-verification with corrupt bytes"
            );
            CaseOutcome::Aborted
        }
        (TransferOutcome::Aborted { reason: r, .. }, _) => {
            assert_ne!(
                r,
                AbortReason::Requested,
                "case {key}: nobody requested an abort"
            );
            eprintln!(
                "  abort: key={key} density={density} initial={initial} p_base={p_base:.1e} reason={r}"
            );
            CaseOutcome::Aborted
        }
    };
    (outcome, wire)
}

/// Segment size of the restart sweep (finer than the fault sweep's so the
/// delivered fraction at crash has sub-⅛ resolution on a 4 MiB message).
const RESTART_SEG: u64 = 512 << 10;

/// Per-case result of the restart/resume sweep.
struct RestartStats {
    /// The crash landed mid-transfer (first life aborted with `Restart`).
    crashed: bool,
    /// Second life delivered byte-identical.
    resumed_ok: bool,
    /// Fraction of the message delivered when the receiver died.
    delivered_frac: f64,
    /// Already-delivered bytes the resume plan re-sent (0 when the plan
    /// covers exactly the undelivered tail).
    retx_delivered: u64,
    /// Second-life chunk-level repair retransmits (channel loss, not
    /// resume overhead).
    repair_retx: u64,
}

/// One crash/resume case: a 4 MiB adaptive transfer whose receiver dies
/// mid-delivery, re-attaches after a drawn dead time, and resumes from
/// the delivery manifest. Panics on any survivability violation — the
/// resume must finish byte-identical with a drained engine and every
/// receive slot released exactly once across both lives.
fn run_restart_case(key: u64) -> RestartStats {
    let mut rng = CaseRng::for_case(key);
    let p_base = 10f64.powf(-(3.0 + rng.next_f64()));
    // CTS credits spend one 5 ms one-way reaching the sender and data
    // another 5 ms returning, so 4 MiB arrivals span ~10–14.2 ms; a crash
    // drawn inside that window lands mid-delivery.
    let crash_at = SimTime::from_secs_f64(0.0108 + rng.next_f64() * 0.0024);
    let dead = SimTime::from_secs_f64(0.001 + rng.next_f64() * 0.002);
    let link_seed = rng.next_u64();

    let link = LinkConfig::wan(KM, BW, p_base).with_seed(link_seed);
    let mut p = sdr_pair(link, qp_cfg(), 64 << 20);
    let rtt = p.fabric.rtt(p.node_a, p.node_b).unwrap();
    let data = pattern(MSG as usize, link_seed ^ 0xC0DE);
    let src = p.ctx_a.alloc_buffer(MSG);
    let dst = p.ctx_b.alloc_buffer(MSG);
    p.ctx_a.write_buffer(src, &data);
    let ctrl_a = Rc::new(ControlEndpoint::new(&p.fabric, p.node_a));
    let ctrl_b = Rc::new(ControlEndpoint::new(&p.fabric, p.node_b));
    let plan = FaultPlan::new_duplex().with(FaultEvent::PeerRestart {
        at: crash_at,
        side: RestartSide::B,
        dead_time: dead,
    });
    p.fabric
        .apply_fault_plan(&mut p.eng, p.node_a, p.node_b, &plan)
        .unwrap_or_else(|e| panic!("case {key}: fault plan rejected: {e}"));

    let mut acfg = AdaptConfig::new(BW, rtt, RESTART_SEG);
    acfg.telemetry = TelemetryConfig {
        loss_alpha: 1.0 / 1024.0,
        min_packets: 512,
        ..TelemetryConfig::default()
    };
    // Undeadlined: the plan is finite, so the resume must always land.
    acfg.deadline = None;

    let initial = SchemeSpec::SrNack;
    let tx_cell: Rc<RefCell<Option<AdaptReport>>> = Rc::new(RefCell::new(None));
    let tc = tx_cell.clone();
    let tx = AdaptiveController::start_sender(
        &mut p.eng,
        &p.qp_a,
        &p.ctx_a,
        ctrl_a.clone(),
        ctrl_b.addr(),
        src,
        MSG,
        initial,
        acfg.clone(),
        move |_e, r| *tc.borrow_mut() = Some(r),
    );
    let rx_cell: Rc<RefCell<Option<(SimTime, AdaptRecvReport)>>> = Rc::new(RefCell::new(None));
    let rc = rx_cell.clone();
    let rx = AdaptiveController::start_receiver(
        &mut p.eng,
        &p.qp_b,
        &p.ctx_b,
        ctrl_b.clone(),
        ctrl_a.addr(),
        dst,
        MSG,
        initial,
        acfg.clone(),
        move |_eng, t, rep| *rc.borrow_mut() = Some((t, rep)),
    );

    // The supervisor: on the crash instant, snapshot the journal and the
    // channel estimate, abort both ends, then resume both strictly after
    // the fabric re-attach.
    let fired = Rc::new(Cell::new(false));
    let manifest_cell: Rc<RefCell<Option<DeliveryManifest>>> = Rc::new(RefCell::new(None));
    let tx2_cell: Rc<RefCell<Option<AdaptReport>>> = Rc::new(RefCell::new(None));
    let rx2_cell: Rc<RefCell<Option<(SimTime, AdaptRecvReport)>>> = Rc::new(RefCell::new(None));
    {
        let flag = fired.clone();
        let (tx, rx) = (tx.clone(), rx.clone());
        let (qp_a, ctx_a, ctrl_a) = (p.qp_a.clone(), p.ctx_a.clone(), ctrl_a.clone());
        let (qp_b, ctx_b, ctrl_b) = (p.qp_b.clone(), p.ctx_b.clone(), ctrl_b.clone());
        let (mc, tc, rc) = (manifest_cell.clone(), tx2_cell.clone(), rx2_cell.clone());
        let acfg2 = acfg.clone();
        p.fabric.on_restart(p.node_b, move |eng, _inc| {
            if rx.is_complete() || flag.get() {
                return;
            }
            flag.set(true);
            let manifest = rx.manifest();
            *mc.borrow_mut() = Some(manifest.clone());
            let (prior_loss, prior_rtt) = tx.estimator(|e| (e.loss_estimate(), e.rtt_estimate()));
            rx.abort(eng, AbortReason::Restart);
            tx.abort(eng, AbortReason::Restart);
            let (qp_a, ctx_a, ctrl_a) = (qp_a.clone(), ctx_a.clone(), ctrl_a.clone());
            let (qp_b, ctx_b, ctrl_b) = (qp_b.clone(), ctx_b.clone(), ctrl_b.clone());
            let (acfg2, tc, rc) = (acfg2.clone(), tc.clone(), rc.clone());
            eng.schedule_in(dead + SimTime::from_micros(10), move |eng| {
                ctrl_b.bump_incarnation();
                ctrl_b.reattach();
                let _rx2 = AdaptiveController::resume_receiver(
                    eng,
                    &qp_b,
                    &ctx_b,
                    ctrl_b.clone(),
                    ctrl_a.addr(),
                    dst,
                    manifest,
                    initial,
                    acfg2.clone(),
                    move |_eng, t, rep| *rc.borrow_mut() = Some((t, rep)),
                );
                let _rs = AdaptiveController::resume_sender(
                    eng,
                    &qp_a,
                    &ctx_a,
                    ctrl_a.clone(),
                    ctrl_b.addr(),
                    src,
                    MSG,
                    initial,
                    acfg2,
                    prior_loss,
                    prior_rtt,
                    move |_eng, rep| *tc.borrow_mut() = Some(rep),
                );
            });
        });
    }

    p.eng.set_event_limit(EVENT_LIMIT);
    p.eng.run();
    assert!(
        p.eng.executed_events() < EVENT_LIMIT,
        "restart case {key}: event limit hit before quiescence"
    );
    assert_eq!(
        p.eng.pending_events(),
        0,
        "restart case {key}: teardown leaked events"
    );
    let spare = p.ctx_b.alloc_buffer(64 * 1024);
    for n in 0..qp_cfg().msg_slots {
        p.qp_b
            .recv_post(&mut p.eng, spare, 64 * 1024)
            .unwrap_or_else(|e| panic!("restart case {key}: slot {n} leaked: {e:?}"));
    }

    if !fired.get() {
        // The crash raced a completed transfer; the first life must have
        // delivered normally.
        let tx1 = tx_cell.borrow_mut().take().expect("sender report");
        assert_eq!(tx1.outcome, TransferOutcome::Delivered);
        return RestartStats {
            crashed: false,
            resumed_ok: false,
            delivered_frac: 1.0,
            retx_delivered: 0,
            repair_retx: 0,
        };
    }
    let m = manifest_cell.borrow_mut().take().expect("journal snapshot");
    let tx2 = tx2_cell
        .borrow_mut()
        .take()
        .unwrap_or_else(|| panic!("restart case {key}: resumed sender never reported"));
    let (_, rx2) = rx2_cell
        .borrow_mut()
        .take()
        .unwrap_or_else(|| panic!("restart case {key}: resumed receiver never reported"));
    let resumed_ok = tx2.outcome == TransferOutcome::Delivered
        && rx2.outcome == TransferOutcome::Delivered
        && p.ctx_b.read_buffer(dst, MSG as usize) == data;
    // The second life's bytes beyond the undelivered tail re-send
    // delivered data (MSG divides evenly into RESTART_SEG segments).
    let undelivered_bytes = MSG - m.delivered_bytes();
    let planned_bytes = u64::from(tx2.segments) * RESTART_SEG;
    RestartStats {
        crashed: true,
        resumed_ok,
        delivered_frac: m.delivered_bytes() as f64 / MSG as f64,
        retx_delivered: planned_bytes.saturating_sub(undelivered_bytes),
        repair_retx: tx2.retransmits,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let smoke = std::env::var_os("SDR_BENCH_SMOKE").is_some();
    // 50 cases per density bound a survival-rate estimate to a ±7-point
    // 95% binomial CI — enough to distinguish the densities' rates —
    // where the old 20 (±11 points) could not.
    let cases: u64 = std::env::var("CHAOS_BENCH_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 5 } else { 50 });
    println!("# Chaos soak — survival rate and completion tail vs fault density");
    println!(
        "deployment: {} km ({:.2} ms RTT), {} Gbit/s, 4 MiB adaptive transfers, \
         deadline {:.0} ms, {cases} cases per density",
        KM,
        2.0 * KM * 5e-6 * 1e3 + 4096.0 * 8.0 / BW * 1e3,
        BW / 1e9,
        DEADLINE_S * 1e3
    );

    table_header(
        "survivability vs scripted fault events per transfer",
        &[
            "faults",
            "cases",
            "survived",
            "rate",
            "p50 ms",
            "p99 ms",
            "worst ms",
            "ctrl drops",
            "wire dup",
            "wire reo",
        ],
    );
    let mut json = String::from("{\n  \"bench\": \"chaos_soak\",\n");
    json.push_str(&format!(
        "  \"deadline_ms\": {:.1}, \"cases_per_density\": {cases},\n  \"rows\": [\n",
        DEADLINE_S * 1e3
    ));
    // Registry snapshot of the last (densest) case, embedded below so the
    // JSON carries one full specimen of what the stack exports.
    let mut last_snapshot = String::from("{}");
    for density in 0u32..=3 {
        let mut done_ms: Vec<f64> = Vec::new();
        let mut aborted = 0u64;
        let mut bucket = CaseWire::default();
        for n in 0..cases {
            // Disjoint key ranges per bucket keep every case independent.
            let key = (u64::from(density) << 32) | n;
            let (outcome, wire) = run_case(key, density, 0.0);
            match outcome {
                CaseOutcome::Survived(t) => done_ms.push(t * 1e3),
                CaseOutcome::Aborted => aborted += 1,
            }
            bucket.accumulate(&wire);
            last_snapshot = wire.snapshot;
        }
        done_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let survived = done_ms.len() as u64;
        let rate = survived as f64 / cases as f64;
        let (p50, p99, worst) = if done_ms.is_empty() {
            (f64::NAN, f64::NAN, f64::NAN)
        } else {
            (
                percentile(&done_ms, 0.50),
                percentile(&done_ms, 0.99),
                *done_ms.last().unwrap(),
            )
        };
        table_row(&[
            density.to_string(),
            cases.to_string(),
            survived.to_string(),
            format!("{:.0}%", rate * 100.0),
            fmt(p50),
            fmt(p99),
            fmt(worst),
            format!("{}+{}", bucket.ctrl_stale, bucket.ctrl_dupes),
            bucket.link_dup.to_string(),
            bucket.link_reorder.to_string(),
        ]);
        json.push_str(&format!(
            "    {{\"fault_density\": {density}, \"cases\": {cases}, \"survived\": {survived}, \
             \"survival_rate\": {rate:.3}, \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \
             \"aborted\": {aborted}, \"ctrl_stale\": {}, \"ctrl_duplicates\": {}, \
             \"link_duplicated\": {}, \"link_reordered\": {}}}{}\n",
            bucket.ctrl_stale,
            bucket.ctrl_dupes,
            bucket.link_dup,
            bucket.link_reorder,
            if density == 3 { "" } else { "," }
        ));
        // A fault-free channel at these loss rates never blows a 2.3x
        // deadline; faulted buckets may abort but must mostly survive.
        if density == 0 {
            assert_eq!(survived, cases, "fault-free bucket must fully survive");
        } else {
            assert!(
                rate >= 0.5,
                "density {density}: survival collapsed to {rate:.2}"
            );
        }
    }
    json.push_str("  ],\n");

    // ------------------------------------------------------------------
    // Corruption-density sweep: a bit-flipping wire instead of scripted
    // faults. The integrity machinery (control CRC trailers, the NIC's
    // pre-DMA payload check, EC shard audits, the whole-message delivery
    // digest) must turn every flip into a loss: each case either delivers
    // byte-identical or aborts cleanly — silent corruption is the one
    // outcome that can never appear, and run_case panics if it does. The
    // row reports what the wire flipped (`link.corrupted`), what the NIC
    // refused to DMA (`crc_skipped`), and what the control plane's CRC
    // trailer dropped (`ctrl.corrupt`).
    // ------------------------------------------------------------------
    let corrupt_densities = [0.0_f64, 1e-6, 1e-5, 1e-4];
    table_header(
        "integrity vs per-bit corruption density (no scripted faults)",
        &[
            "flip/bit",
            "cases",
            "survived",
            "rate",
            "p50 ms",
            "p99 ms",
            "wire flips",
            "nic drops",
            "ctrl crc",
        ],
    );
    json.push_str("  \"corruption_rows\": [\n");
    for (i, &cp) in corrupt_densities.iter().enumerate() {
        let mut done_ms: Vec<f64> = Vec::new();
        let mut aborted = 0u64;
        let mut bucket = CaseWire::default();
        for n in 0..cases {
            // Key space disjoint from the fault buckets (0–3) and the
            // restart sweep (4).
            let key = (8u64 << 32) | ((i as u64) << 24) | n;
            let (outcome, wire) = run_case(key, 0, cp);
            match outcome {
                CaseOutcome::Survived(t) => done_ms.push(t * 1e3),
                CaseOutcome::Aborted => aborted += 1,
            }
            bucket.accumulate(&wire);
        }
        done_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let survived = done_ms.len() as u64;
        let rate = survived as f64 / cases as f64;
        let (p50, p99) = if done_ms.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            (percentile(&done_ms, 0.50), percentile(&done_ms, 0.99))
        };
        let jnum = |v: f64| {
            if v.is_nan() {
                String::from("null")
            } else {
                format!("{v:.3}")
            }
        };
        table_row(&[
            format!("{cp:.0e}"),
            cases.to_string(),
            survived.to_string(),
            format!("{:.0}%", rate * 100.0),
            fmt(p50),
            fmt(p99),
            bucket.link_corrupt.to_string(),
            bucket.nic_crc_skipped.to_string(),
            bucket.ctrl_corrupt.to_string(),
        ]);
        json.push_str(&format!(
            "    {{\"corrupt_per_bit\": {cp:e}, \"cases\": {cases}, \"survived\": {survived}, \
             \"survival_rate\": {rate:.3}, \"p50_ms\": {}, \"p99_ms\": {}, \
             \"aborted\": {aborted}, \"link_corrupted\": {}, \"nic_crc_skipped\": {}, \
             \"ctrl_corrupt\": {}}}{}\n",
            jnum(p50),
            jnum(p99),
            bucket.link_corrupt,
            bucket.nic_crc_skipped,
            bucket.ctrl_corrupt,
            if i == corrupt_densities.len() - 1 {
                ""
            } else {
                ","
            }
        ));
        if cp == 0.0 {
            assert_eq!(survived, cases, "clean-wire bucket must fully survive");
        } else {
            // The sweep must actually exercise the guards: the wire
            // flipped packets and the NIC caught data-plane flips before
            // they reached memory. (Survival itself may legitimately fall
            // to zero at the densest setting — corruption behaves as loss
            // and the deadline does the rest.)
            assert!(
                bucket.link_corrupt > 0,
                "corruption {cp:e}: the wire never flipped a packet"
            );
            assert!(
                bucket.nic_crc_skipped > 0,
                "corruption {cp:e}: no corrupt payload reached the pre-DMA check"
            );
        }
    }
    json.push_str("  ],\n");

    // ------------------------------------------------------------------
    // Restart/resume sweep: crash the receiver mid-delivery, resume from
    // the manifest, and quantify how much already-delivered data the
    // second life re-sends (the acceptance bound is ≤ 50 %; the plan-based
    // resume should sit at 0).
    // ------------------------------------------------------------------
    let restart_cases: u64 = if smoke { 4 } else { 12 };
    let mut crashed = 0u64;
    let mut resumed = 0u64;
    let mut frac_sum = 0.0f64;
    let mut retx_frac_sum = 0.0f64;
    let mut repair_sum = 0u64;
    for n in 0..restart_cases {
        let key = (4u64 << 32) | n; // disjoint from the density buckets
        let s = run_restart_case(key);
        if !s.crashed {
            continue;
        }
        crashed += 1;
        if s.resumed_ok {
            resumed += 1;
        }
        frac_sum += s.delivered_frac;
        let delivered_bytes = s.delivered_frac * MSG as f64;
        let retx_frac = if delivered_bytes > 0.0 {
            s.retx_delivered as f64 / delivered_bytes
        } else {
            0.0
        };
        retx_frac_sum += retx_frac;
        repair_sum += s.repair_retx;
        assert!(
            retx_frac <= 0.5,
            "restart case {key}: resume re-sent {:.0}% of delivered bytes",
            retx_frac * 100.0
        );
    }
    assert!(crashed > 0, "no restart case crashed mid-transfer");
    assert_eq!(
        resumed, crashed,
        "every undeadlined resume must deliver byte-identical"
    );
    let mean_frac = frac_sum / crashed as f64;
    let mean_retx_frac = retx_frac_sum / crashed as f64;
    table_header(
        "resume after mid-transfer receiver restart",
        &[
            "cases",
            "crashed",
            "resumed",
            "rate",
            "avg done@crash",
            "avg retx of delivered",
            "repair retx",
        ],
    );
    table_row(&[
        restart_cases.to_string(),
        crashed.to_string(),
        resumed.to_string(),
        format!("{:.0}%", resumed as f64 / crashed as f64 * 100.0),
        format!("{:.0}%", mean_frac * 100.0),
        format!("{:.1}%", mean_retx_frac * 100.0),
        repair_sum.to_string(),
    ]);
    json.push_str(&format!(
        "  \"restart\": {{\"cases\": {restart_cases}, \"crashed\": {crashed}, \
         \"resumed\": {resumed}, \"resume_success_rate\": {:.3}, \
         \"mean_delivered_frac_at_crash\": {mean_frac:.3}, \
         \"mean_retx_of_delivered_frac\": {mean_retx_frac:.4}, \
         \"second_life_repair_retransmits\": {repair_sum}}}\n",
        resumed as f64 / crashed as f64
    ));

    // One full registry specimen (the last density-3 case): every
    // counter, gauge and histogram the stack exported during that run.
    json.push_str(&format!("  ,\"metrics\": {last_snapshot}\n"));
    json.push_str("}\n");
    println!(
        "\nExpected shape: survival starts at 100% on the fault-free bucket\n\
         and degrades gently with density; the completion tail (p99)\n\
         stretches as blackouts and RTO backoff ramps push survivors\n\
         toward the deadline. Non-survivors abort cleanly — the dichotomy\n\
         is asserted per case, so this bench doubles as a gate. On the\n\
         corrupting wire, survival tracks the flip density (corruption is\n\
         reclassified as loss, so dense flips turn into deadline aborts)\n\
         while every delivery stays byte-identical. The resume sweep\n\
         re-sends 0% of already-delivered bytes: the manifest plan covers\n\
         exactly the undelivered tail."
    );
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("\nwrote BENCH_chaos.json");
}
