//! Figure 2 — packet drop rate vs UDP payload size between two datacenters
//! sharing a congested ISP bottleneck.
//!
//! The paper measures 16 UDP flows between Lugano and Lausanne over a
//! 100 Gbit/s ISP link: drop rates vary by up to three orders of magnitude
//! across trials and *grow with payload size*, pointing at switch-buffer
//! congestion. We reproduce the mechanism with a tail-drop fluid queue
//! shared with bursty cross traffic: each "trial" draws a different
//! congestion intensity, larger probe packets are less likely to fit the
//! residual buffer.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sdr_bench::{fmt, table_header, table_row};
use sdr_sim::queue::BottleneckQueue;
use sdr_sim::SimTime;

/// One measurement trial: returns the probe drop rate.
fn trial(payload: u64, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    // 100 Gbit/s trunk with a 512 KiB shared buffer.
    let mut q = BottleneckQueue::new(100e9, 512 * 1024);
    // Per-trial congestion intensity: mean cross-traffic load between 0.7
    // and 1.15 of the drain rate (log-uniform), mimicking the day-to-day
    // variation the paper observed over its 3-day campaign.
    let load: f64 = 0.7 * (1.15f64 / 0.7).powf(rng.random::<f64>());
    let cross_rate_bps = 100e9 * load;
    let cross_pkt = 1500u64;
    let mean_gap_s = cross_pkt as f64 * 8.0 / cross_rate_bps;

    // Probe flows: 16 flows of `payload`-sized packets at ~1 Gbit/s total.
    let probe_gap_s = payload as f64 * 8.0 / 1e9;

    let mut t = 0.0f64;
    let mut next_probe = 0.0f64;
    // ~60k cross packets per trial keeps release-mode runtime small while
    // giving drop-rate resolution down to ~1e-4 per trial.
    for _ in 0..60_000 {
        // Bursty exponential inter-arrivals double the variance vs CBR.
        let u: f64 = rng.random::<f64>().max(1e-12);
        t += -mean_gap_s * u.ln();
        q.offer(SimTime::from_secs_f64(t), cross_pkt, false);
        while next_probe <= t {
            q.offer(SimTime::from_secs_f64(next_probe), payload, true);
            next_probe += probe_gap_s;
        }
    }
    q.stats().probe_drop_rate()
}

fn main() {
    println!("# Figure 2 — drop rate vs payload size (200 trials per size)");
    table_header(
        "Probe drop rate distribution over trials",
        &["payload", "min", "p25", "median", "p75", "max"],
    );
    for (pi, payload) in [1024u64, 2048, 4096, 8192].iter().enumerate() {
        let mut rates: Vec<f64> = (0..200)
            .map(|i| trial(*payload, 1000 * pi as u64 + i))
            .collect();
        rates.sort_by(f64::total_cmp);
        let pick = |q: f64| rates[((rates.len() - 1) as f64 * q) as usize];
        table_row(&[
            format!("{} KiB", payload / 1024),
            fmt(pick(0.0)),
            fmt(pick(0.25)),
            fmt(pick(0.5)),
            fmt(pick(0.75)),
            fmt(pick(1.0)),
        ]);
    }
    println!(
        "\nExpected shape (paper): order(s)-of-magnitude spread across trials;\n\
         drop rates increase with payload size."
    );
}
