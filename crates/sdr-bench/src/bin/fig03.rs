//! Figure 3 — impact of reliability on message completion time at
//! 400 Gbit/s: (a) Write-size sweep, (b) distance sweep, (c) drop-rate
//! sweep. Compares `MDS EC(32,8)` against `SR RTO(3 RTT)`; slowdowns are
//! relative to the lossless channel (injection + RTT).

use sdr_bench::{bytes_label, fmt, logspace, paper_channel, table_header, table_row};
use sdr_model::{
    ec_summary, gbn_summary, sr_mean_analytic, Channel, EcConfig, GbnConfig, SrConfig,
};

const TRIALS: usize = 1500;

fn slowdowns(ch: &Channel, bytes: u64) -> (f64, f64) {
    let ideal = ch.ideal_time(bytes);
    let sr = sr_mean_analytic(ch, bytes, &SrConfig::rto_multiple(ch, 3.0)) / ideal;
    let ec = ec_summary(
        ch,
        bytes,
        &EcConfig::mds(32, 8),
        &SrConfig::rto_multiple(ch, 3.0),
        TRIALS,
        42,
    )
    .mean
        / ideal;
    (sr, ec)
}

fn main() {
    println!("# Figure 3 — reliability impact at 400 Gbit/s");

    // (a) Write size sweep: 128 KiB .. 2 TiB at 25 ms RTT, P = 1e-5.
    table_header(
        "(a) Mean slowdown vs Write size (3750 km = 25 ms RTT, P_drop = 1e-5)",
        &["write size", "SR RTO(3 RTT)", "MDS EC(32,8)"],
    );
    let ch = paper_channel(1e-5);
    for shift in [17u32, 20, 23, 26, 29, 32, 35, 38, 41] {
        let bytes = 1u64 << shift;
        let (sr, ec) = slowdowns(&ch, bytes);
        table_row(&[bytes_label(bytes), fmt(sr), fmt(ec)]);
    }
    println!(
        "Expected shape: SR peaks near the critical size 1/P then decays to 1\n\
         above ~32 GiB (injection-dominated); EC stays near its 1.25x parity\n\
         floor then wins nothing once injection dominates."
    );

    // (b) Distance sweep: 8 GiB message, P = 1e-5.
    table_header(
        "(b) Mean slowdown vs one-way distance (8 GiB, P_drop = 1e-5)",
        &["distance [km]", "RTT [ms]", "SR RTO(3 RTT)", "MDS EC(32,8)"],
    );
    for km in [75.0f64, 1500.0, 3000.0, 4500.0, 6000.0] {
        let ch = Channel::from_km(km, 400e9, 1e-5);
        let (sr, ec) = slowdowns(&ch, 8 << 30);
        table_row(&[
            format!("{km:.0}"),
            format!("{:.1}", ch.rtt_s * 1e3),
            fmt(sr),
            fmt(ec),
        ]);
    }
    println!(
        "Expected shape: at short distances the 8 GiB message is 'large'\n\
         (SR hides retransmissions, EC pays parity); growing RTT flips the\n\
         trend as the BDP overtakes the message."
    );

    // (c) Drop-rate sweep: 128 MiB at 25 ms.
    table_header(
        "(c) Mean slowdown vs drop rate (128 MiB, 3750 km)",
        &[
            "P_drop (packet)",
            "SR RTO(3 RTT)",
            "MDS EC(32,8)",
            "+k RTO reference",
        ],
    );
    let refs = |ch: &Channel, k: f64| {
        let ideal = ch.ideal_time(128 << 20);
        (ideal + k * 3.0 * ch.rtt_s) / ideal
    };
    for p in logspace(1e-6, 1e-2, 9) {
        let ch = paper_channel(p);
        let (sr, ec) = slowdowns(&ch, 128 << 20);
        let k = ((sr - 1.0) * ch.ideal_time(128 << 20) / (3.0 * ch.rtt_s)).round();
        table_row(&[
            fmt(p),
            fmt(sr),
            fmt(ec),
            format!("+{k:.0} RTO = {}", fmt(refs(&ch, k))),
        ]);
    }
    println!(
        "Expected shape: SR climbs in ~whole-RTO steps (1, 5, 10, 14x in the\n\
         paper) as drops need multiple retransmission rounds; EC stays flat\n\
         until parity is overwhelmed above ~1e-2."
    );

    // (d) The ARQ baseline the paper dismisses by citing Bertsekas &
    // Gallager (§4): Go-Back-N with a BDP window vs Selective Repeat.
    // Each GBN drop stalls an RTO *and* re-injects up to a whole window,
    // so the gap widens with the drop rate — the reason SR is the ARQ
    // representative worth modeling.
    table_header(
        "(d) ARQ baseline: mean slowdown of GBN vs SR (128 MiB, 3750 km)",
        &[
            "P_drop (packet)",
            "SR RTO(3 RTT)",
            "GBN RTO(3 RTT)",
            "GBN/SR",
        ],
    );
    for p in logspace(1e-6, 1e-3, 7) {
        let ch = paper_channel(p);
        let ideal = ch.ideal_time(128 << 20);
        let sr = sr_mean_analytic(&ch, 128 << 20, &SrConfig::rto_multiple(&ch, 3.0)) / ideal;
        let gbn =
            gbn_summary(&ch, 128 << 20, &GbnConfig::bdp_window(&ch, 3.0), TRIALS, 43).mean / ideal;
        table_row(&[fmt(p), fmt(sr), fmt(gbn), fmt(gbn / sr)]);
    }
    println!(
        "Expected shape: GBN ≥ SR everywhere (the Bertsekas–Gallager\n\
         dominance), with the ratio growing as drops multiply — every GBN\n\
         drop pays an RTO plus a ~19k-chunk BDP-window rewind that SR's\n\
         selective repair never re-injects."
    );
}
