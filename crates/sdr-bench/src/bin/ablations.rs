//! Ablations of SDR design choices called out in DESIGN.md:
//!
//! 1. **Per-packet Writes vs multi-packet UC messages** (§3.2.1): how often
//!    does a whole message die under loss/reordering with conventional ePSN
//!    semantics, vs per-packet delivery?
//! 2. **Generation count** (§3.3.2): how far can slot reuse outrun in-flight
//!    stragglers before stale completions would corrupt bitmaps?
//! 3. **Go-Back-N vs Selective Repeat** (§4): the model-level gap that
//!    justifies studying SR as the ARQ representative.

use bytes::Bytes;
use sdr_bench::{fmt, table_header, table_row};
use sdr_model::{gbn_summary, sr_summary, Channel, GbnConfig, SrConfig};
use sdr_sim::{Engine, Fabric, LinkConfig, LossModel, QpType, SimTime, WriteWr};

/// Ablation 1: deliver 100 × 40-packet messages over a lossy, reordering
/// link, with conventional multi-packet UC messages vs per-packet Writes.
fn epsn_ablation(p_drop: f64, jitter_us: u64, per_packet: bool, seed: u64) -> (u64, u64) {
    let mut eng = Engine::new();
    let fab = Fabric::new();
    let a = fab.add_node(1 << 22);
    let b = fab.add_node(1 << 22);
    let mut cfg = LinkConfig::intra_dc(8e9)
        .with_loss(LossModel::Iid { p: p_drop })
        .with_seed(seed);
    if jitter_us > 0 {
        cfg = cfg.with_reorder_jitter(SimTime::from_micros(jitter_us));
    }
    fab.link_duplex(a, b, cfg);
    let qa = fab.node_mut(a, |n| {
        let cq = n.create_cq();
        n.create_qp(QpType::Uc, cq, cq)
    });
    let qb = fab.node_mut(b, |n| {
        let cq = n.create_cq();
        n.create_qp(QpType::Uc, cq, cq)
    });
    let addr_a = sdr_sim::QpAddr { node: a, qp: qa };
    let addr_b = sdr_sim::QpAddr { node: b, qp: qb };
    fab.node_mut(a, |n| n.connect_qp(qa, addr_b));
    fab.node_mut(b, |n| n.connect_qp(qb, addr_a));
    let mr = fab.node_mut(b, |n| n.alloc_mr(1 << 20));

    let msg = Bytes::from(vec![7u8; 40 * 4096]);
    for _ in 0..100 {
        let wr = WriteWr {
            remote_mkey: mr.mkey,
            remote_offset: 0,
            data: msg.clone(),
            imm: Some(1),
            crc: None,
            wr_id: 0,
            signaled: false,
        };
        if per_packet {
            fab.post_uc_write_per_packet(&mut eng, addr_a, wr).unwrap();
        } else {
            fab.post_uc_write(&mut eng, addr_a, wr).unwrap();
        }
        eng.run();
    }
    fab.node(b, |n| (n.stats().writes_landed, n.stats().poisoned_msgs))
}

fn main() {
    println!("# Ablations — SDR design choices");

    table_header(
        "1. ePSN semantics: packets landed out of 4000 (100 × 40-pkt msgs)",
        &["scenario", "multi-packet UC", "per-packet SDR"],
    );
    for (label, p, jitter) in [
        ("0.5% loss, no reordering", 0.005, 0u64),
        ("0.5% loss + reordering", 0.005, 500),
        ("lossless + reordering", 0.0, 500),
    ] {
        let (multi, poisoned) = epsn_ablation(p, jitter, false, 42);
        let (per_pkt, _) = epsn_ablation(p, jitter, true, 42);
        table_row(&[
            label.to_string(),
            format!("{multi} ({poisoned} msgs poisoned)"),
            per_pkt.to_string(),
        ]);
    }
    println!(
        "Per-packet Writes lose only the dropped packets; conventional\n\
         multi-packet UC messages are poisoned wholesale by any PSN gap —\n\
         including pure reordering with zero loss (§2.3, §3.2.1)."
    );

    table_header(
        "2. Message-ID wraparound safety (§3.3.2)",
        &[
            "link rate",
            "msg size",
            "slots",
            "wraparound time [ms]",
            "safe RTT budget",
        ],
    );
    // Wraparound time = slots × msg_size / bandwidth; generations multiply it.
    for (bw, label) in [(400e9f64, "400 Gbit/s"), (800e9, "800 Gbit/s")] {
        for msg in [16u64 << 20, 1 << 20] {
            let wrap_ms = 1024.0 * msg as f64 * 8.0 / bw * 1e3;
            table_row(&[
                label.to_string(),
                sdr_bench::bytes_label(msg),
                "1024".into(),
                fmt(wrap_ms),
                format!("{} with 4 generations", fmt(4.0 * wrap_ms)),
            ]);
        }
    }
    println!(
        "The paper's example: 800 Gbit/s and 16 MiB messages wrap the 10-bit\n\
         ID space in ~100 ms (safe below 100 ms RTT); faster links or smaller\n\
         messages shrink the margin, and each extra generation buys a full\n\
         extra wraparound period."
    );

    table_header(
        "3. Go-Back-N vs Selective Repeat (128 MiB, 400 Gbit/s, 25 ms RTT)",
        &["P_drop", "GBN mean slowdown", "SR mean slowdown", "GBN/SR"],
    );
    for p in [1e-6, 1e-5, 1e-4] {
        let ch = Channel::new(400e9, 0.025, p);
        let ideal = ch.ideal_time(128 << 20);
        let gbn = gbn_summary(&ch, 128 << 20, &GbnConfig::bdp_window(&ch, 3.0), 4000, 1).mean;
        let sr = sr_summary(&ch, 128 << 20, &SrConfig::rto_multiple(&ch, 3.0), 4000, 1).mean;
        table_row(&[
            format!("{p:.0e}"),
            fmt(gbn / ideal),
            fmt(sr / ideal),
            fmt(gbn / sr),
        ]);
    }
    println!(
        "SR dominates GBN (Bertsekas–Gallager ordering): each drop costs GBN\n\
         a window re-injection on top of the timeout."
    );
}
