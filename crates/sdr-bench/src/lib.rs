//! # sdr-bench — harnesses regenerating every table and figure of the paper
//!
//! One binary per figure (`cargo run --release -p sdr-bench --bin figNN`)
//! plus criterion micro-benchmarks (`cargo bench`). This library holds the
//! shared pieces: the paper's canonical channel parameters, sweep grids and
//! plain-text table printing.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig02` | Fig 2 — WAN drop-rate variability vs payload size |
//! | `fig03` | Fig 3 — reliability impact at 400 Gbit/s (3 sweeps) |
//! | `fig09` | Fig 9 — EC-over-SR speedup heatmap |
//! | `fig10` | Fig 10 — 128 MiB deep-dive (mean, p99.9, MDS splits) |
//! | `fig11` | Fig 11 — MDS vs XOR encode throughput and resilience |
//! | `fig12` | Fig 12 — distance × bandwidth grid |
//! | `fig13` | Fig 13 — ring Allreduce p99.9 speedups |
//! | `fig14` | Fig 14 — SDR loopback throughput and thread scaling |
//! | `fig15` | Fig 15 — bitmap chunk size vs packet rate |
//! | `fig16` | Fig 16 — packet-rate scaling toward Tbit/s |
//! | `ablations` | ePSN / generations / GBN design-choice ablations |

#![warn(missing_docs)]

use sdr_model::Channel;

/// The paper's workhorse deployment: 400 Gbit/s, 3750 km (25 ms RTT),
/// 4 KiB MTU, 64 KiB bitmap chunks.
pub fn paper_channel(p_drop_packet: f64) -> Channel {
    Channel::new(400e9, 0.025, p_drop_packet)
}

/// Logarithmically spaced grid from `a` to `b` inclusive.
pub fn logspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && a > 0.0 && b > a);
    let (la, lb) = (a.ln(), b.ln());
    (0..n)
        .map(|i| (la + (lb - la) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Human label for a byte count (power-of-two units, like the paper's axes).
pub fn bytes_label(bytes: u64) -> String {
    const UNITS: [(&str, u64); 4] = [
        ("TiB", 1 << 40),
        ("GiB", 1 << 30),
        ("MiB", 1 << 20),
        ("KiB", 1 << 10),
    ];
    for (name, scale) in UNITS {
        if bytes >= scale {
            let v = bytes as f64 / scale as f64;
            return if (v - v.round()).abs() < 1e-9 {
                format!("{:.0} {name}", v)
            } else {
                format!("{:.1} {name}", v)
            };
        }
    }
    format!("{bytes} B")
}

/// Prints a header row followed by a separator.
pub fn table_header(title: &str, cols: &[&str]) {
    println!("\n### {title}");
    println!("| {} |", cols.join(" | "));
    println!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Prints one table row.
pub fn table_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats a float compactly (3 significant-ish digits).
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logspace_endpoints_and_monotonicity() {
        let g = logspace(1e-6, 1e-2, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 1e-6).abs() < 1e-12);
        assert!((g[4] - 1e-2).abs() < 1e-8);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
        // Log-even spacing: ratios equal.
        let r = g[1] / g[0];
        assert!((g[2] / g[1] - r).abs() < 1e-9);
    }

    #[test]
    fn bytes_labels() {
        assert_eq!(bytes_label(128 << 10), "128 KiB");
        assert_eq!(bytes_label(128 << 20), "128 MiB");
        assert_eq!(bytes_label(8 << 30), "8 GiB");
        assert_eq!(bytes_label(2 << 40), "2 TiB");
        assert_eq!(bytes_label(512), "512 B");
    }

    #[test]
    fn paper_channel_parameters() {
        let ch = paper_channel(1e-5);
        assert_eq!(ch.bandwidth_bps, 400e9);
        assert_eq!(ch.rtt_s, 0.025);
        assert_eq!(ch.chunk_bytes, 64 * 1024);
    }
}
