//! Stress tests for the persistent [`EncodePool`]: concurrent submits
//! from many threads, worker panic containment, and clean drop/shutdown
//! with work still queued.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use sdr_erasure::{encode_parallel_into, EncodeJob, EncodePool, ErasureCode, ReedSolomon, XorCode};

fn job_with_len(code: Arc<dyn ErasureCode>, len: usize, seed: usize) -> EncodeJob {
    let k = code.data_shards();
    let m = code.parity_shards();
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| {
            (0..len)
                .map(|j| ((i * 31 + j * 7 + seed * 131) % 256) as u8)
                .collect()
        })
        .collect();
    let parity = vec![vec![0u8; len]; m];
    EncodeJob { code, data, parity }
}

/// Many threads submitting owned jobs concurrently: every job's parity
/// must match its serial encode, with no cross-job corruption.
#[test]
fn concurrent_submits_from_many_threads() {
    let pool = Arc::new(EncodePool::new(3));
    let rs: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(6, 3));
    let xor: Arc<dyn ErasureCode> = Arc::new(XorCode::new(8, 4));
    std::thread::scope(|s| {
        for t in 0..4usize {
            let pool = pool.clone();
            let code: Arc<dyn ErasureCode> = if t % 2 == 0 { rs.clone() } else { xor.clone() };
            s.spawn(move || {
                for round in 0..24usize {
                    let seed = t * 1000 + round;
                    let j = job_with_len(code.clone(), 8 * 1024 + (round % 7) * 64, seed);
                    let refs: Vec<&[u8]> = j.data.iter().map(|d| d.as_slice()).collect();
                    let expect = j.code.encode(&refs);
                    drop(refs);
                    // Alternate striped and unstriped submissions.
                    let done = pool.submit(j, 1 + round % 3).wait();
                    assert_eq!(done.parity, expect, "t={t} round={round}");
                }
            });
        }
    });
}

/// Scoped (borrowed-stripe) dispatch racing owned jobs on the same pool.
#[test]
fn scoped_and_owned_work_interleave() {
    let pool = Arc::new(EncodePool::new(2));
    let rs = ReedSolomon::new(5, 2);
    let data: Vec<Vec<u8>> = (0..5)
        .map(|i| (0..96 * 1024).map(|j| ((i * 17 + j) % 256) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let expect = rs.encode(&refs);
    std::thread::scope(|s| {
        for _ in 0..3 {
            let pool = pool.clone();
            let rs = &rs;
            let refs = &refs;
            let expect = &expect;
            s.spawn(move || {
                for _ in 0..8 {
                    let mut parity = vec![vec![0u8; 96 * 1024]; 2];
                    let mut views: Vec<&mut [u8]> =
                        parity.iter_mut().map(|p| p.as_mut_slice()).collect();
                    pool.encode_striped(rs, refs, &mut views, 4);
                    drop(views);
                    assert_eq!(&parity, expect);
                }
            });
        }
    });
}

/// A job with inconsistent shapes panics inside the worker; the panic is
/// contained — reported at `wait()` — and the pool keeps serving.
#[test]
fn worker_panic_is_contained_and_pool_survives() {
    let pool = EncodePool::new(2);
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2));

    // Ragged parity: encode_into asserts inside the worker.
    let bad = EncodeJob {
        code: code.clone(),
        data: vec![vec![0u8; 1024]; 4],
        parity: vec![vec![0u8; 1024], vec![0u8; 512]],
    };
    let pending = pool.submit(bad, 1);
    let err = catch_unwind(AssertUnwindSafe(move || pending.wait()));
    assert!(err.is_err(), "poisoned job must re-raise at wait()");

    // The pool is still fully functional afterwards — repeatedly.
    for seed in 0..8 {
        let j = job_with_len(code.clone(), 4096, seed);
        let refs: Vec<&[u8]> = j.data.iter().map(|d| d.as_slice()).collect();
        let expect = j.code.encode(&refs);
        drop(refs);
        assert_eq!(pool.submit(j, 2).wait().parity, expect, "seed={seed}");
    }
}

/// The pooled `encode_parallel_into` propagates shape panics to the
/// caller (contract parity with the spawn baseline) without wedging the
/// global pool for later calls.
#[test]
fn striped_shape_panic_propagates_and_pool_recovers() {
    let code = ReedSolomon::new(2, 1);
    let data: Vec<Vec<u8>> = vec![vec![1u8; 64 * 1024]; 2];
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let mut short = vec![0u8; 32];
    let err = catch_unwind(AssertUnwindSafe(|| {
        let mut views: Vec<&mut [u8]> = vec![short.as_mut_slice()];
        encode_parallel_into(&code, &refs, &mut views, 2);
    }));
    assert!(err.is_err());

    // Global pool still encodes correctly after the panic.
    let expect = code.encode(&refs);
    let mut parity = vec![vec![0u8; 64 * 1024]];
    {
        let mut views: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
        encode_parallel_into(&code, &refs, &mut views, 2);
    }
    assert_eq!(parity, expect);
}

/// Dropping the pool with a backlog of queued jobs completes the backlog
/// (FIFO shutdown sentinels) and joins every worker without hanging.
#[test]
fn drop_with_queued_work_shuts_down_cleanly() {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(4, 2));
    let pool = EncodePool::new(1);
    let pendings: Vec<_> = (0..16)
        .map(|seed| {
            let j = job_with_len(code.clone(), 16 * 1024, seed);
            pool.submit(j, 1)
        })
        .collect();
    drop(pool); // waits for the backlog, then joins workers
    for (seed, p) in pendings.into_iter().enumerate() {
        assert!(p.is_ready(), "job {seed} completed before shutdown");
        let done = p.wait();
        assert_eq!(done.parity.len(), 2);
    }
}

/// A panic *during stripe carving* (short parity slice hitting
/// `split_at_mut` mid-carve) must propagate to the caller, not hang the
/// latch guard waiting on stripes that were never dispatched.
#[test]
fn carving_panic_propagates_instead_of_hanging() {
    let pool = EncodePool::new(1);
    let code = ReedSolomon::new(2, 1);
    let data: Vec<Vec<u8>> = vec![vec![7u8; 64 * 1024]; 2];
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    // Parity shorter than the shard length: the second stripe's
    // split_at_mut panics after stripe 0 was already dispatched.
    let mut short = vec![0u8; 40 * 1024];
    let err = catch_unwind(AssertUnwindSafe(|| {
        let mut views: Vec<&mut [u8]> = vec![short.as_mut_slice()];
        pool.encode_striped(&code, &refs, &mut views, 4);
    }));
    assert!(err.is_err(), "carving panic must propagate");
    // And the pool still works.
    let expect = code.encode(&refs);
    let mut parity = vec![vec![0u8; 64 * 1024]];
    {
        let mut views: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
        pool.encode_striped(&code, &refs, &mut views, 2);
    }
    assert_eq!(parity, expect);
}
