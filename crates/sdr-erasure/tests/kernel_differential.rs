//! Differential tests: every kernel tier available on this host (SIMD,
//! SWAR, scalar) must agree bit-for-bit on `mul_add_slice`, `mul_slice`,
//! `xor_slice` and the fused multi-source kernels, across random
//! coefficients, lengths from 0 to beyond 4 KiB, and misaligned head/tail
//! windows — SIMD kernels process 16/32-byte blocks with scalar tails, so
//! every (offset mod 32, length mod 32) combination is a distinct code
//! path.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sdr_erasure::gf256;
use sdr_erasure::Kernel;

fn scalar_mul_add(dst: &mut [u8], src: &[u8], c: u8) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= gf256::mul(c, *s);
    }
}

fn scalar_mul(dst: &mut [u8], src: &[u8], c: u8) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = gf256::mul(c, *s);
    }
}

fn random_bytes(rng: &mut SmallRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.random()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random coefficient × random length (0..~4 KiB) × random head
    /// misalignment: all tiers equal the byte-wise field reference.
    #[test]
    fn all_kernels_match_reference(
        c: u8,
        len in 0usize..4200,
        head in 0usize..33,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let total = head + len;
        let src = random_bytes(&mut rng, total);
        let base = random_bytes(&mut rng, total);

        // Reference on the misaligned window [head..].
        let mut want_add = base.clone();
        scalar_mul_add(&mut want_add[head..], &src[head..], c);
        let mut want_mul = base.clone();
        scalar_mul(&mut want_mul[head..], &src[head..], c);
        let mut want_xor = base.clone();
        for (d, s) in want_xor[head..].iter_mut().zip(&src[head..]) {
            *d ^= *s;
        }

        for kernel in Kernel::all() {
            let mut got = base.clone();
            kernel.mul_add_slice(&mut got[head..], &src[head..], c);
            prop_assert_eq!(&got, &want_add, "kernel={} mul_add c={} len={} head={}",
                kernel.name(), c, len, head);

            let mut got = base.clone();
            kernel.mul_slice(&mut got[head..], &src[head..], c);
            prop_assert_eq!(&got, &want_mul, "kernel={} mul c={} len={} head={}",
                kernel.name(), c, len, head);

            let mut got = base.clone();
            kernel.xor_slice(&mut got[head..], &src[head..]);
            prop_assert_eq!(&got, &want_xor, "kernel={} xor len={} head={}",
                kernel.name(), len, head);
        }
    }

    /// The fused multi-source kernels equal a fold of single-source calls
    /// for every tier, across source counts and misalignment.
    #[test]
    fn fused_multi_matches_fold(
        n_srcs in 1usize..9,
        len in 0usize..2100,
        head in 0usize..17,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let total = head + len;
        let srcs: Vec<Vec<u8>> = (0..n_srcs).map(|_| random_bytes(&mut rng, total)).collect();
        let coeffs: Vec<u8> = (0..n_srcs).map(|_| rng.random()).collect();
        let base = random_bytes(&mut rng, total);

        let mut want = base.clone();
        for (s, &c) in srcs.iter().zip(&coeffs) {
            scalar_mul_add(&mut want[head..], &s[head..], c);
        }
        let mut want_xor = base.clone();
        for s in &srcs {
            for (d, x) in want_xor[head..].iter_mut().zip(&s[head..]) {
                *d ^= *x;
            }
        }

        for kernel in Kernel::all() {
            let views: Vec<&[u8]> = srcs.iter().map(|s| &s[head..]).collect();
            let mut got = base.clone();
            kernel.mul_add_multi(&mut got[head..], &views, &coeffs);
            prop_assert_eq!(&got, &want, "kernel={} mul_add_multi n={} len={} head={}",
                kernel.name(), n_srcs, len, head);

            let mut got = base.clone();
            kernel.xor_multi(&mut got[head..], &views);
            prop_assert_eq!(&got, &want_xor, "kernel={} xor_multi n={} len={} head={}",
                kernel.name(), n_srcs, len, head);
        }
    }
}

/// Exhaustive over all 256 coefficients at a block-straddling length:
/// catches any single bad nibble-table entry.
#[test]
fn exhaustive_coefficients() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let src = random_bytes(&mut rng, 257);
    let base = random_bytes(&mut rng, 257);
    for c in 0..=255u8 {
        let mut want = base.clone();
        scalar_mul_add(&mut want, &src, c);
        for kernel in Kernel::all() {
            let mut got = base.clone();
            kernel.mul_add_slice(&mut got, &src, c);
            assert_eq!(got, want, "kernel={} c={c}", kernel.name());
        }
    }
}

/// Every (length, offset) in a small exhaustive grid around the SIMD block
/// sizes: the scalar-tail boundary must be correct everywhere.
#[test]
fn exhaustive_small_geometry() {
    let mut rng = SmallRng::seed_from_u64(7);
    let src = random_bytes(&mut rng, 160);
    let base = random_bytes(&mut rng, 160);
    for head in 0..40 {
        for len in 0..(160 - head) {
            let (lo, hi) = (head, head + len);
            let mut want = base.clone();
            scalar_mul_add(&mut want[lo..hi], &src[lo..hi], 97);
            for kernel in Kernel::all() {
                let mut got = base.clone();
                kernel.mul_add_slice(&mut got[lo..hi], &src[lo..hi], 97);
                assert_eq!(got, want, "kernel={} head={head} len={len}", kernel.name());
            }
        }
    }
}

/// The paper's (32, 8) MDS encode is identical under every kernel tier.
///
/// `ReedSolomon::encode` dispatches through `Kernel::active()`, so this
/// re-derives the systematic parity rows from unit-vector encodes (shard
/// `j` = [1], rest = [0] → parity byte = `row[j]`) and replays the full
/// encode through each tier's fused kernel.
#[test]
fn full_rs_encode_agrees_across_kernels() {
    use sdr_erasure::{ErasureCode, ReedSolomon};
    const K: usize = 32;
    const M: usize = 8;
    let mut rng = SmallRng::seed_from_u64(42);
    let data: Vec<Vec<u8>> = (0..K).map(|_| random_bytes(&mut rng, 4096 + 13)).collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let rs = ReedSolomon::new(K, M);
    let active = rs.encode(&refs);

    let mut rows = vec![vec![0u8; K]; M];
    for j in 0..K {
        let unit: Vec<Vec<u8>> = (0..K)
            .map(|d| if d == j { vec![1u8] } else { vec![0u8] })
            .collect();
        let urefs: Vec<&[u8]> = unit.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode(&urefs);
        for (i, row) in rows.iter_mut().enumerate() {
            row[j] = parity[i][0];
        }
    }

    for kernel in Kernel::all() {
        let mut parity = vec![vec![0u8; 4096 + 13]; M];
        for (i, p) in parity.iter_mut().enumerate() {
            kernel.mul_add_multi(p, &refs, &rows[i]);
        }
        assert_eq!(parity, active, "kernel={}", kernel.name());
    }
}

// ---------------------------------------------------------------------------
// CRC32C tiers: the same cross-tier differential discipline for the
// integrity primitive — every tier on this host must agree with a
// bit-at-a-time Castagnoli reference on arbitrary windows and splits.
// ---------------------------------------------------------------------------

/// Deliberately naive bit-at-a-time CRC32C (reflected 0x82F63B78).
fn crc32c_bitwise(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random length (0..~9 KiB, straddling the MTU-sized payload grain) ×
    /// random head misalignment × a random incremental split: every CRC32C
    /// tier equals the bitwise reference, one-shot and streamed. The
    /// hardware tier walks qwords with a byte tail, so misaligned heads
    /// and odd tails are distinct code paths exactly as in the GF(256)
    /// kernels above.
    #[test]
    fn all_crc32c_tiers_match_bitwise_reference(
        len in 0usize..9000,
        head in 0usize..9,
        cut in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let buf = random_bytes(&mut rng, head + len);
        let window = &buf[head..];
        let want = crc32c_bitwise(window);
        let split = (cut * window.len() as f64) as usize;
        for tier in sdr_erasure::Crc32c::all() {
            prop_assert_eq!(
                tier.checksum(window), want,
                "tier={} len={} head={}", tier.name(), len, head
            );
            let mut h = sdr_erasure::Crc32cHasher::with_kernel(tier);
            h.update(&window[..split]);
            h.update(&window[split..]);
            prop_assert_eq!(
                h.finalize(), want,
                "tier={} incremental split={} len={}", tier.name(), split, len
            );
        }
    }
}

/// x86_64 hosts with SSE4.2 must register the hardware CRC tier — CI on
/// such hosts must never silently differential-test slice8 against itself.
#[cfg(target_arch = "x86_64")]
#[test]
fn sse42_crc_tier_registered_when_host_supports_it() {
    let host_has = std::arch::is_x86_feature_detected!("sse4.2");
    assert_eq!(
        sdr_erasure::Crc32c::by_name("sse42").is_some(),
        host_has,
        "sse42 CRC tier registration must match host feature detection"
    );
    if host_has {
        let names: Vec<_> = sdr_erasure::Crc32c::all()
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(*names.last().unwrap(), "sse42");
    }
}

/// Hosts advertising GFNI + AVX-512 must actually register the `gfni` tier
/// — otherwise CI would silently fall back to AVX2 and the differential
/// coverage above would never exercise the affine kernels.
#[cfg(target_arch = "x86_64")]
#[test]
fn gfni_tier_registered_when_host_supports_it() {
    let host_has = std::arch::is_x86_feature_detected!("gfni")
        && std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vbmi");
    assert_eq!(
        Kernel::by_name("gfni").is_some(),
        host_has,
        "gfni tier registration must match host feature detection"
    );
    if host_has {
        // And it outranks AVX2 in the auto-selection order unless pinned.
        let names: Vec<_> = Kernel::all().iter().map(|k| k.name()).collect();
        assert_eq!(*names.last().unwrap(), "gfni");
    }
}
