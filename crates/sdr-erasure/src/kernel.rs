//! Runtime-dispatched SIMD kernels for GF(2^8) slice arithmetic.
//!
//! The erasure hot path is `dst[i] ^= c·src[i]` over 64 KiB chunks. The
//! classic scalar form walks a 256-byte product-table row one byte at a
//! time; production RS codecs (ISA-L, reed-solomon-erasure) instead split
//! every source byte into low/high nibbles and use a byte-shuffle
//! instruction as a 16-entry parallel table lookup:
//!
//! ```text
//! c·x = LO[c][x & 0xF] ^ HI[c][x >> 4]      (linearity of GF multiply)
//! ```
//!
//! `PSHUFB`/`VPSHUFB` (x86) and `TBL` (NEON) evaluate 16/32 such lookups
//! per instruction. This module provides that kernel at three tiers —
//! SIMD (SSSE3/AVX2 on x86_64, NEON on aarch64), a portable u64 SWAR
//! fallback, and the scalar reference — selected **once** at startup into
//! a [`Kernel`] vtable that `gf256`, `rs` and `xor` call through.
//!
//! Besides the single-source forms, the vtable carries *fused* kernels
//! ([`Kernel::mul_add_multi`], [`Kernel::xor_multi`]) that accumulate `k`
//! sources into one destination per memory pass: the destination strip is
//! loaded and stored once instead of `k` times, which matters exactly when
//! the encode is memory-bound (Figure 11's regime).
//!
//! Dispatch can be pinned for testing/benchmarks with the
//! `SDR_GF256_KERNEL` environment variable (`scalar`, `swar`, or a SIMD
//! kernel name from [`Kernel::all`]).

use std::sync::OnceLock;

/// Cache-block width for multi-destination walks (encode): strips of this
/// size keep one parity strip plus the streaming source window inside
/// L1/L2 while the encode matrix is applied row by row.
pub const STRIP_BYTES: usize = 32 * 1024;

// ---------------------------------------------------------------------------
// Compile-time nibble tables.
// ---------------------------------------------------------------------------

/// Carry-less multiply in GF(2^8) mod 0x11D, usable in const context.
const fn gf_mul_const(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1D;
        }
        b >>= 1;
    }
    p
}

const fn build_nibble_tables() -> ([[u8; 16]; 256], [[u8; 16]; 256]) {
    let mut lo = [[0u8; 16]; 256];
    let mut hi = [[0u8; 16]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut x = 0usize;
        while x < 16 {
            lo[c][x] = gf_mul_const(c as u8, x as u8);
            hi[c][x] = gf_mul_const(c as u8, (x << 4) as u8);
            x += 1;
        }
        c += 1;
    }
    (lo, hi)
}

const NIBBLE_TABLES: ([[u8; 16]; 256], [[u8; 16]; 256]) = build_nibble_tables();
/// `NIB_LO[c][x] = c·x` for `x < 16`.
static NIB_LO: [[u8; 16]; 256] = NIBBLE_TABLES.0;
/// `NIB_HI[c][x] = c·(x << 4)` for `x < 16`.
static NIB_HI: [[u8; 16]; 256] = NIBBLE_TABLES.1;

/// The 8×8 GF(2) bit-matrix (packed as the qword `GF2P8AFFINEQB` expects)
/// that multiplies every byte by `c` in GF(2^8) mod 0x11D.
///
/// `GF2P8MULB` is useless here — it is hard-wired to the AES polynomial
/// 0x11B — but multiplication by a constant is GF(2)-linear, so it is
/// exactly an affine transform: `dst.bit[i] = parity(matrix.byte[7-i] &
/// x)`, and we need `dst.bit[i] = Σ_k x_k · bit_i(c·2^k)`, i.e.
/// `matrix.byte[7-i].bit[k] = bit_i(c·2^k)`.
#[cfg(target_arch = "x86_64")]
const fn gfni_matrix(c: u8) -> u64 {
    let mut pow = [0u8; 8];
    let mut k = 0;
    while k < 8 {
        pow[k] = gf_mul_const(c, 1 << k);
        k += 1;
    }
    let mut bytes = [0u8; 8];
    let mut i = 0;
    while i < 8 {
        let mut row = 0u8;
        let mut k = 0;
        while k < 8 {
            row |= ((pow[k] >> i) & 1) << k;
            k += 1;
        }
        bytes[7 - i] = row;
        i += 1;
    }
    u64::from_le_bytes(bytes)
}

#[cfg(target_arch = "x86_64")]
const fn build_gfni_matrices() -> [u64; 256] {
    let mut m = [0u64; 256];
    let mut c = 0usize;
    while c < 256 {
        m[c] = gfni_matrix(c as u8);
        c += 1;
    }
    m
}

/// `GFNI_MATRICES[c]` = affine matrix computing `x ↦ c·x` (mod 0x11D).
#[cfg(target_arch = "x86_64")]
static GFNI_MATRICES: [u64; 256] = build_gfni_matrices();

// ---------------------------------------------------------------------------
// Scalar reference kernels (256-byte product-table row walk).
// ---------------------------------------------------------------------------

fn xor_scalar(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

fn mul_add_scalar(dst: &mut [u8], src: &[u8], c: u8) {
    match c {
        0 => {}
        1 => xor_scalar(dst, src),
        _ => {
            let row = &crate::gf256::MUL[c as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= row[*s as usize];
            }
        }
    }
}

fn mul_scalar(dst: &mut [u8], src: &[u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => {
            let row = &crate::gf256::MUL[c as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d = row[*s as usize];
            }
        }
    }
}

fn mul_add_multi_scalar(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
    for (src, &c) in srcs.iter().zip(coeffs) {
        mul_add_scalar(dst, src, c);
    }
}

fn xor_multi_scalar(dst: &mut [u8], srcs: &[&[u8]]) {
    for src in srcs {
        xor_scalar(dst, src);
    }
}

// ---------------------------------------------------------------------------
// SWAR kernels: 8 byte-lanes per u64, double-and-add over the bits of c.
// ---------------------------------------------------------------------------

/// Multiplies every byte lane of `v` by the generator `x = 2` with the
/// 0x1D reduction applied lane-wise.
#[inline(always)]
fn swar_x2(v: u64) -> u64 {
    let hi = v & 0x8080_8080_8080_8080;
    // `hi >> 7` leaves 0x00/0x01 per lane; multiplying by 0x1D broadcasts
    // the reduction constant into exactly the overflowing lanes.
    ((v & 0x7F7F_7F7F_7F7F_7F7F) << 1) ^ ((hi >> 7).wrapping_mul(0x1D))
}

/// `c · v` lane-wise: binary expansion of `c`, doubling `v` per bit.
#[inline(always)]
fn swar_mul_word(v: u64, mut c: u8) -> u64 {
    let mut acc = 0u64;
    let mut cur = v;
    while c != 0 {
        if c & 1 != 0 {
            acc ^= cur;
        }
        cur = swar_x2(cur);
        c >>= 1;
    }
    acc
}

fn xor_swar(dst: &mut [u8], src: &[u8]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let x = u64::from_ne_bytes(dc.try_into().unwrap());
        let y = u64::from_ne_bytes(sc.try_into().unwrap());
        dc.copy_from_slice(&(x ^ y).to_ne_bytes());
    }
    xor_scalar(d.into_remainder(), s.remainder());
}

fn mul_add_swar(dst: &mut [u8], src: &[u8], c: u8) {
    match c {
        0 => {}
        1 => xor_swar(dst, src),
        _ => {
            let mut d = dst.chunks_exact_mut(8);
            let mut s = src.chunks_exact(8);
            for (dc, sc) in (&mut d).zip(&mut s) {
                let x = u64::from_ne_bytes(dc.try_into().unwrap());
                let y = u64::from_ne_bytes(sc.try_into().unwrap());
                dc.copy_from_slice(&(x ^ swar_mul_word(y, c)).to_ne_bytes());
            }
            mul_add_scalar(d.into_remainder(), s.remainder(), c);
        }
    }
}

fn mul_swar(dst: &mut [u8], src: &[u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => {
            let mut d = dst.chunks_exact_mut(8);
            let mut s = src.chunks_exact(8);
            for (dc, sc) in (&mut d).zip(&mut s) {
                let y = u64::from_ne_bytes(sc.try_into().unwrap());
                dc.copy_from_slice(&swar_mul_word(y, c).to_ne_bytes());
            }
            mul_scalar(d.into_remainder(), s.remainder(), c);
        }
    }
}

fn mul_add_multi_swar(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
    let len = dst.len();
    let words = len / 8;
    // Fused pass: load/store each destination word once for all k sources.
    for w in 0..words {
        let o = w * 8;
        let mut acc = u64::from_ne_bytes(dst[o..o + 8].try_into().unwrap());
        for (src, &c) in srcs.iter().zip(coeffs) {
            if c == 0 {
                continue;
            }
            let y = u64::from_ne_bytes(src[o..o + 8].try_into().unwrap());
            acc ^= if c == 1 { y } else { swar_mul_word(y, c) };
        }
        dst[o..o + 8].copy_from_slice(&acc.to_ne_bytes());
    }
    let tail = words * 8;
    for (src, &c) in srcs.iter().zip(coeffs) {
        mul_add_scalar(&mut dst[tail..], &src[tail..], c);
    }
}

fn xor_multi_swar(dst: &mut [u8], srcs: &[&[u8]]) {
    let len = dst.len();
    let words = len / 8;
    for w in 0..words {
        let o = w * 8;
        let mut acc = u64::from_ne_bytes(dst[o..o + 8].try_into().unwrap());
        for src in srcs {
            acc ^= u64::from_ne_bytes(src[o..o + 8].try_into().unwrap());
        }
        dst[o..o + 8].copy_from_slice(&acc.to_ne_bytes());
    }
    let tail = words * 8;
    for src in srcs {
        xor_scalar(&mut dst[tail..], &src[tail..]);
    }
}

// ---------------------------------------------------------------------------
// x86_64 SIMD kernels (SSSE3 PSHUFB, AVX2 VPSHUFB).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure SSSE3 is available.
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_add_ssse3(dst: &mut [u8], src: &[u8], c: u8) {
        if c == 0 {
            return;
        }
        let lo_t = _mm_loadu_si128(NIB_LO[c as usize].as_ptr() as *const __m128i);
        let hi_t = _mm_loadu_si128(NIB_HI[c as usize].as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let n = dst.len() & !15;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm_loadu_si128(sp.add(i) as *const __m128i);
            let d = _mm_loadu_si128(dp.add(i) as *const __m128i);
            let lo = _mm_shuffle_epi8(lo_t, _mm_and_si128(s, mask));
            let hi = _mm_shuffle_epi8(hi_t, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
            let p = _mm_xor_si128(lo, hi);
            _mm_storeu_si128(dp.add(i) as *mut __m128i, _mm_xor_si128(d, p));
            i += 16;
        }
        mul_add_scalar(&mut dst[n..], &src[n..], c);
    }

    /// # Safety
    /// Caller must ensure SSSE3 is available.
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_ssse3(dst: &mut [u8], src: &[u8], c: u8) {
        if c == 0 {
            dst.fill(0);
            return;
        }
        let lo_t = _mm_loadu_si128(NIB_LO[c as usize].as_ptr() as *const __m128i);
        let hi_t = _mm_loadu_si128(NIB_HI[c as usize].as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let n = dst.len() & !15;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm_loadu_si128(sp.add(i) as *const __m128i);
            let lo = _mm_shuffle_epi8(lo_t, _mm_and_si128(s, mask));
            let hi = _mm_shuffle_epi8(hi_t, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
            _mm_storeu_si128(dp.add(i) as *mut __m128i, _mm_xor_si128(lo, hi));
            i += 16;
        }
        mul_scalar(&mut dst[n..], &src[n..], c);
    }

    /// # Safety
    /// Caller must ensure SSSE3 is available.
    #[target_feature(enable = "ssse3")]
    pub unsafe fn xor_ssse3(dst: &mut [u8], src: &[u8]) {
        let n = dst.len() & !15;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm_loadu_si128(sp.add(i) as *const __m128i);
            let d = _mm_loadu_si128(dp.add(i) as *const __m128i);
            _mm_storeu_si128(dp.add(i) as *mut __m128i, _mm_xor_si128(d, s));
            i += 16;
        }
        xor_scalar(&mut dst[n..], &src[n..]);
    }

    /// # Safety
    /// Caller must ensure SSSE3 is available. Every `srcs[j]` must be at
    /// least `dst.len()` long (checked by the safe wrapper).
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_add_multi_ssse3(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
        let mask = _mm_set1_epi8(0x0F);
        let n = dst.len() & !15;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let mut acc = _mm_loadu_si128(dp.add(i) as *const __m128i);
            for (src, &c) in srcs.iter().zip(coeffs) {
                if c == 0 {
                    continue;
                }
                let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
                if c == 1 {
                    acc = _mm_xor_si128(acc, s);
                    continue;
                }
                let lo_t = _mm_loadu_si128(NIB_LO[c as usize].as_ptr() as *const __m128i);
                let hi_t = _mm_loadu_si128(NIB_HI[c as usize].as_ptr() as *const __m128i);
                let lo = _mm_shuffle_epi8(lo_t, _mm_and_si128(s, mask));
                let hi = _mm_shuffle_epi8(hi_t, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
                acc = _mm_xor_si128(acc, _mm_xor_si128(lo, hi));
            }
            _mm_storeu_si128(dp.add(i) as *mut __m128i, acc);
            i += 16;
        }
        for (src, &c) in srcs.iter().zip(coeffs) {
            mul_add_scalar(&mut dst[n..], &src[n..], c);
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_add_avx2(dst: &mut [u8], src: &[u8], c: u8) {
        if c == 0 {
            return;
        }
        let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(
            NIB_LO[c as usize].as_ptr() as *const __m128i
        ));
        let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(
            NIB_HI[c as usize].as_ptr() as *const __m128i
        ));
        let mask = _mm256_set1_epi8(0x0F);
        let n = dst.len() & !31;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm256_loadu_si256(sp.add(i) as *const __m256i);
            let d = _mm256_loadu_si256(dp.add(i) as *const __m256i);
            let lo = _mm256_shuffle_epi8(lo_t, _mm256_and_si256(s, mask));
            let hi = _mm256_shuffle_epi8(hi_t, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
            let p = _mm256_xor_si256(lo, hi);
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, _mm256_xor_si256(d, p));
            i += 32;
        }
        mul_add_scalar(&mut dst[n..], &src[n..], c);
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_avx2(dst: &mut [u8], src: &[u8], c: u8) {
        if c == 0 {
            dst.fill(0);
            return;
        }
        let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(
            NIB_LO[c as usize].as_ptr() as *const __m128i
        ));
        let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(
            NIB_HI[c as usize].as_ptr() as *const __m128i
        ));
        let mask = _mm256_set1_epi8(0x0F);
        let n = dst.len() & !31;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm256_loadu_si256(sp.add(i) as *const __m256i);
            let lo = _mm256_shuffle_epi8(lo_t, _mm256_and_si256(s, mask));
            let hi = _mm256_shuffle_epi8(hi_t, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, _mm256_xor_si256(lo, hi));
            i += 32;
        }
        mul_scalar(&mut dst[n..], &src[n..], c);
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn xor_avx2(dst: &mut [u8], src: &[u8]) {
        let n = dst.len() & !31;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm256_loadu_si256(sp.add(i) as *const __m256i);
            let d = _mm256_loadu_si256(dp.add(i) as *const __m256i);
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, _mm256_xor_si256(d, s));
            i += 32;
        }
        xor_scalar(&mut dst[n..], &src[n..]);
    }

    /// # Safety
    /// Caller must ensure AVX2 is available. Every `srcs[j]` must be at
    /// least `dst.len()` long (checked by the safe wrapper).
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_add_multi_avx2(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
        // Note: re-broadcasting the nibble tables per (block, source) looks
        // like loop-invariant waste, but hoisting all k pairs into a stack
        // array measured performance-neutral to slightly slower on AVX2
        // hosts (the table loads hit L1 and the staging init is pure
        // overhead), so the simpler form stays.
        let mask = _mm256_set1_epi8(0x0F);
        let n = dst.len() & !31;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let mut acc = _mm256_loadu_si256(dp.add(i) as *const __m256i);
            for (src, &c) in srcs.iter().zip(coeffs) {
                if c == 0 {
                    continue;
                }
                let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
                if c == 1 {
                    acc = _mm256_xor_si256(acc, s);
                    continue;
                }
                let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                    NIB_LO[c as usize].as_ptr() as *const __m128i,
                ));
                let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                    NIB_HI[c as usize].as_ptr() as *const __m128i,
                ));
                let lo = _mm256_shuffle_epi8(lo_t, _mm256_and_si256(s, mask));
                let hi = _mm256_shuffle_epi8(hi_t, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
                acc = _mm256_xor_si256(acc, _mm256_xor_si256(lo, hi));
            }
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, acc);
            i += 32;
        }
        for (src, &c) in srcs.iter().zip(coeffs) {
            mul_add_scalar(&mut dst[n..], &src[n..], c);
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 is available. Every `srcs[j]` must be at
    /// least `dst.len()` long (checked by the safe wrapper).
    #[target_feature(enable = "avx2")]
    pub unsafe fn xor_multi_avx2(dst: &mut [u8], srcs: &[&[u8]]) {
        let n = dst.len() & !31;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let mut acc = _mm256_loadu_si256(dp.add(i) as *const __m256i);
            for src in srcs {
                acc = _mm256_xor_si256(
                    acc,
                    _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i),
                );
            }
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, acc);
            i += 32;
        }
        for src in srcs {
            xor_scalar(&mut dst[n..], &src[n..]);
        }
    }
}

// ---------------------------------------------------------------------------
// x86_64 GFNI kernels: GF2P8AFFINEQB over 64-byte ZMM blocks. One affine
// instruction evaluates c·x for 64 bytes — no nibble split, no table
// shuffle — using the per-coefficient bit matrices in GFNI_MATRICES.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod gfni {
    use super::*;
    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure GFNI + AVX-512F are available.
    #[target_feature(enable = "gfni,avx512f")]
    pub unsafe fn mul_add_gfni(dst: &mut [u8], src: &[u8], c: u8) {
        if c == 0 {
            return;
        }
        let mat = _mm512_set1_epi64(GFNI_MATRICES[c as usize] as i64);
        let n = dst.len() & !63;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm512_loadu_si512(sp.add(i) as *const _);
            let d = _mm512_loadu_si512(dp.add(i) as *const _);
            let p = _mm512_gf2p8affine_epi64_epi8::<0>(s, mat);
            _mm512_storeu_si512(dp.add(i) as *mut _, _mm512_xor_si512(d, p));
            i += 64;
        }
        mul_add_scalar(&mut dst[n..], &src[n..], c);
    }

    /// # Safety
    /// Caller must ensure GFNI + AVX-512F are available.
    #[target_feature(enable = "gfni,avx512f")]
    pub unsafe fn mul_gfni(dst: &mut [u8], src: &[u8], c: u8) {
        if c == 0 {
            dst.fill(0);
            return;
        }
        let mat = _mm512_set1_epi64(GFNI_MATRICES[c as usize] as i64);
        let n = dst.len() & !63;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm512_loadu_si512(sp.add(i) as *const _);
            let p = _mm512_gf2p8affine_epi64_epi8::<0>(s, mat);
            _mm512_storeu_si512(dp.add(i) as *mut _, p);
            i += 64;
        }
        mul_scalar(&mut dst[n..], &src[n..], c);
    }

    /// # Safety
    /// Caller must ensure AVX-512F is available.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn xor_zmm(dst: &mut [u8], src: &[u8]) {
        let n = dst.len() & !63;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm512_loadu_si512(sp.add(i) as *const _);
            let d = _mm512_loadu_si512(dp.add(i) as *const _);
            _mm512_storeu_si512(dp.add(i) as *mut _, _mm512_xor_si512(d, s));
            i += 64;
        }
        xor_scalar(&mut dst[n..], &src[n..]);
    }

    /// # Safety
    /// Caller must ensure GFNI + AVX-512F are available. Every `srcs[j]`
    /// must be at least `dst.len()` long (checked by the safe wrapper).
    #[target_feature(enable = "gfni,avx512f")]
    pub unsafe fn mul_add_multi_gfni(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
        let n = dst.len() & !63;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let mut acc = _mm512_loadu_si512(dp.add(i) as *const _);
            for (src, &c) in srcs.iter().zip(coeffs) {
                if c == 0 {
                    continue;
                }
                let s = _mm512_loadu_si512(src.as_ptr().add(i) as *const _);
                if c == 1 {
                    acc = _mm512_xor_si512(acc, s);
                    continue;
                }
                let mat = _mm512_set1_epi64(GFNI_MATRICES[c as usize] as i64);
                acc = _mm512_xor_si512(acc, _mm512_gf2p8affine_epi64_epi8::<0>(s, mat));
            }
            _mm512_storeu_si512(dp.add(i) as *mut _, acc);
            i += 64;
        }
        for (src, &c) in srcs.iter().zip(coeffs) {
            mul_add_scalar(&mut dst[n..], &src[n..], c);
        }
    }

    /// # Safety
    /// Caller must ensure AVX-512F is available. Every `srcs[j]` must be
    /// at least `dst.len()` long (checked by the safe wrapper).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn xor_multi_zmm(dst: &mut [u8], srcs: &[&[u8]]) {
        let n = dst.len() & !63;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let mut acc = _mm512_loadu_si512(dp.add(i) as *const _);
            for src in srcs {
                acc = _mm512_xor_si512(acc, _mm512_loadu_si512(src.as_ptr().add(i) as *const _));
            }
            _mm512_storeu_si512(dp.add(i) as *mut _, acc);
            i += 64;
        }
        for src in srcs {
            xor_scalar(&mut dst[n..], &src[n..]);
        }
    }
}

// Safe wrappers: only ever installed in the vtable after feature detection.
#[cfg(target_arch = "x86_64")]
mod x86_entry {
    use super::*;

    pub fn mul_add_ssse3(dst: &mut [u8], src: &[u8], c: u8) {
        unsafe { x86::mul_add_ssse3(dst, src, c) }
    }
    pub fn mul_ssse3(dst: &mut [u8], src: &[u8], c: u8) {
        unsafe { x86::mul_ssse3(dst, src, c) }
    }
    pub fn xor_ssse3(dst: &mut [u8], src: &[u8]) {
        unsafe { x86::xor_ssse3(dst, src) }
    }
    pub fn mul_add_multi_ssse3(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
        unsafe { x86::mul_add_multi_ssse3(dst, srcs, coeffs) }
    }
    pub fn xor_multi_ssse3(dst: &mut [u8], srcs: &[&[u8]]) {
        // 128-bit XOR gains little over SWAR; reuse the fused SWAR form.
        xor_multi_swar(dst, srcs)
    }

    pub fn mul_add_avx2(dst: &mut [u8], src: &[u8], c: u8) {
        unsafe { x86::mul_add_avx2(dst, src, c) }
    }
    pub fn mul_avx2(dst: &mut [u8], src: &[u8], c: u8) {
        unsafe { x86::mul_avx2(dst, src, c) }
    }
    pub fn xor_avx2(dst: &mut [u8], src: &[u8]) {
        unsafe { x86::xor_avx2(dst, src) }
    }
    pub fn mul_add_multi_avx2(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
        unsafe { x86::mul_add_multi_avx2(dst, srcs, coeffs) }
    }
    pub fn xor_multi_avx2(dst: &mut [u8], srcs: &[&[u8]]) {
        unsafe { x86::xor_multi_avx2(dst, srcs) }
    }

    pub fn mul_add_gfni(dst: &mut [u8], src: &[u8], c: u8) {
        unsafe { gfni::mul_add_gfni(dst, src, c) }
    }
    pub fn mul_gfni(dst: &mut [u8], src: &[u8], c: u8) {
        unsafe { gfni::mul_gfni(dst, src, c) }
    }
    pub fn xor_gfni(dst: &mut [u8], src: &[u8]) {
        unsafe { gfni::xor_zmm(dst, src) }
    }
    pub fn mul_add_multi_gfni(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
        unsafe { gfni::mul_add_multi_gfni(dst, srcs, coeffs) }
    }
    pub fn xor_multi_gfni(dst: &mut [u8], srcs: &[&[u8]]) {
        unsafe { gfni::xor_multi_zmm(dst, srcs) }
    }
}

// ---------------------------------------------------------------------------
// aarch64 NEON kernels (vqtbl1q_u8 is the 16-entry shuffle).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::*;
    use core::arch::aarch64::*;

    /// # Safety
    /// NEON is mandatory on aarch64; unsafe only for the intrinsics.
    #[target_feature(enable = "neon")]
    pub unsafe fn mul_add_neon(dst: &mut [u8], src: &[u8], c: u8) {
        if c == 0 {
            return;
        }
        let lo_t = vld1q_u8(NIB_LO[c as usize].as_ptr());
        let hi_t = vld1q_u8(NIB_HI[c as usize].as_ptr());
        let mask = vdupq_n_u8(0x0F);
        let n = dst.len() & !15;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let s = vld1q_u8(sp.add(i));
            let d = vld1q_u8(dp.add(i));
            let lo = vqtbl1q_u8(lo_t, vandq_u8(s, mask));
            let hi = vqtbl1q_u8(hi_t, vshrq_n_u8(s, 4));
            let p = veorq_u8(lo, hi);
            vst1q_u8(dp.add(i), veorq_u8(d, p));
            i += 16;
        }
        mul_add_scalar(&mut dst[n..], &src[n..], c);
    }

    /// # Safety
    /// NEON is mandatory on aarch64; unsafe only for the intrinsics.
    #[target_feature(enable = "neon")]
    pub unsafe fn mul_neon(dst: &mut [u8], src: &[u8], c: u8) {
        if c == 0 {
            dst.fill(0);
            return;
        }
        let lo_t = vld1q_u8(NIB_LO[c as usize].as_ptr());
        let hi_t = vld1q_u8(NIB_HI[c as usize].as_ptr());
        let mask = vdupq_n_u8(0x0F);
        let n = dst.len() & !15;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let s = vld1q_u8(sp.add(i));
            let lo = vqtbl1q_u8(lo_t, vandq_u8(s, mask));
            let hi = vqtbl1q_u8(hi_t, vshrq_n_u8(s, 4));
            vst1q_u8(dp.add(i), veorq_u8(lo, hi));
            i += 16;
        }
        mul_scalar(&mut dst[n..], &src[n..], c);
    }

    /// # Safety
    /// NEON is mandatory on aarch64; unsafe only for the intrinsics.
    #[target_feature(enable = "neon")]
    pub unsafe fn xor_neon(dst: &mut [u8], src: &[u8]) {
        let n = dst.len() & !15;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            vst1q_u8(
                dp.add(i),
                veorq_u8(vld1q_u8(dp.add(i)), vld1q_u8(sp.add(i))),
            );
            i += 16;
        }
        xor_scalar(&mut dst[n..], &src[n..]);
    }

    /// # Safety
    /// NEON is mandatory on aarch64; unsafe only for the intrinsics.
    /// Every `srcs[j]` must be at least `dst.len()` long.
    #[target_feature(enable = "neon")]
    pub unsafe fn mul_add_multi_neon(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
        let mask = vdupq_n_u8(0x0F);
        let n = dst.len() & !15;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let mut acc = vld1q_u8(dp.add(i));
            for (src, &c) in srcs.iter().zip(coeffs) {
                if c == 0 {
                    continue;
                }
                let s = vld1q_u8(src.as_ptr().add(i));
                if c == 1 {
                    acc = veorq_u8(acc, s);
                    continue;
                }
                let lo_t = vld1q_u8(NIB_LO[c as usize].as_ptr());
                let hi_t = vld1q_u8(NIB_HI[c as usize].as_ptr());
                let lo = vqtbl1q_u8(lo_t, vandq_u8(s, mask));
                let hi = vqtbl1q_u8(hi_t, vshrq_n_u8(s, 4));
                acc = veorq_u8(acc, veorq_u8(lo, hi));
            }
            vst1q_u8(dp.add(i), acc);
            i += 16;
        }
        for (src, &c) in srcs.iter().zip(coeffs) {
            mul_add_scalar(&mut dst[n..], &src[n..], c);
        }
    }

    /// # Safety
    /// NEON is mandatory on aarch64; unsafe only for the intrinsics.
    /// Every `srcs[j]` must be at least `dst.len()` long.
    #[target_feature(enable = "neon")]
    pub unsafe fn xor_multi_neon(dst: &mut [u8], srcs: &[&[u8]]) {
        let n = dst.len() & !15;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let mut acc = vld1q_u8(dp.add(i));
            for src in srcs {
                acc = veorq_u8(acc, vld1q_u8(src.as_ptr().add(i)));
            }
            vst1q_u8(dp.add(i), acc);
            i += 16;
        }
        for src in srcs {
            xor_scalar(&mut dst[n..], &src[n..]);
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon_entry {
    use super::*;

    pub fn mul_add_neon(dst: &mut [u8], src: &[u8], c: u8) {
        unsafe { neon::mul_add_neon(dst, src, c) }
    }
    pub fn mul_neon(dst: &mut [u8], src: &[u8], c: u8) {
        unsafe { neon::mul_neon(dst, src, c) }
    }
    pub fn xor_neon(dst: &mut [u8], src: &[u8]) {
        unsafe { neon::xor_neon(dst, src) }
    }
    pub fn mul_add_multi_neon(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
        unsafe { neon::mul_add_multi_neon(dst, srcs, coeffs) }
    }
    pub fn xor_multi_neon(dst: &mut [u8], srcs: &[&[u8]]) {
        unsafe { neon::xor_multi_neon(dst, srcs) }
    }
}

// ---------------------------------------------------------------------------
// The dispatch vtable.
// ---------------------------------------------------------------------------

/// A set of GF(2^8) slice kernels for one instruction-set tier.
///
/// All methods check shape invariants (equal lengths) and are safe; the
/// unsafe SIMD entries behind them are only installed after runtime
/// feature detection.
pub struct Kernel {
    name: &'static str,
    mul_add: fn(&mut [u8], &[u8], u8),
    mul: fn(&mut [u8], &[u8], u8),
    xor: fn(&mut [u8], &[u8]),
    mul_add_multi: fn(&mut [u8], &[&[u8]], &[u8]),
    xor_multi: fn(&mut [u8], &[&[u8]]),
}

/// Scalar reference tier: 256-byte product-table row walk.
static SCALAR: Kernel = Kernel {
    name: "scalar",
    mul_add: mul_add_scalar,
    mul: mul_scalar,
    xor: xor_scalar,
    mul_add_multi: mul_add_multi_scalar,
    xor_multi: xor_multi_scalar,
};

/// Portable SWAR tier: 8 byte-lanes per u64 word.
static SWAR: Kernel = Kernel {
    name: "swar",
    mul_add: mul_add_swar,
    mul: mul_swar,
    xor: xor_swar,
    mul_add_multi: mul_add_multi_swar,
    xor_multi: xor_multi_swar,
};

#[cfg(target_arch = "x86_64")]
static SSSE3: Kernel = Kernel {
    name: "ssse3",
    mul_add: x86_entry::mul_add_ssse3,
    mul: x86_entry::mul_ssse3,
    xor: x86_entry::xor_ssse3,
    mul_add_multi: x86_entry::mul_add_multi_ssse3,
    xor_multi: x86_entry::xor_multi_ssse3,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Kernel = Kernel {
    name: "avx2",
    mul_add: x86_entry::mul_add_avx2,
    mul: x86_entry::mul_avx2,
    xor: x86_entry::xor_avx2,
    mul_add_multi: x86_entry::mul_add_multi_avx2,
    xor_multi: x86_entry::xor_multi_avx2,
};

/// GFNI/AVX-512 tier: one `GF2P8AFFINEQB` per 64-byte block replaces the
/// whole nibble-split-and-shuffle dance.
#[cfg(target_arch = "x86_64")]
static GFNI: Kernel = Kernel {
    name: "gfni",
    mul_add: x86_entry::mul_add_gfni,
    mul: x86_entry::mul_gfni,
    xor: x86_entry::xor_gfni,
    mul_add_multi: x86_entry::mul_add_multi_gfni,
    xor_multi: x86_entry::xor_multi_gfni,
};

#[cfg(target_arch = "aarch64")]
static NEON: Kernel = Kernel {
    name: "neon",
    mul_add: neon_entry::mul_add_neon,
    mul: neon_entry::mul_neon,
    xor: neon_entry::xor_neon,
    mul_add_multi: neon_entry::mul_add_multi_neon,
    xor_multi: neon_entry::xor_multi_neon,
};

fn detect_available() -> Vec<&'static Kernel> {
    #[allow(unused_mut)]
    let mut found: Vec<&'static Kernel> = vec![&SCALAR, &SWAR];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("ssse3") {
            found.push(&SSSE3);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            found.push(&AVX2);
        }
        if std::arch::is_x86_feature_detected!("gfni")
            && std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vbmi")
        {
            found.push(&GFNI);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        found.push(&NEON);
    }
    found
}

fn available() -> &'static [&'static Kernel] {
    static AVAILABLE: OnceLock<Vec<&'static Kernel>> = OnceLock::new();
    AVAILABLE.get_or_init(detect_available)
}

fn select_active() -> &'static Kernel {
    if let Ok(name) = std::env::var("SDR_GF256_KERNEL") {
        if let Some(k) = available().iter().find(|k| k.name == name) {
            return k;
        }
        eprintln!(
            "SDR_GF256_KERNEL={name} not available on this host; \
             using best (have: {:?})",
            Kernel::all().iter().map(|k| k.name()).collect::<Vec<_>>()
        );
    }
    // Widest SIMD tier if any; otherwise scalar. SWAR is never auto-picked:
    // its bit-sliced multiply loses to the table walk (it exists as the
    // portable reference the differential tests pit SIMD against, and for
    // XOR-only workloads on exotic targets).
    available()
        .iter()
        .rev()
        .find(|k| k.name != "swar")
        .expect("scalar tier always present")
}

impl Kernel {
    /// The kernel the erasure codes are using: the widest tier the host
    /// supports, selected once (overridable via `SDR_GF256_KERNEL`).
    pub fn active() -> &'static Kernel {
        static ACTIVE: OnceLock<&'static Kernel> = OnceLock::new();
        ACTIVE.get_or_init(select_active)
    }

    /// All tiers usable on this host, slowest first. Always contains
    /// `scalar` and `swar`; SIMD tiers appear when detected.
    pub fn all() -> &'static [&'static Kernel] {
        available()
    }

    /// The scalar reference tier (the pre-SIMD baseline).
    pub fn scalar() -> &'static Kernel {
        &SCALAR
    }

    /// The portable SWAR tier.
    pub fn swar() -> &'static Kernel {
        &SWAR
    }

    /// Looks a tier up by name (`"scalar"`, `"swar"`, `"ssse3"`, …).
    pub fn by_name(name: &str) -> Option<&'static Kernel> {
        available().iter().copied().find(|k| k.name == name)
    }

    /// This tier's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `dst[i] ^= c · src[i]`.
    ///
    /// # Panics
    /// Panics when `dst.len() != src.len()`.
    #[inline]
    pub fn mul_add_slice(&self, dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len());
        (self.mul_add)(dst, src, c);
    }

    /// `dst[i] = c · src[i]`.
    ///
    /// # Panics
    /// Panics when `dst.len() != src.len()`.
    #[inline]
    pub fn mul_slice(&self, dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len());
        (self.mul)(dst, src, c);
    }

    /// `dst[i] ^= src[i]`.
    ///
    /// # Panics
    /// Panics when `dst.len() != src.len()`.
    #[inline]
    pub fn xor_slice(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len());
        (self.xor)(dst, src);
    }

    /// Fused accumulate: `dst[i] ^= Σ_j coeffs[j] · srcs[j][i]`, one
    /// destination pass for all sources.
    ///
    /// # Panics
    /// Panics when `srcs.len() != coeffs.len()` or any source length
    /// differs from `dst.len()`.
    #[inline]
    pub fn mul_add_multi(&self, dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
        assert_eq!(srcs.len(), coeffs.len());
        for s in srcs {
            assert_eq!(s.len(), dst.len());
        }
        (self.mul_add_multi)(dst, srcs, coeffs);
    }

    /// Fused XOR accumulate: `dst[i] ^= Σ_j srcs[j][i]`.
    ///
    /// # Panics
    /// Panics when any source length differs from `dst.len()`.
    #[inline]
    pub fn xor_multi(&self, dst: &mut [u8], srcs: &[&[u8]]) {
        for s in srcs {
            assert_eq!(s.len(), dst.len());
        }
        (self.xor_multi)(dst, srcs);
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("name", &self.name).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf256;

    #[test]
    fn nibble_tables_match_mul_table() {
        for c in 0..256usize {
            for x in 0..256usize {
                let expect = gf256::MUL[c][x];
                let got = NIB_LO[c][x & 0xF] ^ NIB_HI[c][x >> 4];
                assert_eq!(got, expect, "c={c} x={x}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn gfni_affine_matrices_encode_field_multiplication() {
        // Software evaluation of the GF2P8AFFINEQB semantics:
        // dst.bit[i] = parity(matrix.byte[7-i] & x). Every (c, x) pair must
        // equal the product table without touching the instruction itself,
        // so this holds even on hosts without GFNI.
        for c in 0..256usize {
            let m = GFNI_MATRICES[c].to_le_bytes();
            for x in 0..256usize {
                let mut y = 0u8;
                for i in 0..8 {
                    let parity = (m[7 - i] & x as u8).count_ones() & 1;
                    y |= (parity as u8) << i;
                }
                assert_eq!(y, gf256::MUL[c][x], "c={c} x={x}");
            }
        }
    }

    #[test]
    fn active_is_among_available() {
        let names: Vec<_> = Kernel::all().iter().map(|k| k.name()).collect();
        assert!(names.contains(&"scalar"));
        assert!(names.contains(&"swar"));
        assert!(names.contains(&Kernel::active().name()));
    }

    #[test]
    fn swar_x2_matches_field_doubling() {
        for x in 0..256u64 {
            let v = x * 0x0101_0101_0101_0101; // broadcast
            let expect = gf256::mul(2, x as u8);
            let got = swar_x2(v);
            for lane in 0..8 {
                assert_eq!(((got >> (8 * lane)) & 0xFF) as u8, expect, "x={x}");
            }
        }
    }

    #[test]
    fn every_kernel_matches_scalar_on_odd_lengths() {
        let src: Vec<u8> = (0..1003).map(|i| (i * 31 % 256) as u8).collect();
        let base: Vec<u8> = (0..1003).map(|i| (i * 7 % 256) as u8).collect();
        for k in Kernel::all() {
            for c in [0u8, 1, 2, 133, 255] {
                let mut want = base.clone();
                mul_add_scalar(&mut want, &src, c);
                let mut got = base.clone();
                k.mul_add_slice(&mut got, &src, c);
                assert_eq!(got, want, "kernel={} c={c} mul_add", k.name());

                let mut want = base.clone();
                mul_scalar(&mut want, &src, c);
                let mut got = base.clone();
                k.mul_slice(&mut got, &src, c);
                assert_eq!(got, want, "kernel={} c={c} mul", k.name());
            }
            let mut want = base.clone();
            xor_scalar(&mut want, &src);
            let mut got = base.clone();
            k.xor_slice(&mut got, &src);
            assert_eq!(got, want, "kernel={} xor", k.name());
        }
    }

    #[test]
    fn fused_multi_matches_repeated_single() {
        let srcs: Vec<Vec<u8>> = (0..5)
            .map(|j| (0..777).map(|i| ((i * 13 + j * 89) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
        let coeffs = [7u8, 0, 1, 255, 88];
        for k in Kernel::all() {
            let mut want = vec![3u8; 777];
            for (s, &c) in refs.iter().zip(&coeffs) {
                mul_add_scalar(&mut want, s, c);
            }
            let mut got = vec![3u8; 777];
            k.mul_add_multi(&mut got, &refs, &coeffs);
            assert_eq!(got, want, "kernel={} mul_add_multi", k.name());

            let mut want = vec![9u8; 777];
            for s in &refs {
                xor_scalar(&mut want, s);
            }
            let mut got = vec![9u8; 777];
            k.xor_multi(&mut got, &refs);
            assert_eq!(got, want, "kernel={} xor_multi", k.name());
        }
    }
}
