//! Multi-threaded erasure encoding.
//!
//! The paper hides EC encoding behind data injection by running it on spare
//! CPU cores (Section 4.1.2, Figure 11: XOR saturates 400 Gbit/s with 4
//! cores, MDS needs ~8). Erasure codes are column-wise independent, so we
//! split the shard length into per-thread stripes and encode each stripe
//! concurrently on the persistent [`EncodePool`] — no locks, no shared
//! mutable state, and no per-call thread spawn.
//!
//! [`encode_parallel_into_spawn`] keeps the original per-call
//! `std::thread::scope` implementation as the A/B baseline: the fig11
//! bench pits it against the pooled path to measure the dispatch saving.

use crate::codec::ErasureCode;
use crate::pool::EncodePool;

/// Stripe alignment: keep per-thread slices cache-line aligned.
const STRIPE_ALIGN: usize = 64;

/// Splits every mutable slice in `views` at `at`, returning the heads and
/// keeping the tails in `views`.
fn split_all<'a>(views: &mut Vec<&'a mut [u8]>, at: usize) -> Vec<&'a mut [u8]> {
    let mut heads = Vec::with_capacity(views.len());
    for v in views.iter_mut() {
        let taken = std::mem::take(v);
        let (head, tail) = taken.split_at_mut(at);
        heads.push(head);
        *v = tail;
    }
    heads
}

/// Encodes `data` with `code` into **caller-owned** parity buffers using up
/// to `threads` worker threads — the zero-steady-state-allocation encode
/// entry point: parity is written strictly in place, letting callers pool
/// and reuse their staging buffers across submessages.
///
/// Equivalent to [`ErasureCode::encode_into`] but with the shard length
/// divided into independent column stripes. Falls back to single-threaded
/// encoding for small shards (< one stripe per thread), in which case the
/// call performs no heap allocation at all.
///
/// # Panics
/// Panics when shard counts or lengths are inconsistent.
pub fn encode_parallel_into(
    code: &dyn ErasureCode,
    data: &[&[u8]],
    parity: &mut [&mut [u8]],
    threads: usize,
) {
    assert_eq!(data.len(), code.data_shards());
    assert_eq!(parity.len(), code.parity_shards());
    let len = data.first().map_or(0, |d| d.len());
    assert!(data.iter().all(|d| d.len() == len), "ragged data shards");
    assert!(
        parity.iter().all(|p| p.len() == len),
        "ragged parity shards"
    );
    let threads = threads.max(1);

    if threads == 1 || len < threads * STRIPE_ALIGN {
        code.encode_into(data, parity);
        return;
    }

    EncodePool::global().encode_striped(code, data, parity, threads);
}

/// The pre-pool implementation of [`encode_parallel_into`]: spawns fresh
/// `std::thread::scope` threads on every call. Kept as the per-call-spawn
/// baseline the fig11 bench compares the persistent pool against; not used
/// on any production path.
///
/// # Panics
/// Panics when shard counts or lengths are inconsistent.
pub fn encode_parallel_into_spawn(
    code: &dyn ErasureCode,
    data: &[&[u8]],
    parity: &mut [&mut [u8]],
    threads: usize,
) {
    assert_eq!(data.len(), code.data_shards());
    assert_eq!(parity.len(), code.parity_shards());
    let len = data.first().map_or(0, |d| d.len());
    assert!(data.iter().all(|d| d.len() == len), "ragged data shards");
    assert!(
        parity.iter().all(|p| p.len() == len),
        "ragged parity shards"
    );
    let threads = threads.max(1);

    if threads == 1 || len < threads * STRIPE_ALIGN {
        code.encode_into(data, parity);
        return;
    }

    // Carve [0, len) into `threads` stripes aligned to STRIPE_ALIGN.
    let base = len / threads / STRIPE_ALIGN * STRIPE_ALIGN;
    let mut bounds = Vec::with_capacity(threads);
    let mut used = 0;
    for i in 0..threads {
        let size = if i == threads - 1 { len - used } else { base };
        bounds.push(size);
        used += size;
    }

    let mut parity_tails: Vec<&mut [u8]> = parity.iter_mut().map(|p| &mut **p).collect();
    std::thread::scope(|scope| {
        let mut offset = 0usize;
        for &size in &bounds {
            if size == 0 {
                continue;
            }
            let parity_stripe = split_all(&mut parity_tails, size);
            let data_stripe: Vec<&[u8]> = data.iter().map(|d| &d[offset..offset + size]).collect();
            offset += size;
            scope.spawn(move || {
                let mut views = parity_stripe;
                code.encode_into(&data_stripe, &mut views);
            });
        }
    });
}

/// Encodes `data` with `code` using up to `threads` worker threads,
/// returning freshly allocated parity shards.
///
/// Allocating convenience wrapper over [`encode_parallel_into`].
pub fn encode_parallel(code: &dyn ErasureCode, data: &[&[u8]], threads: usize) -> Vec<Vec<u8>> {
    let len = data.first().map_or(0, |d| d.len());
    let mut parity = vec![vec![0u8; len]; code.parity_shards()];
    {
        let mut views: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
        encode_parallel_into(code, data, &mut views, threads);
    }
    parity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rs::ReedSolomon;
    use crate::xor::XorCode;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        let mut rng = SmallRng::seed_from_u64(123);
        (0..k)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect()
    }

    #[test]
    fn parallel_rs_matches_serial() {
        let code = ReedSolomon::new(8, 3);
        let data = random_data(8, 64 * 1024 + 13);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode(&refs);
        for threads in [1, 2, 3, 4, 8] {
            assert_eq!(
                encode_parallel(&code, &refs, threads),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_xor_matches_serial() {
        let code = XorCode::new(32, 8);
        let data = random_data(32, 17 * 1024);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode(&refs);
        assert_eq!(encode_parallel(&code, &refs, 4), serial);
    }

    #[test]
    fn tiny_shards_fall_back_to_serial() {
        let code = ReedSolomon::new(4, 2);
        let data = random_data(4, 16);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode(&refs);
        assert_eq!(encode_parallel(&code, &refs, 8), serial);
    }

    #[test]
    fn encode_into_writes_caller_buffers_in_place() {
        // The zero-allocation contract: parity lands in exactly the
        // buffers the caller provided — same backing storage, no swaps.
        let code = ReedSolomon::new(6, 3);
        let data = random_data(6, 8 * 1024 + 5);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let expect = code.encode(&refs);

        let mut parity = vec![vec![0xAAu8; 8 * 1024 + 5]; 3];
        let ptrs: Vec<*const u8> = parity.iter().map(|p| p.as_ptr()).collect();
        for threads in [1, 4] {
            for p in parity.iter_mut() {
                p.fill(0xAA);
            }
            {
                let mut views: Vec<&mut [u8]> =
                    parity.iter_mut().map(|p| p.as_mut_slice()).collect();
                encode_parallel_into(&code, &refs, &mut views, threads);
            }
            assert_eq!(parity, expect, "threads={threads}");
            for (p, &ptr) in parity.iter().zip(&ptrs) {
                assert_eq!(p.as_ptr(), ptr, "parity buffer was reallocated");
            }
        }
    }

    #[test]
    fn pooled_path_matches_spawn_baseline() {
        let code = ReedSolomon::new(8, 3);
        let data = random_data(8, 96 * 1024 + 31);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        for threads in [2, 3, 8] {
            let mut pooled = vec![vec![0u8; 96 * 1024 + 31]; 3];
            let mut spawned = vec![vec![0u8; 96 * 1024 + 31]; 3];
            {
                let mut views: Vec<&mut [u8]> =
                    pooled.iter_mut().map(|p| p.as_mut_slice()).collect();
                encode_parallel_into(&code, &refs, &mut views, threads);
            }
            {
                let mut views: Vec<&mut [u8]> =
                    spawned.iter_mut().map(|p| p.as_mut_slice()).collect();
                encode_parallel_into_spawn(&code, &refs, &mut views, threads);
            }
            assert_eq!(pooled, spawned, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "ragged parity shards")]
    fn encode_into_rejects_wrong_parity_len() {
        let code = XorCode::new(2, 1);
        let data = random_data(2, 64);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut short = vec![0u8; 32];
        let mut views: Vec<&mut [u8]> = vec![short.as_mut_slice()];
        encode_parallel_into(&code, &refs, &mut views, 1);
    }

    #[test]
    fn zero_length_is_fine() {
        let code = XorCode::new(2, 1);
        let data = [vec![], vec![]];
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let p = encode_parallel(&code, &refs, 4);
        assert_eq!(p, vec![Vec::<u8>::new()]);
    }
}
