//! Systematic Reed–Solomon coding — the paper's MDS scheme.
//!
//! An `RS(k, m)` code recovers the `k` data shards from **any** `k` of the
//! `k + m` transmitted shards (Maximum Distance Separable). The encode
//! matrix is derived from a Vandermonde matrix normalized so its top `k`
//! rows are the identity (systematic form), the standard construction used
//! by ISA-L and other storage codecs.

use crate::codec::{shard_len, EcError, ErasureCode};
use crate::gf256;
use crate::matrix::Matrix;

/// A systematic `RS(k, m)` Reed–Solomon code over GF(2^8).
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// Full `(k+m) × k` systematic encode matrix (top `k` rows identity).
    matrix: Matrix,
}

impl ReedSolomon {
    /// Builds an `RS(k, m)` code.
    ///
    /// # Panics
    /// Panics unless `k ≥ 1`, `m ≥ 1` and `k + m ≤ 256` (the GF(256) field
    /// size bounds the number of distinct shards).
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k >= 1 && m >= 1, "need at least one data and parity shard");
        assert!(k + m <= 256, "GF(256) supports at most 256 shards");
        let v = Matrix::vandermonde(k + m, k);
        let top_inv = v
            .select_rows(&(0..k).collect::<Vec<_>>())
            .inverse()
            .expect("leading Vandermonde square is invertible");
        let matrix = v.mul(&top_inv);
        // Sanity: systematic form.
        debug_assert!((0..k).all(|i| (0..k).all(|j| matrix[(i, j)] == u8::from(i == j))));
        ReedSolomon { k, m, matrix }
    }

    /// The parity row for parity shard `i` (coefficients over data shards).
    fn parity_row(&self, i: usize) -> &[u8] {
        self.matrix.row(self.k + i)
    }
}

impl ErasureCode for ReedSolomon {
    fn data_shards(&self) -> usize {
        self.k
    }

    fn parity_shards(&self) -> usize {
        self.m
    }

    fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) {
        assert_eq!(data.len(), self.k, "expected {} data shards", self.k);
        assert_eq!(parity.len(), self.m, "expected {} parity shards", self.m);
        let len = data[0].len();
        assert!(data.iter().all(|d| d.len() == len), "ragged data shards");
        for (i, p) in parity.iter_mut().enumerate() {
            assert_eq!(p.len(), len, "ragged parity shard {i}");
            p.fill(0);
            let row = self.parity_row(i);
            for (j, d) in data.iter().enumerate() {
                gf256::mul_add_slice(p, d, row[j]);
            }
        }
    }

    fn can_recover(&self, present: &[bool]) -> bool {
        present.len() == self.k + self.m
            && present.iter().filter(|&&p| p).count() >= self.k
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let len = shard_len(shards, self.k + self.m)?;
        if shards.iter().all(|s| s.is_some()) {
            return Ok(());
        }
        let present_idx: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect();
        if present_idx.len() < self.k {
            return Err(EcError::Unrecoverable);
        }
        let use_idx = &present_idx[..self.k];

        // Invert the k×k submatrix of encode rows for the shards we hold:
        // data = inv(rows) × held_shards.
        let sub = self.matrix.select_rows(use_idx);
        let inv = sub.inverse().ok_or(EcError::Unrecoverable)?;

        let missing_data: Vec<usize> =
            (0..self.k).filter(|&i| shards[i].is_none()).collect();
        let mut recovered: Vec<(usize, Vec<u8>)> = Vec::with_capacity(missing_data.len());
        for &d in &missing_data {
            let mut out = vec![0u8; len];
            for (col, &src) in use_idx.iter().enumerate() {
                let c = inv[(d, col)];
                let shard = shards[src].as_ref().expect("present by construction");
                gf256::mul_add_slice(&mut out, shard, c);
            }
            recovered.push((d, out));
        }
        for (d, buf) in recovered {
            shards[d] = Some(buf);
        }

        // Refill missing parity from the (now complete) data shards.
        for p in 0..self.m {
            if shards[self.k + p].is_none() {
                let mut out = vec![0u8; len];
                let row = self.parity_row(p);
                for j in 0..self.k {
                    let d = shards[j].as_ref().expect("data complete");
                    gf256::mul_add_slice(&mut out, d, row[j]);
                }
                shards[self.k + p] = Some(out);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_shards(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect()
    }

    fn roundtrip(k: usize, m: usize, erase: &[usize]) {
        let code = ReedSolomon::new(k, m);
        let data = random_shards(k, 257, 99);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs);

        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        for &e in erase {
            shards[e] = None;
        }
        code.reconstruct(&mut shards).expect("recoverable");
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_ref().unwrap(), d, "data shard {i}");
        }
        for (i, p) in parity.iter().enumerate() {
            assert_eq!(shards[k + i].as_ref().unwrap(), p, "parity shard {i}");
        }
    }

    #[test]
    fn recovers_any_m_erasures() {
        roundtrip(4, 2, &[0, 1]); // two data
        roundtrip(4, 2, &[4, 5]); // two parity
        roundtrip(4, 2, &[1, 5]); // mixed
        roundtrip(8, 3, &[0, 4, 7]);
        roundtrip(32, 8, &[0, 5, 9, 13, 20, 31, 33, 39]); // the paper's split
    }

    #[test]
    fn fails_beyond_m_erasures() {
        let code = ReedSolomon::new(4, 2);
        let data = random_shards(4, 64, 7);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert_eq!(code.reconstruct(&mut shards), Err(EcError::Unrecoverable));
    }

    #[test]
    fn can_recover_counts_survivors() {
        let code = ReedSolomon::new(3, 2);
        assert!(code.can_recover(&[true, true, true, false, false]));
        assert!(code.can_recover(&[false, false, true, true, true]));
        assert!(!code.can_recover(&[false, false, true, true, false]));
        assert!(!code.can_recover(&[true, true])); // wrong length
    }

    #[test]
    fn parity_is_deterministic_and_nontrivial() {
        let code = ReedSolomon::new(3, 2);
        let data = random_shards(3, 128, 5);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let p1 = code.encode(&refs);
        let p2 = code.encode(&refs);
        assert_eq!(p1, p2);
        assert_ne!(p1[0], p1[1], "distinct parity rows");
        assert!(p1[0].iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_length_shards_are_rejected_by_reconstruct() {
        let code = ReedSolomon::new(2, 1);
        let mut shards: Vec<Option<Vec<u8>>> = vec![None, None, None];
        assert_eq!(code.reconstruct(&mut shards), Err(EcError::Unrecoverable));
    }

    #[test]
    fn ragged_shards_are_rejected() {
        let code = ReedSolomon::new(2, 1);
        let mut shards = vec![Some(vec![0u8; 4]), Some(vec![0u8; 5]), None];
        assert_eq!(code.reconstruct(&mut shards), Err(EcError::ShapeMismatch));
    }

    #[test]
    #[should_panic(expected = "at most 256 shards")]
    fn field_size_limit() {
        ReedSolomon::new(250, 10);
    }
}
