//! Systematic Reed–Solomon coding — the paper's MDS scheme.
//!
//! An `RS(k, m)` code recovers the `k` data shards from **any** `k` of the
//! `k + m` transmitted shards (Maximum Distance Separable). The encode
//! matrix is derived from a Vandermonde matrix normalized so its top `k`
//! rows are the identity (systematic form), the standard construction used
//! by ISA-L and other storage codecs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::codec::{shard_len, EcError, ErasureCode};
use crate::kernel::{Kernel, STRIP_BYTES};
use crate::matrix::Matrix;

/// GF(256) bounds the shard count, so survivor/source reference arrays fit
/// on the stack — no per-call allocation in the encode path.
const MAX_SHARDS: usize = 256;

/// Decode-matrix cache entries retained per `(k, m)` shape (small: under
/// steady loss the survivor set repeats across polls, so a handful of
/// patterns covers almost every decode).
const DECODE_CACHE_CAP: usize = 8;

/// The capacity new shared per-shape caches are created with.
static DEFAULT_DECODE_CACHE_CAP: AtomicUsize = AtomicUsize::new(DECODE_CACHE_CAP);

/// Sets the capacity used when a `(k, m)` shape's **shared** decode cache
/// is first created (default 8). Shapes whose cache already exists keep
/// their capacity — configure before building codes. Per-instance
/// overrides via [`ReedSolomon::with_decode_cache_capacity`] are
/// unaffected.
pub fn set_decode_cache_default_capacity(cap: usize) {
    DEFAULT_DECODE_CACHE_CAP.store(cap, Ordering::Relaxed);
}

/// The capacity new shared per-shape decode caches are created with.
pub fn decode_cache_default_capacity() -> usize {
    DEFAULT_DECODE_CACHE_CAP.load(Ordering::Relaxed)
}

/// One decode cache per `(k, m)` shape, shared process-wide. The systematic
/// encode matrix is a pure function of the shape, so two independently
/// built `RS(k, m)` codes invert identical survivor submatrices — a striped
/// message decoding on many receivers (or the EC receiver's full-size and
/// tail codes across transfers) should pay each erasure pattern's O(k³)
/// inversion once, not once per code instance.
fn shared_decode_cache(k: usize, m: usize) -> Arc<DecodeCache> {
    static REGISTRY: OnceLock<Mutex<HashMap<(usize, usize), Arc<DecodeCache>>>> = OnceLock::new();
    let reg = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut g = reg.lock().expect("decode-cache registry poisoned");
    g.entry((k, m))
        .or_insert_with(|| Arc::new(DecodeCache::new(decode_cache_default_capacity())))
        .clone()
}

/// An LRU of inverted `k × k` survivor submatrices, keyed by the survivor
/// index set. Reconstruction inverts the encode rows of the `k` shards it
/// holds — O(k³) work that repeats identically whenever the same erasure
/// pattern recurs, which is the common case under steady loss (the same
/// chunk positions of a striped message fail together, and the EC receiver
/// decodes many submessages with the same drop shape). Shared across
/// clones of the code and safe from the encode pool's worker threads.
struct DecodeCache {
    /// `(survivor indices, inverse)`, most-recently-used last.
    entries: Mutex<Vec<(Vec<u8>, Arc<Matrix>)>>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DecodeCache {
    fn new(cap: usize) -> Self {
        DecodeCache {
            entries: Mutex::new(Vec::with_capacity(cap)),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cached inverse for `survivors`, or `invert()`'s result (cached
    /// on success). `None` when the submatrix is singular — never cached;
    /// with per-key success this cannot happen for MDS codes, but the
    /// cache stays agnostic.
    fn get_or_insert(
        &self,
        survivors: &[u8],
        invert: impl FnOnce() -> Option<Matrix>,
    ) -> Option<Arc<Matrix>> {
        if self.cap == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return invert().map(Arc::new);
        }
        {
            let mut e = self.entries.lock().expect("decode cache poisoned");
            if let Some(pos) = e.iter().position(|(key, _)| key.as_slice() == survivors) {
                let entry = e.remove(pos);
                let inv = entry.1.clone();
                e.push(entry); // move to MRU
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(inv);
            }
        }
        // Invert outside the lock: concurrent decoders of distinct
        // patterns don't serialize on the O(k³) work.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let inv = Arc::new(invert()?);
        let mut e = self.entries.lock().expect("decode cache poisoned");
        if !e.iter().any(|(key, _)| key.as_slice() == survivors) {
            if e.len() >= self.cap {
                e.remove(0); // evict LRU
            }
            e.push((survivors.to_vec(), inv.clone()));
        }
        Some(inv)
    }
}

impl std::fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeCache")
            .field("cap", &self.cap)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

/// A systematic `RS(k, m)` Reed–Solomon code over GF(2^8).
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// Full `(k+m) × k` systematic encode matrix (top `k` rows identity).
    matrix: Matrix,
    /// Inverted survivor submatrices — by default the process-wide cache
    /// shared by every `RS(k, m)` of this shape (and all clones).
    decode_cache: Arc<DecodeCache>,
}

impl ReedSolomon {
    /// Builds an `RS(k, m)` code.
    ///
    /// # Panics
    /// Panics unless `k ≥ 1`, `m ≥ 1` and `k + m ≤ 256` (the GF(256) field
    /// size bounds the number of distinct shards).
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k >= 1 && m >= 1, "need at least one data and parity shard");
        assert!(k + m <= 256, "GF(256) supports at most 256 shards");
        let v = Matrix::vandermonde(k + m, k);
        let top_inv = v
            .select_rows(&(0..k).collect::<Vec<_>>())
            .inverse()
            .expect("leading Vandermonde square is invertible");
        let matrix = v.mul(&top_inv);
        // Sanity: systematic form.
        debug_assert!((0..k).all(|i| (0..k).all(|j| matrix[(i, j)] == u8::from(i == j))));
        ReedSolomon {
            k,
            m,
            matrix,
            decode_cache: shared_decode_cache(k, m),
        }
    }

    /// Overrides the decode-matrix cache with a **private** one of the
    /// given capacity (builder style), detaching this instance (and its
    /// clones) from the shared per-shape cache. `0` disables caching — the
    /// uncached baseline the differential tests compare against.
    pub fn with_decode_cache_capacity(mut self, cap: usize) -> Self {
        self.decode_cache = Arc::new(DecodeCache::new(cap));
        self
    }

    /// Decode-cache hit/miss counters (observability: a steady repeated
    /// erasure pattern must stop paying the O(k³) inversion).
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        (
            self.decode_cache.hits.load(Ordering::Relaxed),
            self.decode_cache.misses.load(Ordering::Relaxed),
        )
    }

    /// The parity row for parity shard `i`: the `k` coefficients applied
    /// to the data shards. Public so benchmarks and external encoders can
    /// drive the [`Kernel`] kernels directly.
    ///
    /// # Panics
    /// Panics when `i ≥ m`.
    pub fn parity_row(&self, i: usize) -> &[u8] {
        assert!(i < self.m, "parity row {i} out of range");
        self.matrix.row(self.k + i)
    }

    /// [`ErasureCode::encode_into`] through an explicit kernel tier — the
    /// single implementation of the cache-blocked strip walk. Production
    /// encoding passes [`Kernel::active`]; benchmarks pin tiers to compare
    /// them, guaranteed to measure the exact production code path.
    ///
    /// # Panics
    /// Panics when shard counts or lengths are inconsistent.
    pub fn encode_into_with_kernel(&self, kern: &Kernel, data: &[&[u8]], parity: &mut [&mut [u8]]) {
        assert_eq!(data.len(), self.k, "expected {} data shards", self.k);
        assert_eq!(parity.len(), self.m, "expected {} parity shards", self.m);
        let len = data[0].len();
        assert!(data.iter().all(|d| d.len() == len), "ragged data shards");
        for (i, p) in parity.iter().enumerate() {
            assert_eq!(p.len(), len, "ragged parity shard {i}");
        }
        // Cache-blocked matrix walk: process ~32 KiB strips so each parity
        // strip stays in L1/L2 while all k sources stream through the fused
        // kernel exactly once per parity row.
        let mut strip_srcs: [&[u8]; MAX_SHARDS] = [&[]; MAX_SHARDS];
        let mut s = 0;
        while s < len {
            let e = (s + STRIP_BYTES).min(len);
            for (j, d) in data.iter().enumerate() {
                strip_srcs[j] = &d[s..e];
            }
            for (i, p) in parity.iter_mut().enumerate() {
                let dst = &mut p[s..e];
                dst.fill(0);
                kern.mul_add_multi(dst, &strip_srcs[..self.k], self.parity_row(i));
            }
            s = e;
        }
    }
}

impl ErasureCode for ReedSolomon {
    fn data_shards(&self) -> usize {
        self.k
    }

    fn parity_shards(&self) -> usize {
        self.m
    }

    fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) {
        self.encode_into_with_kernel(Kernel::active(), data, parity);
    }

    fn can_recover(&self, present: &[bool]) -> bool {
        present.len() == self.k + self.m && present.iter().filter(|&&p| p).count() >= self.k
    }

    fn reconstruct_into(
        &self,
        shards: &mut [Option<Vec<u8>>],
        alloc: &mut dyn FnMut(usize) -> Vec<u8>,
    ) -> Result<(), EcError> {
        let len = shard_len(shards, self.k + self.m)?;
        if shards.iter().all(|s| s.is_some()) {
            return Ok(());
        }
        // Survivor indices live on the stack (GF(256) bounds k + m), so the
        // only allocations left on this path are the k×k submatrix and its
        // inverse — O(k²) bytes, independent of the shard length.
        let mut present_idx = [0usize; MAX_SHARDS];
        let mut present = 0usize;
        for (i, s) in shards.iter().enumerate() {
            if s.is_some() {
                if present < self.k {
                    present_idx[present] = i;
                }
                present += 1;
            }
        }
        if present < self.k {
            return Err(EcError::Unrecoverable);
        }
        let use_idx = &present_idx[..self.k];

        // The k×k submatrix inverse of the encode rows for the shards we
        // hold (data = inv(rows) × held_shards): O(k³) to build, so the
        // LRU keyed by the survivor set skips it when the erasure pattern
        // repeats. GF(256) bounds indices to u8, keeping keys tiny.
        let mut key = [0u8; MAX_SHARDS];
        for (dst, &idx) in key[..self.k].iter_mut().zip(use_idx) {
            *dst = idx as u8;
        }
        let inv = self
            .decode_cache
            .get_or_insert(&key[..self.k], || {
                self.matrix.select_rows(use_idx).inverse()
            })
            .ok_or(EcError::Unrecoverable)?;

        let kern = Kernel::active();
        let mut coeffs = [0u8; MAX_SHARDS];
        for d in 0..self.k {
            if shards[d].is_some() {
                continue;
            }
            for (col, c) in coeffs[..self.k].iter_mut().enumerate() {
                *c = inv[(d, col)];
            }
            let mut out = alloc(len);
            debug_assert!(out.len() == len && out.iter().all(|&b| b == 0));
            {
                // `use_idx` only names originally-present shards, so filling
                // slot `d` never invalidates a source of a later iteration.
                let mut srcs: [&[u8]; MAX_SHARDS] = [&[]; MAX_SHARDS];
                for (col, &src) in use_idx.iter().enumerate() {
                    srcs[col] = shards[src].as_ref().expect("present by construction");
                }
                kern.mul_add_multi(&mut out, &srcs[..self.k], &coeffs[..self.k]);
            }
            shards[d] = Some(out);
        }

        // Refill missing parity from the (now complete) data shards.
        for p in 0..self.m {
            if shards[self.k + p].is_some() {
                continue;
            }
            let mut out = alloc(len);
            debug_assert!(out.len() == len && out.iter().all(|&b| b == 0));
            {
                let mut srcs: [&[u8]; MAX_SHARDS] = [&[]; MAX_SHARDS];
                for (j, slot) in srcs[..self.k].iter_mut().enumerate() {
                    *slot = shards[j].as_ref().expect("data complete");
                }
                kern.mul_add_multi(&mut out, &srcs[..self.k], self.parity_row(p));
            }
            shards[self.k + p] = Some(out);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_shards(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect()
    }

    fn roundtrip(k: usize, m: usize, erase: &[usize]) {
        let code = ReedSolomon::new(k, m);
        let data = random_shards(k, 257, 99);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs);

        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        for &e in erase {
            shards[e] = None;
        }
        code.reconstruct(&mut shards).expect("recoverable");
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_ref().unwrap(), d, "data shard {i}");
        }
        for (i, p) in parity.iter().enumerate() {
            assert_eq!(shards[k + i].as_ref().unwrap(), p, "parity shard {i}");
        }
    }

    #[test]
    fn recovers_any_m_erasures() {
        roundtrip(4, 2, &[0, 1]); // two data
        roundtrip(4, 2, &[4, 5]); // two parity
        roundtrip(4, 2, &[1, 5]); // mixed
        roundtrip(8, 3, &[0, 4, 7]);
        roundtrip(32, 8, &[0, 5, 9, 13, 20, 31, 33, 39]); // the paper's split
    }

    #[test]
    fn fails_beyond_m_erasures() {
        let code = ReedSolomon::new(4, 2);
        let data = random_shards(4, 64, 7);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert_eq!(code.reconstruct(&mut shards), Err(EcError::Unrecoverable));
    }

    #[test]
    fn can_recover_counts_survivors() {
        let code = ReedSolomon::new(3, 2);
        assert!(code.can_recover(&[true, true, true, false, false]));
        assert!(code.can_recover(&[false, false, true, true, true]));
        assert!(!code.can_recover(&[false, false, true, true, false]));
        assert!(!code.can_recover(&[true, true])); // wrong length
    }

    #[test]
    fn parity_is_deterministic_and_nontrivial() {
        let code = ReedSolomon::new(3, 2);
        let data = random_shards(3, 128, 5);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let p1 = code.encode(&refs);
        let p2 = code.encode(&refs);
        assert_eq!(p1, p2);
        assert_ne!(p1[0], p1[1], "distinct parity rows");
        assert!(p1[0].iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_length_shards_are_rejected_by_reconstruct() {
        let code = ReedSolomon::new(2, 1);
        let mut shards: Vec<Option<Vec<u8>>> = vec![None, None, None];
        assert_eq!(code.reconstruct(&mut shards), Err(EcError::Unrecoverable));
    }

    #[test]
    fn ragged_shards_are_rejected() {
        let code = ReedSolomon::new(2, 1);
        let mut shards = vec![Some(vec![0u8; 4]), Some(vec![0u8; 5]), None];
        assert_eq!(code.reconstruct(&mut shards), Err(EcError::ShapeMismatch));
    }

    #[test]
    #[should_panic(expected = "at most 256 shards")]
    fn field_size_limit() {
        ReedSolomon::new(250, 10);
    }

    /// Erasure patterns drawn with repeats: every reconstruction through
    /// the decode-matrix cache must be byte-identical to the uncached
    /// baseline, and repeated patterns must hit the cache.
    #[test]
    fn decode_cache_differential_vs_uncached() {
        let (k, m) = (8usize, 3usize);
        // Private cache at the default capacity: the differential must not
        // see hits/misses other tests feed into the shared (8,3) cache.
        let cached = ReedSolomon::new(k, m).with_decode_cache_capacity(DECODE_CACHE_CAP);
        let uncached = ReedSolomon::new(k, m).with_decode_cache_capacity(0);
        let data = random_shards(k, 513, 17);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = cached.encode(&refs);
        assert_eq!(parity, uncached.encode(&refs), "encode unaffected");

        let mut rng = SmallRng::seed_from_u64(23);
        // A few distinct patterns drawn repeatedly (steady-loss shape).
        let patterns: Vec<Vec<usize>> = (0..4)
            .map(|_| {
                let mut e: Vec<usize> = (0..k + m).collect();
                for i in 0..m {
                    let j = rng.random_range(i..k + m);
                    e.swap(i, j);
                }
                e.truncate(m);
                e
            })
            .collect();
        for round in 0..24 {
            let erase = &patterns[round % patterns.len()];
            let stage = |code: &ReedSolomon| {
                let mut shards: Vec<Option<Vec<u8>>> = data
                    .iter()
                    .cloned()
                    .map(Some)
                    .chain(parity.iter().cloned().map(Some))
                    .collect();
                for &e in erase {
                    shards[e] = None;
                }
                code.reconstruct(&mut shards).expect("recoverable");
                shards
            };
            assert_eq!(
                stage(&cached),
                stage(&uncached),
                "round {round} pattern {erase:?}"
            );
        }
        let (hits, misses) = cached.decode_cache_stats();
        assert!(
            hits >= 20,
            "repeated patterns must hit the cache: {hits} hits / {misses} misses"
        );
        assert!(misses <= 4, "one miss per distinct pattern: {misses}");
        let (uh, _) = uncached.decode_cache_stats();
        assert_eq!(uh, 0, "capacity 0 disables caching");
    }

    /// Serializes the tests that read the shared registry's counters or
    /// mutate the default capacity (tests run concurrently in one process).
    fn registry_test_lock() -> &'static std::sync::Mutex<()> {
        static LOCK: OnceLock<std::sync::Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
    }

    /// Reconstructs with `erase`d shards through `code` (shards built from
    /// `data`/`parity`).
    fn decode_with(code: &ReedSolomon, data: &[Vec<u8>], parity: &[Vec<u8>], erase: &[usize]) {
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        for &e in erase {
            shards[e] = None;
        }
        code.reconstruct(&mut shards).expect("recoverable");
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_ref().unwrap(), d, "data shard {i}");
        }
    }

    /// Two *independently built* codes of the same shape share one decode
    /// cache: a pattern inverted through one is a hit through the other,
    /// and eviction happens in the one shared LRU. (Shape (10, 2) is used
    /// by no other test, so the counters are ours under the lock.)
    #[test]
    fn shared_cache_spans_instances_of_equal_shape_and_evicts() {
        let _g = registry_test_lock().lock().unwrap();
        let (k, m) = (10usize, 2usize);
        let a = ReedSolomon::new(k, m);
        let b = ReedSolomon::new(k, m);
        assert_eq!(decode_cache_default_capacity(), 8, "expected default");
        let data = random_shards(k, 96, 41);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = a.encode(&refs);
        let (h0, m0) = a.decode_cache_stats();

        // Eight distinct patterns through `a` fill the shared cache...
        for i in 0..8 {
            decode_with(&a, &data, &parity, &[i, i + 1]);
        }
        // ...and are hits through the *other* instance.
        decode_with(&b, &data, &parity, &[0, 1]);
        // A ninth pattern through `b` evicts the shared LRU entry, which by
        // now is [1, 2] ([0, 1] was just touched).
        decode_with(&b, &data, &parity, &[9, 11]);
        decode_with(&a, &data, &parity, &[2, 3]); // hit: retained
        decode_with(&a, &data, &parity, &[1, 2]); // miss: evicted
        let (h1, m1) = a.decode_cache_stats();
        assert_eq!(
            (h1 - h0, m1 - m0),
            (2, 10),
            "shared hits/misses across instances"
        );
        let (hb, mb) = b.decode_cache_stats();
        assert_eq!((hb, mb), (h1, m1), "one cache, one counter set");
    }

    /// The shared cache's creation capacity is configurable; shapes created
    /// under a lowered default evict sooner. (Shape (11, 2) is unique to
    /// this test; the default is restored under the lock.)
    #[test]
    fn shared_cache_default_capacity_is_configurable() {
        let _g = registry_test_lock().lock().unwrap();
        let before = decode_cache_default_capacity();
        set_decode_cache_default_capacity(2);
        let code = ReedSolomon::new(11, 2);
        set_decode_cache_default_capacity(before);

        let data = random_shards(11, 64, 43);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs);
        let (h0, m0) = code.decode_cache_stats();
        decode_with(&code, &data, &parity, &[0, 1]); // miss
        decode_with(&code, &data, &parity, &[2, 3]); // miss
        decode_with(&code, &data, &parity, &[4, 5]); // miss → evicts [0,1]
        decode_with(&code, &data, &parity, &[0, 1]); // miss again (cap 2)
        decode_with(&code, &data, &parity, &[0, 1]); // hit
        let (h1, m1) = code.decode_cache_stats();
        assert_eq!((h1 - h0, m1 - m0), (1, 4));
    }

    /// The LRU evicts the oldest pattern and clones share one cache.
    #[test]
    fn decode_cache_evicts_and_is_shared_across_clones() {
        let code = ReedSolomon::new(4, 2).with_decode_cache_capacity(2);
        let clone = code.clone();
        let data = random_shards(4, 64, 3);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs);
        let run = |c: &ReedSolomon, erase: [usize; 2]| {
            let mut shards: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .map(Some)
                .chain(parity.iter().cloned().map(Some))
                .collect();
            for e in erase {
                shards[e] = None;
            }
            c.reconstruct(&mut shards).expect("recoverable");
        };
        run(&code, [0, 1]); // miss → cached
        run(&clone, [0, 1]); // hit through the clone (shared cache)
        run(&code, [2, 3]); // miss → cached
        run(&code, [0, 4]); // miss → evicts [0,1]'s survivors (LRU)
        run(&code, [0, 1]); // miss again (evicted)
        let (hits, misses) = code.decode_cache_stats();
        assert_eq!((hits, misses), (1, 4));
    }
}
