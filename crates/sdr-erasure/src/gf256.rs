//! Arithmetic over GF(2^8) with the AES-friendly reduction polynomial
//! x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the field used by Reed–Solomon
//! storage codes.
//!
//! Tables are generated at compile time: a 512-entry exponent table (doubled
//! to skip the `mod 255` in multiplication), a log table, and the full
//! 256×256 product table used by the hot slice kernels.

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        // Multiply x by the generator (2) with reduction by 0x11D.
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11D;
        }
        i += 1;
    }
    // Duplicate so exp[log a + log b] needs no modulo.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_exp_log();
/// `EXP[i] = g^i` for `i` in `0..512` (period 255, duplicated).
pub static EXP: [u8; 512] = TABLES.0;
/// `LOG[x] = log_g(x)` for nonzero `x`; `LOG[0]` is unused.
pub static LOG: [u8; 256] = TABLES.1;

const fn build_mul_table() -> [[u8; 256]; 256] {
    let (exp, log) = build_exp_log();
    let mut t = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let mut b = 1usize;
        while b < 256 {
            t[a][b] = exp[log[a] as usize + log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    t
}

/// Full product table: `MUL[a][b] = a·b` in GF(2^8). 64 KiB, fits in L2.
pub static MUL: [[u8; 256]; 256] = build_mul_table();

/// Field addition (= subtraction): XOR.
#[inline(always)]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
#[inline(always)]
pub fn mul(a: u8, b: u8) -> u8 {
    MUL[a as usize][b as usize]
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics on `a == 0`, which has no inverse.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Field division `a / b`.
///
/// # Panics
/// Panics on division by zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let d = LOG[a as usize] as usize + 255 - LOG[b as usize] as usize;
    EXP[d]
}

/// Exponentiation `a^n`.
#[inline]
pub fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = (LOG[a as usize] as u64 * n as u64) % 255;
    EXP[l as usize]
}

/// `dst ^= src`, dispatched to the widest SIMD tier the host supports
/// (see [`crate::kernel::Kernel`]).
#[inline]
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    crate::kernel::Kernel::active().xor_slice(dst, src);
}

/// `dst[i] ^= c · src[i]` — the Reed–Solomon encode/decode kernel,
/// dispatched to the widest SIMD tier the host supports.
///
/// `c == 0` is a no-op and `c == 1` degrades to [`xor_slice`].
#[inline]
pub fn mul_add_slice(dst: &mut [u8], src: &[u8], c: u8) {
    crate::kernel::Kernel::active().mul_add_slice(dst, src, c);
}

/// `dst[i] = c · src[i]`, dispatched to the widest SIMD tier the host
/// supports.
#[inline]
pub fn mul_slice(dst: &mut [u8], src: &[u8], c: u8) {
    crate::kernel::Kernel::active().mul_slice(dst, src, c);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_are_inverse() {
        for x in 1..=255u16 {
            let x = x as u8;
            assert_eq!(EXP[LOG[x as usize] as usize], x);
        }
    }

    #[test]
    fn multiplication_matches_schoolbook() {
        // Carry-less multiply with reduction, bit by bit.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= 0x1D;
                }
                b >>= 1;
            }
            p
        }
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                assert_eq!(
                    mul(a as u8, b as u8),
                    slow_mul(a as u8, b as u8),
                    "{a} * {b}"
                );
            }
        }
    }

    #[test]
    fn field_axioms_hold() {
        for a in 1..=255u16 {
            let a = a as u8;
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(div(a, a), 1);
        }
        // Distributivity spot checks.
        for (a, b, c) in [(3u8, 7u8, 9u8), (200, 131, 77), (255, 254, 253)] {
            assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [0u8, 1, 2, 3, 7, 130, 255] {
            let mut acc = 1u8;
            for n in 0..20u32 {
                assert_eq!(pow(a, n), acc, "a={a} n={n}");
                acc = mul(acc, a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn inv_zero_panics() {
        inv(0);
    }

    #[test]
    fn slice_kernels_match_scalar() {
        let src: Vec<u8> = (0..1003).map(|i| (i * 31 % 256) as u8).collect();
        for c in [0u8, 1, 2, 133] {
            let mut dst: Vec<u8> = (0..1003).map(|i| (i * 7 % 256) as u8).collect();
            let expect: Vec<u8> = dst.iter().zip(&src).map(|(&d, &s)| d ^ mul(c, s)).collect();
            mul_add_slice(&mut dst, &src, c);
            assert_eq!(dst, expect, "c={c}");
        }
        let mut dst = vec![0u8; 1003];
        mul_slice(&mut dst, &src, 77);
        assert!(dst.iter().zip(&src).all(|(&d, &s)| d == mul(77, s)));
    }

    #[test]
    fn xor_slice_is_involution() {
        let src: Vec<u8> = (0..777).map(|i| (i % 251) as u8).collect();
        let orig: Vec<u8> = (0..777).map(|i| (i % 13) as u8).collect();
        let mut dst = orig.clone();
        xor_slice(&mut dst, &src);
        assert_ne!(dst, orig);
        xor_slice(&mut dst, &src);
        assert_eq!(dst, orig);
    }
}
