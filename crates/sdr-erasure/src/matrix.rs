//! Dense matrices over GF(2^8) — just enough linear algebra for
//! Reed–Solomon: construction, multiplication, and Gauss–Jordan inversion.

use crate::gf256;

/// A row-major matrix over GF(2^8).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Vandermonde matrix with evaluation points `0, 1, …, rows-1`:
    /// `V[r][c] = r^c`. Any `cols` distinct rows are linearly independent,
    /// which is the MDS property Reed–Solomon relies on.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 256, "GF(256) supports at most 256 distinct points");
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = gf256::pow(r as u8, c as u32);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r`.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Builds a new matrix from a subset of this one's rows.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut m = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            let dst = i * self.cols;
            m.data[dst..dst + self.cols].copy_from_slice(self.row(r));
        }
        m
    }

    /// Matrix product `self × rhs`.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] ^= gf256::mul(a, rhs[(k, j)]);
                }
            }
        }
        out
    }

    /// Gauss–Jordan inversion. Returns `None` for singular matrices.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a[(r, col)] != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = a[(col, col)];
            let pinv = gf256::inv(p);
            a.scale_row(col, pinv);
            inv.scale_row(col, pinv);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r != col && a[(r, col)] != 0 {
                    let factor = a[(r, col)];
                    a.add_scaled_row(r, col, factor);
                    inv.add_scaled_row(r, col, factor);
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (top, bottom) = self.data.split_at_mut(b * self.cols);
        top[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut bottom[..self.cols]);
    }

    fn scale_row(&mut self, r: usize, c: u8) {
        for v in &mut self.data[r * self.cols..(r + 1) * self.cols] {
            *v = gf256::mul(*v, c);
        }
    }

    /// `row[dst] ^= c · row[src]`.
    fn add_scaled_row(&mut self, dst: usize, src: usize, c: u8) {
        for j in 0..self.cols {
            let s = self[(src, j)];
            self[(dst, j)] ^= gf256::mul(c, s);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = u8;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &u8 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut u8 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let v = Matrix::vandermonde(5, 5);
        let i = Matrix::identity(5);
        assert_eq!(v.mul(&i), v);
        assert_eq!(i.mul(&v), v);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let v = Matrix::vandermonde(6, 6);
        let vi = v.inverse().expect("vandermonde is invertible");
        assert_eq!(v.mul(&vi), Matrix::identity(6));
        assert_eq!(vi.mul(&v), Matrix::identity(6));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let mut m = Matrix::zero(3, 3);
        // Two identical rows.
        for j in 0..3 {
            m[(0, j)] = j as u8 + 1;
            m[(1, j)] = j as u8 + 1;
            m[(2, j)] = 7;
        }
        assert!(m.inverse().is_none());
    }

    #[test]
    fn any_square_vandermonde_row_subset_is_invertible() {
        // The MDS property: every k-row subset must invert.
        let v = Matrix::vandermonde(8, 4);
        // Try a handful of 4-row subsets including adversarial ones.
        for rows in [
            [0usize, 1, 2, 3],
            [4, 5, 6, 7],
            [0, 3, 5, 7],
            [1, 2, 4, 6],
            [0, 1, 6, 7],
        ] {
            assert!(
                v.select_rows(&rows).inverse().is_some(),
                "rows {rows:?} must be independent"
            );
        }
    }

    #[test]
    fn select_rows_extracts_expected_values() {
        let v = Matrix::vandermonde(4, 3);
        let s = v.select_rows(&[2, 0]);
        assert_eq!(s.row(0), v.row(2));
        assert_eq!(s.row(1), v.row(0));
    }
}
