//! # sdr-erasure — erasure-coding substrate for SDR-RDMA
//!
//! The paper's EC-based reliability layer (Section 4.1.2) encodes each data
//! submessage of `k` chunks into `m` parity chunks so the receiver can repair
//! chunk drops in place. The authors use Intel ISA-L for the MDS code and a
//! hand-rolled AVX-512 XOR code; this crate provides from-scratch
//! equivalents:
//!
//! * [`gf256`] — compile-time GF(2^8) tables and the hot slice kernels.
//! * [`kernel`] — runtime-dispatched SIMD tiers (GFNI `GF2P8AFFINEQB` and
//!   SSSE3/AVX2 nibble-shuffle on x86_64, NEON on aarch64, portable SWAR,
//!   scalar reference) behind the [`Kernel`] vtable, plus fused
//!   multi-source variants.
//! * [`Matrix`] — Vandermonde construction and Gauss–Jordan inversion.
//! * [`ReedSolomon`] — systematic MDS code: recovers from **any** `m`
//!   erasures among `k + m` shards; encode is cache-blocked into ~32 KiB
//!   strips driven through the fused kernel.
//! * [`XorCode`] — the paper's XOR modulo-group code: parity `i` is the XOR
//!   of data blocks `j ≡ i (mod m)`; tolerates one loss per group.
//! * [`pool`] — the persistent [`EncodePool`]: long-lived workers fed over
//!   channels, with an async [`EncodePool::submit`]/[`PendingEncode::wait`]
//!   split so reliability layers overlap encoding with injection (the
//!   paper's spare-core model).
//! * [`encode_parallel`] / [`encode_parallel_into`] — column-striped
//!   multi-threaded encoding used to hide the encode cost behind injection
//!   (Figure 11); dispatches stripes to the pool (no per-call thread
//!   spawn); the `_into` form writes caller-owned parity buffers and
//!   allocates nothing in the single-thread path.
//!   [`encode_parallel_into_spawn`] keeps the per-call `thread::scope`
//!   baseline for A/B benches.
//! * [`crc32c`] — runtime-dispatched CRC32C (Castagnoli) behind the
//!   [`Crc32c`] vtable: the x86_64 `CRC32` instruction tier (8.0 GiB/s)
//!   over the portable slice-by-8 fallback (1.46 GiB/s), pinnable via
//!   `SDR_CRC32C_KERNEL`. Every integrity check in the stack — control
//!   trailers, per-packet payload checksums, EC shard audits, the
//!   whole-message delivery digest — funnels through this primitive;
//!   [`Crc32cHasher`] streams large buffers incrementally.
//!
//! # Kernel dispatch
//!
//! The widest tier the host supports is selected once at startup
//! ([`Kernel::active`]); pin a tier with `SDR_GF256_KERNEL=scalar|swar|…`
//! for A/B runs. Measured with `cargo bench -p sdr-bench --bench
//! fig11_ec_encode` on the CI container (GFNI/AVX-512 x86_64, 1 core):
//!
//! | tier   | `mul_add_slice` 64 KiB | MDS(32,8) encode, 1 thread |
//! |--------|------------------------|----------------------------|
//! | scalar | 2.14 GiB/s             | 0.26 GiB/s                 |
//! | swar   | 0.58 GiB/s             | 0.07 GiB/s                 |
//! | ssse3  | 17.8 GiB/s             | 1.48 GiB/s                 |
//! | avx2   | 28.8 GiB/s             | 2.25 GiB/s (8.6× scalar)   |
//! | gfni   | 34.7 GiB/s             | 3.79 GiB/s (14.6× scalar)  |
//!
//! XOR(32,8) serial encode reaches 18.7 GiB/s (≈150 Gbit/s) on the same
//! core, consistent with the paper's claim that XOR hides 400 Gbit/s
//! injection behind 4 cores.

#![warn(missing_docs)]

pub mod codec;
pub mod crc32c;
pub mod gf256;
pub mod kernel;
pub mod matrix;
pub mod parallel;
pub mod pool;
pub mod rs;
pub mod xor;

pub use codec::{EcError, ErasureCode};
pub use crc32c::{crc32c, Crc32c, Crc32cHasher};
pub use kernel::Kernel;
pub use matrix::Matrix;
pub use parallel::{encode_parallel, encode_parallel_into, encode_parallel_into_spawn};
pub use pool::{EncodeJob, EncodePool, PendingEncode};
pub use rs::{decode_cache_default_capacity, set_decode_cache_default_capacity, ReedSolomon};
pub use xor::XorCode;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_shards(k: usize, len: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), len), k)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// MDS invariant: any erasure pattern with ≥ k survivors recovers
        /// the exact original data.
        #[test]
        fn rs_recovers_any_k_subset(
            data in arb_shards(6, 96),
            pattern in proptest::collection::vec(any::<bool>(), 9),
        ) {
            let code = ReedSolomon::new(6, 3);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = code.encode(&refs);
            let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some)
                .chain(parity.into_iter().map(Some)).collect();
            let survivors = pattern.iter().filter(|&&p| p).count();
            for (s, &keep) in shards.iter_mut().zip(&pattern) {
                if !keep { *s = None; }
            }
            let res = code.reconstruct(&mut shards);
            if survivors >= 6 {
                prop_assert!(res.is_ok());
                for (i, d) in data.iter().enumerate() {
                    prop_assert_eq!(shards[i].as_ref().unwrap(), d);
                }
            } else {
                prop_assert_eq!(res, Err(EcError::Unrecoverable));
            }
        }

        /// XOR invariant: recovery succeeds iff every modulo group has at
        /// most one missing member (counting its parity only when a data
        /// block is missing), and recovered data is exact.
        #[test]
        fn xor_recovery_matches_group_rule(
            data in arb_shards(8, 64),
            pattern in proptest::collection::vec(any::<bool>(), 12),
        ) {
            let code = XorCode::new(8, 4);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = code.encode(&refs);
            let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some)
                .chain(parity.into_iter().map(Some)).collect();
            for (s, &keep) in shards.iter_mut().zip(&pattern) {
                if !keep { *s = None; }
            }
            let expect_ok = code.can_recover(&pattern);
            let res = code.reconstruct(&mut shards);
            prop_assert_eq!(res.is_ok(), expect_ok);
            if expect_ok {
                for (i, d) in data.iter().enumerate() {
                    prop_assert_eq!(shards[i].as_ref().unwrap(), d);
                }
            }
        }

        /// Parallel encoding is bit-identical to serial encoding for both
        /// codes at arbitrary lengths and thread counts.
        #[test]
        fn parallel_encode_equals_serial(
            len in 1usize..4096,
            threads in 1usize..6,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng, rngs::SmallRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            let data: Vec<Vec<u8>> = (0..5)
                .map(|_| (0..len).map(|_| rng.random()).collect())
                .collect();
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let rs = ReedSolomon::new(5, 2);
            prop_assert_eq!(encode_parallel(&rs, &refs, threads), rs.encode(&refs));
        }
    }
}
