//! # sdr-erasure — erasure-coding substrate for SDR-RDMA
//!
//! The paper's EC-based reliability layer (Section 4.1.2) encodes each data
//! submessage of `k` chunks into `m` parity chunks so the receiver can repair
//! chunk drops in place. The authors use Intel ISA-L for the MDS code and a
//! hand-rolled AVX-512 XOR code; this crate provides from-scratch
//! equivalents:
//!
//! * [`gf256`] — compile-time GF(2^8) tables and the hot slice kernels.
//! * [`Matrix`] — Vandermonde construction and Gauss–Jordan inversion.
//! * [`ReedSolomon`] — systematic MDS code: recovers from **any** `m`
//!   erasures among `k + m` shards.
//! * [`XorCode`] — the paper's XOR modulo-group code: parity `i` is the XOR
//!   of data blocks `j ≡ i (mod m)`; tolerates one loss per group.
//! * [`encode_parallel`] — column-striped multi-threaded encoding used to
//!   hide the encode cost behind injection (Figure 11).

#![warn(missing_docs)]

pub mod codec;
pub mod gf256;
pub mod matrix;
pub mod parallel;
pub mod rs;
pub mod xor;

pub use codec::{EcError, ErasureCode};
pub use matrix::Matrix;
pub use parallel::encode_parallel;
pub use rs::ReedSolomon;
pub use xor::XorCode;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_shards(k: usize, len: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), len), k)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// MDS invariant: any erasure pattern with ≥ k survivors recovers
        /// the exact original data.
        #[test]
        fn rs_recovers_any_k_subset(
            data in arb_shards(6, 96),
            pattern in proptest::collection::vec(any::<bool>(), 9),
        ) {
            let code = ReedSolomon::new(6, 3);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = code.encode(&refs);
            let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some)
                .chain(parity.into_iter().map(Some)).collect();
            let survivors = pattern.iter().filter(|&&p| p).count();
            for (s, &keep) in shards.iter_mut().zip(&pattern) {
                if !keep { *s = None; }
            }
            let res = code.reconstruct(&mut shards);
            if survivors >= 6 {
                prop_assert!(res.is_ok());
                for (i, d) in data.iter().enumerate() {
                    prop_assert_eq!(shards[i].as_ref().unwrap(), d);
                }
            } else {
                prop_assert_eq!(res, Err(EcError::Unrecoverable));
            }
        }

        /// XOR invariant: recovery succeeds iff every modulo group has at
        /// most one missing member (counting its parity only when a data
        /// block is missing), and recovered data is exact.
        #[test]
        fn xor_recovery_matches_group_rule(
            data in arb_shards(8, 64),
            pattern in proptest::collection::vec(any::<bool>(), 12),
        ) {
            let code = XorCode::new(8, 4);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = code.encode(&refs);
            let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some)
                .chain(parity.into_iter().map(Some)).collect();
            for (s, &keep) in shards.iter_mut().zip(&pattern) {
                if !keep { *s = None; }
            }
            let expect_ok = code.can_recover(&pattern);
            let res = code.reconstruct(&mut shards);
            prop_assert_eq!(res.is_ok(), expect_ok);
            if expect_ok {
                for (i, d) in data.iter().enumerate() {
                    prop_assert_eq!(shards[i].as_ref().unwrap(), d);
                }
            }
        }

        /// Parallel encoding is bit-identical to serial encoding for both
        /// codes at arbitrary lengths and thread counts.
        #[test]
        fn parallel_encode_equals_serial(
            len in 1usize..4096,
            threads in 1usize..6,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng, rngs::SmallRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            let data: Vec<Vec<u8>> = (0..5)
                .map(|_| (0..len).map(|_| rng.random()).collect())
                .collect();
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let rs = ReedSolomon::new(5, 2);
            prop_assert_eq!(encode_parallel(&rs, &refs, threads), rs.encode(&refs));
        }
    }
}
