//! The paper's XOR modulo-group code (Section 5.1.1).
//!
//! Parity block `i` (of `m`) is the XOR of all data blocks `j` with
//! `j mod m == i`. Encoding is pure XOR — trivially vectorizable and ~2×
//! cheaper than MDS in the paper's Figure 11 — but each modulo group
//! tolerates only a **single** lost block, so resilience collapses at high
//! drop rates (the paper observes fallback at ≈1e-3 vs MDS beyond 1e-2).

use crate::codec::{shard_len, EcError, ErasureCode};
use crate::gf256::xor_slice;
use crate::kernel::{Kernel, STRIP_BYTES};

/// Stack budget for fused-XOR source batches. Unlike Reed–Solomon, `k` is
/// **not** field-bounded for the XOR code, so groups larger than this are
/// folded in batches rather than assumed to fit.
const XOR_BATCH: usize = 256;

/// XORs all of `group`'s slices into `dst` through the fused kernel, in
/// stack-sized batches so arbitrarily large modulo groups stay safe.
fn xor_group_into<'a>(kern: &Kernel, dst: &mut [u8], group: impl Iterator<Item = &'a [u8]>) {
    let mut batch: [&[u8]; XOR_BATCH] = [&[]; XOR_BATCH];
    let mut n = 0;
    for src in group {
        batch[n] = src;
        n += 1;
        if n == XOR_BATCH {
            kern.xor_multi(dst, &batch[..n]);
            n = 0;
        }
    }
    if n > 0 {
        kern.xor_multi(dst, &batch[..n]);
    }
}

/// The XOR modulo-group code `XOR(k, m)`.
#[derive(Clone, Copy, Debug)]
pub struct XorCode {
    k: usize,
    m: usize,
}

impl XorCode {
    /// Builds an `XOR(k, m)` code.
    ///
    /// # Panics
    /// Panics unless `1 ≤ m ≤ k`.
    pub fn new(k: usize, m: usize) -> Self {
        assert!(m >= 1 && m <= k, "need 1 ≤ m ≤ k");
        XorCode { k, m }
    }

    /// Data indices belonging to modulo group `i`.
    fn group(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.k).filter(move |j| j % self.m == i)
    }
}

impl ErasureCode for XorCode {
    fn data_shards(&self) -> usize {
        self.k
    }

    fn parity_shards(&self) -> usize {
        self.m
    }

    fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) {
        assert_eq!(data.len(), self.k, "expected {} data shards", self.k);
        assert_eq!(parity.len(), self.m, "expected {} parity shards", self.m);
        let len = data[0].len();
        assert!(data.iter().all(|d| d.len() == len), "ragged data shards");
        for (i, p) in parity.iter().enumerate() {
            assert_eq!(p.len(), len, "ragged parity shard {i}");
        }
        // Cache-blocked fused XOR: each ~32 KiB parity strip is written
        // once per batch while its modulo-group sources stream through.
        let kern = Kernel::active();
        let mut s = 0;
        while s < len {
            let e = (s + STRIP_BYTES).min(len);
            for (i, p) in parity.iter_mut().enumerate() {
                let dst = &mut p[s..e];
                dst.fill(0);
                xor_group_into(kern, dst, self.group(i).map(|j| &data[j][s..e]));
            }
            s = e;
        }
    }

    fn can_recover(&self, present: &[bool]) -> bool {
        if present.len() != self.k + self.m {
            return false;
        }
        (0..self.m).all(|i| {
            let missing_data = self.group(i).filter(|&j| !present[j]).count();
            let parity_present = present[self.k + i];
            // One missing data block is repairable iff the group's parity
            // arrived; with zero missing the parity doesn't matter.
            missing_data == 0 || (missing_data == 1 && parity_present)
        })
    }

    fn reconstruct_into(
        &self,
        shards: &mut [Option<Vec<u8>>],
        alloc: &mut dyn FnMut(usize) -> Vec<u8>,
    ) -> Result<(), EcError> {
        let len = shard_len(shards, self.k + self.m)?;
        if !(0..self.m).all(|i| {
            let missing_data = self.group(i).filter(|&j| shards[j].is_none()).count();
            missing_data == 0 || (missing_data == 1 && shards[self.k + i].is_some())
        }) {
            return Err(EcError::Unrecoverable);
        }
        for i in 0..self.m {
            let mut holes = self.group(i).filter(|&j| shards[j].is_none());
            match (holes.next(), holes.next()) {
                (None, _) => {}
                (Some(hole), None) => {
                    // Rebuild into a rented buffer: parity ⊕ the group's
                    // surviving data shards.
                    let mut out = alloc(len);
                    debug_assert!(out.len() == len && out.iter().all(|&b| b == 0));
                    out.copy_from_slice(shards[self.k + i].as_ref().expect("checked above"));
                    xor_group_into(
                        Kernel::active(),
                        &mut out,
                        self.group(i)
                            .filter(|&j| j != hole)
                            .map(|j| shards[j].as_ref().expect("present").as_slice()),
                    );
                    shards[hole] = Some(out);
                }
                _ => unreachable!("recoverability check admitted >1 hole"),
            }
        }
        // Refill missing parity now that data is complete.
        for i in 0..self.m {
            if shards[self.k + i].is_none() {
                let mut out = alloc(len);
                debug_assert!(out.len() == len && out.iter().all(|&b| b == 0));
                for j in self.group(i) {
                    xor_slice(&mut out, shards[j].as_ref().expect("data complete"));
                }
                shards[self.k + i] = Some(out);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn make(k: usize, m: usize, len: usize) -> (XorCode, Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let code = XorCode::new(k, m);
        let mut rng = SmallRng::seed_from_u64(17);
        let data: Vec<Vec<u8>> = (0..k)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs);
        (code, data, parity)
    }

    fn as_shards(data: &[Vec<u8>], parity: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
        data.iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect()
    }

    #[test]
    fn one_loss_per_group_recovers() {
        let (code, data, parity) = make(8, 4, 100);
        // Erase data 0 (group 0), 5 (group 1), 6 (group 2): one per group.
        let mut shards = as_shards(&data, &parity);
        for e in [0usize, 5, 6] {
            shards[e] = None;
        }
        code.reconstruct(&mut shards).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_ref().unwrap(), d, "shard {i}");
        }
    }

    #[test]
    fn two_losses_in_same_group_fail() {
        let (code, data, parity) = make(8, 4, 100);
        // Data 0 and 4 are both in group 0 (0 % 4 == 4 % 4).
        let mut shards = as_shards(&data, &parity);
        shards[0] = None;
        shards[4] = None;
        assert_eq!(code.reconstruct(&mut shards), Err(EcError::Unrecoverable));
        assert!(!code.can_recover(&[
            false, true, true, true, false, true, true, true, true, true, true, true
        ]));
    }

    #[test]
    fn lost_parity_alone_is_fine() {
        let (code, data, parity) = make(6, 3, 64);
        let mut shards = as_shards(&data, &parity);
        shards[6] = None;
        shards[8] = None;
        code.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[6].as_ref().unwrap(), &parity[0]);
        assert_eq!(shards[8].as_ref().unwrap(), &parity[2]);
        let _ = data;
    }

    #[test]
    fn lost_parity_plus_data_in_same_group_fails() {
        let (code, data, parity) = make(6, 3, 64);
        let mut shards = as_shards(&data, &parity);
        shards[0] = None; // group 0 data
        shards[6] = None; // group 0 parity
        assert_eq!(code.reconstruct(&mut shards), Err(EcError::Unrecoverable));
        let _ = data;
        let _ = parity;
    }

    #[test]
    fn parity_is_group_xor() {
        let (code, data, parity) = make(4, 2, 16);
        let _ = code;
        // Group 0: data 0 ^ data 2; group 1: data 1 ^ data 3.
        for b in 0..16 {
            assert_eq!(parity[0][b], data[0][b] ^ data[2][b]);
            assert_eq!(parity[1][b], data[1][b] ^ data[3][b]);
        }
    }

    #[test]
    fn groups_larger_than_one_batch_encode_and_recover() {
        // k is not field-bounded for the XOR code: with (k, m) = (600, 2)
        // each modulo group holds 300 > XOR_BATCH/2 members, and the fused
        // path must batch rather than overrun its stack staging array.
        let (code, data, parity) = make(600, 2, 96);
        // Parity is still the plain group XOR.
        for b in 0..96 {
            let want = (0..600)
                .filter(|j| j % 2 == 0)
                .fold(0u8, |a, j| a ^ data[j][b]);
            assert_eq!(parity[0][b], want, "byte {b}");
        }
        // And single-loss recovery works through the batched path.
        let mut shards = as_shards(&data, &parity);
        shards[4] = None; // group 0
        shards[7] = None; // group 1
        code.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[4].as_ref().unwrap(), &data[4]);
        assert_eq!(shards[7].as_ref().unwrap(), &data[7]);
    }

    #[test]
    fn paper_config_32_8_tolerates_spread_losses() {
        let (code, data, parity) = make(32, 8, 64);
        // 8 losses, one in each modulo group: 0..8 are in groups 0..8
        let mut shards = as_shards(&data, &parity);
        for e in 0..8 {
            shards[e] = None;
        }
        code.reconstruct(&mut shards).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_ref().unwrap(), d);
        }
    }
}
