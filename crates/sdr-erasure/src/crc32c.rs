//! Runtime-dispatched CRC32C (Castagnoli) kernels.
//!
//! Every integrity check PR 10 adds — control-datagram trailers, per-packet
//! payload checksums, EC shard validation, the whole-message delivery
//! digest — funnels through this one primitive, so it must stay off the
//! goodput critical path. Two tiers, selected **once** at startup into a
//! [`Crc32c`] vtable exactly like the GF(2^8) [`Kernel`](crate::Kernel):
//!
//! * `sse42` — the x86_64 `CRC32` instruction (`_mm_crc32_u64`), one qword
//!   per cycle-ish; this is the hardware tier ISA-L and the kernel's
//!   `crc32c-intel` use.
//! * `slice8` — the classic slice-by-8 table walk (8 × 256 u32 tables
//!   built at compile time), the portable software fallback.
//!
//! Dispatch can be pinned for testing/benchmarks with the
//! `SDR_CRC32C_KERNEL` environment variable (`slice8`, `sse42`).
//!
//! The polynomial is Castagnoli 0x1EDC6F41 (reflected 0x82F63B78) — the
//! iSCSI/RDMA choice, *not* the zlib CRC32 — with the conventional
//! `!0` init and final complement, so `crc32c(b"123456789") ==
//! 0xE306_9283` (the RFC 3720 check value).

use std::sync::OnceLock;

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

// ---------------------------------------------------------------------------
// Compile-time slice-by-8 tables.
// ---------------------------------------------------------------------------

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    // t[k][b] extends t[k-1][b] by one extra zero byte, so one 8-byte
    // slice lookup composes eight single-byte steps.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    t
}

static TABLES: [[u32; 256]; 8] = build_tables();

// ---------------------------------------------------------------------------
// Software tier: slice-by-8.
// ---------------------------------------------------------------------------

fn step_slice8(mut crc: u32, mut data: &[u8]) -> u32 {
    let t = &TABLES;
    while data.len() >= 8 {
        let w = u64::from_le_bytes(data[..8].try_into().unwrap()) ^ crc as u64;
        crc = t[7][(w & 0xFF) as usize]
            ^ t[6][((w >> 8) & 0xFF) as usize]
            ^ t[5][((w >> 16) & 0xFF) as usize]
            ^ t[4][((w >> 24) & 0xFF) as usize]
            ^ t[3][((w >> 32) & 0xFF) as usize]
            ^ t[2][((w >> 40) & 0xFF) as usize]
            ^ t[1][((w >> 48) & 0xFF) as usize]
            ^ t[0][((w >> 56) & 0xFF) as usize];
        data = &data[8..];
    }
    for &b in data {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

// ---------------------------------------------------------------------------
// Hardware tier: the x86_64 CRC32 instruction (SSE4.2).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod sse42 {
    /// # Safety
    /// Caller must have verified SSE4.2 via runtime feature detection.
    #[target_feature(enable = "sse4.2")]
    pub unsafe fn step(crc: u32, data: &[u8]) -> u32 {
        use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
        let mut p = data.as_ptr();
        let mut len = data.len();
        let mut c = crc as u64;
        while len >= 8 {
            c = _mm_crc32_u64(c, (p as *const u64).read_unaligned().to_le());
            p = p.add(8);
            len -= 8;
        }
        let mut c = c as u32;
        while len > 0 {
            c = _mm_crc32_u8(c, *p);
            p = p.add(1);
            len -= 1;
        }
        c
    }
}

#[cfg(target_arch = "x86_64")]
fn step_sse42(crc: u32, data: &[u8]) -> u32 {
    // Safe: SSE42 is only installed in the vtable after detection.
    unsafe { sse42::step(crc, data) }
}

// ---------------------------------------------------------------------------
// The dispatch vtable.
// ---------------------------------------------------------------------------

/// A CRC32C kernel for one instruction-set tier.
///
/// `step` is the raw state transition (no init / final complement), which
/// is what lets [`Crc32cHasher`] checksum a large buffer incrementally —
/// the whole-message delivery digest streams 40 MiB through it chunk by
/// chunk without staging a contiguous copy.
pub struct Crc32c {
    name: &'static str,
    step: fn(u32, &[u8]) -> u32,
}

/// Portable software tier.
static SLICE8: Crc32c = Crc32c {
    name: "slice8",
    step: step_slice8,
};

#[cfg(target_arch = "x86_64")]
static SSE42: Crc32c = Crc32c {
    name: "sse42",
    step: step_sse42,
};

fn detect_available() -> Vec<&'static Crc32c> {
    #[allow(unused_mut)]
    let mut found: Vec<&'static Crc32c> = vec![&SLICE8];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            found.push(&SSE42);
        }
    }
    found
}

fn available() -> &'static [&'static Crc32c] {
    static AVAILABLE: OnceLock<Vec<&'static Crc32c>> = OnceLock::new();
    AVAILABLE.get_or_init(detect_available)
}

fn select_active() -> &'static Crc32c {
    if let Ok(name) = std::env::var("SDR_CRC32C_KERNEL") {
        if let Some(k) = available().iter().find(|k| k.name == name) {
            return k;
        }
        eprintln!(
            "SDR_CRC32C_KERNEL={name} not available on this host; \
             using best (have: {:?})",
            Crc32c::all().iter().map(|k| k.name()).collect::<Vec<_>>()
        );
    }
    available().last().expect("slice8 tier always present")
}

impl Crc32c {
    /// The kernel the integrity checks are using: the hardware tier when
    /// the host has it, selected once (overridable via
    /// `SDR_CRC32C_KERNEL`).
    pub fn active() -> &'static Crc32c {
        static ACTIVE: OnceLock<&'static Crc32c> = OnceLock::new();
        ACTIVE.get_or_init(select_active)
    }

    /// All tiers usable on this host, slowest first. Always contains
    /// `slice8`; `sse42` appears when detected.
    pub fn all() -> &'static [&'static Crc32c] {
        available()
    }

    /// The portable software tier (the differential-test reference).
    pub fn software() -> &'static Crc32c {
        &SLICE8
    }

    /// Looks a tier up by name (`"slice8"`, `"sse42"`).
    pub fn by_name(name: &str) -> Option<&'static Crc32c> {
        available().iter().copied().find(|k| k.name == name)
    }

    /// This tier's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-shot checksum of `data` (init `!0`, final complement).
    pub fn checksum(&self, data: &[u8]) -> u32 {
        !(self.step)(!0u32, data)
    }
}

/// Incremental CRC32C over a byte stream.
pub struct Crc32cHasher {
    kernel: &'static Crc32c,
    state: u32,
}

impl Crc32cHasher {
    /// A hasher on the active kernel.
    pub fn new() -> Self {
        Self::with_kernel(Crc32c::active())
    }

    /// A hasher pinned to a specific tier.
    pub fn with_kernel(kernel: &'static Crc32c) -> Self {
        Self {
            kernel,
            state: !0u32,
        }
    }

    /// Absorbs the next `data` bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.state = (self.kernel.step)(self.state, data);
    }

    /// The checksum of everything absorbed so far.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32cHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC32C of `data` on the active kernel.
pub fn crc32c(data: &[u8]) -> u32 {
    Crc32c::active().checksum(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference, deliberately naive.
    fn crc_bitwise(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn rfc3720_check_value() {
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        for k in Crc32c::all() {
            assert_eq!(k.checksum(b"123456789"), 0xE306_9283, "tier {}", k.name());
        }
    }

    #[test]
    fn empty_and_single_byte() {
        for k in Crc32c::all() {
            assert_eq!(k.checksum(b""), 0, "tier {}", k.name());
            assert_eq!(
                k.checksum(b"\x00"),
                crc_bitwise(b"\x00"),
                "tier {}",
                k.name()
            );
        }
    }

    #[test]
    fn tiers_match_bitwise_reference_on_odd_lengths() {
        // Odd lengths exercise the per-byte tails on both tiers.
        let mut buf = Vec::new();
        let mut x = 0x2545_F491u32;
        for len in [1usize, 3, 7, 8, 9, 15, 63, 64, 65, 255, 1021, 4096, 4099] {
            buf.clear();
            for _ in 0..len {
                x = x.wrapping_mul(0x9E37_79B9).wrapping_add(0x7F4A_7C15);
                buf.push((x >> 24) as u8);
            }
            let want = crc_bitwise(&buf);
            for k in Crc32c::all() {
                assert_eq!(k.checksum(&buf), want, "tier {} len {}", k.name(), len);
            }
        }
    }

    #[test]
    fn incremental_matches_one_shot_at_any_split() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 37 % 251) as u8).collect();
        let want = crc32c(&data);
        for split in [0usize, 1, 7, 8, 9, 500, 999, 1000] {
            let mut h = Crc32cHasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split {split}");
        }
    }

    #[test]
    fn single_bit_flip_always_detected() {
        // CRC32C detects every 1-bit error by construction; this pins the
        // property the corruption→loss reclassification leans on.
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let clean = crc32c(&data);
        let mut flipped = data.clone();
        for bit in [0usize, 1, 7, 100, 1000, 2047] {
            flipped.copy_from_slice(&data);
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&flipped), clean, "bit {bit}");
        }
    }
}
