//! The erasure-code interface shared by the MDS (Reed–Solomon) and XOR
//! schemes of the paper's Section 5.1.

/// Errors surfaced by decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EcError {
    /// Not enough shards survive to reconstruct the data.
    Unrecoverable,
    /// Shards have inconsistent lengths or the wrong count.
    ShapeMismatch,
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcError::Unrecoverable => write!(f, "too many erasures to reconstruct"),
            EcError::ShapeMismatch => write!(f, "shard shape mismatch"),
        }
    }
}

impl std::error::Error for EcError {}

/// A systematic erasure code over `k` data shards producing `m` parity
/// shards. Shard order everywhere is `[data_0 … data_{k-1}, parity_0 …
/// parity_{m-1}]`.
pub trait ErasureCode: Send + Sync {
    /// Number of data shards (`k` in the paper).
    fn data_shards(&self) -> usize;

    /// Number of parity shards (`m` in the paper).
    fn parity_shards(&self) -> usize;

    /// Total shards `k + m`.
    fn total_shards(&self) -> usize {
        self.data_shards() + self.parity_shards()
    }

    /// Computes parity into caller-provided buffers (the hot path —
    /// no allocation).
    ///
    /// # Panics
    /// Panics when shard counts or lengths are inconsistent.
    fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]);

    /// Computes and returns freshly allocated parity shards.
    fn encode(&self, data: &[&[u8]]) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.data_shards());
        let len = data.first().map_or(0, |d| d.len());
        let mut parity = vec![vec![0u8; len]; self.parity_shards()];
        {
            let mut views: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
            self.encode_into(data, &mut views);
        }
        parity
    }

    /// Whether the erasure pattern `present` (length `k + m`, `true` =
    /// shard arrived) allows full data recovery.
    fn can_recover(&self, present: &[bool]) -> bool;

    /// Reconstructs all missing **data** shards in place (`None` entries are
    /// erasures). Missing parity shards are also refilled when possible.
    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        self.reconstruct_into(shards, &mut |len| vec![0u8; len])
    }

    /// [`reconstruct`](Self::reconstruct) with caller-owned replacement
    /// buffers: every missing shard is rebuilt into a buffer rented from
    /// `alloc` instead of a fresh heap allocation, so a pooling caller
    /// (e.g. the EC receiver's scratch) decodes without allocating.
    ///
    /// `alloc(len)` must return a **zeroed** buffer of exactly `len` bytes
    /// (implementations accumulate into it). Rented buffers end up inside
    /// `shards`; the caller reclaims them when it drains the shard table.
    fn reconstruct_into(
        &self,
        shards: &mut [Option<Vec<u8>>],
        alloc: &mut dyn FnMut(usize) -> Vec<u8>,
    ) -> Result<(), EcError>;
}

/// Validates a shard array shape: length `k+m`, all present shards the same
/// length. Returns that length.
pub(crate) fn shard_len(shards: &[Option<Vec<u8>>], total: usize) -> Result<usize, EcError> {
    if shards.len() != total {
        return Err(EcError::ShapeMismatch);
    }
    let mut len = None;
    for s in shards.iter().flatten() {
        match len {
            None => len = Some(s.len()),
            Some(l) if l != s.len() => return Err(EcError::ShapeMismatch),
            _ => {}
        }
    }
    len.ok_or(EcError::Unrecoverable)
}
