//! Persistent GF(256) encode worker pool.
//!
//! The paper hides erasure encoding behind data injection by running it on
//! spare CPU cores (§4.1.2, Fig 11). PR 1 made the per-call kernels fast;
//! this module removes the *dispatch* cost: [`encode_parallel_into`]
//! (crate::encode_parallel_into) used to spawn fresh `std::thread::scope`
//! threads per submessage, paying thread creation + teardown on every
//! 2 MiB encode. The [`EncodePool`] keeps long-lived workers blocked on a
//! channel instead, so dispatching a stripe costs one enqueue + wakeup.
//!
//! ```text
//!                 ┌────────────────────────────────────────────┐
//!                 │                EncodePool                  │
//!   submit ──────▶│ channel ─▶ worker 0 ─┐  (long-lived,       │
//!   (owned job)   │         ─▶ worker 1 ─┤   blocked on recv)  │
//!   encode_striped│         ─▶   ...    ─┤                     │
//!   (borrowed     │         ─▶ worker N ─┘                     │
//!    stripes) ───▶│                │                           │
//!                 └────────────────┼───────────────────────────┘
//!                                  ▼
//!            latch.complete() ──▶ caller wait()/wait_helping()
//! ```
//!
//! Two entry points share the workers:
//!
//! * **Borrowed stripes** ([`EncodePool::encode_striped`]): the column-wise
//!   split behind [`crate::encode_parallel_into`]. The caller's shard
//!   borrows are erased to `'static` for the channel crossing and a latch
//!   guard guarantees every stripe finishes (even on unwind) before the
//!   borrows die — the same discipline `std::thread::scope` enforces,
//!   without the spawn.
//! * **Owned jobs** ([`EncodePool::submit`] → [`PendingEncode::wait`]): an
//!   async split for pipelining. The EC sender submits submessage *i+1*'s
//!   encode (buffers move into the job) and keeps injecting submessage *i*;
//!   `wait` returns the buffers once parity is computed.
//!
//! Waiters **help**: while blocked on a latch they drain queued tasks, so
//! nested dispatch (an owned job striping across the pool) cannot deadlock
//! even with a single worker. Workers catch panics per task — a poisoned
//! job reports at `wait` and the pool stays usable (panic containment).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};

use crate::codec::ErasureCode;

/// Completion latch: counts outstanding tasks and records whether any of
/// them panicked.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    poisoned: bool,
}

impl Latch {
    fn new(tasks: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: tasks,
                poisoned: false,
            }),
            done: Condvar::new(),
        }
    }

    /// Registers one more outstanding task. Counting *up* at dispatch time
    /// (rather than reserving every slot in advance) means a panic between
    /// dispatches leaves the latch waiting only for tasks that actually
    /// exist — the unwind guard can never hang on phantom completions.
    fn add_task(&self) {
        self.state.lock().expect("latch mutex poisoned").remaining += 1;
    }

    /// Marks one task finished (`poisoned` when it panicked).
    fn complete(&self, poisoned: bool) {
        let mut st = self.state.lock().expect("latch mutex poisoned");
        st.remaining -= 1;
        st.poisoned |= poisoned;
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Non-blocking completion check; `Some(poisoned)` when all done.
    fn try_done(&self) -> Option<bool> {
        let st = self.state.lock().expect("latch mutex poisoned");
        (st.remaining == 0).then_some(st.poisoned)
    }

    /// Blocks until all tasks finish, draining queued pool tasks while
    /// waiting (work-helping, which makes nested dispatch deadlock-free).
    /// Returns whether any task panicked.
    fn wait_helping(&self, core: &Arc<PoolCore>) -> bool {
        loop {
            if let Some(poisoned) = self.try_done() {
                return poisoned;
            }
            match core.rx.try_recv() {
                Ok(Task::Shutdown) => {
                    // A worker's shutdown sentinel; hand it back.
                    let _ = core.tx.send(Task::Shutdown);
                    std::thread::yield_now();
                }
                Ok(task) => run_task(core, task),
                Err(_) => {
                    let st = self.state.lock().expect("latch mutex poisoned");
                    if st.remaining > 0 {
                        // Short timeout: re-poll the queue so a task that
                        // lands while we hold no lock still gets helped.
                        let _ = self
                            .done
                            .wait_timeout(st, Duration::from_micros(200))
                            .expect("latch mutex poisoned");
                    }
                }
            }
        }
    }
}

/// An owned encode job: the erasure code plus the data and parity buffers,
/// moved into the pool for the duration of the encode and handed back by
/// [`PendingEncode::wait`].
pub struct EncodeJob {
    /// The code to encode with (`Arc` so jobs can cross threads while the
    /// caller keeps using the same instance).
    pub code: Arc<dyn ErasureCode>,
    /// `k` data shards (all the same length).
    pub data: Vec<Vec<u8>>,
    /// `m` parity shards (same length as the data shards; overwritten).
    pub parity: Vec<Vec<u8>>,
}

struct PendingSlot {
    latch: Latch,
    result: Mutex<Option<EncodeJob>>,
}

/// Handle to an in-flight [`EncodeJob`]. Dropping it without waiting is
/// allowed — the worker finishes the encode and discards the buffers.
pub struct PendingEncode {
    slot: Arc<PendingSlot>,
    core: Arc<PoolCore>,
}

impl PendingEncode {
    /// True once the encode has finished (never blocks).
    pub fn is_ready(&self) -> bool {
        self.slot.latch.try_done().is_some()
    }

    /// Blocks until the encode finishes and returns the job's buffers with
    /// parity computed. Helps drain the pool queue while waiting.
    ///
    /// # Panics
    /// Re-raises a worker panic (e.g. inconsistent shard shapes) on the
    /// caller; the pool itself stays usable.
    pub fn wait(self) -> EncodeJob {
        let poisoned = self.slot.latch.wait_helping(&self.core);
        let job = self
            .slot
            .result
            .lock()
            .expect("pending mutex poisoned")
            .take()
            .expect("worker stores the job before completing the latch");
        assert!(
            !poisoned,
            "EncodePool worker panicked while encoding a submitted job"
        );
        job
    }
}

struct ScopedTask {
    func: Box<dyn FnOnce() + Send + 'static>,
    latch: Arc<Latch>,
}

struct OwnedTask {
    job: EncodeJob,
    stripes: usize,
    slot: Arc<PendingSlot>,
}

enum Task {
    Scoped(ScopedTask),
    Owned(Box<OwnedTask>),
    Shutdown,
}

struct PoolCore {
    tx: Sender<Task>,
    rx: Receiver<Task>,
}

fn run_task(core: &Arc<PoolCore>, task: Task) {
    match task {
        Task::Scoped(t) => {
            let poisoned = catch_unwind(AssertUnwindSafe(t.func)).is_err();
            t.latch.complete(poisoned);
        }
        Task::Owned(t) => {
            let OwnedTask { job, stripes, slot } = *t;
            let EncodeJob { code, data, parity } = job;
            let poisoned = {
                let mut parity = parity;
                let res = catch_unwind(AssertUnwindSafe(|| {
                    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
                    let mut views: Vec<&mut [u8]> =
                        parity.iter_mut().map(|p| p.as_mut_slice()).collect();
                    if stripes <= 1 {
                        code.encode_into(&refs, &mut views);
                    } else {
                        encode_striped_on(core, code.as_ref(), &refs, &mut views, stripes);
                    }
                }));
                *slot.result.lock().expect("pending mutex poisoned") =
                    Some(EncodeJob { code, data, parity });
                res.is_err()
            };
            slot.latch.complete(poisoned);
        }
        Task::Shutdown => unreachable!("shutdown handled by the worker loop"),
    }
}

/// The borrowed-stripe encode walk shared by workers (nested owned jobs)
/// and [`EncodePool::encode_striped`]: carve the shard length into
/// `stripes` cache-line-aligned column stripes, dispatch all but the first
/// to the pool, encode the first inline, and wait (helping) for the rest.
fn encode_striped_on(
    core: &Arc<PoolCore>,
    code: &dyn ErasureCode,
    data: &[&[u8]],
    parity: &mut [&mut [u8]],
    stripes: usize,
) {
    const STRIPE_ALIGN: usize = 64;
    let len = data.first().map_or(0, |d| d.len());
    let stripes = stripes.max(1);
    if stripes == 1 || len < stripes * STRIPE_ALIGN {
        code.encode_into(data, parity);
        return;
    }

    // Carve [0, len) into `stripes` aligned stripes (last takes the tail).
    // The latch counts *up* as stripes are dispatched (`add_task`), so an
    // unwind mid-carving — e.g. a short parity slice failing
    // `split_at_mut` — leaves the guard waiting only for stripes that
    // were actually sent, never on phantom completions.
    let base = len / stripes / STRIPE_ALIGN * STRIPE_ALIGN;
    let latch = Arc::new(Latch::new(0));
    let mut parity_tails: Vec<&mut [u8]> = parity.iter_mut().map(|p| &mut **p).collect();

    // The latch guard: every dispatched stripe must finish before the
    // shard borrows die, even if the inline stripe below unwinds.
    struct WaitGuard<'a> {
        latch: &'a Latch,
        core: &'a Arc<PoolCore>,
    }
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            self.latch.wait_helping(self.core);
        }
    }

    let mut inline: Option<(Vec<&[u8]>, Vec<&mut [u8]>)> = None;
    {
        let guard = WaitGuard {
            latch: &latch,
            core,
        };
        let mut offset = 0usize;
        for i in 0..stripes {
            let size = if i == stripes - 1 { len - offset } else { base };
            if size == 0 {
                continue;
            }
            let mut stripe_parity = Vec::with_capacity(parity_tails.len());
            for v in parity_tails.iter_mut() {
                let taken = std::mem::take(v);
                let (head, tail) = taken.split_at_mut(size);
                stripe_parity.push(head);
                *v = tail;
            }
            let stripe_data: Vec<&[u8]> = data.iter().map(|d| &d[offset..offset + size]).collect();
            offset += size;
            if i == 0 {
                // First stripe runs inline on the caller (it is "thread 0"
                // of the requested width).
                inline = Some((stripe_data, stripe_parity));
                continue;
            }
            let task_latch = latch.clone();
            latch.add_task();
            let func: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let mut views = stripe_parity;
                code.encode_into(&stripe_data, &mut views);
            });
            // SAFETY: the closure borrows `code`, `data` and the parity
            // stripes, all outliving this function body; the WaitGuard
            // blocks (helping) until the task's latch completes before any
            // of those borrows can end — the same guarantee
            // `std::thread::scope` provides for its spawns.
            let func: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(func) };
            assert!(
                core.tx
                    .send(Task::Scoped(ScopedTask {
                        func,
                        latch: task_latch,
                    }))
                    .is_ok(),
                "pool workers hold the receiver for the pool's lifetime"
            );
        }
        if let Some((stripe_data, mut stripe_parity)) = inline.take() {
            // Inline stripe: runs on the caller, outside the latch. A
            // panic here unwinds through the guard, which drains the
            // dispatched stripes before the borrows are freed.
            code.encode_into(&stripe_data, &mut stripe_parity);
        }
        drop(guard); // blocks until every stripe completes
    }
    let poisoned = latch.try_done().expect("guard waited");
    assert!(
        !poisoned,
        "EncodePool worker panicked during striped encode"
    );
}

/// A persistent pool of encode workers (the paper's spare-core model).
///
/// Workers live as long as the pool and block on a channel between jobs;
/// see the module docs for the dispatch paths. Dropping the pool drains
/// outstanding work, then shuts the workers down cleanly.
pub struct EncodePool {
    core: Arc<PoolCore>,
    workers: Vec<JoinHandle<()>>,
}

impl EncodePool {
    /// Spawns a pool of `workers` (≥ 1) encode threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::unbounded();
        let core = Arc::new(PoolCore { tx, rx });
        let handles = (0..workers)
            .map(|_| {
                let core = core.clone();
                std::thread::Builder::new()
                    .name("sdr-encode".into())
                    .spawn(move || worker_loop(&core))
                    .expect("spawn encode worker")
            })
            .collect();
        EncodePool {
            core,
            workers: handles,
        }
    }

    /// The process-wide shared pool, sized to the host's available
    /// parallelism (capped at 16; override with `SDR_ENCODE_POOL=<n>`).
    pub fn global() -> &'static EncodePool {
        static GLOBAL: OnceLock<EncodePool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let size = std::env::var("SDR_ENCODE_POOL")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                })
                .clamp(1, 16);
            EncodePool::new(size)
        })
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submits an owned encode job; `stripes` > 1 additionally splits the
    /// shard length across the pool. Returns immediately — the caller
    /// overlaps other work and collects the buffers via
    /// [`PendingEncode::wait`].
    pub fn submit(&self, job: EncodeJob, stripes: usize) -> PendingEncode {
        let slot = Arc::new(PendingSlot {
            latch: Latch::new(1),
            result: Mutex::new(None),
        });
        assert!(
            self.core
                .tx
                .send(Task::Owned(Box::new(OwnedTask {
                    job,
                    stripes,
                    slot: slot.clone(),
                })))
                .is_ok(),
            "pool workers hold the receiver for the pool's lifetime"
        );
        PendingEncode {
            slot,
            core: self.core.clone(),
        }
    }

    /// Encodes `data` into caller-owned `parity` split column-wise into
    /// `stripes` stripes across the pool (first stripe inline on the
    /// caller). Blocks until the encode completes.
    ///
    /// # Panics
    /// Propagates worker panics and shape inconsistencies.
    pub fn encode_striped(
        &self,
        code: &dyn ErasureCode,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        stripes: usize,
    ) {
        encode_striped_on(&self.core, code, data, parity, stripes);
    }
}

impl Drop for EncodePool {
    fn drop(&mut self) {
        // FIFO channel: sentinels land behind all outstanding work, so
        // queued jobs finish before the workers exit.
        for _ in &self.workers {
            let _ = self.core.tx.send(Task::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(core: &Arc<PoolCore>) {
    while let Ok(task) = core.rx.recv() {
        if matches!(task, Task::Shutdown) {
            return;
        }
        run_task(core, task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rs::ReedSolomon;

    fn job(k: usize, m: usize, len: usize) -> EncodeJob {
        let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(k, m));
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| ((i * 31 + j * 7) % 256) as u8).collect())
            .collect();
        let parity = vec![vec![0u8; len]; m];
        EncodeJob { code, data, parity }
    }

    #[test]
    fn owned_job_round_trips_buffers_with_parity() {
        let pool = EncodePool::new(2);
        let j = job(4, 2, 4096);
        let refs: Vec<&[u8]> = j.data.iter().map(|d| d.as_slice()).collect();
        let expect = j.code.encode(&refs);
        drop(refs);
        let done = pool.submit(j, 1).wait();
        assert_eq!(done.parity, expect);
    }

    #[test]
    fn striped_owned_job_matches_serial() {
        let pool = EncodePool::new(2);
        let j = job(6, 3, 64 * 1024 + 13);
        let refs: Vec<&[u8]> = j.data.iter().map(|d| d.as_slice()).collect();
        let expect = j.code.encode(&refs);
        drop(refs);
        let done = pool.submit(j, 4).wait();
        assert_eq!(done.parity, expect);
    }

    #[test]
    fn single_worker_pool_handles_nested_striping() {
        // One worker + nested dispatch: only the helping waiter prevents
        // deadlock here.
        let pool = EncodePool::new(1);
        let j = job(4, 2, 32 * 1024);
        let refs: Vec<&[u8]> = j.data.iter().map(|d| d.as_slice()).collect();
        let expect = j.code.encode(&refs);
        drop(refs);
        let done = pool.submit(j, 3).wait();
        assert_eq!(done.parity, expect);
    }

    #[test]
    fn pending_is_ready_eventually() {
        let pool = EncodePool::new(1);
        let pending = pool.submit(job(4, 2, 1024), 1);
        while !pending.is_ready() {
            std::thread::yield_now();
        }
        let done = pending.wait();
        assert_eq!(done.parity.len(), 2);
    }

    #[test]
    fn dropping_pending_does_not_hang_pool() {
        let pool = EncodePool::new(1);
        drop(pool.submit(job(4, 2, 1024), 1));
        // Pool still serves new jobs afterwards.
        let done = pool.submit(job(4, 2, 1024), 1).wait();
        assert_eq!(done.parity.len(), 2);
    }
}
