//! Per-worker completion rings.
//!
//! The multi-channel design (§3.4.1) maps each transport channel to its own
//! completion queue, polled by a dedicated DPA worker thread. Here each
//! worker owns one lock-free ring; the sender side pushes packet-completion
//! records round-robin across rings, exactly like packets striped across
//! channel QPs land in separate CQs.

use crossbeam::queue::ArrayQueue;
use std::sync::Arc;

/// A packet-completion record as seen by a DPA worker: the 32-bit transport
/// immediate plus the generation of the delivering QP and the NULL-key flag
/// (what a CQE-plus-QP-context gives the worker on hardware).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DpaCqe {
    /// Transport immediate (msg id | packet offset | user fragment).
    pub imm: u32,
    /// Generation of the QP that delivered the packet.
    pub generation: u32,
    /// Payload was discarded by the NULL memory key (late packet).
    pub null_write: bool,
}

/// A bounded MPSC completion ring (one consumer: the owning worker).
pub struct CqeRing {
    queue: ArrayQueue<DpaCqe>,
}

impl CqeRing {
    /// Creates a ring holding up to `capacity` completions.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(CqeRing {
            queue: ArrayQueue::new(capacity),
        })
    }

    /// Pushes a completion, spinning (with yields) on backpressure —
    /// the NIC-side equivalent of CQ flow control.
    pub fn push_blocking(&self, cqe: DpaCqe) {
        let mut backoff = 0u32;
        while self.queue.push(cqe).is_err() {
            backoff += 1;
            if backoff > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Attempts to push without blocking.
    pub fn try_push(&self, cqe: DpaCqe) -> bool {
        self.queue.push(cqe).is_ok()
    }

    /// Pops the next completion, if any.
    pub fn pop(&self) -> Option<DpaCqe> {
        self.queue.pop()
    }

    /// Drains up to `budget` completions into `out`, returning how many
    /// were taken — the §3.4.2 batched poll: one drain feeds one
    /// [`process_batch`](crate::DpaMsgTable::process_batch) pass that
    /// coalesces bitmap updates and chunk publishes.
    pub fn pop_batch(&self, out: &mut Vec<DpaCqe>, budget: usize) -> usize {
        let mut taken = 0;
        while taken < budget {
            match self.queue.pop() {
                Some(cqe) => {
                    out.push(cqe);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no completions are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_consumer() {
        let ring = CqeRing::new(16);
        for i in 0..10u32 {
            assert!(ring.try_push(DpaCqe {
                imm: i,
                generation: 0,
                null_write: false
            }));
        }
        for i in 0..10u32 {
            assert_eq!(ring.pop().unwrap().imm, i);
        }
        assert!(ring.pop().is_none());
    }

    #[test]
    fn bounded_capacity() {
        let ring = CqeRing::new(4);
        for i in 0..4u32 {
            assert!(ring.try_push(DpaCqe {
                imm: i,
                generation: 0,
                null_write: false
            }));
        }
        assert!(!ring.try_push(DpaCqe {
            imm: 99,
            generation: 0,
            null_write: false
        }));
        ring.pop();
        assert!(ring.try_push(DpaCqe {
            imm: 99,
            generation: 0,
            null_write: false
        }));
    }

    #[test]
    fn push_blocking_unblocks_concurrently() {
        let ring = CqeRing::new(2);
        ring.try_push(DpaCqe {
            imm: 0,
            generation: 0,
            null_write: false,
        });
        ring.try_push(DpaCqe {
            imm: 1,
            generation: 0,
            null_write: false,
        });
        let r2 = ring.clone();
        let producer = std::thread::spawn(move || {
            r2.push_blocking(DpaCqe {
                imm: 2,
                generation: 0,
                null_write: false,
            });
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(ring.pop().unwrap().imm, 0);
        producer.join().unwrap();
        assert_eq!(ring.pop().unwrap().imm, 1);
        assert_eq!(ring.pop().unwrap().imm, 2);
    }
}
