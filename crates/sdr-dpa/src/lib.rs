//! # sdr-dpa — the simulated Data Path Accelerator
//!
//! The paper offloads SDR's receive backend to the BlueField-3 **DPA**
//! (§3.4): 256 hardware threads process packet Write completions in
//! parallel, each validating the packet's generation, updating a per-packet
//! bitmap in DPA memory, and publishing chunk bits to host memory over PCIe.
//!
//! This crate is the hardware substitution for Figures 14–16: the same
//! datapath executed by host worker threads.
//!
//! * [`CqeRing`] — per-worker lock-free completion rings (one per channel
//!   group, §3.4.1).
//! * [`DpaMsgTable`] — the shared receive state: slot generations, activity
//!   flags, and the two-level bitmaps from `sdr-core`.
//! * [`DpaEngine`] — spawns the workers and stripes completions round-robin.
//! * [`run_loopback`] — the `ib_write_bw`-style client/server stress loop
//!   used to regenerate Figure 14 (throughput vs message size, thread
//!   scaling), Figure 15 (bitmap chunk size) and Figure 16 (packet-rate
//!   scaling toward Tbit/s links).
//!
//! What is measured is the *packet-completion processing rate* — table
//! lookup, generation filter, atomic bitmap updates, chunk publication —
//! which is the work the DPA performs; payload movement is the NIC DMA
//! engine's job in both the paper and this model and is therefore excluded
//! on purpose.

#![warn(missing_docs)]

pub mod engine;
pub mod loopback;
pub mod ring;
pub mod table;

pub use engine::{DpaConfig, DpaEngine};
pub use loopback::{run_loopback, LoopbackConfig, ThroughputReport};
pub use ring::{CqeRing, DpaCqe};
pub use table::{DpaMsgTable, ProcessStats, SlotPost};
