//! Loopback stress harness — the `ib_write_bw`-style benchmark of §5.4.1.
//!
//! A generator (the "client") emulates the send side: for each in-flight
//! message it produces one packet-completion record per MTU and stripes them
//! across the worker rings. The host frontend (the "server") emulates a
//! reliability layer by busy-polling the completion bitmap of the oldest
//! in-flight Write, acking it (slot complete + repost) when all chunks have
//! arrived — including the repost cost (slot reallocation, bitmap cleanup)
//! that makes small messages slower than RC Writes in Figure 14.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::engine::{DpaConfig, DpaEngine};
use crate::ring::DpaCqe;
use crate::table::ProcessStats;

/// Loopback benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct LoopbackConfig {
    /// Engine shape (workers, slots, rings).
    pub dpa: DpaConfig,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Transport write (packet) size in bytes. The paper's line-rate tests
    /// use 4 KiB; the packet-rate stress tests use 64 B (§5.4.2–§5.4.3).
    pub mtu_bytes: u64,
    /// Bitmap chunk size in bytes.
    pub chunk_bytes: u64,
    /// In-flight Writes (16 in Figure 14).
    pub inflight: usize,
    /// Total messages to transfer.
    pub messages: u64,
    /// Probability the generator "drops" a packet (never enqueues its
    /// completion); the host retransmits from the bitmap.
    pub drop_rate: f64,
    /// Generator RNG seed.
    pub seed: u64,
    /// Batched repost: the host retires every completed in-flight slot per
    /// drain and reposts them in one [`DpaMsgTable::post_batch`] sweep
    /// (bitmap recycling included). `false` reproduces the one-at-a-time
    /// `post` baseline for A/B runs.
    pub batch_repost: bool,
}

impl Default for LoopbackConfig {
    fn default() -> Self {
        LoopbackConfig {
            dpa: DpaConfig::default(),
            msg_bytes: 16 << 20,
            mtu_bytes: 4096,
            chunk_bytes: 64 * 1024,
            inflight: 16,
            messages: 64,
            drop_rate: 0.0,
            seed: 1,
            batch_repost: false,
        }
    }
}

/// Results of a loopback run.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputReport {
    /// Messages completed.
    pub messages: u64,
    /// Packet completions dispatched (including retransmissions).
    pub packets: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Packet-processing rate (packets/s).
    pub pkts_per_sec: f64,
    /// Message goodput in Gbit/s (message bytes × 8 / elapsed).
    pub goodput_gbps: f64,
    /// Messages per second (repost-rate bound for small messages).
    pub msgs_per_sec: f64,
    /// Merged worker statistics.
    pub stats: ProcessStats,
}

/// Runs the loopback benchmark to completion.
pub fn run_loopback(cfg: LoopbackConfig) -> ThroughputReport {
    assert!(cfg.inflight >= 1 && cfg.inflight <= cfg.dpa.msg_slots);
    assert!(cfg.chunk_bytes.is_multiple_of(cfg.mtu_bytes));
    let pkts_per_msg = cfg.msg_bytes.div_ceil(cfg.mtu_bytes).max(1) as usize;
    let pkts_per_chunk = (cfg.chunk_bytes / cfg.mtu_bytes) as u32;
    let layout = cfg.dpa.layout;
    assert!(
        pkts_per_msg <= layout.max_packet_offset() as usize + 1,
        "message too large for the immediate offset field"
    );

    let eng = DpaEngine::start(cfg.dpa);
    let table = eng.table().clone();
    let slots = table.slot_count();

    // Simple xorshift for drop decisions (cheap; off the measurement path
    // when drop_rate == 0).
    let mut rng_state = cfg.seed | 1;
    let mut coin = |p: f64| -> bool {
        if p <= 0.0 {
            return false;
        }
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        (rng_state >> 11) as f64 / (1u64 << 53) as f64 * 4096.0 % 1.0 < p
    };

    let mut inflight: VecDeque<(usize, u32)> = VecDeque::with_capacity(cfg.inflight);
    let mut next_seq = 0u64;
    let mut completed = 0u64;
    let mut packets = 0u64;
    // Reused batched-repost scratch (no allocation on the measured path).
    let mut reposts: Vec<crate::table::SlotPost> = Vec::with_capacity(cfg.inflight);
    let start = Instant::now();

    while completed < cfg.messages {
        // Fill the in-flight window (post + inject). In batched mode the
        // whole refill reposts through one `post_batch` sweep — the
        // symmetric counterpart of the workers' `process_batch` drain.
        reposts.clear();
        while inflight.len() + reposts.len() < cfg.inflight && next_seq < cfg.messages {
            let slot = (next_seq % slots as u64) as usize;
            let generation = (next_seq / slots as u64) as u32;
            reposts.push(crate::table::SlotPost {
                slot,
                generation,
                total_packets: pkts_per_msg,
                pkts_per_chunk,
            });
            next_seq += 1;
        }
        if cfg.batch_repost {
            table.post_batch(&reposts);
        } else {
            for p in &reposts {
                table.post(p.slot, p.generation, p.total_packets, p.pkts_per_chunk);
            }
        }
        for p in &reposts {
            for pkt in 0..pkts_per_msg {
                if coin(cfg.drop_rate) {
                    continue;
                }
                packets += 1;
                eng.dispatch(DpaCqe {
                    imm: layout.encode(p.slot as u32, pkt as u32, 0),
                    generation: p.generation,
                    null_write: false,
                });
            }
            inflight.push_back((p.slot, p.generation));
        }

        // Busy-poll the oldest Write's bitmap (the server loop of §5.4.1).
        let &(slot, generation) = inflight.front().expect("window non-empty");
        if table.is_complete(slot) {
            table.complete(slot); // "ACK" + release
            inflight.pop_front();
            completed += 1;
            // Batched mode: retire the whole run of completed slots behind
            // the front in the same drain, so the next refill reposts them
            // together in one sweep.
            if cfg.batch_repost {
                while let Some(&(s, _)) = inflight.front() {
                    if !table.is_complete(s) {
                        break;
                    }
                    table.complete(s);
                    inflight.pop_front();
                    completed += 1;
                }
            }
        } else if cfg.drop_rate > 0.0 && eng.backlog() == 0 {
            // Pipeline drained but chunks missing: retransmit from the
            // bitmap (what the SR layer would do after its RTO).
            for pkt in table.missing_packets(slot) {
                if coin(cfg.drop_rate) {
                    continue;
                }
                packets += 1;
                eng.dispatch(DpaCqe {
                    imm: layout.encode(slot as u32, pkt as u32, 0),
                    generation,
                    null_write: false,
                });
            }
        } else {
            std::hint::spin_loop();
        }
    }

    let elapsed = start.elapsed();
    let stats = eng.shutdown();
    let secs = elapsed.as_secs_f64().max(1e-9);
    ThroughputReport {
        messages: completed,
        packets,
        elapsed,
        pkts_per_sec: packets as f64 / secs,
        goodput_gbps: completed as f64 * cfg.msg_bytes as f64 * 8.0 / secs / 1e9,
        msgs_per_sec: completed as f64 / secs,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_core::imm::ImmLayout;

    fn quick_cfg() -> LoopbackConfig {
        LoopbackConfig {
            dpa: DpaConfig {
                workers: 2,
                msg_slots: 8,
                ring_capacity: 2048,
                layout: ImmLayout::default(),
                batch_budget: 256,
            },
            msg_bytes: 256 * 1024,
            mtu_bytes: 4096,
            chunk_bytes: 64 * 1024,
            inflight: 4,
            messages: 32,
            drop_rate: 0.0,
            seed: 3,
            batch_repost: false,
        }
    }

    #[test]
    fn lossless_loopback_completes_exactly() {
        let r = run_loopback(quick_cfg());
        assert_eq!(r.messages, 32);
        assert_eq!(r.packets, 32 * 64); // 256 KiB / 4 KiB
        assert_eq!(r.stats.packets, r.packets);
        assert_eq!(r.stats.duplicates, 0);
        assert!(r.pkts_per_sec > 0.0);
        assert!(r.goodput_gbps > 0.0);
    }

    #[test]
    fn lossy_loopback_retransmits_to_completion() {
        let cfg = LoopbackConfig {
            drop_rate: 0.05,
            messages: 16,
            ..quick_cfg()
        };
        let r = run_loopback(cfg);
        assert_eq!(r.messages, 16);
        // Retransmissions mean more dispatches than the minimum...
        assert!(r.packets >= 16 * 64);
        // ...and every message still completed (bitmap-driven repair).
        assert_eq!(r.stats.bad_offset, 0);
    }

    #[test]
    fn small_messages_are_repost_bound() {
        // Figure 14's left panel: with 4 KiB messages the msgs/s rate is
        // limited by repost work, so per-message cost dwarfs per-packet
        // cost. Just verify the harness runs and counts sanely.
        let cfg = LoopbackConfig {
            msg_bytes: 4096,
            messages: 256,
            ..quick_cfg()
        };
        let r = run_loopback(cfg);
        assert_eq!(r.messages, 256);
        assert_eq!(r.packets, 256);
    }

    #[test]
    fn batched_repost_completes_like_baseline() {
        // The batched repost sweep must deliver the same message/packet
        // accounting as per-slot posts, lossless and lossy (where reposted
        // slots recycle dirty bitmaps).
        for drop_rate in [0.0, 0.05] {
            let base = run_loopback(LoopbackConfig {
                drop_rate,
                ..quick_cfg()
            });
            let batched = run_loopback(LoopbackConfig {
                drop_rate,
                batch_repost: true,
                ..quick_cfg()
            });
            assert_eq!(batched.messages, base.messages, "drop={drop_rate}");
            assert_eq!(batched.stats.bad_offset, 0);
            assert_eq!(batched.stats.generation_filtered, 0);
            if drop_rate == 0.0 {
                // Deterministic generator: identical packet counts.
                assert_eq!(batched.packets, base.packets);
                assert_eq!(batched.stats.packets, base.stats.packets);
                assert_eq!(batched.stats.duplicates, 0);
            }
        }
    }

    #[test]
    fn sixty_four_byte_packet_stress_mode() {
        // §5.4.2 methodology: 64 B transport writes scale the packet count.
        let cfg = LoopbackConfig {
            msg_bytes: 64 * 256,
            mtu_bytes: 64,
            chunk_bytes: 64 * 16,
            messages: 8,
            ..quick_cfg()
        };
        let r = run_loopback(cfg);
        assert_eq!(r.messages, 8);
        assert_eq!(r.packets, 8 * 256);
    }
}
