//! Shared message table: the receive-side state DPA workers operate on.
//!
//! Mirrors the hardware layout of §3.2.2/§3.4.2: per-message-slot
//! generation + activity state, the per-packet bitmap "in DPA memory" and
//! the chunk bitmap "in host memory" (the [`TwoLevelBitmap`]). All datapath
//! accesses are atomic; only repost (the host frontend) takes the slot's
//! write lock to swap in a fresh bitmap.

use crate::ring::DpaCqe;
use parking_lot::RwLock;
use sdr_core::bitmap::TwoLevelBitmap;
use sdr_core::imm::ImmLayout;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// One message-ID slot.
pub struct DpaSlot {
    generation: AtomicU32,
    active: AtomicBool,
    bitmap: RwLock<Arc<TwoLevelBitmap>>,
}

/// Per-worker processing counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Packets whose bitmap bit was set.
    pub packets: u64,
    /// Duplicate packet completions.
    pub duplicates: u64,
    /// Chunks completed (host chunk-bitmap publications).
    pub chunks: u64,
    /// Completions filtered by the NULL-key flag (stage 1).
    pub null_filtered: u64,
    /// Completions filtered by the generation check (stage 2).
    pub generation_filtered: u64,
    /// Completions for inactive slots.
    pub inactive: u64,
    /// Out-of-range packet offsets.
    pub bad_offset: u64,
}

impl ProcessStats {
    /// Element-wise sum of two stats records.
    pub fn merge(&self, other: &ProcessStats) -> ProcessStats {
        ProcessStats {
            packets: self.packets + other.packets,
            duplicates: self.duplicates + other.duplicates,
            chunks: self.chunks + other.chunks,
            null_filtered: self.null_filtered + other.null_filtered,
            generation_filtered: self.generation_filtered + other.generation_filtered,
            inactive: self.inactive + other.inactive,
            bad_offset: self.bad_offset + other.bad_offset,
        }
    }
}

/// One slot repost request for [`DpaMsgTable::post_batch`].
#[derive(Clone, Copy, Debug)]
pub struct SlotPost {
    /// Message-ID slot to repost.
    pub slot: usize,
    /// New generation tag.
    pub generation: u32,
    /// Packets in the new message.
    pub total_packets: usize,
    /// Packets per frontend chunk.
    pub pkts_per_chunk: u32,
}

/// The shared receive message table.
pub struct DpaMsgTable {
    slots: Vec<DpaSlot>,
    layout: ImmLayout,
}

impl DpaMsgTable {
    /// Creates a table with `slots` inactive message slots.
    pub fn new(slots: usize, layout: ImmLayout) -> Arc<Self> {
        Arc::new(DpaMsgTable {
            slots: (0..slots)
                .map(|_| DpaSlot {
                    generation: AtomicU32::new(0),
                    active: AtomicBool::new(false),
                    // Placeholder bitmap; replaced on first post.
                    bitmap: RwLock::new(Arc::new(TwoLevelBitmap::new(1, 1))),
                })
                .collect(),
            layout,
        })
    }

    /// Number of message slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The immediate layout workers decode with.
    pub fn layout(&self) -> ImmLayout {
        self.layout
    }

    /// Posts a message into `slot` at `generation` with a fresh bitmap —
    /// the repost work whose cost dominates small-message throughput
    /// (§5.4.1: slot reallocation, key-table update, bitmap cleanup).
    ///
    /// This is the one-at-a-time baseline: every post allocates a new
    /// bitmap. The batched path ([`post_batch`](Self::post_batch)) reuses
    /// retired bitmaps in place; fig16's repost A/B row contrasts them.
    pub fn post(&self, slot: usize, generation: u32, total_packets: usize, pkts_per_chunk: u32) {
        let s = &self.slots[slot];
        assert!(
            !s.active.load(Ordering::Acquire),
            "slot {slot} still active"
        );
        *s.bitmap.write() = Arc::new(TwoLevelBitmap::new(total_packets, pkts_per_chunk));
        s.generation.store(generation, Ordering::Release);
        s.active.store(true, Ordering::Release);
    }

    /// The batched repost path (§5.4.1's symmetric follow-up to
    /// [`process_batch`](Self::process_batch)): reposts every completed
    /// slot of a drain in one sweep. Two costs amortize versus calling
    /// [`post`](Self::post) per slot:
    ///
    /// * **bitmap recycling** — when the retired bitmap has the same shape
    ///   and no other holder (`Arc::get_mut` under the slot's write lock
    ///   proves exclusivity), it is [`reset`](TwoLevelBitmap::reset) in
    ///   place instead of reallocated, eliminating the per-repost
    ///   allocation + packet/chunk/counter array zero-fill round trip
    ///   through the allocator;
    /// * **one sweep per drain** — the host frontend retires a whole batch
    ///   of completed slots between ring polls instead of interleaving one
    ///   repost per poll iteration.
    ///
    /// Observationally identical to per-slot posts: each slot still takes
    /// its own write lock (so in-flight worker runs on *other* slots are
    /// never stalled), the generation/activity publication order is
    /// unchanged, and stale-generation filtering behaves exactly as
    /// before.
    ///
    /// # Panics
    /// Panics when any requested slot is still active, like `post`.
    pub fn post_batch(&self, posts: &[SlotPost]) {
        for p in posts {
            let s = &self.slots[p.slot];
            assert!(
                !s.active.load(Ordering::Acquire),
                "slot {} still active",
                p.slot
            );
            {
                let mut bm = s.bitmap.write();
                match Arc::get_mut(&mut bm) {
                    Some(old)
                        if old.total_packets() == p.total_packets
                            && old.packets_per_chunk() == p.pkts_per_chunk =>
                    {
                        old.reset();
                    }
                    _ => {
                        *bm = Arc::new(TwoLevelBitmap::new(p.total_packets, p.pkts_per_chunk));
                    }
                }
            }
            s.generation.store(p.generation, Ordering::Release);
            s.active.store(true, Ordering::Release);
        }
    }

    /// Marks `slot` complete/inactive (host called `recv_complete`).
    pub fn complete(&self, slot: usize) {
        self.slots[slot].active.store(false, Ordering::Release);
    }

    /// True when every chunk of the slot's message has arrived.
    pub fn is_complete(&self, slot: usize) -> bool {
        let s = &self.slots[slot];
        s.active.load(Ordering::Acquire) && s.bitmap.read().is_complete()
    }

    /// Packet indices still missing in the slot's message.
    pub fn missing_packets(&self, slot: usize) -> Vec<usize> {
        let s = &self.slots[slot];
        let bm = s.bitmap.read();
        let n = bm.total_packets();
        bm.packets().missing_in_first_n(n)
    }

    /// The worker datapath (§3.4.2): validate generation, locate the
    /// message descriptor, update the per-packet bitmap, and publish the
    /// chunk bit when this packet completes its chunk.
    ///
    /// Single-CQE convenience over [`process_batch`](Self::process_batch)
    /// — same code path, batch of one.
    #[inline]
    pub fn process(&self, cqe: crate::ring::DpaCqe, stats: &mut ProcessStats) {
        self.process_batch(std::slice::from_ref(&cqe), stats);
    }

    /// The batched worker datapath (§3.4.2): processes a drained run of
    /// completions in one pass, amortizing the per-packet costs the
    /// one-at-a-time path pays 4096 times per ring poll:
    ///
    /// * **one bitmap read-lock per message run** — consecutive CQEs for
    ///   the same message slot share a single `RwLock` acquisition (packets
    ///   arrive in bursts per message, so runs are long);
    /// * **one atomic `fetch_or` per bitmap word** — packet bits landing in
    ///   the same 64-bit word coalesce into a mask before the RMW;
    /// * **one `fetch_add` per chunk** — chunk arrival counters advance by
    ///   the batch's per-chunk count, and the chunk bit publishes at most
    ///   once per chunk per batch.
    ///
    /// Holding a slot's bitmap read-lock across the run also pins its
    /// generation: `post` (repost) takes the write lock, so a repost
    /// cannot swap the bitmap out mid-run, and per-CQE generation checks
    /// keep filtering stale retransmissions exactly like the unbatched
    /// path. Statistics are identical to processing the CQEs one at a
    /// time.
    pub fn process_batch(&self, cqes: &[DpaCqe], stats: &mut ProcessStats) {
        let mut idx = 0;
        while idx < cqes.len() {
            let head = cqes[idx];
            if head.null_write {
                stats.null_filtered += 1;
                idx += 1;
                continue;
            }
            let (msg_id, _, _) = self.layout.decode(head.imm);
            let Some(slot) = self.slots.get(msg_id as usize) else {
                stats.bad_offset += 1;
                idx += 1;
                continue;
            };
            if !slot.active.load(Ordering::Acquire) {
                stats.inactive += 1;
                idx += 1;
                continue;
            }
            // A message run: every following CQE for the same slot shares
            // this read guard and the word/chunk coalescing below.
            let bm = slot.bitmap.read();
            let total = bm.total_packets();
            let mut word = usize::MAX;
            let mut mask = 0u64;
            let flush = |word: usize, mask: u64, st: &mut ProcessStats| {
                if mask == 0 {
                    return;
                }
                let mut chunks = 0u64;
                let (new, dup) = bm.record_packet_word(word, mask, |_| chunks += 1);
                st.packets += new as u64;
                st.duplicates += dup as u64;
                st.chunks += chunks;
            };
            while idx < cqes.len() {
                let cqe = cqes[idx];
                if cqe.null_write {
                    stats.null_filtered += 1;
                    idx += 1;
                    continue;
                }
                let (mid, pkt_offset, _frag) = self.layout.decode(cqe.imm);
                if mid != msg_id {
                    break; // next run (different message slot)
                }
                idx += 1;
                // `complete()` stores active=false without the write lock,
                // so it can land mid-run; re-check per CQE like the
                // unbatched path did, keeping the stats identical.
                if !slot.active.load(Ordering::Acquire) {
                    stats.inactive += 1;
                    continue;
                }
                if slot.generation.load(Ordering::Acquire) != cqe.generation {
                    stats.generation_filtered += 1;
                    continue;
                }
                let pkt = pkt_offset as usize;
                if pkt >= total {
                    stats.bad_offset += 1;
                    continue;
                }
                let (w, bit) = (pkt / 64, 1u64 << (pkt % 64));
                if w != word {
                    flush(word, mask, stats);
                    (word, mask) = (w, 0);
                }
                if mask & bit != 0 {
                    // Duplicate within the batch window itself.
                    stats.duplicates += 1;
                } else {
                    mask |= bit;
                }
            }
            flush(word, mask, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::DpaCqe;

    fn table() -> Arc<DpaMsgTable> {
        DpaMsgTable::new(4, ImmLayout::default())
    }

    fn cqe(layout: &ImmLayout, msg: u32, pkt: u32, generation: u32) -> DpaCqe {
        DpaCqe {
            imm: layout.encode(msg, pkt, 0),
            generation,
            null_write: false,
        }
    }

    #[test]
    fn packets_complete_chunks_and_messages() {
        let t = table();
        let l = t.layout();
        t.post(0, 0, 32, 16);
        let mut st = ProcessStats::default();
        for pkt in 0..32 {
            t.process(cqe(&l, 0, pkt, 0), &mut st);
        }
        assert_eq!(st.packets, 32);
        assert_eq!(st.chunks, 2);
        assert!(t.is_complete(0));
    }

    #[test]
    fn generation_mismatch_is_filtered() {
        let t = table();
        let l = t.layout();
        t.post(1, 3, 8, 4);
        let mut st = ProcessStats::default();
        t.process(cqe(&l, 1, 0, 2), &mut st); // stale generation
        assert_eq!(st.generation_filtered, 1);
        assert_eq!(st.packets, 0);
        t.process(cqe(&l, 1, 0, 3), &mut st);
        assert_eq!(st.packets, 1);
    }

    #[test]
    fn null_and_inactive_are_filtered() {
        let t = table();
        let l = t.layout();
        let mut st = ProcessStats::default();
        t.process(
            DpaCqe {
                imm: l.encode(2, 0, 0),
                generation: 0,
                null_write: true,
            },
            &mut st,
        );
        assert_eq!(st.null_filtered, 1);
        t.process(cqe(&l, 2, 0, 0), &mut st); // slot never posted
        assert_eq!(st.inactive, 1);
    }

    #[test]
    fn duplicates_and_bad_offsets_counted() {
        let t = table();
        let l = t.layout();
        t.post(0, 0, 4, 2);
        let mut st = ProcessStats::default();
        t.process(cqe(&l, 0, 1, 0), &mut st);
        t.process(cqe(&l, 0, 1, 0), &mut st);
        assert_eq!(st.duplicates, 1);
        t.process(cqe(&l, 0, 9, 0), &mut st); // beyond the 4-packet message
        assert_eq!(st.bad_offset, 1);
    }

    #[test]
    fn repost_resets_state() {
        let t = table();
        let l = t.layout();
        t.post(0, 0, 4, 2);
        let mut st = ProcessStats::default();
        for pkt in 0..4 {
            t.process(cqe(&l, 0, pkt, 0), &mut st);
        }
        assert!(t.is_complete(0));
        t.complete(0);
        assert!(!t.is_complete(0));
        t.post(0, 1, 4, 2);
        assert_eq!(t.missing_packets(0).len(), 4);
        // Old-generation completions for the reposted slot are filtered.
        t.process(cqe(&l, 0, 0, 0), &mut st);
        assert_eq!(st.generation_filtered, 1);
    }

    #[test]
    #[should_panic(expected = "still active")]
    fn double_post_panics() {
        let t = table();
        t.post(0, 0, 4, 2);
        t.post(0, 1, 4, 2);
    }

    #[test]
    #[should_panic(expected = "still active")]
    fn batched_double_post_panics() {
        let t = table();
        t.post(0, 0, 4, 2);
        t.post_batch(&[SlotPost {
            slot: 0,
            generation: 1,
            total_packets: 4,
            pkts_per_chunk: 2,
        }]);
    }

    #[test]
    fn post_batch_recycles_bitmaps_cleanly() {
        // A batched repost over a dirtied same-shape slot must behave like
        // a fresh post: clean bitmaps, reset chunk counters, new
        // generation filtering — whether the in-place reset or the realloc
        // path was taken.
        let t = table();
        let l = t.layout();
        let mut st = ProcessStats::default();
        for round in 0..3u32 {
            t.post_batch(&[
                SlotPost {
                    slot: 0,
                    generation: round,
                    total_packets: 32,
                    pkts_per_chunk: 16,
                },
                SlotPost {
                    slot: 1,
                    generation: round,
                    total_packets: 8,
                    pkts_per_chunk: 4,
                },
            ]);
            assert_eq!(t.missing_packets(0).len(), 32, "round {round}: clean");
            assert_eq!(t.missing_packets(1).len(), 8, "round {round}: clean");
            // Stale completions from the previous round are filtered.
            if round > 0 {
                let before = st.generation_filtered;
                t.process(cqe(&l, 0, 0, round - 1), &mut st);
                assert_eq!(st.generation_filtered, before + 1);
            }
            for pkt in 0..32 {
                t.process(cqe(&l, 0, pkt, round), &mut st);
            }
            for pkt in 0..8 {
                t.process(cqe(&l, 1, pkt, round), &mut st);
            }
            assert!(t.is_complete(0) && t.is_complete(1), "round {round}");
            t.complete(0);
            t.complete(1);
        }
        assert_eq!(st.packets, 3 * 40);
        assert_eq!(st.chunks, 3 * 4);
    }

    #[test]
    fn post_batch_reshapes_slots() {
        // Shape changes force the realloc path; the new shape must win.
        let t = table();
        t.post(2, 0, 32, 16);
        t.complete(2);
        t.post_batch(&[SlotPost {
            slot: 2,
            generation: 1,
            total_packets: 6,
            pkts_per_chunk: 2,
        }]);
        assert_eq!(t.missing_packets(2), vec![0, 1, 2, 3, 4, 5]);
        let mut st = ProcessStats::default();
        let l = t.layout();
        for pkt in 0..6 {
            t.process(cqe(&l, 2, pkt, 1), &mut st);
        }
        assert_eq!(st.chunks, 3);
        assert!(t.is_complete(2));
    }
}
