//! The DPA engine: worker threads polling completion rings.
//!
//! Reproduces the receive-side offloading of §3.4: `N` worker threads, each
//! bound to one completion ring (= one group of channel QPs), executing the
//! §3.4.2 datapath — generation validation, per-packet bitmap update, chunk
//! publication. The BlueField-3 DPA has 256 energy-efficient hardware
//! threads; this host-side stand-in scales with physical cores instead, so
//! thread counts beyond the machine's cores measure oversubscription (noted
//! in EXPERIMENTS.md).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use sdr_core::imm::ImmLayout;
use sdr_trace::{Counter, Histogram, Registry};

use crate::ring::{CqeRing, DpaCqe};
use crate::table::{DpaMsgTable, ProcessStats};

/// Configuration of a DPA engine instance.
#[derive(Clone, Copy, Debug)]
pub struct DpaConfig {
    /// Number of receive worker threads (DPA threads in the paper).
    pub workers: usize,
    /// Message-ID slots in the receive table.
    pub msg_slots: usize,
    /// Completion-ring capacity per worker.
    pub ring_capacity: usize,
    /// Immediate layout.
    pub layout: ImmLayout,
    /// CQEs drained per ring poll (§3.4.2's batched bitmap publishes):
    /// each drained batch goes through
    /// [`process_batch`](crate::DpaMsgTable::process_batch), which
    /// coalesces bitmap-word updates and chunk publishes per message.
    /// `1` reproduces the one-at-a-time baseline for A/B runs.
    pub batch_budget: usize,
}

impl Default for DpaConfig {
    fn default() -> Self {
        DpaConfig {
            workers: 4,
            msg_slots: 64,
            ring_capacity: 4096,
            layout: ImmLayout::default(),
            batch_budget: 256,
        }
    }
}

/// A running DPA engine: shared message table + worker threads.
pub struct DpaEngine {
    table: Arc<DpaMsgTable>,
    rings: Vec<Arc<CqeRing>>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<ProcessStats>>,
    rr: std::cell::Cell<usize>,
    metrics: Registry,
}

impl DpaEngine {
    /// Spawns the worker threads and returns the engine handle, with a
    /// private metrics registry.
    pub fn start(cfg: DpaConfig) -> Self {
        Self::start_with_metrics(cfg, Registry::new())
    }

    /// [`start`](Self::start) recording into a caller-supplied registry —
    /// `dpa.polls` (non-empty ring drains), `dpa.completions` (CQEs
    /// processed; completions/poll is their ratio) and `dpa.batch` (CQEs
    /// per drained batch, the §3.4.2 coalescing opportunity). The handles
    /// are plain atomics, shared safely across the worker threads.
    pub fn start_with_metrics(cfg: DpaConfig, metrics: Registry) -> Self {
        assert!(cfg.workers >= 1);
        assert!(cfg.batch_budget >= 1);
        let table = DpaMsgTable::new(cfg.msg_slots, cfg.layout);
        let rings: Vec<Arc<CqeRing>> = (0..cfg.workers)
            .map(|_| CqeRing::new(cfg.ring_capacity))
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let polls = metrics.counter("dpa.polls");
        let completions = metrics.counter("dpa.completions");
        let batch_hist = metrics.histogram("dpa.batch");
        let workers = rings
            .iter()
            .map(|ring| {
                let ring = ring.clone();
                let table = table.clone();
                let stop = stop.clone();
                let budget = cfg.batch_budget;
                let trace = WorkerTrace {
                    polls: polls.clone(),
                    completions: completions.clone(),
                    batch: batch_hist.clone(),
                };
                std::thread::spawn(move || worker_loop(&table, &ring, &stop, budget, &trace))
            })
            .collect();
        DpaEngine {
            table,
            rings,
            stop,
            workers,
            rr: std::cell::Cell::new(0),
            metrics,
        }
    }

    /// The shared message table (host-frontend view).
    pub fn table(&self) -> &Arc<DpaMsgTable> {
        &self.table
    }

    /// The engine's metrics registry (`dpa.*` family).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.rings.len()
    }

    /// Dispatches a packet completion round-robin across worker rings —
    /// the multi-channel striping of §3.4.1.
    #[inline]
    pub fn dispatch(&self, cqe: DpaCqe) {
        let i = self.rr.get();
        self.rr.set((i + 1) % self.rings.len());
        self.rings[i].push_blocking(cqe);
    }

    /// Dispatches to an explicit ring (tests, custom striping policies).
    #[inline]
    pub fn dispatch_to(&self, ring: usize, cqe: DpaCqe) {
        self.rings[ring].push_blocking(cqe);
    }

    /// Completions still queued across all rings.
    pub fn backlog(&self) -> usize {
        self.rings.iter().map(|r| r.len()).sum()
    }

    /// Stops the workers and returns their merged statistics.
    pub fn shutdown(self) -> ProcessStats {
        self.stop.store(true, Ordering::Release);
        let mut total = ProcessStats::default();
        for w in self.workers {
            let st = w.join().expect("worker panicked");
            total = total.merge(&st);
        }
        total
    }
}

/// Per-worker metric handles (cloned registry handles; all atomic).
struct WorkerTrace {
    polls: Counter,
    completions: Counter,
    batch: Histogram,
}

fn worker_loop(
    table: &DpaMsgTable,
    ring: &CqeRing,
    stop: &AtomicBool,
    budget: usize,
    trace: &WorkerTrace,
) -> ProcessStats {
    let mut stats = ProcessStats::default();
    let mut batch: Vec<crate::ring::DpaCqe> = Vec::with_capacity(budget);
    let mut idle: u32 = 0;
    loop {
        batch.clear();
        let n = ring.pop_batch(&mut batch, budget);
        if n > 0 {
            idle = 0;
            trace.polls.inc();
            trace.completions.add(n as u64);
            trace.batch.record(n as u64);
            // One batched pass: bitmap-word updates and chunk publishes
            // coalesce per message instead of one RMW round per packet.
            table.process_batch(&batch, &mut stats);
        } else {
            if stop.load(Ordering::Acquire) && ring.is_empty() {
                return stats;
            }
            idle += 1;
            if idle > 128 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workers: usize) -> DpaConfig {
        DpaConfig {
            workers,
            msg_slots: 8,
            ring_capacity: 1024,
            layout: ImmLayout::default(),
            batch_budget: 256,
        }
    }

    #[test]
    fn single_worker_processes_message() {
        let eng = DpaEngine::start(cfg(1));
        let l = eng.table().layout();
        eng.table().post(0, 0, 64, 16);
        for pkt in 0..64 {
            eng.dispatch(DpaCqe {
                imm: l.encode(0, pkt, 0),
                generation: 0,
                null_write: false,
            });
        }
        // Wait for completion.
        while !eng.table().is_complete(0) {
            std::thread::yield_now();
        }
        let st = eng.shutdown();
        assert_eq!(st.packets, 64);
        assert_eq!(st.chunks, 4);
    }

    #[test]
    fn four_workers_share_one_message_without_loss() {
        // The §3.4.2 scenario: packets of one message striped across
        // channels; racing workers must complete each chunk exactly once.
        let eng = DpaEngine::start(cfg(4));
        let l = eng.table().layout();
        eng.table().post(3, 0, 1024, 16);
        for pkt in 0..1024 {
            eng.dispatch(DpaCqe {
                imm: l.encode(3, pkt, 0),
                generation: 0,
                null_write: false,
            });
        }
        while !eng.table().is_complete(3) {
            std::thread::yield_now();
        }
        let st = eng.shutdown();
        assert_eq!(st.packets, 1024);
        assert_eq!(st.chunks, 64);
        assert_eq!(st.duplicates, 0);
    }

    #[test]
    fn stale_generation_packets_are_filtered_concurrently() {
        let eng = DpaEngine::start(cfg(2));
        let l = eng.table().layout();
        eng.table().post(0, 5, 16, 4);
        for pkt in 0..16 {
            eng.dispatch(DpaCqe {
                imm: l.encode(0, pkt, 0),
                generation: 5,
                null_write: false,
            });
            eng.dispatch(DpaCqe {
                imm: l.encode(0, pkt, 0),
                generation: 4, // stale
                null_write: false,
            });
        }
        while !eng.table().is_complete(0) {
            std::thread::yield_now();
        }
        let st = eng.shutdown();
        assert_eq!(st.packets, 16);
        assert_eq!(st.generation_filtered, 16);
    }

    #[test]
    fn missing_packets_visible_to_host_for_retransmission() {
        let eng = DpaEngine::start(cfg(2));
        let l = eng.table().layout();
        eng.table().post(1, 0, 32, 8);
        // Send all but packets 5 and 20.
        for pkt in (0..32).filter(|&p| p != 5 && p != 20) {
            eng.dispatch(DpaCqe {
                imm: l.encode(1, pkt, 0),
                generation: 0,
                null_write: false,
            });
        }
        while eng.backlog() > 0 {
            std::thread::yield_now();
        }
        // Give workers a beat to drain in-flight pops.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let missing = eng.table().missing_packets(1);
        assert_eq!(missing, vec![5, 20]);
        // Retransmit them (what the SR layer does) and complete.
        for pkt in [5u32, 20] {
            eng.dispatch(DpaCqe {
                imm: l.encode(1, pkt, 0),
                generation: 0,
                null_write: false,
            });
        }
        while !eng.table().is_complete(1) {
            std::thread::yield_now();
        }
        eng.shutdown();
    }
}
