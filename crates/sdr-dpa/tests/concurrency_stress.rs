//! Concurrency stress for the DPA engine: random interleavings across
//! workers with losses, duplicates and stale generations must never corrupt
//! the bitmaps — the final missing set always matches a single-threaded
//! reference.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sdr_core::imm::ImmLayout;
use sdr_dpa::{DpaConfig, DpaCqe, DpaEngine};

#[test]
fn random_interleavings_with_drops_and_duplicates() {
    for seed in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let eng = DpaEngine::start(DpaConfig {
            workers: 4,
            msg_slots: 8,
            ring_capacity: 8192,
            layout: ImmLayout::default(),
        });
        let l = eng.table().layout();
        let total = 2048usize;
        eng.table().post(2, 7, total, 16);

        // Build the stream: each packet 0–2 times (drop/dup), plus stale
        // generation noise, then shuffle.
        let mut stream: Vec<DpaCqe> = Vec::new();
        let mut expect_missing: Vec<usize> = Vec::new();
        for pkt in 0..total {
            let copies = match rng.random_range(0..10) {
                0 => 0, // dropped
                1..=7 => 1,
                _ => 2, // duplicated (retransmission overlap)
            };
            if copies == 0 {
                expect_missing.push(pkt);
            }
            for _ in 0..copies {
                stream.push(DpaCqe {
                    imm: l.encode(2, pkt as u32, 0),
                    generation: 7,
                    null_write: false,
                });
            }
            if rng.random_range(0..20) == 0 {
                stream.push(DpaCqe {
                    imm: l.encode(2, pkt as u32, 0),
                    generation: 6, // stale
                    null_write: false,
                });
            }
        }
        stream.shuffle(&mut rng);
        for cqe in stream {
            eng.dispatch(cqe);
        }
        // Drain.
        while eng.backlog() > 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        let missing = eng.table().missing_packets(2);
        let st = eng.shutdown();
        assert_eq!(missing, expect_missing, "seed {seed}");
        assert_eq!(
            st.packets as usize,
            total - expect_missing.len(),
            "seed {seed}: each surviving packet counted once"
        );
        assert_eq!(st.bad_offset, 0);
    }
}

#[test]
fn parallel_messages_do_not_interfere() {
    let eng = DpaEngine::start(DpaConfig {
        workers: 3,
        msg_slots: 16,
        ring_capacity: 8192,
        layout: ImmLayout::default(),
    });
    let l = eng.table().layout();
    // 16 concurrent messages, interleaved packet streams.
    for slot in 0..16 {
        eng.table().post(slot, 1, 256, 8);
    }
    for pkt in 0..256u32 {
        for slot in 0..16u32 {
            eng.dispatch(DpaCqe {
                imm: l.encode(slot, pkt, 0),
                generation: 1,
                null_write: false,
            });
        }
    }
    for slot in 0..16 {
        while !eng.table().is_complete(slot) {
            std::thread::yield_now();
        }
    }
    let st = eng.shutdown();
    assert_eq!(st.packets, 16 * 256);
    assert_eq!(st.chunks, 16 * 32);
    assert_eq!(st.duplicates, 0);
}
