//! Concurrency stress for the DPA engine: random interleavings across
//! workers with losses, duplicates and stale generations must never corrupt
//! the bitmaps — the final missing set always matches a single-threaded
//! reference.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sdr_core::imm::ImmLayout;
use sdr_dpa::{DpaConfig, DpaCqe, DpaEngine};

#[test]
fn random_interleavings_with_drops_and_duplicates() {
    for seed in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let eng = DpaEngine::start(DpaConfig {
            workers: 4,
            msg_slots: 8,
            ring_capacity: 8192,
            layout: ImmLayout::default(),
            batch_budget: 256,
        });
        let l = eng.table().layout();
        let total = 2048usize;
        eng.table().post(2, 7, total, 16);

        // Build the stream: each packet 0–2 times (drop/dup), plus stale
        // generation noise, then shuffle.
        let mut stream: Vec<DpaCqe> = Vec::new();
        let mut expect_missing: Vec<usize> = Vec::new();
        for pkt in 0..total {
            let copies = match rng.random_range(0..10) {
                0 => 0, // dropped
                1..=7 => 1,
                _ => 2, // duplicated (retransmission overlap)
            };
            if copies == 0 {
                expect_missing.push(pkt);
            }
            for _ in 0..copies {
                stream.push(DpaCqe {
                    imm: l.encode(2, pkt as u32, 0),
                    generation: 7,
                    null_write: false,
                });
            }
            if rng.random_range(0..20) == 0 {
                stream.push(DpaCqe {
                    imm: l.encode(2, pkt as u32, 0),
                    generation: 6, // stale
                    null_write: false,
                });
            }
        }
        stream.shuffle(&mut rng);
        for cqe in stream {
            eng.dispatch(cqe);
        }
        // Drain.
        while eng.backlog() > 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        let missing = eng.table().missing_packets(2);
        let st = eng.shutdown();
        assert_eq!(missing, expect_missing, "seed {seed}");
        assert_eq!(
            st.packets as usize,
            total - expect_missing.len(),
            "seed {seed}: each surviving packet counted once"
        );
        assert_eq!(st.bad_offset, 0);
    }
}

#[test]
fn parallel_messages_do_not_interfere() {
    let eng = DpaEngine::start(DpaConfig {
        workers: 3,
        msg_slots: 16,
        ring_capacity: 8192,
        layout: ImmLayout::default(),
        batch_budget: 256,
    });
    let l = eng.table().layout();
    // 16 concurrent messages, interleaved packet streams.
    for slot in 0..16 {
        eng.table().post(slot, 1, 256, 8);
    }
    for pkt in 0..256u32 {
        for slot in 0..16u32 {
            eng.dispatch(DpaCqe {
                imm: l.encode(slot, pkt, 0),
                generation: 1,
                null_write: false,
            });
        }
    }
    for slot in 0..16 {
        while !eng.table().is_complete(slot) {
            std::thread::yield_now();
        }
    }
    let st = eng.shutdown();
    assert_eq!(st.packets, 16 * 256);
    assert_eq!(st.chunks, 16 * 32);
    assert_eq!(st.duplicates, 0);
}

/// The batched datapath must be observationally identical to one-at-a-time
/// processing: same stats, same missing sets — across adversarial streams
/// mixing slots, duplicates, stale generations, nulls and bad offsets.
#[test]
fn process_batch_matches_single_cqe_reference() {
    use sdr_dpa::{DpaMsgTable, ProcessStats};

    for seed in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(0xBA7C + seed);
        let layout = ImmLayout::default();
        let batched = DpaMsgTable::new(4, layout);
        let reference = DpaMsgTable::new(4, layout);
        for t in [&batched, &reference] {
            t.post(0, 3, 500, 16); // straddles word boundaries (500 pkts)
            t.post(2, 1, 64, 64);
        }

        let mut stream: Vec<DpaCqe> = Vec::new();
        for _ in 0..3000 {
            let slot = *[0u32, 0, 0, 2, 3].choose(&mut rng).unwrap(); // 3 = never posted
            let (total, generation) = match slot {
                0 => (500u32, 3u32),
                2 => (64, 1),
                _ => (500, 0),
            };
            let pkt = rng.random_range(0..total + 8); // +8 → bad offsets
            let generation = if rng.random_range(0..10) == 0 {
                generation.wrapping_sub(1) // stale
            } else {
                generation
            };
            stream.push(DpaCqe {
                imm: layout.encode(slot, pkt, 0),
                generation,
                null_write: rng.random_range(0..40) == 0,
            });
        }

        let mut batch_stats = ProcessStats::default();
        // Random batch boundaries, including batches of 1.
        let mut i = 0;
        while i < stream.len() {
            let end = (i + rng.random_range(1usize..200)).min(stream.len());
            batched.process_batch(&stream[i..end], &mut batch_stats);
            i = end;
        }
        let mut ref_stats = ProcessStats::default();
        for &cqe in &stream {
            reference.process(cqe, &mut ref_stats);
        }

        assert_eq!(batch_stats, ref_stats, "seed {seed}");
        for slot in [0usize, 2] {
            assert_eq!(
                batched.missing_packets(slot),
                reference.missing_packets(slot),
                "seed {seed} slot {slot}"
            );
        }
    }
}

/// Engine-level A/B: a batch budget of 1 (the pre-batching behavior) and
/// the default budget land the same final state under loss + duplication.
#[test]
fn batch_budget_does_not_change_outcomes() {
    for budget in [1usize, 4, 256] {
        let eng = DpaEngine::start(DpaConfig {
            workers: 4,
            msg_slots: 8,
            ring_capacity: 8192,
            layout: ImmLayout::default(),
            batch_budget: budget,
        });
        let l = eng.table().layout();
        let total = 2048usize;
        eng.table().post(1, 2, total, 16);
        let mut rng = SmallRng::seed_from_u64(77);
        let mut stream: Vec<DpaCqe> = Vec::new();
        let mut expect_missing: Vec<usize> = Vec::new();
        for pkt in 0..total {
            let copies = match rng.random_range(0..10) {
                0 => 0,
                1..=7 => 1,
                _ => 2,
            };
            if copies == 0 {
                expect_missing.push(pkt);
            }
            for _ in 0..copies {
                stream.push(DpaCqe {
                    imm: l.encode(1, pkt as u32, 0),
                    generation: 2,
                    null_write: false,
                });
            }
        }
        stream.shuffle(&mut rng);
        for cqe in stream {
            eng.dispatch(cqe);
        }
        while eng.backlog() > 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(
            eng.table().missing_packets(1),
            expect_missing,
            "budget {budget}"
        );
        let st = eng.shutdown();
        assert_eq!(
            st.packets as usize,
            total - expect_missing.len(),
            "budget {budget}"
        );
    }
}

/// Batched reposts racing live workers: while workers drain completions
/// for active slots, the host retires + `post_batch`-recycles completed
/// slots (same shape → in-place bitmap reset). Every message epoch must
/// complete exactly, with stale-generation leakage filtered — proving the
/// recycled bitmap is indistinguishable from a fresh allocation under
/// concurrency.
#[test]
fn batched_repost_races_with_workers() {
    use sdr_dpa::SlotPost;

    let eng = DpaEngine::start(DpaConfig {
        workers: 4,
        msg_slots: 4,
        ring_capacity: 8192,
        layout: ImmLayout::default(),
        batch_budget: 64,
    });
    let l = eng.table().layout();
    let total = 256usize;
    let epochs = 40u32;
    let mut reposts: Vec<SlotPost> = (0..4)
        .map(|slot| SlotPost {
            slot,
            generation: 0,
            total_packets: total,
            pkts_per_chunk: 16,
        })
        .collect();
    eng.table().post_batch(&reposts);
    for gen in 0..epochs {
        // Inject all four slots' packets, plus stale noise from the
        // previous epoch that must be filtered by the recycled slots.
        for pkt in 0..total as u32 {
            for slot in 0..4u32 {
                eng.dispatch(DpaCqe {
                    imm: l.encode(slot, pkt, 0),
                    generation: gen,
                    null_write: false,
                });
                if gen > 0 && pkt % 64 == 0 {
                    eng.dispatch(DpaCqe {
                        imm: l.encode(slot, pkt, 0),
                        generation: gen - 1, // stale
                        null_write: false,
                    });
                }
            }
        }
        for slot in 0..4 {
            while !eng.table().is_complete(slot) {
                std::thread::yield_now();
            }
        }
        // Retire + batch-repost the whole table for the next epoch while
        // stale completions may still be in flight.
        for slot in 0..4 {
            eng.table().complete(slot);
        }
        for p in reposts.iter_mut() {
            p.generation = gen + 1;
        }
        if gen + 1 < epochs {
            eng.table().post_batch(&reposts);
        }
    }
    let st = eng.shutdown();
    assert_eq!(st.packets, 4 * total as u64 * epochs as u64);
    assert_eq!(st.chunks, 4 * (total as u64 / 16) * epochs as u64);
    assert_eq!(st.bad_offset, 0);
    // All stale injections were either filtered by generation or counted
    // as duplicates within their own epoch — never recorded as packets.
    assert!(st.generation_filtered > 0, "stale noise must be filtered");
}
