//! Data-correct ring Allreduce over the full discrete-event SDR stack.
//!
//! While [`crate::ring`] evaluates completion-time *statistics* from the
//! closed-form models (Figure 13), this module actually executes a ring
//! Allreduce: `N` simulated datacenters exchange real f32 segments through
//! SDR queue pairs protected by the Selective Repeat layer, reduce them, and
//! the test asserts the final vectors are exactly the element-wise sum on
//! every node — including under packet loss.
//!
//! Rounds are host-synchronized (a barrier between schedule steps) rather
//! than pipelined; this slightly overestimates completion time but keeps
//! the data-flow assertions exact. Timing fidelity lives in the model path.

use std::cell::Cell;
use std::rc::Rc;

use sdr_core::{SdrConfig, SdrContext, SdrQp};
use sdr_reliability::{ControlEndpoint, SrProtoConfig, SrSender};
use sdr_sim::{Engine, Fabric, LinkConfig, SimTime};

/// Outcome of a DES Allreduce run.
#[derive(Clone, Copy, Debug)]
pub struct DesAllreduceOutcome {
    /// Simulated completion time (includes ACK-linger tail).
    pub completion: SimTime,
    /// All nodes ended with exactly the element-wise sum.
    pub data_ok: bool,
    /// Total chunks retransmitted by the SR layers across all steps.
    pub retransmitted: u64,
}

/// Runs a ring Allreduce of `elems` f32 values per node across `n`
/// simulated datacenters connected by `km`-long lossy links.
///
/// `elems` must be divisible by `n`, and the per-step segment must fit the
/// SDR configuration (4 KiB MTU, 4 KiB chunks, 1 MiB max message).
pub fn des_ring_allreduce(
    n: usize,
    elems: usize,
    km: f64,
    p_drop: f64,
    seed: u64,
) -> DesAllreduceOutcome {
    assert!(n >= 2 && elems.is_multiple_of(n));
    let seg_elems = elems / n;
    let seg_bytes = (seg_elems * 4) as u64;

    let cfg = SdrConfig {
        max_msg_bytes: 1 << 20,
        msg_slots: 64,
        mtu_bytes: 4096,
        chunk_bytes: 4096,
        channels: 2,
        generations: 2,
        ..SdrConfig::default()
    };
    assert!(seg_bytes <= cfg.max_msg_bytes);

    let mut eng = Engine::new();
    let fabric = Fabric::new();
    let nodes: Vec<_> = (0..n).map(|_| fabric.add_node(16 << 20)).collect();
    for i in 0..n {
        let link = LinkConfig::wan(km, 8e9, p_drop).with_seed(seed.wrapping_add(i as u64));
        fabric.link_duplex(nodes[i], nodes[(i + 1) % n], link);
    }
    let rtt = fabric.rtt(nodes[0], nodes[1]).expect("ring links");
    // Shorter linger: rounds are barriered, so ACK loss only delays a round.
    let mut proto = SrProtoConfig::rto_3rtt(rtt);
    proto.linger_acks = 6;

    let ctxs: Vec<_> = nodes
        .iter()
        .map(|&nd| SdrContext::new(&fabric, nd))
        .collect();
    // One directed SDR QP pair per ring edge i → i+1.
    let mut qp_out: Vec<SdrQp> = Vec::with_capacity(n);
    let mut qp_in: Vec<Option<SdrQp>> = (0..n).map(|_| None).collect();
    for i in 0..n {
        let next = (i + 1) % n;
        let a = ctxs[i].qp_create(cfg).expect("qp");
        let b = ctxs[next].qp_create(cfg).expect("qp");
        a.connect(b.info()).expect("connect");
        b.connect(a.info()).expect("connect");
        qp_out.push(a);
        qp_in[next] = Some(b);
    }
    let qp_in: Vec<SdrQp> = qp_in.into_iter().map(|q| q.expect("ring closed")).collect();
    // Control endpoints: one for each node's sender role and receiver role.
    let ctrl_tx: Vec<Rc<ControlEndpoint>> = nodes
        .iter()
        .map(|&nd| Rc::new(ControlEndpoint::new(&fabric, nd)))
        .collect();
    let ctrl_rx: Vec<Rc<ControlEndpoint>> = nodes
        .iter()
        .map(|&nd| Rc::new(ControlEndpoint::new(&fabric, nd)))
        .collect();

    // Buffers: the data vector plus a staging segment for incoming data.
    let data_addr: Vec<u64> = ctxs
        .iter()
        .map(|c| c.alloc_buffer(elems as u64 * 4))
        .collect();
    let stage_addr: Vec<u64> = ctxs.iter().map(|c| c.alloc_buffer(seg_bytes)).collect();

    // Initial vectors: small integers keep f32 sums exact.
    let initial = |node: usize, j: usize| -> f32 { ((node * 31 + j) % 97) as f32 };
    for (i, ctx) in ctxs.iter().enumerate() {
        let bytes: Vec<u8> = (0..elems)
            .flat_map(|j| initial(i, j).to_le_bytes())
            .collect();
        ctx.write_buffer(data_addr[i], &bytes);
    }

    let read_seg = |ctx: &SdrContext, addr: u64| -> Vec<f32> {
        ctx.read_buffer(addr, seg_bytes as usize)
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().expect("chunks_exact(4)")))
            .collect()
    };
    let write_seg = |ctx: &SdrContext, addr: u64, v: &[f32]| {
        let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
        ctx.write_buffer(addr, &bytes);
    };

    let mut retransmitted = 0u64;
    let rounds = 2 * n - 2;
    for r in 0..rounds {
        let reduce_phase = r < n - 1;
        // Kick off all n transfers of this round.
        let mut done_flags = Vec::with_capacity(n);
        for i in 0..n {
            let next = (i + 1) % n;
            let seg_send = if reduce_phase {
                (i + n - (r % n)) % n
            } else {
                (i + 1 + n - (r - (n - 1))) % n
            };
            let send_addr = data_addr[i] + seg_send as u64 * seg_bytes;
            // Receiver on `next` first (its CTS races the sender start).
            let recv_done = Rc::new(Cell::new(false));
            let rd = recv_done.clone();
            let _rx = sdr_reliability::SrReceiver::start(
                &mut eng,
                &qp_in[next],
                ctrl_rx[next].clone(),
                ctrl_tx[i].addr(),
                stage_addr[next],
                seg_bytes,
                proto,
                move |_eng, _t| rd.set(true),
            );
            let send_done = Rc::new(Cell::new(None));
            let sd = send_done.clone();
            let _tx = SrSender::start(
                &mut eng,
                &qp_out[i],
                ctrl_tx[i].clone(),
                ctrl_rx[next].addr(),
                send_addr,
                seg_bytes,
                proto,
                move |_eng, rep| sd.set(Some(rep.retransmitted)),
            );
            done_flags.push((recv_done, send_done));
        }
        eng.set_event_limit(eng.executed_events() + 50_000_000);
        eng.run();
        for (recv_done, send_done) in done_flags {
            assert!(recv_done.get(), "round {r}: receive incomplete");
            retransmitted += send_done.get().expect("round {r}: send incomplete");
        }
        // Apply the received segment: reduce (add) or gather (replace).
        for i in 0..n {
            let seg_recv = if reduce_phase {
                (i + n - 1 + n - (r % n)) % n
            } else {
                (i + n - (r - (n - 1))) % n
            };
            let incoming = read_seg(&ctxs[i], stage_addr[i]);
            let dst = data_addr[i] + seg_recv as u64 * seg_bytes;
            if reduce_phase {
                let mut acc = read_seg(&ctxs[i], dst);
                for (a, b) in acc.iter_mut().zip(&incoming) {
                    *a += b;
                }
                write_seg(&ctxs[i], dst, &acc);
            } else {
                write_seg(&ctxs[i], dst, &incoming);
            }
        }
    }

    // Verify: every node holds the exact element-wise sum.
    let expect: Vec<f32> = (0..elems)
        .map(|j| (0..n).map(|i| initial(i, j)).sum())
        .collect();
    let data_ok = (0..n).all(|i| {
        let got: Vec<f32> = ctxs[i]
            .read_buffer(data_addr[i], elems * 4)
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().expect("chunks_exact(4)")))
            .collect();
        got == expect
    });

    DesAllreduceOutcome {
        completion: eng.now(),
        data_ok,
        retransmitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_allreduce_sums_exactly() {
        let out = des_ring_allreduce(4, 4096, 50.0, 0.0, 1);
        assert!(out.data_ok);
        assert_eq!(out.retransmitted, 0);
        assert!(out.completion > SimTime::ZERO);
    }

    #[test]
    fn lossy_allreduce_still_sums_exactly() {
        // 16 Ki elements → 16 KiB segments → 4 packets per transfer;
        // 96 packets at 5% loss make at least one drop near-certain.
        let out = des_ring_allreduce(4, 16384, 50.0, 0.05, 7);
        assert!(out.data_ok, "SR must repair every segment");
        assert!(out.retransmitted > 0, "5% loss must retransmit");
    }

    #[test]
    fn three_node_ring_works() {
        let out = des_ring_allreduce(3, 3 * 1024, 50.0, 0.01, 3);
        assert!(out.data_ok);
    }

    #[test]
    fn two_node_ring_degenerates_to_exchange() {
        let out = des_ring_allreduce(2, 2048, 50.0, 0.0, 5);
        assert!(out.data_ok);
    }
}
