//! Stage-based collective schedules (Appendix C).
//!
//! The ring Allreduce over `N` datacenters runs `2N − 2` interdependent
//! point-to-point rounds; the finish-time recurrence is
//!
//! ```text
//! T(i, r) = max(T(i−1, r−1), T(i, r−1)) + t(i, r−1)
//! ```
//!
//! so per-step reliability delays accumulate across the schedule
//! (lower bound `(2N−2)·(C + µX)`, Appendix C, eq. 5). The same engine
//! evaluates tree-structured schedules.

/// Completion time of a ring schedule over `n` participants with
/// `2n − 2` rounds. `step_time(i, r)` returns the duration of the
/// communication step finishing round `r + 1` at node `i` (seconds).
///
/// Returns the finish time of the slowest node after the last round.
pub fn ring_completion_time(n: usize, mut step_time: impl FnMut(usize, usize) -> f64) -> f64 {
    assert!(n >= 2, "a ring needs at least two participants");
    let rounds = 2 * n - 2;
    let mut finish = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    for r in 0..rounds {
        for i in 0..n {
            let pred = (i + n - 1) % n;
            let ready = finish[pred].max(finish[i]);
            next[i] = ready + step_time(i, r);
        }
        std::mem::swap(&mut finish, &mut next);
    }
    finish.iter().cloned().fold(0.0, f64::max)
}

/// Completion time of a binomial-tree broadcast over `n` participants:
/// in round `r`, every rank `< 2^r` sends to rank `+ 2^r`.
/// `step_time(src, r)` is the duration of that transfer.
pub fn binomial_broadcast_time(n: usize, mut step_time: impl FnMut(usize, usize) -> f64) -> f64 {
    assert!(n >= 1);
    let mut reached = vec![f64::INFINITY; n];
    let mut busy = vec![0.0f64; n]; // when each node's NIC frees up
    reached[0] = 0.0;
    let mut r = 0usize;
    while (1usize << r) < n {
        let stride = 1usize << r;
        for src in 0..stride.min(n) {
            let dst = src + stride;
            if dst < n && reached[src].is_finite() {
                // A node's sends are sequential: the round-r transfer can
                // only start once the node has the data AND finished its
                // previous send.
                let start = reached[src].max(busy[src]);
                let finish = start + step_time(src, r);
                busy[src] = finish;
                if finish < reached[dst] {
                    reached[dst] = finish;
                    busy[dst] = busy[dst].max(finish);
                }
            }
        }
        r += 1;
    }
    reached.iter().cloned().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_steps_give_linear_ring_time() {
        // With deterministic step duration c, T = (2N−2)·c exactly.
        for n in [2usize, 4, 8] {
            let t = ring_completion_time(n, |_, _| 1.5);
            assert!((t - (2 * n - 2) as f64 * 1.5).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn one_slow_node_delays_everyone() {
        // A single slow step in round 0 propagates around the ring.
        let n = 4;
        let t = ring_completion_time(n, |i, r| if i == 0 && r == 0 { 10.0 } else { 1.0 });
        // Node 0's delay reaches the last dependent step.
        assert!(t > 10.0 + 1.0, "delay must propagate: {t}");
        // But not more than delay + full schedule.
        assert!(t <= 10.0 + (2 * n - 2) as f64);
    }

    #[test]
    fn ring_time_is_monotone_in_step_times() {
        let fast = ring_completion_time(5, |_, _| 1.0);
        let slow = ring_completion_time(5, |_, _| 2.0);
        assert!(slow > fast);
        assert!((slow - 2.0 * fast).abs() < 1e-12);
    }

    #[test]
    fn binomial_broadcast_depth() {
        // Constant unit steps: completion = ceil(log2 n).
        assert_eq!(binomial_broadcast_time(1, |_, _| 1.0), 0.0);
        assert_eq!(binomial_broadcast_time(2, |_, _| 1.0), 1.0);
        assert_eq!(binomial_broadcast_time(8, |_, _| 1.0), 3.0);
        assert_eq!(binomial_broadcast_time(5, |_, _| 1.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn ring_needs_two_nodes() {
        ring_completion_time(1, |_, _| 1.0);
    }
}
