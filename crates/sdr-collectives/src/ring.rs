//! Model-driven inter-datacenter ring Allreduce (§5.3, Figure 13).
//!
//! Each of the `2N − 2` schedule steps transfers `buffer / N` bytes over the
//! long-haul channel under a chosen reliability scheme; per-step completion
//! times are drawn from the `sdr-model` samplers and propagated through the
//! Appendix C recurrence. The paper's observation: slowdowns from an
//! inefficient reliability scheme *accumulate* across the schedule, so EC's
//! per-step advantage compounds to 3–6× at the 99.9th percentile.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use sdr_model::{ec_sample, sr_sample, Channel, EcConfig, SrConfig, Summary};

use crate::schedule::ring_completion_time;

/// Reliability scheme protecting each point-to-point step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StepProtocol {
    /// Lossless reference (ideal channel).
    Lossless,
    /// Selective Repeat with `RTO = mult · RTT`.
    SrRto {
        /// RTO multiplier (the paper uses 3).
        mult: f64,
    },
    /// Selective Repeat with the NACK approximation (RTO = 1 RTT).
    SrNack,
    /// MDS erasure coding.
    EcMds {
        /// Data chunks per submessage.
        k: u32,
        /// Parity chunks per submessage.
        m: u32,
    },
    /// XOR erasure coding.
    EcXor {
        /// Data chunks per submessage.
        k: u32,
        /// Parity chunks per submessage.
        m: u32,
    },
}

/// Ring Allreduce workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct AllreduceParams {
    /// Number of datacenters in the ring.
    pub n_dc: usize,
    /// Allreduce buffer size in bytes (each step moves `buffer / n`).
    pub buffer_bytes: u64,
    /// The inter-datacenter channel.
    pub channel: Channel,
}

impl AllreduceParams {
    /// Message size of one schedule step.
    pub fn step_bytes(&self) -> u64 {
        (self.buffer_bytes / self.n_dc as u64).max(1)
    }
}

pub(crate) fn sample_step_time(
    ch: &Channel,
    bytes: u64,
    proto: StepProtocol,
    rng: &mut SmallRng,
) -> f64 {
    match proto {
        StepProtocol::Lossless => ch.ideal_time(bytes),
        StepProtocol::SrRto { mult } => {
            sr_sample(ch, bytes, &SrConfig::rto_multiple(ch, mult), rng)
        }
        StepProtocol::SrNack => sr_sample(ch, bytes, &SrConfig::nack(ch), rng),
        StepProtocol::EcMds { k, m } => ec_sample(
            ch,
            bytes,
            &EcConfig::mds(k, m),
            &SrConfig::rto_multiple(ch, 3.0),
            rng,
        ),
        StepProtocol::EcXor { k, m } => ec_sample(
            ch,
            bytes,
            &EcConfig::xor(k, m),
            &SrConfig::rto_multiple(ch, 3.0),
            rng,
        ),
    }
}

/// Draws one Allreduce completion-time sample.
pub fn allreduce_sample(params: &AllreduceParams, proto: StepProtocol, rng: &mut SmallRng) -> f64 {
    let bytes = params.step_bytes();
    ring_completion_time(params.n_dc, |_, _| {
        sample_step_time(&params.channel, bytes, proto, rng)
    })
}

/// Runs `trials` Allreduce samples and summarizes.
pub fn allreduce_summary(
    params: &AllreduceParams,
    proto: StepProtocol,
    trials: usize,
    seed: u64,
) -> Summary {
    let mut rng = SmallRng::seed_from_u64(seed);
    let samples: Vec<f64> = (0..trials)
        .map(|_| allreduce_sample(params, proto, &mut rng))
        .collect();
    Summary::from_samples(samples)
}

/// Appendix C lower bound: `(2N − 2)·(C + µX)` where `C` is the lossless
/// per-step time and `µX` the mean extra reliability delay per step,
/// estimated from `trials` step samples.
pub fn allreduce_lower_bound(
    params: &AllreduceParams,
    proto: StepProtocol,
    trials: usize,
    seed: u64,
) -> f64 {
    let bytes = params.step_bytes();
    let c = params.channel.ideal_time(bytes);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mean_step: f64 = (0..trials)
        .map(|_| sample_step_time(&params.channel, bytes, proto, &mut rng))
        .sum::<f64>()
        / trials as f64;
    let mu_x = (mean_step - c).max(0.0);
    (2 * params.n_dc - 2) as f64 * (c + mu_x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig13_params(n: usize, buffer: u64, p: f64) -> AllreduceParams {
        AllreduceParams {
            n_dc: n,
            buffer_bytes: buffer,
            channel: Channel::new(400e9, 0.025, p),
        }
    }

    #[test]
    fn lossless_allreduce_is_deterministic() {
        let params = fig13_params(4, 128 << 20, 0.0);
        let s = allreduce_summary(&params, StepProtocol::Lossless, 50, 1);
        assert!((s.max - s.min).abs() < 1e-12);
        let per_step = params.channel.ideal_time(params.step_bytes());
        assert!((s.mean - 6.0 * per_step).abs() < 1e-9, "2N-2 = 6 steps");
    }

    #[test]
    fn ec_speedup_over_sr_grows_with_drop_rate() {
        // Figure 13's headline: p99.9 speedup of MDS EC over SR RTO grows
        // with the drop rate (3× → 6× in the paper's range).
        let mut prev_speedup = 0.0;
        for p in [1e-5, 1e-4] {
            let params = fig13_params(4, 128 << 20, p);
            let sr = allreduce_summary(&params, StepProtocol::SrRto { mult: 3.0 }, 3000, 2);
            let ec = allreduce_summary(&params, StepProtocol::EcMds { k: 32, m: 8 }, 3000, 3);
            let speedup = sr.p999 / ec.p999;
            assert!(
                speedup > 1.5,
                "EC should clearly win at p={p}: speedup {speedup:.2}"
            );
            assert!(speedup > prev_speedup, "speedup should grow with p");
            prev_speedup = speedup;
        }
        assert!(prev_speedup > 2.5, "final speedup {prev_speedup:.2}");
    }

    #[test]
    fn reliability_cost_accumulates_with_ring_size() {
        // Appendix C: expected total ≥ (2N−2)(C + µX); the slowdown from a
        // fixed per-step cost grows linearly in the stage count.
        let proto = StepProtocol::SrRto { mult: 3.0 };
        for n in [2usize, 4, 8] {
            let params = fig13_params(n, 128 << 20, 1e-5);
            let mean = allreduce_summary(&params, proto, 1500, 4).mean;
            let bound = allreduce_lower_bound(&params, proto, 4000, 5);
            assert!(
                mean >= bound * 0.97,
                "n={n}: mean {mean} below bound {bound}"
            );
        }
    }

    #[test]
    fn more_datacenters_shrink_per_step_messages() {
        let p = fig13_params(8, 128 << 20, 0.0);
        assert_eq!(p.step_bytes(), (128 << 20) / 8);
    }
}
