//! # sdr-collectives — inter-datacenter collectives over lossy links
//!
//! Section 5.3 of the paper: collective algorithms built from the reliable
//! Write primitive, where per-step reliability delays *accumulate* across
//! the `2N − 2` interdependent stages of a ring Allreduce (Appendix C's
//! lower bound `(2N−2)·(C + µX)`).
//!
//! * [`schedule`] — the stage-dependency engine: the `T(i, r)` recurrence
//!   for rings plus a binomial-tree broadcast variant.
//! * [`ring`] — model-driven Allreduce statistics (Figure 13): per-step
//!   completion times sampled from `sdr-model` under SR or EC protection.
//! * [`des_ring`] — a data-correct ring Allreduce executed on the full
//!   discrete-event SDR + Selective Repeat stack, asserting exact f32 sums
//!   on every node even under packet loss.

#![warn(missing_docs)]

pub mod des_ring;
pub mod ring;
pub mod schedule;
pub mod tree;

pub use des_ring::{des_ring_allreduce, DesAllreduceOutcome};
pub use ring::{
    allreduce_lower_bound, allreduce_sample, allreduce_summary, AllreduceParams, StepProtocol,
};
pub use schedule::{binomial_broadcast_time, ring_completion_time};
pub use tree::{tree_allreduce_sample, tree_allreduce_summary};
