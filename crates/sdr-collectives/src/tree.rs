//! Tree-structured collectives over lossy inter-DC links.
//!
//! §5.3 notes that the Appendix C accumulation analysis "generalizes to
//! other stage-based collective algorithms with schedule dependencies, such
//! as tree algorithms". This module provides the tree counterpart to
//! [`crate::ring`]: a binomial-tree Allreduce (reduce to root + broadcast,
//! `2·⌈log2 N⌉` dependent stages) evaluated with the same per-step
//! reliability samplers, so ring-vs-tree trade-offs can be explored per
//! deployment.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use sdr_model::Summary;

use crate::ring::{AllreduceParams, StepProtocol};
use crate::schedule::binomial_broadcast_time;

/// Draws one completion-time sample for a binomial-tree Allreduce:
/// a reduce phase (mirror-image of the broadcast tree) followed by a
/// broadcast phase. Every step moves the **full** buffer (trees do not
/// scatter), which is the classic latency-vs-bandwidth trade against rings.
pub fn tree_allreduce_sample(
    params: &AllreduceParams,
    proto: StepProtocol,
    rng: &mut SmallRng,
) -> f64 {
    let bytes = params.buffer_bytes.max(1);
    let mut step = |_src: usize, _round: usize| -> f64 {
        crate::ring::sample_step_time(&params.channel, bytes, proto, rng)
    };
    // Reduce = reverse broadcast: same dependency depth and step count.
    let reduce = binomial_broadcast_time(params.n_dc, &mut step);
    let bcast = binomial_broadcast_time(params.n_dc, &mut step);
    reduce + bcast
}

/// Runs `trials` samples of the tree Allreduce and summarizes.
pub fn tree_allreduce_summary(
    params: &AllreduceParams,
    proto: StepProtocol,
    trials: usize,
    seed: u64,
) -> Summary {
    let mut rng = SmallRng::seed_from_u64(seed);
    let samples: Vec<f64> = (0..trials)
        .map(|_| tree_allreduce_sample(params, proto, &mut rng))
        .collect();
    Summary::from_samples(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::allreduce_summary;
    use sdr_model::Channel;

    fn params(n: usize, buffer: u64) -> AllreduceParams {
        AllreduceParams {
            n_dc: n,
            buffer_bytes: buffer,
            channel: Channel::new(400e9, 0.025, 1e-5),
        }
    }

    #[test]
    fn lossless_tree_time_is_two_phases() {
        let p = AllreduceParams {
            channel: Channel::new(400e9, 0.025, 0.0),
            ..params(8, 128 << 20)
        };
        let s = tree_allreduce_summary(&p, StepProtocol::Lossless, 20, 1);
        // Depth log2(8) = 3 per phase; root's sequential sends make the
        // critical path ≥ 2 × 3 steps of full-buffer transfers.
        let per_step = p.channel.ideal_time(p.buffer_bytes);
        assert!(s.mean >= 6.0 * per_step * 0.999);
        assert!((s.max - s.min).abs() < 1e-12, "deterministic when lossless");
    }

    #[test]
    fn ring_beats_tree_for_bandwidth_bound_buffers() {
        // Classic result the framework must reproduce: rings move B/N per
        // step (bandwidth-optimal), trees move the full buffer. The ring
        // wins once per-step injection (B/N) dominates the RTT — at 25 ms
        // and 400 Gbit/s that means B/N ≫ 1.25 GB, so use 32 GiB × 8 DCs.
        let p = AllreduceParams {
            channel: Channel::new(400e9, 0.025, 0.0),
            ..params(8, 32 << 30)
        };
        let ring = allreduce_summary(&p, StepProtocol::Lossless, 5, 2);
        let tree = tree_allreduce_summary(&p, StepProtocol::Lossless, 5, 3);
        assert!(
            ring.mean < tree.mean,
            "ring {} should beat tree {} at 32 GiB",
            ring.mean,
            tree.mean
        );
        // And the converse regime (RTT-dominated stages) favours the tree:
        // fewer dependent stages beat smaller per-stage messages.
        let p = params(8, 512 << 20);
        let ring = allreduce_summary(&p, StepProtocol::SrRto { mult: 3.0 }, 400, 4);
        let tree = tree_allreduce_summary(&p, StepProtocol::SrRto { mult: 3.0 }, 400, 5);
        assert!(
            tree.mean < ring.mean,
            "tree {} should beat ring {} when stages are RTT-bound",
            tree.mean,
            ring.mean
        );
    }

    #[test]
    fn tree_competitive_for_tiny_buffers() {
        // For latency-bound (tiny) buffers the tree's 2·log2(N) stages beat
        // the ring's 2(N−1) RTT-dominated stages.
        let p = params(16, 64 * 1024);
        let ring = allreduce_summary(&p, StepProtocol::Lossless, 10, 4);
        let tree = tree_allreduce_summary(&p, StepProtocol::Lossless, 10, 5);
        assert!(
            tree.mean < ring.mean,
            "tree {} should beat ring {} at 64 KiB × 16 DCs",
            tree.mean,
            ring.mean
        );
    }

    #[test]
    fn ec_advantage_persists_on_trees() {
        // Appendix C's accumulation argument generalizes: EC's per-step win
        // compounds on tree schedules too.
        let p = AllreduceParams {
            channel: Channel::new(400e9, 0.025, 1e-4),
            ..params(8, 128 << 20)
        };
        let sr = tree_allreduce_summary(&p, StepProtocol::SrRto { mult: 3.0 }, 3000, 6);
        let ec = tree_allreduce_summary(&p, StepProtocol::EcMds { k: 32, m: 8 }, 3000, 7);
        assert!(
            sr.p999 / ec.p999 > 1.5,
            "EC should win on trees too: {:.2}",
            sr.p999 / ec.p999
        );
    }
}
