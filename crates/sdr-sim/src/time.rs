//! Simulation time.
//!
//! The discrete-event substrate keeps time as an integer number of
//! **picoseconds**. Picosecond resolution is required because packet
//! serialization times at the bandwidths studied in the paper are fractions
//! of a nanosecond per byte (a 64-byte write at 3.2 Tbit/s serializes in
//! 160 ps), while the longest experiments span tens of seconds
//! (a 2 TiB message at 400 Gbit/s takes ~44 s ≈ 4.4e13 ps, comfortably
//! inside `u64`).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (or a duration), in picoseconds.
///
/// `SimTime` is used for both instants and durations; the arithmetic is the
/// same and the discrete-event engine only ever compares and adds values.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// Picoseconds in one nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds in one second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time, used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// A duration of `ns` nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// A duration of `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// A duration of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }

    /// A duration of `s` whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_S)
    }

    /// Converts a floating-point number of seconds, rounding to the nearest
    /// picosecond. Negative and non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((secs * PS_PER_S as f64).round() as u64)
    }

    /// This time expressed in seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// This time expressed in whole picoseconds.
    #[inline]
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// This time expressed in nanoseconds (floating point).
    #[inline]
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition: clamps at `SimTime::MAX`.
    #[inline]
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Checked multiplication by an integer factor.
    #[inline]
    pub fn checked_mul(self, factor: u64) -> Option<SimTime> {
        self.0.checked_mul(factor).map(SimTime)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps.is_multiple_of(PS_PER_S) {
            write!(f, "{}s", ps / PS_PER_S)
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3}ms", ps as f64 / PS_PER_MS as f64)
        } else if ps >= PS_PER_US {
            write!(f, "{:.3}us", ps as f64 / PS_PER_US as f64)
        } else if ps >= PS_PER_NS {
            write!(f, "{:.3}ns", ps as f64 / PS_PER_NS as f64)
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

/// Serialization time for `bytes` at `bandwidth_bps` bits/second.
///
/// This is the paper's `T_INJ` for a chunk: chunk size divided by link
/// bandwidth (Section 4.2.1).
#[inline]
pub fn tx_time(bytes: u64, bandwidth_bps: f64) -> SimTime {
    debug_assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
    SimTime::from_secs_f64(bytes as f64 * 8.0 / bandwidth_bps)
}

/// Speed of light used by the paper for distance → delay conversion.
///
/// The paper states that 3750 km corresponds to 25 ms RTT, i.e. delay is
/// computed with c = 3e8 m/s (not the slower speed of light in fiber);
/// we keep the same convention so message-size/distance crossovers land at
/// the paper's values.
pub const C_LIGHT_M_PER_S: f64 = 3.0e8;

/// One-way propagation delay for a cable of `km` kilometres.
#[inline]
pub fn propagation_delay_km(km: f64) -> SimTime {
    SimTime::from_secs_f64(km * 1_000.0 / C_LIGHT_M_PER_S)
}

/// Round-trip time for a one-way distance of `km` kilometres.
#[inline]
pub fn rtt_from_km(km: f64) -> SimTime {
    SimTime::from_secs_f64(2.0 * km * 1_000.0 / C_LIGHT_M_PER_S)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 3 * PS_PER_S / 2);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn paper_distance_convention() {
        // 3750 km one-way distance must give a 25 ms RTT (Figure 3).
        let rtt = rtt_from_km(3750.0);
        assert_eq!(rtt, SimTime::from_millis(25));
        // And the motivation's "1000 km ≈ 6.5 ms added RTT" is ~6.7 ms at c.
        let added = rtt_from_km(1000.0);
        assert!((added.as_secs_f64() - 0.00667).abs() < 2e-4);
    }

    #[test]
    fn tx_time_matches_line_rate() {
        // 4 KiB at 400 Gbit/s = 4096*8/400e9 s = 81.92 ns.
        let t = tx_time(4096, 400e9);
        assert_eq!(t.0, 81_920);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(3);
        assert_eq!((a + b).0, 8_000);
        assert_eq!((a - b).0, 2_000);
        assert_eq!(a * 2, SimTime::from_nanos(10));
        assert_eq!(a / 5, SimTime::from_nanos(1));
        assert!(b < a);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimTime::from_millis(25).to_string(), "25.000ms");
        assert_eq!(SimTime(500).to_string(), "500ps");
        assert_eq!(SimTime::from_secs(2).to_string(), "2s");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(SimTime::from_nanos).sum();
        assert_eq!(total, SimTime::from_nanos(10));
    }
}
