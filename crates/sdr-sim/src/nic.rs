//! NIC and endpoint-node model: queue pairs, completion queues, and the
//! receive-side packet engine.
//!
//! The model covers exactly the transport features SDR builds on
//! (paper §2.3, §3.2):
//!
//! * **UC queue pairs** — unreliable connected Writes. Multi-packet messages
//!   use the expected-PSN (ePSN) rule: a PSN mismatch mid-message poisons the
//!   whole message (no completion). Single-packet (`Only`) messages reset the
//!   message boundary and are therefore immune to reordering — which is why
//!   SDR issues one Write-with-immediate per packet.
//! * **UD queue pairs** — per-packet two-sided datagrams consuming posted
//!   receive WQEs (used by reliability layers for ACK/CTS control traffic).
//! * **RC queue pairs** — raw packets are routed to a protocol inbox so the
//!   go-back-N baseline in [`crate::rc`] can implement NIC-style reliability.

use std::cell::Cell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::engine::Engine;
use crate::memory::{Memory, MkeyTable, Resolved};
use crate::packet::{CqId, MkeyId, NodeId, Packet, PacketKind, QpAddr, QpNum, WriteSeg};

/// Transport service type of a queue pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QpType {
    /// Unreliable Connected: one-sided Writes, no acks, ePSN semantics.
    Uc,
    /// Unreliable Datagram: two-sided per-packet sends.
    Ud,
    /// Reliable Connected: packets routed to a protocol inbox
    /// (go-back-N baseline lives in [`crate::rc`]).
    Rc,
}

/// A posted receive buffer (consumed by UD sends).
#[derive(Clone, Copy, Debug)]
pub struct RecvWqe {
    /// User cookie returned in the completion.
    pub wr_id: u64,
    /// Destination address in node memory.
    pub addr: u64,
    /// Buffer capacity in bytes.
    pub len: u64,
}

/// Completion opcode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CqeOp {
    /// An RDMA Write with immediate landed (one-sided receive completion).
    RecvWriteImm,
    /// A two-sided send landed into a posted receive buffer.
    RecvSend,
    /// A locally posted send/write finished serializing.
    SendComplete,
}

/// A completion queue entry.
#[derive(Clone, Copy, Debug)]
pub struct Cqe {
    /// QP this completion belongs to.
    pub qp: QpNum,
    /// Operation that completed.
    pub op: CqeOp,
    /// Immediate data carried by the packet, if any.
    pub imm: Option<u32>,
    /// Sender-computed payload checksum carried by the packet, if any
    /// (transport-header content; see [`WriteWr::crc`](crate::WriteWr)).
    pub crc: Option<u32>,
    /// Bytes written/received.
    pub byte_len: u32,
    /// Source QP (receive completions).
    pub src: Option<QpAddr>,
    /// User cookie (`wr_id` of the posted WQE for sends/receives).
    pub wr_id: u64,
    /// The payload was discarded by the NULL memory key.
    pub null_write: bool,
}

/// Re-armable notification hook attached to a CQ or protocol inbox.
///
/// When an entry is pushed and the waker is not already armed, a zero-delay
/// event is scheduled that disarms and invokes the callback. The callback
/// then drains the queue; further pushes re-arm. This mirrors a Verbs
/// completion channel without busy polling.
///
/// The deferral shim is built once and scheduled by `Rc` clone
/// ([`Engine::schedule_rc_at`]), so a kick costs a refcount bump and a
/// slab node — no fresh closure boxing on the completion hot path.
#[derive(Clone)]
pub struct Waker {
    armed: Rc<Cell<bool>>,
    shim: Rc<dyn Fn(&mut Engine)>,
}

impl Waker {
    /// Wraps a callback into a waker.
    pub fn new(f: impl Fn(&mut Engine) + 'static) -> Self {
        let armed = Rc::new(Cell::new(false));
        let disarm = armed.clone();
        let shim: Rc<dyn Fn(&mut Engine)> = Rc::new(move |eng| {
            disarm.set(false);
            f(eng);
        });
        Waker { armed, shim }
    }

    fn kick(&self, eng: &mut Engine) {
        if !self.armed.get() {
            self.armed.set(true);
            eng.schedule_rc_at(eng.now(), self.shim.clone());
        }
    }
}

/// A completion queue.
#[derive(Default)]
pub struct Cq {
    entries: VecDeque<Cqe>,
    waker: Option<Waker>,
}

impl Cq {
    /// Pops the oldest completion, if any.
    pub fn poll(&mut self) -> Option<Cqe> {
        self.entries.pop_front()
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no completions are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Receive-side state of a UC QP while a multi-packet message is in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UcRecvState {
    /// Between messages.
    Idle,
    /// Inside a message: `cursor` is the next landing address (`None` for
    /// NULL-key messages), `received` counts payload bytes so far.
    Active {
        cursor: Option<u64>,
        received: u32,
        epsn: u32,
    },
    /// A PSN mismatch poisoned the current message; discard until the next
    /// `First`/`Only` packet.
    Poisoned,
}

struct Qp {
    ty: QpType,
    send_cq: CqId,
    recv_cq: CqId,
    peer: Option<QpAddr>,
    npsn: u32,
    recv_state: UcRecvState,
    rq: VecDeque<RecvWqe>,
    /// Raw packet inbox for RC protocol objects.
    inbox: VecDeque<Packet>,
    inbox_waker: Option<Waker>,
}

/// Counters exported by a node.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    /// Write packets whose payload landed in memory.
    pub writes_landed: u64,
    /// Write packets discarded by the NULL key (still completed).
    pub null_writes: u64,
    /// Write packets whose carried payload checksum failed verification:
    /// the DMA is suppressed — like an ICRC failure, the corrupt bytes
    /// never reach memory — but the CQE still flows so the verbs layer
    /// observes the mismatch and treats the packet as lost.
    pub crc_skipped: u64,
    /// Packets dropped due to memory-key faults.
    pub access_faults: u64,
    /// UD sends dropped because no receive was posted.
    pub rnr_drops: u64,
    /// Multi-packet UC messages poisoned by ePSN mismatch.
    pub poisoned_msgs: u64,
    /// Completions generated.
    pub cqes: u64,
}

/// A host + NIC endpoint: memory, key tables, CQs and QPs.
pub struct Node {
    id: NodeId,
    mem: Memory,
    mkeys: MkeyTable,
    cqs: Vec<Cq>,
    qps: Vec<Qp>,
    stats: NodeStats,
}

/// A registered memory region.
#[derive(Clone, Copy, Debug)]
pub struct Mr {
    /// Base address in node memory.
    pub addr: u64,
    /// Region length.
    pub len: u64,
    /// Key granting remote access.
    pub mkey: MkeyId,
}

impl Node {
    /// Creates a node with `mem_capacity` bytes of registered memory.
    pub fn new(id: NodeId, mem_capacity: usize) -> Self {
        Node {
            id,
            mem: Memory::new(mem_capacity),
            mkeys: MkeyTable::new(),
            cqs: Vec::new(),
            qps: Vec::new(),
            stats: NodeStats::default(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Creates a completion queue.
    pub fn create_cq(&mut self) -> CqId {
        self.cqs.push(Cq::default());
        CqId(self.cqs.len() as u32 - 1)
    }

    /// Creates a queue pair bound to the given CQs.
    pub fn create_qp(&mut self, ty: QpType, send_cq: CqId, recv_cq: CqId) -> QpNum {
        self.qps.push(Qp {
            ty,
            send_cq,
            recv_cq,
            peer: None,
            npsn: 0,
            recv_state: UcRecvState::Idle,
            rq: VecDeque::new(),
            inbox: VecDeque::new(),
            inbox_waker: None,
        });
        QpNum(self.qps.len() as u32 - 1)
    }

    /// Connects a QP to its remote peer (out-of-band exchange in Verbs).
    pub fn connect_qp(&mut self, qp: QpNum, peer: QpAddr) {
        self.qps[qp.0 as usize].peer = Some(peer);
    }

    /// Drops every piece of volatile NIC state — posted receives, protocol
    /// inboxes, unpolled completions, in-progress UC reassembly — the way
    /// an endpoint crash would. Registered memory, key tables and QP/CQ
    /// identities survive (host state the layer above may have
    /// checkpointed, and the addressing the peer reconnects to); so do
    /// send PSN counters, which continue across the simulated restart.
    pub fn reset_volatile(&mut self) {
        for qp in &mut self.qps {
            qp.rq.clear();
            qp.inbox.clear();
            qp.recv_state = UcRecvState::Idle;
        }
        for cq in &mut self.cqs {
            cq.entries.clear();
        }
    }

    /// The connected peer of a QP, if any.
    pub fn qp_peer(&self, qp: QpNum) -> Option<QpAddr> {
        self.qps[qp.0 as usize].peer
    }

    /// Service type of a QP.
    pub fn qp_type(&self, qp: QpNum) -> QpType {
        self.qps[qp.0 as usize].ty
    }

    /// Send CQ bound to a QP.
    pub fn qp_send_cq(&self, qp: QpNum) -> CqId {
        self.qps[qp.0 as usize].send_cq
    }

    /// Takes the next PSN for an outgoing packet on `qp`.
    pub(crate) fn next_psn(&mut self, qp: QpNum) -> u32 {
        let q = &mut self.qps[qp.0 as usize];
        let psn = q.npsn;
        q.npsn = q.npsn.wrapping_add(1);
        psn
    }

    /// Allocates and registers a memory region.
    pub fn alloc_mr(&mut self, len: u64) -> Mr {
        let addr = self.mem.alloc(len);
        let mkey = self.mkeys.insert_direct(addr, len);
        Mr { addr, len, mkey }
    }

    /// Registers an existing address range.
    pub fn reg_mr(&mut self, addr: u64, len: u64) -> MkeyId {
        self.mkeys.insert_direct(addr, len)
    }

    /// Allocates a NULL memory key (discards writes, still completes).
    pub fn alloc_null_mkey(&mut self) -> MkeyId {
        self.mkeys.insert_null()
    }

    /// Allocates an indirect root key (Figure 5 layout).
    pub fn create_indirect_mkey(&mut self, slot_size: u64, slots: usize) -> MkeyId {
        self.mkeys.insert_indirect(slot_size, slots)
    }

    /// Points slot `slot` of `root` at `inner`.
    pub fn set_indirect_slot(&mut self, root: MkeyId, slot: usize, inner: Option<MkeyId>) {
        self.mkeys.set_indirect_slot(root, slot, inner);
    }

    /// Posts a receive buffer on a (UD) QP.
    pub fn post_recv(&mut self, qp: QpNum, wqe: RecvWqe) {
        self.qps[qp.0 as usize].rq.push_back(wqe);
    }

    /// Number of outstanding receive WQEs on a QP.
    pub fn rq_len(&self, qp: QpNum) -> usize {
        self.qps[qp.0 as usize].rq.len()
    }

    /// Pops the oldest completion from a CQ.
    pub fn poll_cq(&mut self, cq: CqId) -> Option<Cqe> {
        self.cqs[cq.0 as usize].poll()
    }

    /// Number of pending completions on a CQ.
    pub fn cq_len(&self, cq: CqId) -> usize {
        self.cqs[cq.0 as usize].len()
    }

    /// Installs a completion notification hook on a CQ.
    pub fn set_cq_waker(&mut self, cq: CqId, waker: Waker) {
        self.cqs[cq.0 as usize].waker = Some(waker);
    }

    /// Installs a notification hook on an RC QP's raw inbox.
    pub fn set_inbox_waker(&mut self, qp: QpNum, waker: Waker) {
        self.qps[qp.0 as usize].inbox_waker = Some(waker);
    }

    /// Pops a raw packet from an RC QP's inbox.
    pub fn pop_inbox(&mut self, qp: QpNum) -> Option<Packet> {
        self.qps[qp.0 as usize].inbox.pop_front()
    }

    /// Immutable access to node memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to node memory (test setup, payload staging).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    pub(crate) fn push_cqe(&mut self, eng: &mut Engine, cq: CqId, cqe: Cqe) {
        self.stats.cqes += 1;
        let cq = &mut self.cqs[cq.0 as usize];
        cq.entries.push_back(cqe);
        if let Some(w) = &cq.waker {
            w.kick(eng);
        }
    }

    /// Receive-side packet engine: applies `pkt` to this node's state.
    pub fn handle_packet(&mut self, eng: &mut Engine, pkt: Packet) {
        let qp_idx = pkt.dst.qp.0 as usize;
        if qp_idx >= self.qps.len() {
            self.stats.access_faults += 1;
            return;
        }
        match self.qps[qp_idx].ty {
            QpType::Rc => {
                self.qps[qp_idx].inbox.push_back(pkt);
                if let Some(w) = &self.qps[qp_idx].inbox_waker {
                    let w = w.clone();
                    w.kick(eng);
                }
            }
            QpType::Ud => self.handle_ud(eng, pkt),
            QpType::Uc => self.handle_uc(eng, pkt),
        }
    }

    fn handle_ud(&mut self, eng: &mut Engine, pkt: Packet) {
        let qp_idx = pkt.dst.qp.0 as usize;
        let PacketKind::Send { imm } = pkt.kind else {
            // UD carries only sends in this model.
            self.stats.access_faults += 1;
            return;
        };
        let Some(wqe) = self.qps[qp_idx].rq.pop_front() else {
            self.stats.rnr_drops += 1;
            return;
        };
        let n = pkt.payload.len().min(wqe.len as usize);
        self.mem.write(wqe.addr, &pkt.payload[..n]);
        let (recv_cq, qp) = (self.qps[qp_idx].recv_cq, pkt.dst.qp);
        self.push_cqe(
            eng,
            recv_cq,
            Cqe {
                qp,
                op: CqeOp::RecvSend,
                imm,
                crc: None,
                byte_len: n as u32,
                src: Some(pkt.src),
                wr_id: wqe.wr_id,
                null_write: false,
            },
        );
    }

    fn handle_uc(&mut self, eng: &mut Engine, pkt: Packet) {
        let qp_idx = pkt.dst.qp.0 as usize;
        let PacketKind::Write {
            seg,
            mkey,
            offset,
            imm,
            crc,
        } = pkt.kind
        else {
            self.stats.access_faults += 1;
            return;
        };
        let len = pkt.payload.len() as u64;
        match seg {
            WriteSeg::Only => {
                // A self-contained message: immune to ePSN state.
                self.qps[qp_idx].recv_state = UcRecvState::Idle;
                match self.mkeys.resolve(mkey, offset, len) {
                    Ok(Resolved::Addr(addr)) => {
                        // A carried payload checksum is verified *before*
                        // the DMA commits — like ICRC, a packet that
                        // fails the check never reaches memory (a corrupt
                        // duplicate must not overwrite clean bytes whose
                        // bitmap bit is already set). The CQE still flows
                        // carrying the claimed checksum: the verbs layer
                        // compares it against what memory actually holds,
                        // sees the mismatch, and leaves the packet's bit
                        // clear — corruption becomes loss.
                        if crc.is_none_or(|c| sdr_erasure::crc32c(&pkt.payload) == c) {
                            self.mem.write(addr, &pkt.payload);
                            self.stats.writes_landed += 1;
                        } else {
                            self.stats.crc_skipped += 1;
                        }
                        self.complete_write(eng, pkt.dst.qp, imm, crc, len as u32, pkt.src, false);
                    }
                    Ok(Resolved::Null) => {
                        self.stats.null_writes += 1;
                        self.complete_write(eng, pkt.dst.qp, imm, crc, len as u32, pkt.src, true);
                    }
                    Err(_) => self.fault(),
                }
            }
            WriteSeg::First => {
                let state = match self.mkeys.resolve(mkey, offset, len) {
                    Ok(Resolved::Addr(addr)) => {
                        self.mem.write(addr, &pkt.payload);
                        self.stats.writes_landed += 1;
                        UcRecvState::Active {
                            cursor: Some(addr + len),
                            received: len as u32,
                            epsn: pkt.psn.wrapping_add(1),
                        }
                    }
                    Ok(Resolved::Null) => {
                        self.stats.null_writes += 1;
                        UcRecvState::Active {
                            cursor: None,
                            received: len as u32,
                            epsn: pkt.psn.wrapping_add(1),
                        }
                    }
                    Err(_) => {
                        self.fault();
                        UcRecvState::Poisoned
                    }
                };
                self.qps[qp_idx].recv_state = state;
            }
            WriteSeg::Middle | WriteSeg::Last => {
                let cur = self.qps[qp_idx].recv_state;
                match cur {
                    UcRecvState::Active {
                        cursor,
                        received,
                        epsn,
                    } if pkt.psn == epsn => {
                        let new_cursor = match cursor {
                            Some(addr) => {
                                self.mem.write(addr, &pkt.payload);
                                self.stats.writes_landed += 1;
                                Some(addr + len)
                            }
                            None => {
                                self.stats.null_writes += 1;
                                None
                            }
                        };
                        let total = received + len as u32;
                        if seg == WriteSeg::Last {
                            self.qps[qp_idx].recv_state = UcRecvState::Idle;
                            self.complete_write(
                                eng,
                                pkt.dst.qp,
                                imm,
                                crc,
                                total,
                                pkt.src,
                                cursor.is_none(),
                            );
                        } else {
                            self.qps[qp_idx].recv_state = UcRecvState::Active {
                                cursor: new_cursor,
                                received: total,
                                epsn: epsn.wrapping_add(1),
                            };
                        }
                    }
                    _ => {
                        // PSN mismatch or no message in progress: poison.
                        if !matches!(cur, UcRecvState::Poisoned) {
                            self.stats.poisoned_msgs += 1;
                        }
                        self.qps[qp_idx].recv_state = UcRecvState::Poisoned;
                    }
                }
            }
        }
    }

    fn complete_write(
        &mut self,
        eng: &mut Engine,
        qp: QpNum,
        imm: Option<u32>,
        crc: Option<u32>,
        byte_len: u32,
        src: QpAddr,
        null_write: bool,
    ) {
        // Writes without immediate complete silently (no receive CQE),
        // exactly like Verbs.
        if let Some(imm) = imm {
            let recv_cq = self.qps[qp.0 as usize].recv_cq;
            self.push_cqe(
                eng,
                recv_cq,
                Cqe {
                    qp,
                    op: CqeOp::RecvWriteImm,
                    imm: Some(imm),
                    crc,
                    byte_len,
                    src: Some(src),
                    wr_id: 0,
                    null_write,
                },
            );
        }
    }

    /// Lands an already-sequenced write payload. Protocol objects that do
    /// their own ordering (e.g. the RC go-back-N baseline) use this to reuse
    /// the NIC's key translation and completion path without re-entering the
    /// ePSN state machine.
    pub fn land_write(
        &mut self,
        eng: &mut Engine,
        qp: QpNum,
        src: QpAddr,
        mkey: MkeyId,
        offset: u64,
        payload: &[u8],
        imm: Option<u32>,
    ) {
        match self.mkeys.resolve(mkey, offset, payload.len() as u64) {
            Ok(Resolved::Addr(addr)) => {
                self.mem.write(addr, payload);
                self.stats.writes_landed += 1;
                self.complete_write(eng, qp, imm, None, payload.len() as u32, src, false);
            }
            Ok(Resolved::Null) => {
                self.stats.null_writes += 1;
                self.complete_write(eng, qp, imm, None, payload.len() as u32, src, true);
            }
            Err(_) => self.fault(),
        }
    }

    fn fault(&mut self) {
        self.stats.access_faults += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn mk_node() -> (Node, QpNum, CqId, Mr) {
        let mut n = Node::new(NodeId(0), 1 << 20);
        let cq = n.create_cq();
        let qp = n.create_qp(QpType::Uc, cq, cq);
        let mr = n.alloc_mr(64 * 1024);
        (n, qp, cq, mr)
    }

    fn write_pkt(
        qp: QpNum,
        psn: u32,
        seg: WriteSeg,
        mkey: MkeyId,
        offset: u64,
        data: &[u8],
        imm: Option<u32>,
    ) -> Packet {
        let addr = QpAddr {
            node: NodeId(0),
            qp,
        };
        Packet {
            src: QpAddr {
                node: NodeId(1),
                qp: QpNum(0),
            },
            dst: addr,
            psn,
            kind: PacketKind::Write {
                seg,
                mkey,
                offset,
                imm,
                crc: None,
            },
            payload: Bytes::copy_from_slice(data),
        }
    }

    #[test]
    fn only_write_lands_and_completes_with_imm() {
        let (mut n, qp, cq, mr) = mk_node();
        let mut eng = Engine::new();
        n.handle_packet(
            &mut eng,
            write_pkt(qp, 0, WriteSeg::Only, mr.mkey, 16, b"hello", Some(42)),
        );
        assert_eq!(n.mem().read(mr.addr + 16, 5), b"hello");
        let cqe = n.poll_cq(cq).expect("cqe");
        assert_eq!(cqe.op, CqeOp::RecvWriteImm);
        assert_eq!(cqe.imm, Some(42));
        assert_eq!(cqe.byte_len, 5);
        assert!(!cqe.null_write);
    }

    #[test]
    fn write_without_imm_is_silent() {
        let (mut n, qp, cq, mr) = mk_node();
        let mut eng = Engine::new();
        n.handle_packet(
            &mut eng,
            write_pkt(qp, 0, WriteSeg::Only, mr.mkey, 0, b"x", None),
        );
        assert!(n.poll_cq(cq).is_none());
        assert_eq!(n.mem().read(mr.addr, 1), b"x");
    }

    #[test]
    fn multi_packet_message_in_order_completes_once() {
        let (mut n, qp, cq, mr) = mk_node();
        let mut eng = Engine::new();
        n.handle_packet(
            &mut eng,
            write_pkt(qp, 0, WriteSeg::First, mr.mkey, 0, b"aa", None),
        );
        n.handle_packet(
            &mut eng,
            write_pkt(qp, 1, WriteSeg::Middle, mr.mkey, 0, b"bb", None),
        );
        n.handle_packet(
            &mut eng,
            write_pkt(qp, 2, WriteSeg::Last, mr.mkey, 0, b"cc", Some(7)),
        );
        assert_eq!(n.mem().read(mr.addr, 6), b"aabbcc");
        let cqe = n.poll_cq(cq).expect("cqe");
        assert_eq!(cqe.byte_len, 6);
        assert_eq!(cqe.imm, Some(7));
        assert!(n.poll_cq(cq).is_none());
    }

    #[test]
    fn epsn_mismatch_poisons_whole_message() {
        // Packet 1 of 3 lost: the message never completes (paper §2.3).
        let (mut n, qp, cq, mr) = mk_node();
        let mut eng = Engine::new();
        n.handle_packet(
            &mut eng,
            write_pkt(qp, 0, WriteSeg::First, mr.mkey, 0, b"aa", None),
        );
        // psn 1 dropped in transit; psn 2 arrives.
        n.handle_packet(
            &mut eng,
            write_pkt(qp, 2, WriteSeg::Last, mr.mkey, 0, b"cc", Some(7)),
        );
        assert!(
            n.poll_cq(cq).is_none(),
            "poisoned message must not complete"
        );
        assert_eq!(n.stats().poisoned_msgs, 1);
        // The next fresh message resyncs.
        n.handle_packet(
            &mut eng,
            write_pkt(qp, 3, WriteSeg::First, mr.mkey, 8, b"dd", None),
        );
        n.handle_packet(
            &mut eng,
            write_pkt(qp, 4, WriteSeg::Last, mr.mkey, 8, b"ee", Some(9)),
        );
        assert_eq!(n.poll_cq(cq).unwrap().imm, Some(9));
    }

    #[test]
    fn only_packets_are_immune_to_reordering() {
        // SDR's per-packet writes: deliver PSNs out of order, all land.
        let (mut n, qp, cq, mr) = mk_node();
        let mut eng = Engine::new();
        for &psn in &[3u32, 1, 2, 0] {
            n.handle_packet(
                &mut eng,
                write_pkt(
                    qp,
                    psn,
                    WriteSeg::Only,
                    mr.mkey,
                    psn as u64 * 4,
                    &[psn as u8; 4],
                    Some(psn),
                ),
            );
        }
        let mut imms: Vec<u32> = std::iter::from_fn(|| n.poll_cq(cq))
            .map(|c| c.imm.unwrap())
            .collect();
        imms.sort_unstable();
        assert_eq!(imms, vec![0, 1, 2, 3]);
        assert_eq!(n.stats().poisoned_msgs, 0);
    }

    #[test]
    fn null_mkey_discards_but_completes() {
        let (mut n, qp, cq, _mr) = mk_node();
        let null = n.alloc_null_mkey();
        let mut eng = Engine::new();
        n.handle_packet(
            &mut eng,
            write_pkt(qp, 0, WriteSeg::Only, null, 1 << 40, b"junk", Some(5)),
        );
        let cqe = n.poll_cq(cq).expect("late packets still complete");
        assert!(cqe.null_write);
        assert_eq!(n.stats().null_writes, 1);
    }

    #[test]
    fn out_of_bounds_write_faults() {
        let (mut n, qp, cq, mr) = mk_node();
        let mut eng = Engine::new();
        n.handle_packet(
            &mut eng,
            write_pkt(
                qp,
                0,
                WriteSeg::Only,
                mr.mkey,
                mr.len - 1,
                b"toolong",
                Some(1),
            ),
        );
        assert!(n.poll_cq(cq).is_none());
        assert_eq!(n.stats().access_faults, 1);
    }

    #[test]
    fn ud_send_consumes_rq_wqe() {
        let mut n = Node::new(NodeId(0), 1 << 16);
        let cq = n.create_cq();
        let qp = n.create_qp(QpType::Ud, cq, cq);
        let mr = n.alloc_mr(1024);
        n.post_recv(
            qp,
            RecvWqe {
                wr_id: 77,
                addr: mr.addr,
                len: 1024,
            },
        );
        let mut eng = Engine::new();
        let pkt = Packet {
            src: QpAddr {
                node: NodeId(1),
                qp: QpNum(4),
            },
            dst: QpAddr {
                node: NodeId(0),
                qp,
            },
            psn: 0,
            kind: PacketKind::Send { imm: Some(3) },
            payload: Bytes::from_static(b"ack!"),
        };
        n.handle_packet(&mut eng, pkt.clone());
        let cqe = n.poll_cq(cq).unwrap();
        assert_eq!(cqe.op, CqeOp::RecvSend);
        assert_eq!(cqe.wr_id, 77);
        assert_eq!(cqe.src.unwrap().qp, QpNum(4));
        assert_eq!(n.mem().read(mr.addr, 4), b"ack!");
        // Second send with no WQE posted → RNR drop.
        n.handle_packet(&mut eng, pkt);
        assert!(n.poll_cq(cq).is_none());
        assert_eq!(n.stats().rnr_drops, 1);
    }

    #[test]
    fn cq_waker_fires_once_per_batch() {
        let (mut n, qp, cq, mr) = mk_node();
        let mut eng = Engine::new();
        let fired = Rc::new(Cell::new(0u32));
        let f2 = fired.clone();
        n.set_cq_waker(cq, Waker::new(move |_| f2.set(f2.get() + 1)));
        for psn in 0..5 {
            n.handle_packet(
                &mut eng,
                write_pkt(qp, psn, WriteSeg::Only, mr.mkey, 0, b"z", Some(psn)),
            );
        }
        eng.run();
        // All 5 pushes happened before the event loop ran: one wake.
        assert_eq!(fired.get(), 1);
        assert_eq!(n.cq_len(cq), 5);
    }
}
