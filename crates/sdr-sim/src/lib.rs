//! # sdr-sim — discrete-event network substrate for SDR-RDMA
//!
//! This crate replaces the hardware the paper runs on (ConnectX/BlueField
//! NICs and long-haul optical links) with a deterministic discrete-event
//! simulator. It models exactly the observables the SDR stack and its
//! reliability layers interact with:
//!
//! * [`Engine`] — a deterministic event executor with picosecond time.
//!   Since PR 5 the queue is a **hierarchical timing wheel** (11 levels of
//!   64 one-picosecond-granularity slots spanning the whole `u64` range;
//!   the top level is the far-future overflow level) over a slab of
//!   free-listed event nodes: steady-state scheduling allocates nothing,
//!   recurring events ([`Engine::schedule_recurring_at`]) re-arm their
//!   node in place, and [`TimerHandle`]s make timers cancellable and
//!   re-armable ([`Engine::cancel`] / [`Engine::reschedule`]) so stale
//!   timers neither fire as no-ops nor count as pending. Execution order
//!   is exactly `(time, schedule order)` — identical to the retained
//!   binary-heap reference backend, provable with `SDR_SIM_QUEUE=heap`
//!   (see [`equeue`] for the architecture and the determinism argument,
//!   and `tests/queue_differential.rs` for the proof harness).
//! * [`Link`]/[`LinkConfig`] — serialization at line rate, propagation
//!   delay from distance (paper convention: 3750 km ⇒ 25 ms RTT), i.i.d.
//!   or Gilbert–Elliott loss, and optional reorder jitter. Deliveries are
//!   **coalesced**: each link keeps an arrival-ordered `VecDeque` of
//!   in-flight packets and the fabric drives it with a single re-armed
//!   drain event per busy period, instead of one boxed closure per packet.
//!   Packet fates are drawn **at delivery time** inside that pump, so
//!   mid-simulation channel changes claim packets already in flight.
//! * [`FaultPlan`]/[`FaultEvent`] — scripted fault injection on links:
//!   timed loss steps, Gilbert–Elliott parameter shifts, diurnal drift,
//!   hard blackout windows and up/down flaps, each riding one cancellable
//!   engine timer ([`Fabric::apply_fault_plan`]).
//! * [`BottleneckQueue`]/[`OnOffSource`] — the congestion mechanism behind
//!   the paper's Figure 2 drop-rate measurements.
//! * [`Node`] — an endpoint with memory, memory-key translation (direct,
//!   NULL and indirect/root keys per Figure 5), completion queues with
//!   wakers, and UC/UD/RC queue pairs with faithful ePSN semantics.
//! * [`Fabric`] — ties nodes and links together and implements the
//!   send-side datapath (fragmentation, write-with-immediate, UD sends)
//!   plus the per-link delivery pumps.
//! * [`RcEndpoint`] — a go-back-N reliable connection, the commodity-NIC
//!   baseline the paper argues is insufficient for planetary-scale RDMA.
//!   Its RTO is a single re-armable timer: progress pushes the deadline
//!   out instead of minting generation-stamped no-op events.
//!
//! Everything is seeded and single-threaded: a simulation with the same
//! inputs produces bit-identical outputs. `SDR_SIM_QUEUE=wheel|heap`
//! selects the queue backend process-wide (wheel is the default; the two
//! backends execute identical event orders, so this is an A/B instrument,
//! not a semantic switch).

#![warn(missing_docs)]

pub mod engine;
pub mod equeue;
pub mod fabric;
pub mod fault;
pub mod link;
pub mod loss;
pub mod memory;
pub mod nic;
pub mod packet;
pub mod queue;
pub mod rc;
pub mod time;

pub use engine::{shared, Engine, Shared};
// The observability substrate: the engine owns an `engine.*` registry,
// the fabric owns the stack-wide registry plus one flight recorder per
// node. Re-exported so layers above need no direct `sdr-trace` import.
pub use equeue::{QueueKind, TimerHandle};
pub use fabric::{Fabric, PostError, WriteWr};
pub use fault::{FaultEvent, FaultHandle, FaultPlan, RestartSide};
pub use link::{
    Link, LinkConfig, LinkStats, TxOutcome, DEFAULT_HEADER_BYTES, MAX_CORRUPT_BURST,
    MAX_REORDER_SPAN,
};
pub use loss::{LossModel, LossProcess};
pub use memory::{AccessError, Memory, MkeyTable, MkeyTarget, Resolved};
pub use nic::{Cq, Cqe, CqeOp, Mr, Node, NodeStats, QpType, RecvWqe, Waker};
pub use packet::{CqId, MkeyId, NodeId, Packet, PacketKind, QpAddr, QpNum, WriteSeg};
pub use queue::{BottleneckQueue, OnOffConfig, OnOffSource, QueueStats};
pub use rc::{RcConfig, RcEndpoint, RcStats};
pub use sdr_trace::{
    enabled as trace_enabled, set_enabled as set_trace_enabled, Counter, Event, EventKind,
    FlightRecorder, Gauge, Histogram, Registry, Snapshot,
};
pub use time::{
    propagation_delay_km, rtt_from_km, tx_time, SimTime, C_LIGHT_M_PER_S, PS_PER_MS, PS_PER_NS,
    PS_PER_S, PS_PER_US,
};
