//! # sdr-sim — discrete-event network substrate for SDR-RDMA
//!
//! This crate replaces the hardware the paper runs on (ConnectX/BlueField
//! NICs and long-haul optical links) with a deterministic discrete-event
//! simulator. It models exactly the observables the SDR stack and its
//! reliability layers interact with:
//!
//! * [`Engine`] — a deterministic event executor with picosecond time.
//! * [`Link`]/[`LinkConfig`] — serialization at line rate, propagation delay
//!   from distance (paper convention: 3750 km ⇒ 25 ms RTT), i.i.d. or
//!   Gilbert–Elliott loss, and optional reorder jitter.
//! * [`BottleneckQueue`]/[`OnOffSource`] — the congestion mechanism behind
//!   the paper's Figure 2 drop-rate measurements.
//! * [`Node`] — an endpoint with memory, memory-key translation (direct,
//!   NULL and indirect/root keys per Figure 5), completion queues with
//!   wakers, and UC/UD/RC queue pairs with faithful ePSN semantics.
//! * [`Fabric`] — ties nodes and links together and implements the
//!   send-side datapath (fragmentation, write-with-immediate, UD sends).
//! * [`RcEndpoint`] — a go-back-N reliable connection, the commodity-NIC
//!   baseline the paper argues is insufficient for planetary-scale RDMA.
//!
//! Everything is seeded and single-threaded: a simulation with the same
//! inputs produces bit-identical outputs.

#![warn(missing_docs)]

pub mod engine;
pub mod fabric;
pub mod link;
pub mod loss;
pub mod memory;
pub mod nic;
pub mod packet;
pub mod queue;
pub mod rc;
pub mod time;

pub use engine::{shared, Engine, Shared};
pub use fabric::{Fabric, PostError, WriteWr};
pub use link::{Link, LinkConfig, LinkStats, TxOutcome, DEFAULT_HEADER_BYTES};
pub use loss::{LossModel, LossProcess};
pub use memory::{AccessError, Memory, MkeyTable, MkeyTarget, Resolved};
pub use nic::{Cq, Cqe, CqeOp, Mr, Node, NodeStats, QpType, RecvWqe, Waker};
pub use packet::{CqId, MkeyId, NodeId, Packet, PacketKind, QpAddr, QpNum, WriteSeg};
pub use queue::{BottleneckQueue, OnOffConfig, OnOffSource, QueueStats};
pub use rc::{RcConfig, RcEndpoint, RcStats};
pub use time::{
    propagation_delay_km, rtt_from_km, tx_time, SimTime, C_LIGHT_M_PER_S, PS_PER_MS, PS_PER_NS,
    PS_PER_S, PS_PER_US,
};
