//! Packet loss models for long-haul channels.
//!
//! The paper assumes i.i.d. per-chunk drops in its analysis (Section 4.2.1)
//! but motivates the work with measurements showing three orders of magnitude
//! drop-rate variation driven by ISP switch congestion (Figure 2). We provide
//! both: a Bernoulli model for analysis-faithful experiments and a
//! Gilbert–Elliott two-state model for bursty channels.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of a loss process.
#[derive(Clone, Debug, PartialEq)]
pub enum LossModel {
    /// No losses: an ideal (or intra-DC lossless) channel.
    Perfect,
    /// Independent, identically distributed drops with probability `p` per
    /// packet — the paper's modelling assumption.
    Iid {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
    },
    /// Gilbert–Elliott bursty loss: a two-state Markov chain alternating
    /// between a good state (loss `loss_good`) and a bad state
    /// (loss `loss_bad`), capturing congestion episodes on ISP links.
    GilbertElliott {
        /// Probability of moving good → bad, evaluated per packet.
        p_good_to_bad: f64,
        /// Probability of moving bad → good, evaluated per packet.
        p_bad_to_good: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// The long-run average drop probability of the model.
    pub fn mean_drop_rate(&self) -> f64 {
        match *self {
            LossModel::Perfect => 0.0,
            LossModel::Iid { p } => p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                // Stationary distribution of the two-state chain.
                let denom = p_good_to_bad + p_bad_to_good;
                if denom == 0.0 {
                    return loss_good;
                }
                let pi_bad = p_good_to_bad / denom;
                (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
            }
        }
    }

    /// Validates the probabilities are within `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        let check = |name: &str, v: f64| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} = {v} is not a probability"))
            }
        };
        match *self {
            LossModel::Perfect => Ok(()),
            LossModel::Iid { p } => check("p", p),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                check("p_good_to_bad", p_good_to_bad)?;
                check("p_bad_to_good", p_bad_to_good)?;
                check("loss_good", loss_good)?;
                check("loss_bad", loss_bad)
            }
        }
    }
}

/// A stateful, seeded loss process derived from a [`LossModel`].
#[derive(Clone, Debug)]
pub struct LossProcess {
    model: LossModel,
    rng: SmallRng,
    in_bad_state: bool,
    offered: u64,
    dropped: u64,
}

impl LossProcess {
    /// Creates a process with its own deterministic RNG stream.
    pub fn new(model: LossModel, seed: u64) -> Self {
        debug_assert!(model.validate().is_ok());
        LossProcess {
            model,
            rng: SmallRng::seed_from_u64(seed),
            in_bad_state: false,
            offered: 0,
            dropped: 0,
        }
    }

    /// Decides the fate of the next packet: `true` means *dropped*.
    pub fn drops_next(&mut self) -> bool {
        self.offered += 1;
        let dropped = match self.model {
            LossModel::Perfect => false,
            LossModel::Iid { p } => p > 0.0 && self.rng.random::<f64>() < p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                // Transition first, then sample loss in the new state.
                if self.in_bad_state {
                    if self.rng.random::<f64>() < p_bad_to_good {
                        self.in_bad_state = false;
                    }
                } else if self.rng.random::<f64>() < p_good_to_bad {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state {
                    loss_bad
                } else {
                    loss_good
                };
                p > 0.0 && self.rng.random::<f64>() < p
            }
        };
        if dropped {
            self.dropped += 1;
        }
        dropped
    }

    /// Packets offered to the process so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Empirical drop rate observed so far (0 if nothing offered).
    pub fn observed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }

    /// The model this process draws from.
    pub fn model(&self) -> &LossModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_never_drops() {
        let mut p = LossProcess::new(LossModel::Perfect, 1);
        assert!((0..10_000).all(|_| !p.drops_next()));
        assert_eq!(p.dropped(), 0);
    }

    #[test]
    fn iid_rate_converges() {
        let mut p = LossProcess::new(LossModel::Iid { p: 0.05 }, 42);
        for _ in 0..200_000 {
            p.drops_next();
        }
        let rate = p.observed_rate();
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn iid_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = LossProcess::new(LossModel::Iid { p: 0.5 }, seed);
            (0..64).map(|_| p.drops_next()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn gilbert_elliott_stationary_rate() {
        let model = LossModel::GilbertElliott {
            p_good_to_bad: 0.01,
            p_bad_to_good: 0.09,
            loss_good: 1e-4,
            loss_bad: 0.2,
        };
        // pi_bad = 0.01/0.10 = 0.1 → mean = 0.9*1e-4 + 0.1*0.2 ≈ 0.02009.
        let expect = model.mean_drop_rate();
        assert!((expect - 0.02009).abs() < 1e-5);
        let mut p = LossProcess::new(model, 3);
        for _ in 0..500_000 {
            p.drops_next();
        }
        assert!((p.observed_rate() - expect).abs() < 0.15 * expect);
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Compare the longest drop run against an i.i.d. process of the same
        // mean rate: the GE process should produce much longer bursts.
        let ge = LossModel::GilbertElliott {
            p_good_to_bad: 0.001,
            p_bad_to_good: 0.05,
            loss_good: 0.0,
            loss_bad: 0.9,
        };
        let mean = ge.mean_drop_rate();
        let longest_run = |model: LossModel, seed| {
            let mut p = LossProcess::new(model, seed);
            let (mut cur, mut best) = (0u32, 0u32);
            for _ in 0..300_000 {
                if p.drops_next() {
                    cur += 1;
                    best = best.max(cur);
                } else {
                    cur = 0;
                }
            }
            best
        };
        let ge_run = longest_run(ge, 11);
        let iid_run = longest_run(LossModel::Iid { p: mean }, 11);
        assert!(
            ge_run >= 3 * iid_run.max(1),
            "GE burst {ge_run} vs iid burst {iid_run}"
        );
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        assert!(LossModel::Iid { p: 1.5 }.validate().is_err());
        assert!(LossModel::Iid { p: -0.1 }.validate().is_err());
        assert!(LossModel::Iid { p: 0.3 }.validate().is_ok());
    }
}
