//! Discrete-event engine.
//!
//! A minimal, deterministic event executor: events are closures scheduled at
//! absolute simulation times and executed in `(time, insertion order)` order,
//! so two events at the same instant always run in the order they were
//! scheduled. Components live behind `Rc<RefCell<_>>` handles captured by the
//! event closures; the engine itself owns nothing but the queue.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::time::SimTime;

/// An event body: runs at its scheduled time with access to the engine so it
/// can schedule follow-up events.
pub type Action = Box<dyn FnOnce(&mut Engine)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties deterministically (FIFO at equal times).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic single-threaded discrete-event executor.
///
/// # Example
///
/// ```
/// use sdr_sim::{Engine, SimTime};
/// use std::{cell::RefCell, rc::Rc};
///
/// let mut eng = Engine::new();
/// let hits = Rc::new(RefCell::new(Vec::new()));
/// let h = hits.clone();
/// eng.schedule_in(SimTime::from_nanos(10), move |eng| {
///     h.borrow_mut().push(eng.now());
/// });
/// eng.run();
/// assert_eq!(*hits.borrow(), vec![SimTime::from_nanos(10)]);
/// ```
pub struct Engine {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    executed: u64,
    /// Hard cap on executed events; guards against runaway protocol loops in
    /// tests. `u64::MAX` by default.
    event_limit: u64,
    stopped: bool,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an engine at time zero with an empty queue.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
            event_limit: u64::MAX,
            stopped: false,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Caps the total number of events `run*` will execute (safety valve for
    /// tests that could otherwise loop forever on a protocol bug).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Requests that the run loop stop after the current event.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Schedules `action` at absolute time `at`. Scheduling in the past is a
    /// logic error and panics in debug builds; in release it clamps to `now`.
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Engine) + 'static) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, action: impl FnOnce(&mut Engine) + 'static) {
        self.schedule_at(self.now.saturating_add(delay), action);
    }

    /// Executes a single event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now);
                self.now = ev.at;
                self.executed += 1;
                (ev.action)(self);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains, `stop()` is called, or the event limit is
    /// reached. Returns the final simulation time.
    pub fn run(&mut self) -> SimTime {
        self.stopped = false;
        while !self.stopped && self.executed < self.event_limit && self.step() {}
        self.now
    }

    /// Runs events with timestamps `<= deadline` (events scheduled later stay
    /// queued). Advances `now` to `deadline` if the queue drains earlier.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.stopped = false;
        while !self.stopped && self.executed < self.event_limit {
            match self.queue.peek() {
                Some(ev) if ev.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.now
    }
}

/// Convenience alias for shared simulation components.
pub type Shared<T> = Rc<RefCell<T>>;

/// Wraps a component in the `Rc<RefCell<_>>` handle used throughout the
/// simulator.
pub fn shared<T>(value: T) -> Shared<T> {
    Rc::new(RefCell::new(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut eng = Engine::new();
        let log = shared(Vec::<u32>::new());
        for (t, tag) in [(30u64, 3u32), (10, 1), (20, 2)] {
            let log = log.clone();
            eng.schedule_at(SimTime::from_nanos(t), move |_| log.borrow_mut().push(tag));
        }
        eng.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn same_time_events_run_fifo() {
        let mut eng = Engine::new();
        let log = shared(Vec::<u32>::new());
        for tag in 0..100u32 {
            let log = log.clone();
            eng.schedule_at(SimTime::from_nanos(5), move |_| log.borrow_mut().push(tag));
        }
        eng.run();
        assert_eq!(*log.borrow(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng = Engine::new();
        let log = shared(Vec::<SimTime>::new());
        let log2 = log.clone();
        eng.schedule_in(SimTime::from_nanos(1), move |eng| {
            let log3 = log2.clone();
            eng.schedule_in(SimTime::from_nanos(2), move |eng| {
                log3.borrow_mut().push(eng.now());
            });
        });
        let end = eng.run();
        assert_eq!(end, SimTime::from_nanos(3));
        assert_eq!(*log.borrow(), vec![SimTime::from_nanos(3)]);
    }

    #[test]
    fn run_until_leaves_later_events_queued() {
        let mut eng = Engine::new();
        let log = shared(Vec::<u32>::new());
        for t in [10u64, 20, 30] {
            let log = log.clone();
            eng.schedule_at(SimTime::from_nanos(t), move |_| {
                log.borrow_mut().push(t as u32)
            });
        }
        eng.run_until(SimTime::from_nanos(20));
        assert_eq!(*log.borrow(), vec![10, 20]);
        assert_eq!(eng.pending_events(), 1);
        assert_eq!(eng.now(), SimTime::from_nanos(20));
        eng.run();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn run_until_advances_time_when_idle() {
        let mut eng = Engine::new();
        eng.run_until(SimTime::from_millis(5));
        assert_eq!(eng.now(), SimTime::from_millis(5));
    }

    #[test]
    fn stop_halts_run() {
        let mut eng = Engine::new();
        let log = shared(0u32);
        let l1 = log.clone();
        eng.schedule_at(SimTime::from_nanos(1), move |eng| {
            *l1.borrow_mut() += 1;
            eng.stop();
        });
        let l2 = log.clone();
        eng.schedule_at(SimTime::from_nanos(2), move |_| *l2.borrow_mut() += 1);
        eng.run();
        assert_eq!(*log.borrow(), 1);
        eng.run();
        assert_eq!(*log.borrow(), 2);
    }

    #[test]
    fn event_limit_caps_execution() {
        let mut eng = Engine::new();
        eng.set_event_limit(3);
        // A self-perpetuating event chain.
        fn tick(eng: &mut Engine) {
            eng.schedule_in(SimTime::from_nanos(1), tick);
        }
        eng.schedule_in(SimTime::from_nanos(1), tick);
        eng.run();
        assert_eq!(eng.executed_events(), 3);
    }
}
