//! Discrete-event engine.
//!
//! A deterministic event executor: events run in `(time, schedule order)`
//! order, so two events at the same instant always run in the order they
//! were scheduled. Components live behind `Rc<RefCell<_>>` handles captured
//! by the event closures; the engine itself owns nothing but the queue.
//!
//! The queue is a hierarchical timing wheel over picosecond ticks (see
//! [`equeue`](crate::equeue) for the architecture: slab-backed nodes, 64
//! slots × 11 levels spanning the whole `u64` range, zero allocation at
//! steady state). A binary-heap reference backend is kept for differential
//! testing and A/B measurement — select it process-wide with
//! `SDR_SIM_QUEUE=heap` or per engine with [`Engine::with_queue`].
//!
//! Three event shapes are supported:
//!
//! * [`schedule_at`](Engine::schedule_at) / [`schedule_in`](Engine::schedule_in)
//!   — classic one-shot closures (the `_handle` variants return a
//!   [`TimerHandle`] for cancel/re-arm).
//! * [`schedule_recurring_at`](Engine::schedule_recurring_at) — a `FnMut`
//!   that returns the next fire time (or `None` to stop). The closure is
//!   boxed once and its queue node is re-armed in place: protocol tick
//!   loops and per-link delivery pumps run allocation-free.
//! * [`schedule_rc_at`](Engine::schedule_rc_at) — a shared `Rc` callback
//!   (the NIC wakers' deferral path; an `Rc` clone per kick, no boxing).
//!
//! [`cancel`](Engine::cancel) drops a pending event's closure immediately;
//! cancelled events never execute, are not counted by
//! [`pending_events`](Engine::pending_events), and are not charged against
//! the event limit. [`reschedule`](Engine::reschedule) moves a pending
//! event to a new deadline — the substrate for RTO timers that push out on
//! progress instead of firing as no-ops.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::OnceLock;

use sdr_trace::{Counter, Registry};

use crate::equeue::{Body, EventQueue, QueueKind, TimerHandle};
use crate::time::SimTime;

/// An event body: runs at its scheduled time with access to the engine so it
/// can schedule follow-up events.
pub type Action = Box<dyn FnOnce(&mut Engine)>;

/// The process-wide default backend (`SDR_SIM_QUEUE`, read once).
fn default_kind() -> QueueKind {
    static KIND: OnceLock<QueueKind> = OnceLock::new();
    *KIND.get_or_init(|| match std::env::var("SDR_SIM_QUEUE") {
        Ok(v) if v.eq_ignore_ascii_case("heap") => QueueKind::Heap,
        Ok(v) if v.eq_ignore_ascii_case("wheel") || v.is_empty() => QueueKind::Wheel,
        Ok(v) => panic!("SDR_SIM_QUEUE must be `wheel` or `heap`, got `{v}`"),
        Err(_) => QueueKind::Wheel,
    })
}

/// Deterministic single-threaded discrete-event executor.
///
/// # Example
///
/// ```
/// use sdr_sim::{Engine, SimTime};
/// use std::{cell::RefCell, rc::Rc};
///
/// let mut eng = Engine::new();
/// let hits = Rc::new(RefCell::new(Vec::new()));
/// let h = hits.clone();
/// eng.schedule_in(SimTime::from_nanos(10), move |eng| {
///     h.borrow_mut().push(eng.now());
/// });
/// eng.run();
/// assert_eq!(*hits.borrow(), vec![SimTime::from_nanos(10)]);
/// ```
pub struct Engine {
    now: SimTime,
    q: EventQueue,
    executed: u64,
    /// Hard cap on executed events; guards against runaway protocol loops in
    /// tests. `u64::MAX` by default. Cancelled events are never charged.
    event_limit: u64,
    stopped: bool,
    /// Substrate metrics (`engine.*`): every dispatch bumps
    /// `engine.events`, and the wheel backend records each cascade's level
    /// into the `engine.cascade_depth` histogram. Kill-switch gated like
    /// all `sdr-trace` handles.
    metrics: Registry,
    /// Bound handle for `engine.events` (no registry lookup per dispatch).
    ev_counter: Counter,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an engine at time zero with an empty queue, on the backend
    /// selected by `SDR_SIM_QUEUE` (the timing wheel by default).
    pub fn new() -> Self {
        Self::with_queue(default_kind())
    }

    /// Creates an engine pinned to a specific queue backend (for
    /// differential tests and A/B benchmarks).
    pub fn with_queue(kind: QueueKind) -> Self {
        let metrics = Registry::new();
        let ev_counter = metrics.counter("engine.events");
        let mut q = EventQueue::new(kind);
        q.set_cascade_hist(metrics.histogram("engine.cascade_depth"));
        Engine {
            now: SimTime::ZERO,
            q,
            executed: 0,
            event_limit: u64::MAX,
            stopped: false,
            metrics,
            ev_counter,
        }
    }

    /// The queue backend this engine runs on.
    pub fn queue_kind(&self) -> QueueKind {
        self.q.kind()
    }

    /// The engine's metrics registry (`engine.events` counter,
    /// `engine.cascade_depth` histogram).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (cancelled events never count).
    #[inline]
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending. Cancelled timers are uncounted the
    /// moment they are cancelled.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.q.pending()
    }

    /// Caps the total number of events `run*` will execute (safety valve for
    /// tests that could otherwise loop forever on a protocol bug).
    /// Cancelled timers are not charged against the limit.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Requests that the run loop stop after the current event.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Clamps a requested deadline: scheduling in the past is a logic error
    /// and panics in debug builds; in release it clamps to `now`.
    #[inline]
    fn clamp(&self, at: SimTime) -> u64 {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        at.max(self.now).as_picos()
    }

    /// Schedules `action` at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Engine) + 'static) {
        let _ = self.schedule_at_handle(at, action);
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, action: impl FnOnce(&mut Engine) + 'static) {
        let _ = self.schedule_at_handle(self.now.saturating_add(delay), action);
    }

    /// Schedules `action` at absolute time `at`, returning a cancellable
    /// [`TimerHandle`].
    pub fn schedule_at_handle(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut Engine) + 'static,
    ) -> TimerHandle {
        let at = self.clamp(at);
        self.q.schedule(at, Body::Once(Box::new(action)))
    }

    /// Schedules `action` after `delay`, returning a cancellable
    /// [`TimerHandle`].
    pub fn schedule_in_handle(
        &mut self,
        delay: SimTime,
        action: impl FnOnce(&mut Engine) + 'static,
    ) -> TimerHandle {
        self.schedule_at_handle(self.now.saturating_add(delay), action)
    }

    /// Schedules a recurring event: `action` runs at `at` and then again at
    /// every time it returns (`None` stops and frees the timer). The
    /// closure is boxed once; re-arms reuse the same queue node, so a
    /// steady-state tick loop allocates nothing. A returned time in the
    /// past is clamped to the fire instant (beware same-instant loops; the
    /// event limit is the backstop).
    pub fn schedule_recurring_at(
        &mut self,
        at: SimTime,
        action: impl FnMut(&mut Engine) -> Option<SimTime> + 'static,
    ) -> TimerHandle {
        let at = self.clamp(at);
        self.q.schedule(at, Body::Recurring(Box::new(action)))
    }

    /// [`schedule_recurring_at`](Self::schedule_recurring_at) with a delay
    /// relative to now.
    pub fn schedule_recurring_in(
        &mut self,
        delay: SimTime,
        action: impl FnMut(&mut Engine) -> Option<SimTime> + 'static,
    ) -> TimerHandle {
        self.schedule_recurring_at(self.now.saturating_add(delay), action)
    }

    /// Schedules a shared callback at `at` without boxing: the queue node
    /// holds an `Rc` clone. This is the repeat-kick path (NIC wakers): the
    /// callback is built once and scheduled many times.
    pub fn schedule_rc_at(&mut self, at: SimTime, action: Rc<dyn Fn(&mut Engine)>) -> TimerHandle {
        let at = self.clamp(at);
        self.q.schedule(at, Body::Shared(action))
    }

    /// Cancels a pending event: its closure is dropped now, it will never
    /// run, and it no longer counts as pending or against the event limit.
    /// Returns `false` when the handle is stale (already fired, completed
    /// or cancelled).
    pub fn cancel(&mut self, h: TimerHandle) -> bool {
        self.q.cancel(h)
    }

    /// Moves a pending event to a new deadline (clamped to `now`),
    /// re-ranking it as if freshly scheduled. Returns `false` when the
    /// handle is stale or the event is currently executing (a recurring
    /// body re-arms itself through its return value instead).
    pub fn reschedule(&mut self, h: TimerHandle, at: SimTime) -> bool {
        let at = self.clamp(at);
        self.q.reschedule(h, at)
    }

    /// True while `h` refers to a pending event.
    pub fn is_scheduled(&self, h: TimerHandle) -> bool {
        self.q.is_scheduled(h)
    }

    /// Fires the popped node `idx`.
    fn dispatch(&mut self, idx: u32) {
        let (at, body) = self.q.begin_fire(idx);
        debug_assert!(at >= self.now.as_picos());
        self.now = SimTime(at);
        self.executed += 1;
        self.ev_counter.inc();
        match body {
            // One-shots free their node *before* running so a self-cancel
            // from within the body sees a stale handle (and the slot is
            // immediately reusable).
            Body::Once(f) => {
                self.q.free_fired(idx);
                f(self);
            }
            Body::Shared(f) => {
                self.q.free_fired(idx);
                f(self);
            }
            Body::Recurring(mut f) => {
                let next = f(self);
                let next = next.map(|t| t.as_picos().max(self.now.as_picos()));
                self.q.end_recurring(idx, next, Body::Recurring(f));
            }
        }
    }

    /// Executes a single event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        match self.q.pop_due(u64::MAX) {
            Some(idx) => {
                self.dispatch(idx);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains, `stop()` is called, or the event limit is
    /// reached. Returns the final simulation time.
    pub fn run(&mut self) -> SimTime {
        self.stopped = false;
        while !self.stopped && self.executed < self.event_limit && self.step() {}
        self.now
    }

    /// Runs events with timestamps `<= deadline` (events scheduled later stay
    /// queued). Advances `now` to `deadline` if the queue drains earlier.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.stopped = false;
        while !self.stopped && self.executed < self.event_limit {
            match self.q.pop_due(deadline.as_picos()) {
                Some(idx) => self.dispatch(idx),
                None => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.now
    }
}

/// Convenience alias for shared simulation components.
pub type Shared<T> = Rc<RefCell<T>>;

/// Wraps a component in the `Rc<RefCell<_>>` handle used throughout the
/// simulator.
pub fn shared<T>(value: T) -> Shared<T> {
    Rc::new(RefCell::new(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn both(f: impl Fn(&mut Engine)) {
        for kind in [QueueKind::Wheel, QueueKind::Heap] {
            let mut eng = Engine::with_queue(kind);
            f(&mut eng);
        }
    }

    #[test]
    fn events_run_in_time_order() {
        both(|eng| {
            let log = shared(Vec::<u32>::new());
            for (t, tag) in [(30u64, 3u32), (10, 1), (20, 2)] {
                let log = log.clone();
                eng.schedule_at(SimTime::from_nanos(t), move |_| log.borrow_mut().push(tag));
            }
            eng.run();
            assert_eq!(*log.borrow(), vec![1, 2, 3]);
        });
    }

    #[test]
    fn same_time_events_run_fifo() {
        both(|eng| {
            let log = shared(Vec::<u32>::new());
            for tag in 0..100u32 {
                let log = log.clone();
                eng.schedule_at(SimTime::from_nanos(5), move |_| log.borrow_mut().push(tag));
            }
            eng.run();
            assert_eq!(*log.borrow(), (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn events_can_schedule_events() {
        both(|eng| {
            let log = shared(Vec::<SimTime>::new());
            let log2 = log.clone();
            eng.schedule_in(SimTime::from_nanos(1), move |eng| {
                let log3 = log2.clone();
                eng.schedule_in(SimTime::from_nanos(2), move |eng| {
                    log3.borrow_mut().push(eng.now());
                });
            });
            let end = eng.run();
            assert_eq!(end, SimTime::from_nanos(3));
            assert_eq!(*log.borrow(), vec![SimTime::from_nanos(3)]);
        });
    }

    #[test]
    fn run_until_leaves_later_events_queued() {
        both(|eng| {
            let log = shared(Vec::<u32>::new());
            for t in [10u64, 20, 30] {
                let log = log.clone();
                eng.schedule_at(SimTime::from_nanos(t), move |_| {
                    log.borrow_mut().push(t as u32)
                });
            }
            eng.run_until(SimTime::from_nanos(20));
            assert_eq!(*log.borrow(), vec![10, 20]);
            assert_eq!(eng.pending_events(), 1);
            assert_eq!(eng.now(), SimTime::from_nanos(20));
            eng.run();
            assert_eq!(*log.borrow(), vec![10, 20, 30]);
        });
    }

    #[test]
    fn run_until_advances_time_when_idle() {
        both(|eng| {
            eng.run_until(SimTime::from_millis(5));
            assert_eq!(eng.now(), SimTime::from_millis(5));
        });
    }

    #[test]
    fn run_until_then_schedule_before_pending() {
        // A run_until that stops short of the next event must leave the
        // queue able to accept events earlier than that event.
        both(|eng| {
            let log = shared(Vec::<u32>::new());
            let l = log.clone();
            eng.schedule_at(SimTime::from_nanos(100), move |_| l.borrow_mut().push(100));
            eng.run_until(SimTime::from_nanos(50));
            let l = log.clone();
            eng.schedule_at(SimTime::from_nanos(60), move |_| l.borrow_mut().push(60));
            eng.run();
            assert_eq!(*log.borrow(), vec![60, 100]);
        });
    }

    #[test]
    fn stop_halts_run() {
        both(|eng| {
            let log = shared(0u32);
            let l1 = log.clone();
            eng.schedule_at(SimTime::from_nanos(1), move |eng| {
                *l1.borrow_mut() += 1;
                eng.stop();
            });
            let l2 = log.clone();
            eng.schedule_at(SimTime::from_nanos(2), move |_| *l2.borrow_mut() += 1);
            eng.run();
            assert_eq!(*log.borrow(), 1);
            eng.run();
            assert_eq!(*log.borrow(), 2);
        });
    }

    #[test]
    fn event_limit_caps_execution() {
        both(|eng| {
            eng.set_event_limit(3);
            // A self-perpetuating event chain.
            fn tick(eng: &mut Engine) {
                eng.schedule_in(SimTime::from_nanos(1), tick);
            }
            eng.schedule_in(SimTime::from_nanos(1), tick);
            eng.run();
            assert_eq!(eng.executed_events(), 3);
        });
    }

    #[test]
    fn far_future_events_park_in_the_overflow_level() {
        both(|eng| {
            let hit = Rc::new(Cell::new(false));
            let h1 = hit.clone();
            // Beyond level 5 (~68 ms), level 7 (~4.4 s) and deep into the
            // top level.
            eng.schedule_at(SimTime::from_secs(3600), move |_| h1.set(true));
            let infinite = eng.schedule_at_handle(SimTime::MAX, |_| panic!("never"));
            eng.schedule_at(SimTime::from_nanos(1), |_| {});
            eng.run_until(SimTime::from_secs(1));
            assert!(!hit.get());
            assert!(eng.cancel(infinite));
            eng.run();
            assert!(hit.get());
            assert_eq!(eng.now(), SimTime::from_secs(3600));
        });
    }

    #[test]
    fn cancelled_events_neither_run_nor_count() {
        both(|eng| {
            let hits = shared(0u32);
            let h = hits.clone();
            let a = eng.schedule_at_handle(SimTime::from_nanos(10), move |_| *h.borrow_mut() += 1);
            let h = hits.clone();
            let _b = eng.schedule_at_handle(SimTime::from_nanos(20), move |_| *h.borrow_mut() += 1);
            assert_eq!(eng.pending_events(), 2);
            assert!(eng.cancel(a));
            assert_eq!(eng.pending_events(), 1, "cancelled timers are not pending");
            assert!(!eng.cancel(a), "double cancel is stale");
            // The cancelled event must not be charged against the limit.
            eng.set_event_limit(1);
            eng.run();
            assert_eq!(*hits.borrow(), 1);
            assert_eq!(eng.executed_events(), 1);
        });
    }

    #[test]
    fn cancel_of_fired_handle_is_stale() {
        both(|eng| {
            let h = eng.schedule_at_handle(SimTime::from_nanos(5), |_| {});
            assert!(eng.is_scheduled(h));
            eng.run();
            assert!(!eng.is_scheduled(h));
            assert!(!eng.cancel(h));
        });
    }

    #[test]
    fn reschedule_moves_events_both_directions() {
        both(|eng| {
            let log = shared(Vec::<(u32, SimTime)>::new());
            let l = log.clone();
            let a = eng.schedule_at_handle(SimTime::from_nanos(100), move |e| {
                l.borrow_mut().push((1, e.now()))
            });
            let l = log.clone();
            let b = eng.schedule_at_handle(SimTime::from_nanos(50), move |e| {
                l.borrow_mut().push((2, e.now()))
            });
            // Push a later, pull b earlier.
            assert!(eng.reschedule(a, SimTime::from_nanos(200)));
            assert!(eng.reschedule(b, SimTime::from_nanos(10)));
            eng.run();
            assert_eq!(
                *log.borrow(),
                vec![(2, SimTime::from_nanos(10)), (1, SimTime::from_nanos(200)),]
            );
        });
    }

    #[test]
    fn reschedule_to_same_time_requeues_in_fifo_order() {
        both(|eng| {
            let log = shared(Vec::<u32>::new());
            let l = log.clone();
            let a = eng.schedule_at_handle(SimTime::from_nanos(5), move |_| l.borrow_mut().push(1));
            let l = log.clone();
            eng.schedule_at_handle(SimTime::from_nanos(5), move |_| l.borrow_mut().push(2));
            // Re-arming `a` at the same instant demotes it behind 2 (a
            // reschedule ranks like a fresh schedule).
            assert!(eng.reschedule(a, SimTime::from_nanos(5)));
            eng.run();
            assert_eq!(*log.borrow(), vec![2, 1]);
        });
    }

    #[test]
    fn recurring_event_rearms_and_stops() {
        both(|eng| {
            let log = shared(Vec::<SimTime>::new());
            let l = log.clone();
            let mut left = 3u32;
            eng.schedule_recurring_in(SimTime::from_nanos(10), move |eng| {
                l.borrow_mut().push(eng.now());
                left -= 1;
                (left > 0).then(|| eng.now() + SimTime::from_nanos(5))
            });
            eng.run();
            assert_eq!(
                *log.borrow(),
                vec![
                    SimTime::from_nanos(10),
                    SimTime::from_nanos(15),
                    SimTime::from_nanos(20)
                ]
            );
            assert_eq!(eng.pending_events(), 0);
        });
    }

    #[test]
    fn recurring_event_cancel_while_firing() {
        both(|eng| {
            let fires = Rc::new(Cell::new(0u32));
            let f = fires.clone();
            let slot: Rc<Cell<Option<TimerHandle>>> = Rc::new(Cell::new(None));
            let s = slot.clone();
            let h = eng.schedule_recurring_in(SimTime::from_nanos(1), move |eng| {
                f.set(f.get() + 1);
                if f.get() == 2 {
                    // Self-cancel mid-fire: the re-arm below must be
                    // ignored.
                    assert!(eng.cancel(s.get().expect("handle stored")));
                }
                Some(eng.now() + SimTime::from_nanos(1))
            });
            slot.set(Some(h));
            eng.run();
            assert_eq!(fires.get(), 2, "self-cancel stops the recurrence");
            assert_eq!(eng.pending_events(), 0);
        });
    }

    #[test]
    fn same_instant_cancel_prevents_execution() {
        both(|eng| {
            // A fires first (same instant, earlier schedule) and cancels B.
            let slot: Rc<Cell<Option<TimerHandle>>> = Rc::new(Cell::new(None));
            let s = slot.clone();
            eng.schedule_at(SimTime::from_nanos(7), move |eng| {
                assert!(eng.cancel(s.get().expect("B scheduled")));
            });
            let b = eng.schedule_at_handle(SimTime::from_nanos(7), |_| {
                panic!("B was cancelled by A at the same instant")
            });
            slot.set(Some(b));
            eng.run();
            assert_eq!(eng.executed_events(), 1);
        });
    }

    #[test]
    fn rc_callback_fires_like_a_oneshot() {
        both(|eng| {
            let hits = Rc::new(Cell::new(0u32));
            let h = hits.clone();
            let cb: Rc<dyn Fn(&mut Engine)> = Rc::new(move |_| h.set(h.get() + 1));
            eng.schedule_rc_at(SimTime::from_nanos(1), cb.clone());
            eng.schedule_rc_at(SimTime::from_nanos(2), cb);
            eng.run();
            assert_eq!(hits.get(), 2);
        });
    }

    #[test]
    fn dense_and_sparse_mix_pops_in_order() {
        // Exercises cascades: times spread across many wheel levels, mixed
        // with same-instant runs.
        both(|eng| {
            let log = shared(Vec::<u64>::new());
            let mut times = Vec::new();
            let mut x = 0x243F_6A88_85A3_08D3u64;
            for _ in 0..500 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                times.push(x % 50_000_000); // up to 50 us, hits levels 0..5
            }
            times.extend([0, 0, 1, 1, 63, 64, 65, 4095, 4096, 4097]);
            for &t in &times {
                let l = log.clone();
                eng.schedule_at(SimTime(t), move |e| l.borrow_mut().push(e.now().0));
            }
            eng.run();
            let got = log.borrow().clone();
            let mut want = times.clone();
            want.sort_unstable();
            assert_eq!(got, want);
        });
    }
}
