//! Point-to-point link model.
//!
//! A link serializes packets at a configured bandwidth, applies a loss
//! process, optional reorder jitter, and delivers after the propagation
//! delay. Serialization is modelled with a `next_free` cursor so back-to-back
//! transmissions queue behind each other exactly as on a real wire.
//!
//! Delivery is **coalesced**: [`Link::enqueue`] computes each packet's
//! arrival instant and files it into an arrival-ordered [`VecDeque`]; the
//! fabric drives the queue with a single re-armable drain event per busy
//! period ([`Fabric`](crate::Fabric) owns the pump). A serialization train
//! of N packets therefore costs N queue-node re-arms and zero boxed
//! closures, where it used to cost N `Box<dyn FnOnce>` allocations pushed
//! through the engine heap.
//!
//! # Delivery-time loss
//!
//! The loss draw happens at **delivery time** ([`Link::pop_due`]), not at
//! post time: a packet's fate is decided the instant it would reach the far
//! end. A loss step, blackout, or flap applied mid-simulation (via
//! [`Link::set_loss`], [`Link::set_down`], or a
//! [`FaultPlan`](crate::FaultPlan)) therefore affects packets already in
//! flight — the ~1.5 RTT of pre-posted pipeline feels the channel change
//! instead of sailing through on fates drawn under the old conditions.

use std::collections::VecDeque;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sdr_trace::{Counter, Registry};

use crate::equeue::TimerHandle;
use crate::loss::{LossModel, LossProcess};
use crate::packet::Packet;
use crate::time::{propagation_delay_km, tx_time, SimTime};

/// Per-packet wire overhead of RoCEv2 over Ethernet: preamble-less
/// Eth(18) + IPv4(20) + UDP(8) + BTH(12) + RETH(16) + ICRC(4) ≈ 78 bytes.
pub const DEFAULT_HEADER_BYTES: usize = 78;

/// Upper bound on [`LinkConfig::reorder_span`]: a displaced packet can be
/// pushed back by at most this many serialization quanta, matching the
/// depth of the arrival queue window the insertion sort walks.
pub const MAX_REORDER_SPAN: u32 = 64;

/// Upper bound on [`LinkConfig::corrupt_burst`]: one corruption event can
/// flip at most this many contiguous payload bits.
pub const MAX_CORRUPT_BURST: u32 = 64;

/// Static description of a unidirectional link.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Line rate in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub one_way_delay: SimTime,
    /// Loss model applied per packet.
    pub loss: LossModel,
    /// Maximum transfer unit (payload bytes per packet).
    pub mtu: usize,
    /// Per-packet header bytes counted against serialization time.
    pub header_bytes: usize,
    /// If set, adds uniform random extra delay in `[0, jitter]` to each
    /// delivery, which can reorder packets in flight.
    pub reorder_jitter: Option<SimTime>,
    /// Per-packet probability that the wire *duplicates* the packet: a
    /// second copy is filed one serialization quantum behind the original
    /// and draws its own delivery fate. Must be in `[0, 1)`.
    pub duplicate_p: f64,
    /// Per-packet probability that the packet is *displaced*: its arrival
    /// is pushed back by `1..=reorder_span` of its own serialization
    /// quanta, letting later sends overtake it. Must be in `[0, 1)`.
    pub reorder_p: f64,
    /// Maximum displacement, in serialization quanta, of a reordered
    /// packet (`1..=`[`MAX_REORDER_SPAN`]; required when `reorder_p > 0`).
    pub reorder_span: u32,
    /// Per-**bit** probability that a delivered payload bit arrives
    /// flipped. Applies to payload bytes only: header corruption is
    /// already absorbed by the per-hop link ICRC (part of the modelled
    /// 78-byte header) and manifests as loss, while *payload* integrity
    /// is exactly what end-to-end checksums must defend — per-hop CRCs
    /// cannot vouch for bytes across switch memory. Must be in `[0, 1)`.
    pub corrupt_p: f64,
    /// Maximum contiguous bit-run flipped per corruption event
    /// (`1..=`[`MAX_CORRUPT_BURST`]; `1` = independent single-bit flips).
    pub corrupt_burst: u32,
    /// Number of parallel equal-cost paths (ECMP / multi-plane fabrics,
    /// §3.4.1). Each path serializes independently at `bandwidth_bps /
    /// paths`; packets take the earliest-available path, which naturally
    /// reorders bursts across paths.
    pub paths: usize,
    /// Seed for the link's private randomness (loss + jitter).
    pub seed: u64,
}

impl LinkConfig {
    /// An ideal intra-datacenter link: lossless, short delay.
    pub fn intra_dc(bandwidth_bps: f64) -> Self {
        LinkConfig {
            bandwidth_bps,
            one_way_delay: SimTime::from_micros(2),
            loss: LossModel::Perfect,
            mtu: 4096,
            header_bytes: DEFAULT_HEADER_BYTES,
            reorder_jitter: None,
            duplicate_p: 0.0,
            reorder_p: 0.0,
            reorder_span: 0,
            corrupt_p: 0.0,
            corrupt_burst: 1,
            paths: 1,
            seed: 0,
        }
    }

    /// A long-haul inter-datacenter link with the paper's distance → delay
    /// convention and i.i.d. loss.
    pub fn wan(km: f64, bandwidth_bps: f64, p_drop: f64) -> Self {
        LinkConfig {
            bandwidth_bps,
            one_way_delay: propagation_delay_km(km),
            loss: LossModel::Iid { p: p_drop },
            mtu: 4096,
            header_bytes: DEFAULT_HEADER_BYTES,
            reorder_jitter: None,
            duplicate_p: 0.0,
            reorder_p: 0.0,
            reorder_span: 0,
            corrupt_p: 0.0,
            corrupt_burst: 1,
            paths: 1,
            seed: 0,
        }
    }

    /// Splits the link into `paths` equal-cost parallel paths
    /// (builder style).
    pub fn with_paths(mut self, paths: usize) -> Self {
        assert!(paths >= 1);
        self.paths = paths;
        self
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the loss model (builder style).
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Enables reorder jitter (builder style).
    pub fn with_reorder_jitter(mut self, jitter: SimTime) -> Self {
        self.reorder_jitter = Some(jitter);
        self
    }

    /// Enables wire duplication with probability `p` per packet
    /// (builder style).
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.duplicate_p = p;
        self
    }

    /// Enables packet displacement: with probability `p`, a packet's
    /// arrival is pushed back by up to `span` of its own serialization
    /// quanta (builder style).
    pub fn with_reordering(mut self, p: f64, span: u32) -> Self {
        self.reorder_p = p;
        self.reorder_span = span;
        self
    }

    /// Enables payload corruption: each delivered payload bit flips
    /// independently with probability `p` (builder style).
    pub fn with_corruption(mut self, p: f64) -> Self {
        self.corrupt_p = p;
        self.corrupt_burst = 1;
        self
    }

    /// Enables bursty payload corruption: corruption events strike at
    /// per-bit rate `p` and each flips a contiguous run of `1..=max_run`
    /// bits (builder style).
    pub fn with_corruption_burst(mut self, p: f64, max_run: u32) -> Self {
        self.corrupt_p = p;
        self.corrupt_burst = max_run;
        self
    }

    /// Round-trip propagation time of a symmetric pair of such links.
    pub fn rtt(&self) -> SimTime {
        self.one_way_delay * 2
    }
}

/// Counters exported by a link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted for transmission.
    pub sent: u64,
    /// Packets dropped by the loss process.
    pub dropped: u64,
    /// Packets delivered to the far end.
    pub delivered: u64,
    /// Total payload+header bytes serialized.
    pub bytes: u64,
    /// Wire-duplicated copies injected (each also counts in `sent`).
    pub duplicated: u64,
    /// Packets displaced behind their serialization slot.
    pub reordered: u64,
    /// Packets delivered with at least one flipped payload bit (each also
    /// counts in `delivered`: corruption is a *content* fault, not loss).
    pub corrupted: u64,
}

/// Registry-bound aggregate wire counters (`link.*`): every link of a
/// fabric shares the same handles, so they sum across links. Mirrors the
/// per-link [`LinkStats`]; increments are kill-switch gated inside
/// `sdr-trace` and never allocate.
pub(crate) struct LinkTrace {
    sent: Counter,
    delivered: Counter,
    dropped: Counter,
    duplicated: Counter,
    reordered: Counter,
    corrupted: Counter,
}

impl LinkTrace {
    pub(crate) fn new(reg: &Registry) -> LinkTrace {
        LinkTrace {
            sent: reg.counter("link.sent"),
            delivered: reg.counter("link.delivered"),
            dropped: reg.counter("link.dropped"),
            duplicated: reg.counter("link.duplicated"),
            reordered: reg.counter("link.reordered"),
            corrupted: reg.counter("link.corrupted"),
        }
    }
}

/// Outcome of handing one packet to [`Link::enqueue`]: the wire schedule
/// the packet was given. Whether it actually arrives is decided by the
/// loss process at delivery time ([`Link::pop_due`]), so a mid-flight
/// channel change can still claim it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxOutcome {
    /// Scheduled arrival instant at the receiver (serialization +
    /// propagation + jitter).
    pub at: SimTime,
}

/// Number of clean bits before the next flip under an i.i.d. per-bit
/// flip rate `p`: exact inverse-CDF (geometric) sampling,
/// `⌊ln U / ln(1−p)⌋` for `U ∈ (0, 1]`. Requires `0 < p < 1`.
fn corruption_skip(rng: &mut SmallRng, p: f64) -> u64 {
    let u: f64 = 1.0 - rng.random::<f64>();
    let skip = u.ln() / (1.0 - p).ln();
    if skip >= u64::MAX as f64 {
        u64::MAX
    } else {
        skip as u64
    }
}

/// A unidirectional lossy link (possibly striped over parallel paths).
pub struct Link {
    cfg: LinkConfig,
    loss: LossProcess,
    rng: SmallRng,
    /// Per-path wire-busy cursors.
    next_free: Vec<SimTime>,
    stats: LinkStats,
    /// In-flight packets, ordered by arrival instant (FIFO within an
    /// instant). The fabric's drain pump walks this.
    pending: VecDeque<(SimTime, Packet)>,
    /// The drain pump, while armed: `(handle, armed-at instant)`. Owned
    /// logically by the fabric; stored here so each link carries exactly
    /// one pump.
    drain: Option<(TimerHandle, SimTime)>,
    /// Hard blackout flag: while set, every packet reaching its delivery
    /// instant is dropped (without consuming the loss process's RNG
    /// stream, so the post-heal drop pattern is unperturbed).
    down: bool,
    /// Fabric-wide registry counters, bound when the link is installed
    /// into a [`Fabric`](crate::Fabric) (absent for standalone links).
    trace: Option<LinkTrace>,
}

impl Link {
    /// Builds a link from its configuration, returning `Err` when the
    /// configuration is invalid (a loss probability outside `[0, 1]`, or
    /// zero paths).
    pub fn try_new(cfg: LinkConfig) -> Result<Self, String> {
        if cfg.paths < 1 {
            return Err("a link needs at least one path".to_string());
        }
        cfg.loss.validate()?;
        for (name, p) in [
            ("duplicate_p", cfg.duplicate_p),
            ("reorder_p", cfg.reorder_p),
        ] {
            if !(0.0..1.0).contains(&p) {
                return Err(format!("{name} = {p} must be a probability below 1"));
            }
        }
        if cfg.reorder_p > 0.0 && !(1..=MAX_REORDER_SPAN).contains(&cfg.reorder_span) {
            return Err(format!(
                "reorder_span = {} must be in 1..={MAX_REORDER_SPAN} when reorder_p > 0",
                cfg.reorder_span
            ));
        }
        if !(0.0..1.0).contains(&cfg.corrupt_p) {
            return Err(format!(
                "corrupt_p = {} must be a probability below 1",
                cfg.corrupt_p
            ));
        }
        if cfg.corrupt_p > 0.0 && !(1..=MAX_CORRUPT_BURST).contains(&cfg.corrupt_burst) {
            return Err(format!(
                "corrupt_burst = {} must be in 1..={MAX_CORRUPT_BURST} when corrupt_p > 0",
                cfg.corrupt_burst
            ));
        }
        let loss = LossProcess::new(cfg.loss.clone(), cfg.seed.wrapping_mul(0x9E37_79B9));
        let rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(0xA5A5_5A5A));
        let next_free = vec![SimTime::ZERO; cfg.paths];
        Ok(Link {
            cfg,
            loss,
            rng,
            next_free,
            stats: LinkStats::default(),
            pending: VecDeque::new(),
            drain: None,
            down: false,
            trace: None,
        })
    }

    /// Binds the fabric-wide `link.*` registry counters (see [`LinkTrace`]).
    pub(crate) fn bind_metrics(&mut self, reg: &Registry) {
        self.trace = Some(LinkTrace::new(reg));
    }

    /// Builds a link from its configuration.
    ///
    /// # Panics
    /// Panics when the configuration is invalid; use
    /// [`try_new`](Self::try_new) for a recoverable error.
    pub fn new(cfg: LinkConfig) -> Self {
        Self::try_new(cfg).expect("invalid link configuration")
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Time at which some path of the wire becomes idle again.
    pub fn next_free(&self) -> SimTime {
        *self.next_free.iter().min().expect("paths >= 1")
    }

    /// Time at which *all* paths are idle (last serialization ends).
    pub fn all_paths_free(&self) -> SimTime {
        *self.next_free.iter().max().expect("paths >= 1")
    }

    /// Serializes `pkt` onto the wire at `now`: the packet is filed into
    /// the pending-arrival queue and handed back (or dropped) by
    /// [`pop_due`](Self::pop_due) at its arrival instant — the caller (the
    /// fabric) keeps a drain event armed at
    /// [`next_arrival`](Self::next_arrival).
    ///
    /// The drop decision is **not** made here: fates are drawn at delivery
    /// time, so a channel change while the packet is in flight still
    /// applies to it.
    pub fn enqueue(&mut self, now: SimTime, pkt: Packet) -> TxOutcome {
        let wire_bytes = (pkt.payload_len() + self.cfg.header_bytes) as u64;
        // ECMP-style path choice: the earliest-available path wins.
        let path = (0..self.next_free.len())
            .min_by_key(|&i| self.next_free[i])
            .expect("paths >= 1");
        let start = self.next_free[path].max(now);
        let per_path_bw = self.cfg.bandwidth_bps / self.cfg.paths as f64;
        let serialize = tx_time(wire_bytes, per_path_bw);
        self.next_free[path] = start + serialize;
        self.stats.sent += 1;
        self.stats.bytes += wire_bytes;
        if let Some(t) = &self.trace {
            t.sent.inc();
        }

        let mut arrival = self.next_free[path] + self.cfg.one_way_delay;
        if let Some(jitter) = self.cfg.reorder_jitter {
            if jitter > SimTime::ZERO {
                arrival += SimTime(self.rng.random_range(0..=jitter.as_picos()));
            }
        }
        // Adversarial displacement: push the arrival back by a few of the
        // packet's own serialization quanta so later sends overtake it.
        if self.cfg.reorder_p > 0.0 && self.rng.random_bool(self.cfg.reorder_p) {
            let span = self.rng.random_range(1..=self.cfg.reorder_span) as u64;
            arrival += serialize * span;
            self.stats.reordered += 1;
            if let Some(t) = &self.trace {
                t.reordered.inc();
            }
        }
        // Wire duplication: a second copy trails the original by one
        // serialization quantum and draws its own delivery fate.
        if self.cfg.duplicate_p > 0.0 && self.rng.random_bool(self.cfg.duplicate_p) {
            let copy_at = arrival + serialize;
            self.stats.sent += 1;
            self.stats.duplicated += 1;
            if let Some(t) = &self.trace {
                t.sent.inc();
                t.duplicated.inc();
            }
            self.file_arrival(copy_at, pkt.clone());
        }
        self.file_arrival(arrival, pkt);
        TxOutcome { at: arrival }
    }

    /// Files a packet into the arrival-ordered pending queue (stable for
    /// equal instants). Jitter, displacement and multipath can make a
    /// later send arrive earlier, but the common case appends at the back.
    fn file_arrival(&mut self, arrival: SimTime, pkt: Packet) {
        let mut i = self.pending.len();
        while i > 0 && self.pending[i - 1].0 > arrival {
            i -= 1;
        }
        self.pending.insert(i, (arrival, pkt));
    }

    /// The earliest pending arrival, if any (where the drain pump arms).
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.pending.front().map(|(at, _)| *at)
    }

    /// Pops the next *surviving* packet whose arrival instant is `<= now`,
    /// drawing each due packet's fate from the loss process at this —
    /// delivery — time. Due packets the loss process (or an active
    /// blackout) claims are consumed here and counted in
    /// [`stats().dropped`](Self::stats).
    pub fn pop_due(&mut self, now: SimTime) -> Option<Packet> {
        while self.pending.front().is_some_and(|(at, _)| *at <= now) {
            let (_, mut pkt) = self.pending.pop_front().expect("front checked");
            if self.down || self.loss.drops_next() {
                self.stats.dropped += 1;
                if let Some(t) = &self.trace {
                    t.dropped.inc();
                }
                continue;
            }
            self.stats.delivered += 1;
            if let Some(t) = &self.trace {
                t.delivered.inc();
            }
            // Corruption is drawn at delivery time like loss, so a
            // corruption step applied mid-flight strikes the pipeline.
            if self.cfg.corrupt_p > 0.0 && self.corrupt_payload(&mut pkt) {
                self.stats.corrupted += 1;
                if let Some(t) = &self.trace {
                    t.corrupted.inc();
                }
            }
            return Some(pkt);
        }
        None
    }

    /// Flips payload bits of `pkt` under the configured per-bit rate.
    /// Returns whether anything flipped. Exact i.i.d. sampling via
    /// geometric skips: a 4 KiB packet costs one RNG draw per *actual*
    /// flip, not one per bit. Empty payloads (pure acks) are
    /// uncorruptable by construction — their content lives entirely in
    /// the modelled header, whose corruption the per-hop ICRC turns into
    /// loss.
    fn corrupt_payload(&mut self, pkt: &mut Packet) -> bool {
        let bits = pkt.payload.len() as u64 * 8;
        if bits == 0 {
            return false;
        }
        let p = self.cfg.corrupt_p;
        let mut pos = corruption_skip(&mut self.rng, p);
        if pos >= bits {
            return false;
        }
        let mut buf = pkt.payload.to_vec();
        while pos < bits {
            let run = if self.cfg.corrupt_burst > 1 {
                self.rng.random_range(1..=self.cfg.corrupt_burst as u64)
            } else {
                1
            };
            let end = (pos + run).min(bits);
            for b in pos..end {
                buf[(b / 8) as usize] ^= 1 << (b % 8);
            }
            pos = end + corruption_skip(&mut self.rng, p);
        }
        pkt.payload = Bytes::from(buf);
        true
    }

    /// Packets currently in flight toward the receiver.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Drops every packet currently in flight (counted in
    /// [`stats().dropped`](Self::stats)) — the far endpoint crashed and
    /// nothing on the wire toward it survives. Returns how many died.
    pub fn drop_in_flight(&mut self) -> usize {
        let n = self.pending.len();
        self.stats.dropped += n as u64;
        if let Some(t) = &self.trace {
            t.dropped.add(n as u64);
        }
        self.pending.clear();
        n
    }

    /// The armed drain pump, if any (fabric bookkeeping).
    pub(crate) fn drain_state(&self) -> Option<(TimerHandle, SimTime)> {
        self.drain
    }

    /// Records the drain pump state (fabric bookkeeping).
    pub(crate) fn set_drain(&mut self, d: Option<(TimerHandle, SimTime)>) {
        self.drain = d;
    }

    /// Empirical drop rate observed by the loss process.
    pub fn observed_drop_rate(&self) -> f64 {
        self.loss.observed_rate()
    }

    /// Replaces the loss model mid-simulation — the substrate for loss-step
    /// scenarios (an ISP congestion episode beginning or ending, Figure 2's
    /// three-orders-of-magnitude drift). Because fates are drawn at
    /// delivery time, the new model applies to packets already in flight.
    ///
    /// The new process gets a fresh RNG stream derived deterministically
    /// from the link seed and the packets already offered, so replaying the
    /// same schedule of `set_loss` calls reproduces the same drops.
    ///
    /// **Burst-state semantics**: the replacement process always starts in
    /// the *good* state — a Gilbert–Elliott link mid-burst does not carry
    /// the burst across a `set_loss`, even when the new model equals the
    /// old one. A fault plan that wants a burst to span a parameter shift
    /// must express it in the new model's parameters (e.g. a higher
    /// `p_good_to_bad`), not rely on carried state. This keeps the schedule
    /// of `set_loss` calls the *complete* description of the channel.
    pub fn set_loss(&mut self, model: LossModel) {
        assert!(model.validate().is_ok(), "invalid loss model");
        let seed = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(self.stats.sent);
        self.cfg.loss = model.clone();
        self.loss = LossProcess::new(model, seed);
    }

    /// Steps the payload-corruption process mid-simulation. Like
    /// [`set_loss`](Self::set_loss), corruption fates are drawn at
    /// delivery time, so the new rate applies to packets already in
    /// flight. `max_run` is ignored while `p == 0`.
    pub fn set_corruption(&mut self, p: f64, max_run: u32) {
        assert!((0.0..1.0).contains(&p), "invalid corruption rate {p}");
        assert!(
            p == 0.0 || (1..=MAX_CORRUPT_BURST).contains(&max_run),
            "invalid corruption burst {max_run}"
        );
        self.cfg.corrupt_p = p;
        self.cfg.corrupt_burst = max_run;
    }

    /// Raises or clears the hard-blackout flag. While down, every packet
    /// reaching its delivery instant is dropped — including packets that
    /// were already in flight when the blackout began. The loss process's
    /// RNG stream is not consumed by blackout drops, so the drop pattern
    /// after heal is exactly what it would have been without the outage.
    pub fn set_down(&mut self, down: bool) {
        self.down = down;
    }

    /// True while the hard-blackout flag is raised.
    pub fn is_down(&self) -> bool {
        self.down
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{shared, Engine, Shared};
    use crate::packet::{NodeId, PacketKind, QpAddr, QpNum};
    use bytes::Bytes;

    fn test_link(bw: f64) -> Link {
        let mut cfg = LinkConfig::intra_dc(bw);
        cfg.one_way_delay = SimTime::from_micros(5);
        cfg.header_bytes = 0;
        Link::new(cfg)
    }

    fn pkt(tag: u32, payload: usize) -> Packet {
        Packet {
            src: QpAddr {
                node: NodeId(0),
                qp: QpNum(0),
            },
            dst: QpAddr {
                node: NodeId(1),
                qp: QpNum(0),
            },
            psn: tag,
            kind: PacketKind::Send { imm: Some(tag) },
            payload: Bytes::from(vec![0u8; payload]),
        }
    }

    /// A miniature fabric pump: drains the link through one recurring
    /// engine event, delivering tags + instants into `out`.
    fn pump(eng: &mut Engine, link: &Shared<Link>, out: &Shared<Vec<(u32, SimTime)>>) {
        let Some(at) = link.borrow().next_arrival() else {
            return;
        };
        let (l, o) = (link.clone(), out.clone());
        eng.schedule_recurring_at(at, move |eng| {
            while let Some(p) = l.borrow_mut().pop_due(eng.now()) {
                o.borrow_mut().push((p.psn, eng.now()));
            }
            l.borrow().next_arrival()
        });
    }

    #[test]
    fn delivery_time_is_serialization_plus_propagation() {
        let mut eng = Engine::new();
        let link = shared(test_link(8e9)); // 1 byte per ns
        let out = shared(Vec::new());
        let got = link.borrow_mut().enqueue(SimTime::ZERO, pkt(1, 1000));
        // 1000 bytes at 1 B/ns = 1 us serialize + 5 us propagation.
        let expect = SimTime::from_micros(6);
        assert_eq!(got, TxOutcome { at: expect });
        pump(&mut eng, &link, &out);
        eng.run();
        assert_eq!(*out.borrow(), vec![(1, expect)]);
    }

    #[test]
    fn back_to_back_packets_queue_on_the_wire() {
        let mut eng = Engine::new();
        let link = shared(test_link(8e9));
        let out = shared(Vec::new());
        for tag in 0..3 {
            link.borrow_mut().enqueue(SimTime::ZERO, pkt(tag, 1000));
        }
        assert_eq!(link.borrow().in_flight(), 3);
        pump(&mut eng, &link, &out);
        eng.run();
        // Serializations at 1,2,3 us; arrivals at 6,7,8 us.
        assert_eq!(
            *out.borrow(),
            vec![
                (0, SimTime::from_micros(6)),
                (1, SimTime::from_micros(7)),
                (2, SimTime::from_micros(8))
            ]
        );
    }

    /// Drains every pending packet regardless of arrival instant, drawing
    /// each fate at "delivery" (test shorthand for a full pump run).
    fn drain_all(link: &mut Link) -> usize {
        let mut delivered = 0;
        while link.pop_due(SimTime(u64::MAX)).is_some() {
            delivered += 1;
        }
        delivered
    }

    #[test]
    fn dropped_packets_still_consume_wire_time() {
        let mut cfg = LinkConfig::intra_dc(8e9);
        cfg.header_bytes = 0;
        cfg.loss = LossModel::Iid { p: 1.0 };
        let mut link = Link::new(cfg);
        let out = link.enqueue(SimTime::ZERO, pkt(0, 1000));
        // The packet occupies the wire and flies; the loss draw happens at
        // its delivery instant, where the p=1 process claims it.
        assert_eq!(link.next_free(), SimTime::from_micros(1));
        assert_eq!(link.in_flight(), 1, "fate undecided while in flight");
        assert_eq!(link.next_arrival(), Some(out.at));
        assert!(link.pop_due(out.at).is_none(), "claimed at delivery");
        assert_eq!(link.stats().dropped, 1);
        assert_eq!(link.in_flight(), 0);
        assert_eq!(link.next_arrival(), None);
    }

    #[test]
    fn loss_step_claims_packets_already_in_flight() {
        // The delivery-time guarantee: packets posted under a clean channel
        // but still in flight when the loss steps to p=1 are dropped.
        let cfg = LinkConfig::wan(100.0, 8e9, 0.0).with_seed(3);
        let mut link = Link::new(cfg);
        for i in 0..20 {
            link.enqueue(SimTime::ZERO, pkt(i, 100));
        }
        assert_eq!(link.in_flight(), 20);
        link.set_loss(LossModel::Iid { p: 1.0 });
        assert_eq!(drain_all(&mut link), 0, "in-flight packets feel the step");
        let s = link.stats();
        assert_eq!((s.dropped, s.delivered), (20, 0));
    }

    #[test]
    fn blackout_claims_in_flight_and_heals_cleanly() {
        let cfg = LinkConfig::wan(100.0, 8e9, 0.0).with_seed(4);
        let mut link = Link::new(cfg);
        for i in 0..10 {
            link.enqueue(SimTime::ZERO, pkt(i, 100));
        }
        link.set_down(true);
        assert!(link.is_down());
        assert_eq!(drain_all(&mut link), 0, "blackout claims in-flight");
        assert_eq!(link.stats().dropped, 10);
        link.set_down(false);
        for i in 0..10 {
            link.enqueue(SimTime::from_micros(1), pkt(i, 100));
        }
        assert_eq!(drain_all(&mut link), 10, "clean again after heal");
        assert_eq!(link.stats().delivered, 10);
    }

    #[test]
    fn try_new_rejects_invalid_configs() {
        let bad_loss = LinkConfig::intra_dc(8e9).with_loss(LossModel::Iid { p: 1.5 });
        assert!(Link::try_new(bad_loss).is_err());
        let mut no_paths = LinkConfig::intra_dc(8e9);
        no_paths.paths = 0;
        assert!(Link::try_new(no_paths).is_err());
        assert!(Link::try_new(LinkConfig::intra_dc(8e9)).is_ok());
    }

    #[test]
    fn try_new_rejects_invalid_dup_reorder_knobs() {
        // Probabilities >= 1 (duplication of every packet forever, or a
        // certain displacement) are rejected, mirroring the loss models.
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_duplication(1.0)).is_err());
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_duplication(-0.1)).is_err());
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_reordering(1.0, 4)).is_err());
        // A displacement probability needs a span inside the queue window.
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_reordering(0.1, 0)).is_err());
        assert!(Link::try_new(
            LinkConfig::intra_dc(8e9).with_reordering(0.1, MAX_REORDER_SPAN + 1)
        )
        .is_err());
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_reordering(0.1, 4)).is_ok());
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_duplication(0.5)).is_ok());
        // Span is ignored (not validated) while reorder_p == 0.
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_reordering(0.0, 0)).is_ok());
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let cfg = LinkConfig::intra_dc(8e9)
            .with_duplication(0.5)
            .with_seed(21);
        let mut link = Link::new(cfg);
        for i in 0..200 {
            link.enqueue(SimTime::ZERO, pkt(i, 100));
        }
        let delivered = drain_all(&mut link);
        let s = link.stats();
        assert!(s.duplicated > 50, "duplicated {}", s.duplicated);
        assert_eq!(s.sent, 200 + s.duplicated);
        assert_eq!(delivered as u64, s.delivered);
        assert_eq!(s.dropped + s.delivered, s.sent, "every copy draws a fate");
    }

    #[test]
    fn displacement_reorders_deliveries() {
        let mut eng = Engine::new();
        let cfg = LinkConfig::intra_dc(8e9)
            .with_reordering(0.3, 8)
            .with_seed(22);
        let link = shared(Link::new(cfg));
        let out = shared(Vec::new());
        for tag in 0..64 {
            link.borrow_mut().enqueue(SimTime::ZERO, pkt(tag, 1000));
        }
        pump(&mut eng, &link, &out);
        eng.run();
        let got: Vec<u32> = out.borrow().iter().map(|&(t, _)| t).collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>(), "nothing lost");
        assert_ne!(got, sorted, "displaced packets are overtaken");
        assert!(link.borrow().stats().reordered > 5);
    }

    #[test]
    fn try_new_rejects_invalid_corruption_knobs() {
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_corruption(1.0)).is_err());
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_corruption(-0.1)).is_err());
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_corruption_burst(1e-4, 0)).is_err());
        assert!(Link::try_new(
            LinkConfig::intra_dc(8e9).with_corruption_burst(1e-4, MAX_CORRUPT_BURST + 1)
        )
        .is_err());
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_corruption(1e-4)).is_ok());
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_corruption_burst(1e-4, 8)).is_ok());
        // Burst run is ignored (not validated) while corrupt_p == 0.
        assert!(Link::try_new(LinkConfig::intra_dc(8e9).with_corruption(0.0)).is_ok());
    }

    /// Drains all pending packets, returning the delivered payloads.
    fn drain_payloads(link: &mut Link) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Some(p) = link.pop_due(SimTime(u64::MAX)) {
            out.push(p.payload);
        }
        out
    }

    #[test]
    fn corruption_flips_bits_at_the_configured_rate() {
        // 500 packets × 1000 bytes at p = 1e-3 per bit: ≈ 4000 flipped
        // bits, essentially every packet corrupted at least once.
        let cfg = LinkConfig::intra_dc(8e9)
            .with_corruption(1e-3)
            .with_seed(31);
        let mut link = Link::new(cfg);
        for i in 0..500 {
            link.enqueue(SimTime::ZERO, pkt(i, 1000));
        }
        let payloads = drain_payloads(&mut link);
        let s = link.stats();
        assert_eq!(s.delivered, 500, "corruption is not loss");
        assert!(
            (400..=500).contains(&s.corrupted),
            "corrupted {}",
            s.corrupted
        );
        let flipped_bits: u64 = payloads
            .iter()
            .flat_map(|p| p.iter())
            .map(|b| b.count_ones() as u64)
            .sum();
        // Mean 4000, σ ≈ 63; a 10σ band still pins the rate to ±16%.
        assert!(
            (3400..=4600).contains(&flipped_bits),
            "flipped {flipped_bits} bits"
        );
    }

    #[test]
    fn corruption_rate_zero_delivers_bytes_untouched() {
        let cfg = LinkConfig::intra_dc(8e9).with_seed(32);
        let mut link = Link::new(cfg);
        for i in 0..100 {
            link.enqueue(SimTime::ZERO, pkt(i, 1000));
        }
        let payloads = drain_payloads(&mut link);
        assert!(payloads.iter().all(|p| p.iter().all(|&b| b == 0)));
        assert_eq!(link.stats().corrupted, 0);
    }

    #[test]
    fn burst_corruption_flips_contiguous_runs() {
        // Same event rate, burst runs up to 32 bits: far more total
        // flipped bits than single-flip mode at the same p, and flips
        // cluster (consecutive-bit pairs exist).
        let cfg = LinkConfig::intra_dc(8e9)
            .with_corruption_burst(1e-4, 32)
            .with_seed(33);
        let mut link = Link::new(cfg);
        for i in 0..500 {
            link.enqueue(SimTime::ZERO, pkt(i, 1000));
        }
        let payloads = drain_payloads(&mut link);
        let flipped: u64 = payloads
            .iter()
            .flat_map(|p| p.iter())
            .map(|b| b.count_ones() as u64)
            .sum();
        // ≈ 400 events × mean run 16.5 ≈ 6600 bits; single-flip mode at
        // this p would flip ≈ 400.
        assert!(flipped > 2000, "burst flips {flipped} bits");
        let runs = payloads
            .iter()
            .flat_map(|p| p.iter())
            .filter(|b| b.count_ones() >= 2)
            .count();
        assert!(runs > 50, "clustered flips in {runs} bytes");
    }

    #[test]
    fn empty_payloads_are_uncorruptable() {
        let cfg = LinkConfig::intra_dc(8e9).with_corruption(0.5).with_seed(34);
        let mut link = Link::new(cfg);
        for i in 0..50 {
            link.enqueue(SimTime::ZERO, pkt(i, 0));
        }
        assert_eq!(drain_all(&mut link), 50);
        assert_eq!(link.stats().corrupted, 0);
    }

    #[test]
    fn corruption_step_strikes_packets_already_in_flight() {
        // Delivery-time semantics: raising corrupt_p after enqueue still
        // corrupts the in-flight pipeline.
        let cfg = LinkConfig::wan(100.0, 8e9, 0.0).with_seed(35);
        let mut link = Link::new(cfg);
        for i in 0..100 {
            link.enqueue(SimTime::ZERO, pkt(i, 1000));
        }
        link.set_corruption(0.01, 1);
        drain_payloads(&mut link);
        let s = link.stats();
        assert_eq!(s.delivered, 100);
        assert!(s.corrupted > 90, "in-flight corrupted {}", s.corrupted);
    }

    #[test]
    fn set_loss_resets_gilbert_elliott_burst_state() {
        // Force the process into a permanent bad burst...
        let stuck_bad = LossModel::GilbertElliott {
            p_good_to_bad: 1.0,
            p_bad_to_good: 0.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let cfg = LinkConfig::intra_dc(8e9).with_loss(stuck_bad).with_seed(6);
        let mut link = Link::new(cfg);
        for i in 0..10 {
            link.enqueue(SimTime::ZERO, pkt(i, 100));
        }
        assert_eq!(drain_all(&mut link), 0, "burst drops everything");
        // ...then swap in a model that never *enters* the bad state but
        // always drops while in it. The documented semantics restart in
        // the good state, so nothing drops; carried burst state would have
        // kept dropping forever.
        link.set_loss(LossModel::GilbertElliott {
            p_good_to_bad: 0.0,
            p_bad_to_good: 0.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        });
        for i in 0..10 {
            link.enqueue(SimTime::ZERO, pkt(i, 100));
        }
        assert_eq!(drain_all(&mut link), 10, "set_loss restarts in good state");
    }

    #[test]
    fn header_bytes_count_against_bandwidth() {
        let mut cfg = LinkConfig::intra_dc(8e9);
        cfg.header_bytes = 100;
        cfg.one_way_delay = SimTime::ZERO;
        let mut link = Link::new(cfg);
        let out = link.enqueue(SimTime::ZERO, pkt(0, 900));
        assert_eq!(out.at, SimTime::from_micros(1));
    }

    #[test]
    fn jitter_can_reorder_deliveries() {
        let mut eng = Engine::new();
        let cfg = LinkConfig::intra_dc(8e12)
            .with_reorder_jitter(SimTime::from_micros(50))
            .with_seed(9);
        let link = shared(Link::new(cfg));
        let out = shared(Vec::new());
        for tag in 0..32 {
            link.borrow_mut().enqueue(SimTime::ZERO, pkt(tag, 64));
        }
        pump(&mut eng, &link, &out);
        eng.run();
        let got: Vec<u32> = out.borrow().iter().map(|&(t, _)| t).collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            got, sorted,
            "jitter of 50us over 32 tiny packets must reorder"
        );
        // The pending queue handed them out in arrival order regardless.
        let times: Vec<SimTime> = out.borrow().iter().map(|&(_, at)| at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn multipath_striping_parallelizes_serialization() {
        // 4 paths at aggregate 8 Gbit/s: four packets serialize
        // concurrently at 2 Gbit/s each instead of queueing.
        let mut cfg = LinkConfig::intra_dc(8e9).with_paths(4);
        cfg.header_bytes = 0;
        cfg.one_way_delay = SimTime::ZERO;
        let mut link = Link::new(cfg);
        let mut arrivals = Vec::new();
        for tag in 0..4 {
            arrivals.push(link.enqueue(SimTime::ZERO, pkt(tag, 1000)).at);
        }
        // Each serializes in 1000*8/2e9 = 4 us, all in parallel.
        assert!(arrivals.iter().all(|&a| a == SimTime::from_micros(4)));
        // A 5th packet queues behind the earliest path.
        let out = link.enqueue(SimTime::ZERO, pkt(4, 1000));
        assert_eq!(out.at, SimTime::from_micros(8));
    }

    #[test]
    fn multipath_reorders_mixed_sizes() {
        // A large packet on path A lets later small packets on path B
        // overtake it — the ECMP reordering SDR must tolerate (§3.4.1).
        let mut eng = Engine::new();
        let mut cfg = LinkConfig::intra_dc(8e9).with_paths(2);
        cfg.header_bytes = 0;
        cfg.one_way_delay = SimTime::ZERO;
        let link = shared(Link::new(cfg));
        let out = shared(Vec::new());
        link.borrow_mut().enqueue(SimTime::ZERO, pkt(0, 100_000)); // big
        link.borrow_mut().enqueue(SimTime::ZERO, pkt(1, 100)); // small
        pump(&mut eng, &link, &out);
        eng.run();
        let got: Vec<u32> = out.borrow().iter().map(|&(t, _)| t).collect();
        assert_eq!(got, vec![1, 0], "small overtakes big");
    }

    #[test]
    fn set_loss_steps_the_drop_rate_mid_run() {
        let cfg = LinkConfig::wan(100.0, 8e9, 0.0).with_seed(5);
        let mut link = Link::new(cfg);
        for i in 0..500 {
            link.enqueue(SimTime::ZERO, pkt(i, 100));
        }
        drain_all(&mut link);
        assert_eq!(link.stats().dropped, 0, "clean phase drops nothing");
        link.set_loss(LossModel::Iid { p: 0.5 });
        for i in 0..1000 {
            link.enqueue(SimTime::ZERO, pkt(i, 100));
        }
        drain_all(&mut link);
        let d = link.stats().dropped;
        assert!((300..700).contains(&d), "post-step drops {d}");
        // Back to clean: the step is fully reversible.
        link.set_loss(LossModel::Perfect);
        for i in 0..500 {
            link.enqueue(SimTime::ZERO, pkt(i, 100));
        }
        drain_all(&mut link);
        assert_eq!(link.stats().dropped, d, "clean again after the episode");
    }

    #[test]
    fn stats_track_sent_dropped_delivered() {
        let cfg = LinkConfig::wan(100.0, 8e9, 0.5).with_seed(77);
        let mut link = Link::new(cfg);
        for i in 0..1000 {
            link.enqueue(SimTime::ZERO, pkt(i, 100));
        }
        assert_eq!(link.stats().sent, 1000);
        assert_eq!(link.in_flight(), 1000, "fates undecided until delivery");
        drain_all(&mut link);
        let s = link.stats();
        assert_eq!(s.sent, 1000);
        assert_eq!(s.dropped + s.delivered, 1000);
        assert!(s.dropped > 300 && s.dropped < 700, "dropped {}", s.dropped);
        assert_eq!(link.in_flight(), 0);
    }
}
