//! Bottleneck queue and cross-traffic sources.
//!
//! Figure 2 of the paper measures UDP drop rates between two CSCS
//! datacenters over an ISP-provided optical link and observes (a) up to three
//! orders of magnitude drop-rate variation across trials and (b) drop rates
//! that grow with payload size — both attributed to switch buffer congestion
//! on the ISP side. We reproduce that mechanism with a fluid tail-drop FIFO
//! queue shared between the measured flows and a bursty on/off cross-traffic
//! source: larger packets are more likely to find insufficient residual
//! buffer space, and congestion episodes make trials wildly different.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::{Engine, Shared};
use crate::time::{tx_time, SimTime};

/// A fluid-model FIFO queue in front of a fixed-rate drain (the ISP trunk).
///
/// The queue tracks its backlog in bytes, draining continuously at
/// `drain_bps`. An arriving packet is tail-dropped when the backlog plus the
/// packet exceeds `capacity_bytes`.
pub struct BottleneckQueue {
    drain_bps: f64,
    capacity_bytes: u64,
    backlog_bytes: f64,
    last_update: SimTime,
    /// Packets offered / dropped, split by whether they came from the
    /// measured flows (`probe`) or from cross traffic.
    stats: QueueStats,
}

/// Counters exported by the bottleneck queue.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// Probe packets offered.
    pub probe_offered: u64,
    /// Probe packets tail-dropped.
    pub probe_dropped: u64,
    /// Cross-traffic packets offered.
    pub cross_offered: u64,
    /// Cross-traffic packets tail-dropped.
    pub cross_dropped: u64,
}

impl QueueStats {
    /// Drop rate seen by the measured (probe) flows.
    pub fn probe_drop_rate(&self) -> f64 {
        if self.probe_offered == 0 {
            0.0
        } else {
            self.probe_dropped as f64 / self.probe_offered as f64
        }
    }
}

impl BottleneckQueue {
    /// Creates a queue that drains at `drain_bps` with `capacity_bytes` of
    /// buffer.
    pub fn new(drain_bps: f64, capacity_bytes: u64) -> Self {
        assert!(drain_bps > 0.0);
        BottleneckQueue {
            drain_bps,
            capacity_bytes,
            backlog_bytes: 0.0,
            last_update: SimTime::ZERO,
            stats: QueueStats::default(),
        }
    }

    fn drain_to(&mut self, now: SimTime) {
        if now > self.last_update {
            let dt = (now - self.last_update).as_secs_f64();
            self.backlog_bytes = (self.backlog_bytes - dt * self.drain_bps / 8.0).max(0.0);
            self.last_update = now;
        }
    }

    /// Offers a packet at time `now`; returns `true` if it was accepted
    /// (queued) and `false` if tail-dropped.
    pub fn offer(&mut self, now: SimTime, bytes: u64, probe: bool) -> bool {
        self.drain_to(now);
        let accepted = self.backlog_bytes + bytes as f64 <= self.capacity_bytes as f64;
        if probe {
            self.stats.probe_offered += 1;
            if !accepted {
                self.stats.probe_dropped += 1;
            }
        } else {
            self.stats.cross_offered += 1;
            if !accepted {
                self.stats.cross_dropped += 1;
            }
        }
        if accepted {
            self.backlog_bytes += bytes as f64;
        }
        accepted
    }

    /// Current backlog in bytes (after draining to `now`).
    pub fn backlog(&mut self, now: SimTime) -> f64 {
        self.drain_to(now);
        self.backlog_bytes
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

/// Configuration of a bursty on/off cross-traffic source.
#[derive(Clone, Debug)]
pub struct OnOffConfig {
    /// Sending rate while ON, bits per second.
    pub on_rate_bps: f64,
    /// Packet size in bytes.
    pub packet_bytes: u64,
    /// Mean duration of an ON burst (exponential).
    pub mean_on: SimTime,
    /// Mean duration of an OFF gap (exponential).
    pub mean_off: SimTime,
    /// RNG seed.
    pub seed: u64,
}

/// Drives an on/off packet source into a [`BottleneckQueue`].
///
/// The source alternates between exponentially distributed ON bursts, during
/// which it offers packets at `on_rate_bps`, and OFF gaps. Scheduling is done
/// through the discrete-event engine; call [`start`](OnOffSource::start)
/// once and the source perpetuates itself until `stop_at`.
pub struct OnOffSource {
    cfg: OnOffConfig,
    rng: SmallRng,
    queue: Shared<BottleneckQueue>,
    stop_at: SimTime,
}

impl OnOffSource {
    /// Creates a source feeding `queue` until `stop_at`.
    pub fn new(cfg: OnOffConfig, queue: Shared<BottleneckQueue>, stop_at: SimTime) -> Shared<Self> {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        crate::engine::shared(OnOffSource {
            cfg,
            rng,
            queue,
            stop_at,
        })
    }

    fn exp_sample(rng: &mut SmallRng, mean: SimTime) -> SimTime {
        // Inverse-CDF exponential; guard the log argument away from 0.
        let u: f64 = rng.random::<f64>().max(1e-12);
        SimTime::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// Schedules the first burst. The source then re-schedules itself.
    pub fn start(this: &Shared<Self>, eng: &mut Engine) {
        let me = this.clone();
        let off = {
            let mut s = this.borrow_mut();
            let mean_off = s.cfg.mean_off;
            Self::exp_sample(&mut s.rng, mean_off)
        };
        eng.schedule_in(off, move |eng| Self::burst(&me, eng));
    }

    fn burst(this: &Shared<Self>, eng: &mut Engine) {
        let (on_len, gap, stop_at) = {
            let mut s = this.borrow_mut();
            let (mean_on, mean_off) = (s.cfg.mean_on, s.cfg.mean_off);
            (
                Self::exp_sample(&mut s.rng, mean_on),
                Self::exp_sample(&mut s.rng, mean_off),
                s.stop_at,
            )
        };
        if eng.now() >= stop_at {
            return;
        }
        // Offer the whole burst packet by packet at the ON rate: one
        // recurring walker event re-armed per packet instead of one boxed
        // closure per packet up front.
        let (pkt_bytes, inter) = {
            let s = this.borrow();
            let inter = tx_time(s.cfg.packet_bytes, s.cfg.on_rate_bps);
            (s.cfg.packet_bytes, inter)
        };
        let n_pkts = (on_len.as_picos() / inter.as_picos().max(1)).max(1);
        let me = this.clone();
        let mut left = n_pkts;
        eng.schedule_recurring_at(eng.now(), move |eng| {
            let s = me.borrow();
            s.queue.borrow_mut().offer(eng.now(), pkt_bytes, false);
            left -= 1;
            (left > 0).then(|| eng.now() + inter)
        });
        // Schedule the next burst after this one plus an OFF gap.
        let me = this.clone();
        eng.schedule_in(on_len + gap, move |eng| Self::burst(&me, eng));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::shared;

    #[test]
    fn queue_drains_at_configured_rate() {
        let mut q = BottleneckQueue::new(8e6, 1_000_000); // 1 MB/s drain
        assert!(q.offer(SimTime::ZERO, 500_000, true));
        // After 0.25 s, 250 kB drained.
        let b = q.backlog(SimTime::from_millis(250));
        assert!((b - 250_000.0).abs() < 1.0, "backlog {b}");
        // After another second it is empty.
        assert_eq!(q.backlog(SimTime::from_millis(1500)), 0.0);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut q = BottleneckQueue::new(8e6, 1000);
        assert!(q.offer(SimTime::ZERO, 800, true));
        assert!(!q.offer(SimTime::ZERO, 300, true), "would exceed capacity");
        assert!(q.offer(SimTime::ZERO, 200, true), "exactly fits");
        let s = q.stats();
        assert_eq!(s.probe_offered, 3);
        assert_eq!(s.probe_dropped, 1);
    }

    #[test]
    fn larger_packets_see_higher_drop_rates() {
        // The Figure 2 mechanism: with the queue hovering near full, a larger
        // packet is more likely not to fit.
        let drop_rate_for = |pkt: u64| {
            let mut q = BottleneckQueue::new(8e9, 64 * 1024); // 1 GB/s, 64 KiB buf
            let mut rng = SmallRng::seed_from_u64(5);
            let mut t = SimTime::ZERO;
            // Cross traffic keeps the queue ~80% full on average.
            for _ in 0..200_000 {
                t += SimTime::from_nanos(rng.random_range(400..1200));
                q.offer(t, 1500, false);
                if rng.random::<f64>() < 0.1 {
                    q.offer(t, pkt, true);
                }
            }
            q.stats().probe_drop_rate()
        };
        let small = drop_rate_for(1024);
        let large = drop_rate_for(8192);
        assert!(
            large > small,
            "large packets must drop more: {large} vs {small}"
        );
    }

    #[test]
    fn onoff_source_offers_packets() {
        let mut eng = Engine::new();
        let q = shared(BottleneckQueue::new(8e9, 1 << 20));
        let src = OnOffSource::new(
            OnOffConfig {
                on_rate_bps: 1e9,
                packet_bytes: 1500,
                mean_on: SimTime::from_micros(100),
                mean_off: SimTime::from_micros(100),
                seed: 21,
            },
            q.clone(),
            SimTime::from_millis(10),
        );
        OnOffSource::start(&src, &mut eng);
        eng.run_until(SimTime::from_millis(10));
        let offered = q.borrow().stats().cross_offered;
        assert!(offered > 100, "source generated only {offered} packets");
    }
}
