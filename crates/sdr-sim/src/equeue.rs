//! The engine's event queue: a hierarchical timing wheel (default) with a
//! kept binary-heap reference backend, over a shared slab of event nodes.
//!
//! # Why a wheel
//!
//! Every packet serialization, propagation arrival, protocol timer and
//! scheme tick in the workspace flows through this queue; at the paper's
//! scales (multi-hundred-Gbit/s goodput over 1000 km RTTs) a single figure
//! run executes tens of millions of events. The original engine kept a
//! `BinaryHeap<Box<dyn FnOnce>>`: every event paid an allocation, an
//! O(log n) sift against a loaded heap, and cancellation was impossible —
//! timer users compensated with generation counters whose stale events
//! still fired (and still counted against the event limit) as no-ops.
//!
//! The wheel replaces all of that:
//!
//! * **Slab nodes, free-listed** ([`TimerHandle`] = slot index +
//!   generation): steady-state scheduling allocates nothing; recurring
//!   events re-arm their own node in place, so tick loops and per-link
//!   drain pumps never re-box their closures.
//! * **O(1) amortized insert/pop**: an event at distance `d` from now sits
//!   at level `⌈log₆₄ d⌉` and is touched once per level as time advances
//!   toward it (at most [`LEVELS`] times ever).
//! * **Cancel / re-arm**: [`EventQueue::cancel`] drops the closure
//!   immediately and uncounts the event from `pending_events`; cancelled
//!   nodes are reaped lazily when their slot comes due, never execute, and
//!   never charge the event limit. [`EventQueue::reschedule`] moves a
//!   pending event to a new deadline in place. Slot lists are doubly
//!   linked (a separate `prev` array), so both operations unlink in O(1)
//!   regardless of slot occupancy.
//! * **Structure-of-arrays layout**: deadlines (`at`) and slot links
//!   (`link`) live in dense parallel arrays so the wheel's walk — slot
//!   appends, cascades, due-scans — stays within compact, mostly
//!   cache-resident arrays instead of dirtying a wide node record per
//!   hop; the wide record (closure, generation, sequence) is only touched
//!   when an event actually fires. (Measured on the loaded microbench:
//!   this split beats both the all-in-one node layout and a merged
//!   16-byte `{at, link}` record — the 4-byte link array is the single
//!   hottest structure and keeping it tiny keeps it in cache.)
//!
//! # Tick granularity and determinism
//!
//! The wheel ticks at exactly one **picosecond** — the engine's native
//! [`SimTime`] unit — so a level-0 slot holds events of a *single* instant
//! and slot order is insertion order. That choice is what makes the wheel
//! bit-compatible with the heap: execution order is exactly `(time, seq)`
//! where `seq` is the global schedule order, the same total order the heap
//! produces. Two facts keep same-time events FIFO across cascades:
//!
//! 1. For a given cursor position, a time `t` maps to exactly one
//!    `(level, slot)` — so all nodes of one instant are always in one
//!    list, appended in `seq` order.
//! 2. A slot is cascaded exactly when the cursor enters its window, and
//!    after that no insert can target it (an insert for a time inside the
//!    window now lands at a lower level). Cascades re-append in list
//!    order, preserving FIFO.
//!
//! With 64-slot levels over `u64` picoseconds, [`LEVELS`]` = 11` spans the
//! whole representable range (`64¹¹ = 2⁶⁶ ps ≈ 27 months`): the top level
//! *is* the far-future overflow level — `SimTime::MAX` "infinite"
//! deadlines park there and cost nothing until cancelled.
//!
//! # Backend selection
//!
//! `SDR_SIM_QUEUE=heap` selects the reference binary-heap backend
//! process-wide (`wheel` — the default — selects the wheel);
//! [`Engine::with_queue`](crate::Engine::with_queue) pins one engine
//! explicitly. Both backends share the slab, the sequence counter and the
//! cancel/re-arm semantics, and `tests/queue_differential.rs` proves they
//! execute identical `(time, seq)` orders over randomized
//! schedule/cancel/re-arm workloads.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use sdr_trace::Histogram;

use crate::engine::Engine;
use crate::time::SimTime;

/// Bits per wheel level (64 slots).
const BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << BITS;
/// Wheel levels; `64^11 = 2^66` ticks covers the entire `u64` time range,
/// so the top level doubles as the far-future overflow level.
const LEVELS: usize = 11;
/// Null link in the intrusive slot lists.
const NIL: u32 = u32::MAX;

/// Which queue implementation an engine runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueKind {
    /// The hierarchical timing wheel (default).
    Wheel,
    /// The binary-heap reference implementation (`SDR_SIM_QUEUE=heap`),
    /// kept for A/B differential testing.
    Heap,
}

/// A handle to a scheduled event, returned by the `schedule_*_handle`
/// methods on [`Engine`](crate::Engine). Handles are `Copy` and
/// generation-checked: once the event fires, is cancelled, or completes
/// its recurrence, the handle goes stale and `cancel`/`reschedule` on it
/// return `false`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerHandle {
    idx: u32,
    gen: u32,
}

/// An event body.
pub(crate) enum Body {
    /// Run once and free the node.
    Once(Box<dyn FnOnce(&mut Engine)>),
    /// Run, then re-arm the same node at the returned time (`None` frees
    /// it). The closure is boxed once and reused for the event's entire
    /// lifetime — the zero-allocation path for tick loops and pumps.
    Recurring(Box<dyn FnMut(&mut Engine) -> Option<SimTime>>),
    /// A shared callback (`Rc` clone per schedule, no fresh boxing) — the
    /// NIC wakers' deferral path.
    Shared(Rc<dyn Fn(&mut Engine)>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Free,
    Queued,
    /// Popped for execution; the body is with the dispatcher. A cancel in
    /// this window marks the node so a recurring body is not re-armed.
    Firing,
    /// Cancelled while queued: still linked (or heap-referenced), reaped
    /// lazily, never executed.
    Cancelled,
}

/// The cold per-node record: everything the wheel's walk does not need
/// until an event actually fires (plus the reschedule-only placement).
struct Node {
    gen: u32,
    state: State,
    /// Wheel placement, for eager unlink on reschedule.
    level: u8,
    slot: u8,
    /// Global schedule order (ties at equal `at` run FIFO by this).
    seq: u64,
    body: Option<Body>,
}

/// Max-heap entry inverted into a min-heap on `(at, seq)`; `idx` points
/// into the shared slab. Reschedules push a fresh entry and leave the old
/// one stale (detected by `seq` mismatch and skipped).
struct HeapEntry {
    at: u64,
    seq: u64,
    idx: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A slot's list endpoints, kept adjacent so an append touches one line.
#[derive(Clone, Copy)]
struct Ends {
    head: u32,
    tail: u32,
}

struct Wheel {
    /// The cursor: all queued events are at times `>= current`, and the
    /// engine's `now` is always `>= current` between operations.
    current: u64,
    slots: [Ends; LEVELS * SLOTS],
    /// Per-level slot occupancy bitmask.
    occ: [u64; LEVELS],
}

impl Wheel {
    fn new() -> Self {
        Wheel {
            current: 0,
            slots: [Ends {
                head: NIL,
                tail: NIL,
            }; LEVELS * SLOTS],
            occ: [0; LEVELS],
        }
    }

    /// The `(level, slot)` an event at absolute tick `t` belongs to, given
    /// the current cursor: the level of the highest bit where `t` and the
    /// cursor differ.
    #[inline]
    fn place(&self, t: u64) -> (usize, usize) {
        let x = t ^ self.current;
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / BITS) as usize
        };
        let slot = ((t >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }
}

enum Backend {
    // Boxed: the wheel's slot table is ~5.7 KiB and engines move by value.
    Wheel(Box<Wheel>),
    Heap(BinaryHeap<HeapEntry>),
}

/// The engine's event queue: shared node slab + selected backend. Hot
/// per-node fields (`at`, `link`) are parallel arrays — see the module
/// docs.
pub(crate) struct EventQueue {
    /// Absolute deadline per node, in picoseconds.
    at: Vec<u64>,
    /// Intrusive slot-list forward link per node (also threads the free
    /// list).
    link: Vec<u32>,
    /// Intrusive slot-list back link per node: slot lists are doubly
    /// linked so `cancel`/`reschedule` unlink in O(1) instead of walking
    /// the slot (restart storms re-arm many RTOs against dense slots).
    /// Kept as its own array so the hot forward walk (`link`) stays tiny.
    prev: Vec<u32>,
    nodes: Vec<Node>,
    free_head: u32,
    /// Queued, not-cancelled events (what `pending_events` reports).
    live: usize,
    seq: u64,
    backend: Backend,
    /// Level of each wheel cascade (`engine.cascade_depth`): how far up
    /// the hierarchy the due-scan had to reach. Bound by the engine at
    /// construction; recording is kill-switch gated inside `sdr-trace`.
    cascade: Option<Histogram>,
}

impl EventQueue {
    pub(crate) fn new(kind: QueueKind) -> Self {
        EventQueue {
            at: Vec::new(),
            link: Vec::new(),
            prev: Vec::new(),
            nodes: Vec::new(),
            free_head: NIL,
            live: 0,
            seq: 0,
            backend: match kind {
                QueueKind::Wheel => Backend::Wheel(Box::new(Wheel::new())),
                QueueKind::Heap => Backend::Heap(BinaryHeap::new()),
            },
            cascade: None,
        }
    }

    /// Binds the cascade-depth histogram (wheel backend only; the heap
    /// never cascades and records nothing).
    pub(crate) fn set_cascade_hist(&mut self, h: Histogram) {
        self.cascade = Some(h);
    }

    pub(crate) fn kind(&self) -> QueueKind {
        match self.backend {
            Backend::Wheel(_) => QueueKind::Wheel,
            Backend::Heap(_) => QueueKind::Heap,
        }
    }

    pub(crate) fn pending(&self) -> usize {
        self.live
    }

    fn alloc(&mut self, at: u64, seq: u64, body: Body) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.link[idx as usize];
            self.at[idx as usize] = at;
            self.link[idx as usize] = NIL;
            self.prev[idx as usize] = NIL;
            let n = &mut self.nodes[idx as usize];
            n.state = State::Queued;
            n.seq = seq;
            n.body = Some(body);
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.at.push(at);
            self.link.push(NIL);
            self.prev.push(NIL);
            self.nodes.push(Node {
                gen: 0,
                state: State::Queued,
                level: 0,
                slot: 0,
                seq,
                body: Some(body),
            });
            idx
        }
    }

    /// Returns the node to the free list and bumps its generation so every
    /// outstanding handle goes stale.
    fn free(&mut self, idx: u32) {
        let n = &mut self.nodes[idx as usize];
        n.gen = n.gen.wrapping_add(1);
        n.state = State::Free;
        n.body = None;
        self.link[idx as usize] = self.free_head;
        self.free_head = idx;
    }

    /// Appends node `idx` to its backend position for `at[idx]`.
    fn insert(&mut self, idx: u32) {
        match &mut self.backend {
            Backend::Wheel(w) => {
                let t = self.at[idx as usize];
                debug_assert!(
                    t >= w.current,
                    "insert into the past: t={} current={}",
                    t,
                    w.current
                );
                let (level, slot) = w.place(t);
                let s = level * SLOTS + slot;
                {
                    let n = &mut self.nodes[idx as usize];
                    n.level = level as u8;
                    n.slot = slot as u8;
                }
                // SAFETY: `s < LEVELS * SLOTS` (level < LEVELS from
                // `place`, slot < SLOTS by masking); idx and a non-NIL
                // tail are live slab indices (direct field access: a
                // method call here would re-borrow all of self while the
                // wheel is mutably borrowed).
                unsafe {
                    let ends = w.slots.get_unchecked_mut(s);
                    let tail = ends.tail;
                    ends.tail = idx;
                    if tail == NIL {
                        ends.head = idx;
                    } else {
                        *self.link.get_unchecked_mut(tail as usize) = idx;
                    }
                    *self.link.get_unchecked_mut(idx as usize) = NIL;
                    *self.prev.get_unchecked_mut(idx as usize) = tail;
                }
                w.occ[level] |= 1u64 << slot;
            }
            Backend::Heap(h) => {
                h.push(HeapEntry {
                    at: self.at[idx as usize],
                    seq: self.nodes[idx as usize].seq,
                    idx,
                });
            }
        }
    }

    /// Schedules `body` at absolute tick `at`; the caller has already
    /// clamped `at` to be `>=` the engine's now.
    pub(crate) fn schedule(&mut self, at: u64, body: Body) -> TimerHandle {
        self.seq += 1;
        let seq = self.seq;
        let idx = self.alloc(at, seq, body);
        self.insert(idx);
        self.live += 1;
        TimerHandle {
            idx,
            gen: self.nodes[idx as usize].gen,
        }
    }

    /// Cancels a pending (or currently-firing) event. The closure is
    /// dropped immediately, the event will never execute, and it stops
    /// counting as pending or against the event limit. Returns `false`
    /// for stale handles.
    ///
    /// On the wheel backend a queued node is unlinked and freed eagerly:
    /// leaving it in its slot as a tombstone would let a cascade jump the
    /// cursor to the *cancelled* node's deadline, stranding the cursor
    /// ahead of the engine clock when the queue then drains (a later
    /// `schedule` at `now + d` would insert "into the past"). The heap
    /// backend keeps lazy reaping (entries can't be removed mid-heap).
    pub(crate) fn cancel(&mut self, h: TimerHandle) -> bool {
        let Some(n) = self.nodes.get(h.idx as usize) else {
            return false;
        };
        if n.gen != h.gen {
            return false;
        }
        match n.state {
            State::Queued => {
                if let Backend::Wheel(_) = self.backend {
                    self.unlink(h.idx);
                    self.free(h.idx);
                } else {
                    let n = &mut self.nodes[h.idx as usize];
                    n.state = State::Cancelled;
                    n.body = None;
                }
                self.live -= 1;
                true
            }
            // The body is out with the dispatcher (a recurring event
            // cancelling itself, or an event cancelling the one being
            // fired): mark it so it is freed instead of re-armed.
            State::Firing => {
                self.nodes[h.idx as usize].state = State::Cancelled;
                true
            }
            State::Free | State::Cancelled => false,
        }
    }

    /// Moves a pending event to a new deadline (eagerly re-placed, fresh
    /// FIFO rank). Returns `false` for stale handles and for events
    /// currently firing (a recurring body re-arms itself via its return
    /// value instead).
    pub(crate) fn reschedule(&mut self, h: TimerHandle, at: u64) -> bool {
        let Some(n) = self.nodes.get(h.idx as usize) else {
            return false;
        };
        if n.gen != h.gen || n.state != State::Queued {
            return false;
        }
        if let Backend::Wheel(_) = self.backend {
            self.unlink(h.idx);
        }
        self.seq += 1;
        self.at[h.idx as usize] = at;
        self.nodes[h.idx as usize].seq = self.seq;
        self.insert(h.idx);
        // Heap: the old entry is now stale (seq mismatch) and is skipped
        // at pop; `insert` pushed the live one.
        true
    }

    /// True while the handle refers to a pending (not yet fired, not
    /// cancelled) event.
    pub(crate) fn is_scheduled(&self, h: TimerHandle) -> bool {
        self.nodes
            .get(h.idx as usize)
            .is_some_and(|n| n.gen == h.gen && n.state == State::Queued)
    }

    /// Unlinks a queued node from its wheel slot list in O(1) via the
    /// doubly-linked `prev`/`link` pair.
    fn unlink(&mut self, idx: u32) {
        let (level, slot) = {
            let n = &self.nodes[idx as usize];
            (n.level as usize, n.slot as usize)
        };
        let Backend::Wheel(w) = &mut self.backend else {
            unreachable!("unlink is wheel-only");
        };
        let s = level * SLOTS + slot;
        let p = self.prev[idx as usize];
        let n = self.link[idx as usize];
        if p == NIL {
            debug_assert_eq!(w.slots[s].head, idx, "headless node thinks it is head");
            w.slots[s].head = n;
        } else {
            self.link[p as usize] = n;
        }
        if n == NIL {
            debug_assert_eq!(w.slots[s].tail, idx, "tailless node thinks it is tail");
            w.slots[s].tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        if w.slots[s].head == NIL {
            w.occ[level] &= !(1u64 << slot);
        }
        self.link[idx as usize] = NIL;
        self.prev[idx as usize] = NIL;
    }

    /// Pops the next due event with `at <= bound`, reaping cancelled nodes
    /// along the way. The returned node is left in `Firing` state with its
    /// body still attached (take it with [`begin_fire`](Self::begin_fire)).
    pub(crate) fn pop_due(&mut self, bound: u64) -> Option<u32> {
        match &self.backend {
            Backend::Wheel(_) => self.pop_due_wheel(bound),
            Backend::Heap(_) => self.pop_due_heap(bound),
        }
    }

    fn pop_due_wheel(&mut self, bound: u64) -> Option<u32> {
        loop {
            let Backend::Wheel(w) = &mut self.backend else {
                unreachable!()
            };
            // Level 0: exact instants. Slots below the cursor's index
            // cannot be occupied (nothing schedules into the past).
            let idx0 = (w.current & (SLOTS as u64 - 1)) as usize;
            let m0 = w.occ[0] & (!0u64 << idx0);
            debug_assert_eq!(w.occ[0] & !(!0u64 << idx0), 0, "event in the past");
            if m0 != 0 {
                let slot = m0.trailing_zeros() as usize;
                let t = (w.current & !(SLOTS as u64 - 1)) | slot as u64;
                if t > bound {
                    return None;
                }
                // SAFETY: `slot < SLOTS` (bit index of a 64-bit mask);
                // the head of an occupied slot is a live slab index.
                let idx;
                unsafe {
                    let ends = w.slots.get_unchecked_mut(slot);
                    idx = ends.head;
                    debug_assert_ne!(idx, NIL);
                    debug_assert_eq!(*self.at.get_unchecked(idx as usize), t);
                    // Unlink the head.
                    let next = *self.link.get_unchecked(idx as usize);
                    ends.head = next;
                    if next == NIL {
                        ends.tail = NIL;
                        w.occ[0] &= !(1u64 << slot);
                    } else {
                        *self.prev.get_unchecked_mut(next as usize) = NIL;
                    }
                }
                w.current = t;
                match self.nodes[idx as usize].state {
                    State::Cancelled => {
                        self.free(idx);
                        continue;
                    }
                    State::Queued => {
                        self.nodes[idx as usize].state = State::Firing;
                        self.live -= 1;
                        return Some(idx);
                    }
                    State::Free | State::Firing => unreachable!("linked node in bad state"),
                }
            }
            // Higher levels: find the earliest occupied slot and cascade
            // it. The slot holding the cursor itself is always empty (it
            // was cascaded when the cursor entered it).
            let mut cascaded = false;
            for level in 1..LEVELS {
                let il = ((w.current >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                let m = w.occ[level] & (!0u64 << il);
                debug_assert_eq!(w.occ[level] & !(!0u64 << il), 0, "event in the past");
                if m == 0 {
                    continue;
                }
                let slot = m.trailing_zeros() as usize;
                debug_assert_ne!(slot, il, "cursor slot must have been cascaded");
                // Start of the found slot's window.
                let shift = BITS * (level as u32 + 1);
                let base = if shift >= 64 {
                    0
                } else {
                    (w.current >> shift) << shift
                };
                let slot_start = base | ((slot as u64) << (BITS * level as u32));
                if slot_start > bound {
                    // Everything left is strictly later than the bound;
                    // leave the cursor untouched (it must stay <= the
                    // engine's now so later inserts place correctly).
                    return None;
                }
                let s = level * SLOTS + slot;
                // For *small* slots, jump the cursor to the slot's
                // earliest deadline instead of the window start: every
                // other pending event (in this slot or any later one) is
                // `>= t_min`, so the jump is safe — and it lets a sparse
                // event skip the intermediate levels entirely (one
                // cascade instead of one per level), keeping small idle
                // simulations as cheap as they were on the heap. Big
                // slots (the loaded regime) skip the extra deadline walk:
                // their density makes window-start cascades efficient
                // already, and the pre-pass would double the cold misses.
                const JUMP_WALK_CAP: u32 = 4;
                let mut t_min = u64::MAX;
                let mut walked = 0u32;
                let mut cur = w.slots[s].head;
                while cur != NIL && walked < JUMP_WALK_CAP {
                    // SAFETY: slot lists hold live slab indices; cancelled
                    // nodes are unlinked eagerly, so every deadline seen
                    // here belongs to an event that will actually fire
                    // (the jump target is always reconciled by a pop).
                    unsafe {
                        t_min = t_min.min(*self.at.get_unchecked(cur as usize));
                        cur = *self.link.get_unchecked(cur as usize);
                    }
                    walked += 1;
                }
                let jump = if cur == NIL { t_min } else { slot_start };
                debug_assert!(jump >= slot_start);
                if jump > bound {
                    return None;
                }
                // Redistribute the slot's nodes to lower levels,
                // preserving order.
                w.current = jump;
                let mut cur = w.slots[s].head;
                w.slots[s] = Ends {
                    head: NIL,
                    tail: NIL,
                };
                w.occ[level] &= !(1u64 << slot);
                while cur != NIL {
                    // SAFETY: slot lists hold live slab indices.
                    let next = unsafe { *self.link.get_unchecked(cur as usize) };
                    match self.nodes[cur as usize].state {
                        State::Cancelled => self.free(cur),
                        State::Queued => self.insert(cur),
                        State::Free | State::Firing => {
                            unreachable!("linked node in bad state")
                        }
                    }
                    cur = next;
                }
                if let Some(h) = &self.cascade {
                    h.record(level as u64);
                }
                cascaded = true;
                break;
            }
            if !cascaded {
                return None; // queue empty
            }
        }
    }

    fn pop_due_heap(&mut self, bound: u64) -> Option<u32> {
        loop {
            let Backend::Heap(h) = &mut self.backend else {
                unreachable!()
            };
            let e = h.peek()?;
            let idx = e.idx;
            let (eat, eseq) = (e.at, e.seq);
            let placed = self.at[idx as usize] == eat && self.nodes[idx as usize].seq == eseq;
            let state = self.nodes[idx as usize].state;
            let is_live = state == State::Queued && placed;
            let is_cancelled_live = state == State::Cancelled && placed;
            if is_live {
                if eat > bound {
                    return None;
                }
                h.pop();
                self.nodes[idx as usize].state = State::Firing;
                self.live -= 1;
                return Some(idx);
            }
            h.pop();
            if is_cancelled_live {
                // The entry matching the node's last placement: reap it.
                self.free(idx);
            }
            // Otherwise a stale entry from a reschedule: drop it.
        }
    }

    /// Takes the popped node's deadline and body for execution.
    pub(crate) fn begin_fire(&mut self, idx: u32) -> (u64, Body) {
        let at = self.at[idx as usize];
        let n = &mut self.nodes[idx as usize];
        debug_assert_eq!(n.state, State::Firing);
        (at, n.body.take().expect("firing node has a body"))
    }

    /// Frees a one-shot node after its body was taken (before running it,
    /// so self-cancels from within the body see a stale handle).
    pub(crate) fn free_fired(&mut self, idx: u32) {
        debug_assert_eq!(self.nodes[idx as usize].state, State::Firing);
        self.free(idx);
    }

    /// Finishes a recurring fire: re-arms the node at `next` (unless the
    /// body asked to stop or the event was cancelled mid-fire).
    pub(crate) fn end_recurring(&mut self, idx: u32, next: Option<u64>, body: Body) {
        let state = self.nodes[idx as usize].state;
        match (state, next) {
            (State::Firing, Some(at)) => {
                self.seq += 1;
                let seq = self.seq;
                self.at[idx as usize] = at;
                let n = &mut self.nodes[idx as usize];
                n.state = State::Queued;
                n.seq = seq;
                n.body = Some(body);
                self.live += 1;
                self.insert(idx);
            }
            (State::Firing, None) | (State::Cancelled, _) => self.free(idx),
            (s, _) => unreachable!("recurring end in state {s:?}"),
        }
    }
}
