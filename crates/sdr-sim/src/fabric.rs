//! The fabric ties nodes together with links and implements the send-side
//! NIC datapath (fragmentation, serialization, send completions).
//!
//! Delivery pumps: each link files every serialized packet into its own
//! arrival-ordered queue ([`Link::enqueue`]) and the fabric keeps **one**
//! recurring drain event per busy link ([`Fabric::arm_pump`]) that walks
//! the queue at each arrival instant and re-arms itself in place — the
//! zero-allocation replacement for the old one-boxed-closure-per-packet
//! scheme. Packet fates are drawn by the loss process **at delivery
//! time**, inside the pump's [`Link::pop_due`] walk: a loss step, blackout
//! or flap applied mid-simulation (directly via
//! [`set_link_loss`](Fabric::set_link_loss) /
//! [`set_link_down`](Fabric::set_link_down), or scripted via
//! [`apply_fault_plan`](Fabric::apply_fault_plan)) claims packets that
//! were already in flight when it landed.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;
use sdr_trace::{EventKind, FlightRecorder, Registry};

use crate::engine::Engine;
use crate::equeue::TimerHandle;
use crate::fault::{FaultEvent, FaultHandle, FaultPlan, RestartSide};
use crate::link::{Link, LinkConfig, LinkStats, TxOutcome};
use crate::loss::LossModel;
use crate::nic::{Cqe, CqeOp, Node, QpType};
use crate::packet::{MkeyId, NodeId, Packet, PacketKind, QpAddr, WriteSeg};
use crate::time::SimTime;

/// Errors returned when posting work requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PostError {
    /// The QP has no connected peer.
    NotConnected,
    /// No link exists between the two nodes.
    NoLink,
    /// The operation is not valid on this QP type.
    WrongQpType,
    /// A UD payload exceeded the link MTU.
    PayloadTooLarge,
}

/// An RDMA Write work request.
#[derive(Clone, Debug)]
pub struct WriteWr {
    /// Remote memory key to target.
    pub remote_mkey: MkeyId,
    /// Byte offset within the remote key's range.
    pub remote_offset: u64,
    /// Payload.
    pub data: Bytes,
    /// Immediate data delivered with the last packet.
    pub imm: Option<u32>,
    /// Payload checksum (CRC32C over `data`), delivered with the
    /// completing packet's CQE exactly like `imm`. Modeled as transport-
    /// header content: wire payload corruption does not perturb it.
    pub crc: Option<u32>,
    /// User cookie echoed in the send completion.
    pub wr_id: u64,
    /// Whether to generate a send completion.
    pub signaled: bool,
}

struct FabricInner {
    nodes: Vec<Node>,
    links: HashMap<(NodeId, NodeId), Link>,
    /// Per-node restart epoch: bumped on every [`Fabric::restart_node`].
    incarnations: Vec<u32>,
    /// Per-node attach flag: while `false` (the restart dead window),
    /// packets reaching the node are dropped at the port.
    attached: Vec<bool>,
    /// Packets dropped at a detached node's port.
    restart_drops: Vec<u64>,
}

/// A restart observer: called at the crash instant (after the node's
/// volatile state is gone) with the node's new incarnation, so the layer
/// above can tear down transfers and re-stamp its control plane.
type RestartHook = Box<dyn FnMut(&mut Engine, u32)>;

/// A shared handle to the simulated fabric.
///
/// Cloning is cheap (reference counted); all methods re-borrow internally so
/// handles can be captured by event closures.
#[derive(Clone)]
pub struct Fabric {
    inner: Rc<RefCell<FabricInner>>,
    /// Restart observers, outside `inner` so a hook can re-enter the
    /// fabric freely.
    restart_hooks: Rc<RefCell<HashMap<NodeId, RestartHook>>>,
    /// Stack-wide metrics registry (`link.*` wire counters here; the
    /// layers above register their own `ctrl.*`/`flow.*`/… families).
    metrics: Registry,
    /// One flight recorder per node, created in [`add_node`](Self::add_node);
    /// every layer on that node records into the same ring.
    recorders: Rc<RefCell<Vec<FlightRecorder>>>,
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

/// What [`Fabric::arm_pump`] decided under the borrow.
enum PumpAct {
    Nothing,
    New(SimTime),
    Retarget(TimerHandle, SimTime),
}

/// Events each node's flight recorder retains (the forensic window).
const RECORDER_CAPACITY: usize = 1024;

impl Fabric {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Fabric {
            inner: Rc::new(RefCell::new(FabricInner {
                nodes: Vec::new(),
                links: HashMap::new(),
                incarnations: Vec::new(),
                attached: Vec::new(),
                restart_drops: Vec::new(),
            })),
            restart_hooks: Rc::new(RefCell::new(HashMap::new())),
            metrics: Registry::new(),
            recorders: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// The fabric's metrics registry: `link.*` wire counters live here,
    /// and the reliability layers register their own families into it so
    /// one snapshot covers the whole stack.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The flight recorder of `id` (a cheap shared handle). Every layer
    /// running on that node records into the same fixed-capacity ring.
    pub fn recorder(&self, id: NodeId) -> FlightRecorder {
        self.recorders.borrow()[id.0 as usize].clone()
    }

    /// Adds a node with `mem_capacity` bytes of memory.
    pub fn add_node(&self, mem_capacity: usize) -> NodeId {
        let mut inner = self.inner.borrow_mut();
        let id = NodeId(inner.nodes.len() as u32);
        inner.nodes.push(Node::new(id, mem_capacity));
        inner.incarnations.push(0);
        inner.attached.push(true);
        inner.restart_drops.push(0);
        self.recorders
            .borrow_mut()
            .push(FlightRecorder::new(RECORDER_CAPACITY));
        id
    }

    /// Crashes and restarts an endpoint: the node's incarnation is bumped,
    /// all its volatile NIC state (posted receives, inboxes, unpolled
    /// completions, reassembly) is dropped, and the NIC stays detached —
    /// packets reaching the port, including everything in flight toward
    /// it, die there — until `dead_time` later. Registered memory
    /// survives, as does anything the layer above checkpointed.
    ///
    /// A hook registered via [`on_restart`](Self::on_restart) runs at the
    /// crash instant, after the state is gone, with the new incarnation.
    pub fn restart_node(&self, eng: &mut Engine, id: NodeId, dead_time: SimTime) {
        let idx = id.0 as usize;
        {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            inner.incarnations[idx] += 1;
            inner.attached[idx] = false;
            inner.nodes[idx].reset_volatile();
            let rec = &self.recorders.borrow()[idx];
            let now = eng.now().as_picos();
            rec.record(now, EventKind::FaultRestart, id.0 as u64, dead_time.0);
            rec.record(
                now,
                EventKind::Incarnation,
                id.0 as u64,
                inner.incarnations[idx] as u64,
            );
        }
        let fab = self.clone();
        eng.schedule_in(dead_time, move |_| {
            fab.inner.borrow_mut().attached[idx] = true;
        });
        // Take the hook out while it runs so it can re-enter the fabric
        // (and even re-register itself).
        let hook = self.restart_hooks.borrow_mut().remove(&id);
        if let Some(mut h) = hook {
            let inc = self.inner.borrow().incarnations[idx];
            h(eng, inc);
            self.restart_hooks.borrow_mut().entry(id).or_insert(h);
        }
    }

    /// Registers (or replaces) the restart observer for `id` — see
    /// [`restart_node`](Self::restart_node).
    pub fn on_restart(&self, id: NodeId, hook: impl FnMut(&mut Engine, u32) + 'static) {
        self.restart_hooks.borrow_mut().insert(id, Box::new(hook));
    }

    /// The node's restart epoch (0 until its first restart).
    pub fn node_incarnation(&self, id: NodeId) -> u32 {
        self.inner.borrow().incarnations[id.0 as usize]
    }

    /// False while the node is inside a restart dead window.
    pub fn is_attached(&self, id: NodeId) -> bool {
        self.inner.borrow().attached[id.0 as usize]
    }

    /// Packets that died at the node's port while it was detached.
    pub fn restart_drops(&self, id: NodeId) -> u64 {
        self.inner.borrow().restart_drops[id.0 as usize]
    }

    /// Installs a unidirectional link `a → b`, returning `Err` (and
    /// installing nothing) when the configuration is invalid — a loss
    /// probability outside `[0, 1]`, or zero paths.
    pub fn try_link(&self, a: NodeId, b: NodeId, cfg: LinkConfig) -> Result<(), String> {
        let mut link = Link::try_new(cfg)?;
        link.bind_metrics(&self.metrics);
        self.inner.borrow_mut().links.insert((a, b), link);
        Ok(())
    }

    /// Installs a symmetric pair of links between `a` and `b`, giving the
    /// reverse direction an independent loss/jitter seed. Returns `Err`
    /// (installing neither direction) on an invalid configuration.
    pub fn try_link_duplex(&self, a: NodeId, b: NodeId, cfg: LinkConfig) -> Result<(), String> {
        cfg.loss.validate()?;
        let mut rev = cfg.clone();
        rev.seed = cfg.seed.wrapping_add(0x5EED_0001);
        self.try_link(a, b, cfg)?;
        self.try_link(b, a, rev)
    }

    /// Installs a unidirectional link `a → b`.
    ///
    /// # Panics
    /// Panics on an invalid configuration; use
    /// [`try_link`](Self::try_link) for a recoverable error.
    pub fn link(&self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        self.try_link(a, b, cfg)
            .expect("invalid link configuration");
    }

    /// Installs a symmetric pair of links between `a` and `b`, giving the
    /// reverse direction an independent loss/jitter seed.
    ///
    /// # Panics
    /// Panics on an invalid configuration; use
    /// [`try_link_duplex`](Self::try_link_duplex) for a recoverable error.
    pub fn link_duplex(&self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        self.try_link_duplex(a, b, cfg)
            .expect("invalid link configuration");
    }

    /// Runs `f` with shared access to a node.
    pub fn node<R>(&self, id: NodeId, f: impl FnOnce(&Node) -> R) -> R {
        f(&self.inner.borrow().nodes[id.0 as usize])
    }

    /// Runs `f` with exclusive access to a node.
    pub fn node_mut<R>(&self, id: NodeId, f: impl FnOnce(&mut Node) -> R) -> R {
        f(&mut self.inner.borrow_mut().nodes[id.0 as usize])
    }

    /// MTU of the link `src → dst`.
    pub fn mtu(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        self.inner
            .borrow()
            .links
            .get(&(src, dst))
            .map(|l| l.config().mtu)
    }

    /// Round-trip propagation delay between two nodes (sum of both one-way
    /// link delays), ignoring serialization.
    pub fn rtt(&self, a: NodeId, b: NodeId) -> Option<SimTime> {
        let inner = self.inner.borrow();
        let ab = inner.links.get(&(a, b))?.config().one_way_delay;
        let ba = inner.links.get(&(b, a))?.config().one_way_delay;
        Some(ab + ba)
    }

    /// Statistics of the link `a → b`.
    pub fn link_stats(&self, a: NodeId, b: NodeId) -> Option<LinkStats> {
        self.inner.borrow().links.get(&(a, b)).map(|l| l.stats())
    }

    /// Instant at which every serialization path of the link `a → b` is idle
    /// again — i.e. when everything already enqueued (data, control
    /// datagrams, retransmissions alike) will have left the wire. Senders
    /// that arbitrate a shared link use this cursor to pace injection: keep
    /// the wire busy up to a small horizon ahead of now, no further, so
    /// per-flow scheduling decisions stay late-bound instead of being baked
    /// into a deep device queue.
    pub fn tx_busy_until(&self, a: NodeId, b: NodeId) -> Option<SimTime> {
        self.inner
            .borrow()
            .links
            .get(&(a, b))
            .map(|l| l.all_paths_free())
    }

    /// Number of packets currently queued or in flight on the link `a → b`.
    pub fn tx_in_flight(&self, a: NodeId, b: NodeId) -> Option<usize> {
        self.inner
            .borrow()
            .links
            .get(&(a, b))
            .map(|l| l.in_flight())
    }

    /// Replaces the loss model of the link `a → b` mid-simulation. Returns
    /// `false` when no such link exists. Schedule this from an engine event
    /// to model loss steps (a congestion episode starting or clearing).
    pub fn set_link_loss(&self, a: NodeId, b: NodeId, model: LossModel) -> bool {
        match self.inner.borrow_mut().links.get_mut(&(a, b)) {
            Some(link) => {
                link.set_loss(model);
                true
            }
            None => false,
        }
    }

    /// Replaces the loss model in both directions between `a` and `b`.
    pub fn set_loss_duplex(&self, a: NodeId, b: NodeId, model: LossModel) -> bool {
        let ab = self.set_link_loss(a, b, model.clone());
        let ba = self.set_link_loss(b, a, model);
        ab && ba
    }

    /// Replaces the corruption parameters of the link `a → b`
    /// mid-simulation (see [`Link::set_corruption`]). Fate is drawn at
    /// delivery time, so the new rate also claims packets already in
    /// flight. Returns `false` when no such link exists.
    pub fn set_link_corruption(&self, a: NodeId, b: NodeId, p: f64, max_run: u32) -> bool {
        match self.inner.borrow_mut().links.get_mut(&(a, b)) {
            Some(link) => {
                link.set_corruption(p, max_run);
                true
            }
            None => false,
        }
    }

    /// Replaces the corruption parameters in both directions between `a`
    /// and `b`.
    pub fn set_corruption_duplex(&self, a: NodeId, b: NodeId, p: f64, max_run: u32) -> bool {
        let ab = self.set_link_corruption(a, b, p, max_run);
        let ba = self.set_link_corruption(b, a, p, max_run);
        ab && ba
    }

    /// Raises or clears the hard-blackout flag on the link `a → b` (see
    /// [`Link::set_down`]). Returns `false` when no such link exists.
    pub fn set_link_down(&self, a: NodeId, b: NodeId, down: bool) -> bool {
        match self.inner.borrow_mut().links.get_mut(&(a, b)) {
            Some(link) => {
                link.set_down(down);
                true
            }
            None => false,
        }
    }

    /// Raises or clears the hard-blackout flag in both directions.
    pub fn set_down_duplex(&self, a: NodeId, b: NodeId, down: bool) -> bool {
        let ab = self.set_link_down(a, b, down);
        let ba = self.set_link_down(b, a, down);
        ab && ba
    }

    /// Applies `model` to `a → b`, and to `b → a` too when `duplex`.
    fn fault_set_loss(&self, a: NodeId, b: NodeId, duplex: bool, model: LossModel) {
        self.set_link_loss(a, b, model.clone());
        if duplex {
            self.set_link_loss(b, a, model);
        }
    }

    /// Sets the down flag on `a → b`, and on `b → a` too when `duplex`.
    fn fault_set_down(&self, a: NodeId, b: NodeId, duplex: bool, down: bool) {
        self.set_link_down(a, b, down);
        if duplex {
            self.set_link_down(b, a, down);
        }
    }

    /// Records a fault-injection event into both endpoints' recorders —
    /// a link fault is observable (and forensically relevant) from either
    /// side.
    fn record_fault(&self, at: SimTime, a: NodeId, b: NodeId, kind: EventKind, pa: u64, pb: u64) {
        let recs = self.recorders.borrow();
        for id in [a, b] {
            if let Some(r) = recs.get(id.0 as usize) {
                r.record(at.as_picos(), kind, pa, pb);
            }
        }
    }

    /// Schedules a [`FaultPlan`] against the link `a → b` (both directions
    /// when the plan is duplex). Each event rides one cancellable engine
    /// timer — a multi-phase event (blackout heal, flap cycles, drift
    /// steps) re-arms its own timer in place, so the returned
    /// [`FaultHandle`] can cancel the whole script at any point. Plans are
    /// finite: once every event has played out, no timers remain.
    ///
    /// Returns `Err` without scheduling anything when the plan fails
    /// [`FaultPlan::validate`].
    pub fn apply_fault_plan(
        &self,
        eng: &mut Engine,
        a: NodeId,
        b: NodeId,
        plan: &FaultPlan,
    ) -> Result<FaultHandle, String> {
        plan.validate()?;
        let duplex = plan.duplex;
        let mut handle = FaultHandle::default();
        for ev in plan.events.iter().cloned() {
            let fab = self.clone();
            let h = match ev {
                FaultEvent::SetLoss { at, model } => eng.schedule_recurring_at(at, move |eng| {
                    fab.record_fault(eng.now(), a, b, EventKind::FaultLoss, 0, 0);
                    fab.fault_set_loss(a, b, duplex, model.clone());
                    None
                }),
                FaultEvent::Blackout { at, duration } => {
                    let mut healed = false;
                    eng.schedule_recurring_at(at, move |eng| {
                        if healed {
                            fab.record_fault(
                                eng.now(),
                                a,
                                b,
                                EventKind::FaultBlackout,
                                0,
                                duration.0,
                            );
                            fab.fault_set_down(a, b, duplex, false);
                            None
                        } else {
                            healed = true;
                            fab.record_fault(
                                eng.now(),
                                a,
                                b,
                                EventKind::FaultBlackout,
                                1,
                                duration.0,
                            );
                            fab.fault_set_down(a, b, duplex, true);
                            Some(eng.now().saturating_add(duration))
                        }
                    })
                }
                FaultEvent::Flap {
                    at,
                    cycles,
                    down,
                    up,
                } => {
                    let total = 2 * cycles;
                    let mut fired = 0u32;
                    eng.schedule_recurring_at(at, move |eng| {
                        let going_down = fired.is_multiple_of(2);
                        fab.record_fault(
                            eng.now(),
                            a,
                            b,
                            EventKind::FaultFlap,
                            going_down as u64,
                            (total - fired) as u64 / 2,
                        );
                        fab.fault_set_down(a, b, duplex, going_down);
                        fired += 1;
                        if fired >= total {
                            // The last firing is always an "up": the link
                            // is left healed.
                            None
                        } else {
                            let dwell = if going_down { down } else { up };
                            Some(eng.now().saturating_add(dwell))
                        }
                    })
                }
                FaultEvent::PeerRestart {
                    at,
                    side,
                    dead_time,
                } => {
                    let node = match side {
                        RestartSide::A => a,
                        RestartSide::B => b,
                    };
                    eng.schedule_recurring_at(at, move |eng| {
                        fab.restart_node(eng, node, dead_time);
                        None
                    })
                }
                FaultEvent::Drift {
                    at,
                    period,
                    steps,
                    floor_p,
                    peak_p,
                    cycles,
                } => {
                    let total = steps * cycles;
                    let step_dt = period / steps as u64;
                    let mut fired = 0u32;
                    eng.schedule_recurring_at(at, move |eng| {
                        // Triangular sweep in log space: floor → peak →
                        // floor across each period.
                        let phase = (fired % steps) as f64 / steps as f64;
                        let tri = 1.0 - (2.0 * phase - 1.0).abs();
                        let p = floor_p * (peak_p / floor_p).powf(tri);
                        fab.record_fault(
                            eng.now(),
                            a,
                            b,
                            EventKind::FaultDrift,
                            fired as u64,
                            (p * 1e6) as u64,
                        );
                        fired += 1;
                        if fired >= total {
                            fab.fault_set_loss(a, b, duplex, LossModel::Iid { p: floor_p });
                            None
                        } else {
                            fab.fault_set_loss(a, b, duplex, LossModel::Iid { p });
                            Some(eng.now().saturating_add(step_dt))
                        }
                    })
                }
            };
            handle.timers.push(h);
        }
        Ok(handle)
    }

    /// Makes sure the drain pump of `key` is armed at the link's earliest
    /// pending arrival: arms a fresh recurring event for an idle link,
    /// re-arms the existing one when a jittered/multipath arrival landed
    /// ahead of it, and otherwise does nothing. Call after any enqueue.
    fn arm_pump(&self, eng: &mut Engine, key: (NodeId, NodeId)) {
        let act = {
            let mut inner = self.inner.borrow_mut();
            let Some(link) = inner.links.get_mut(&key) else {
                return;
            };
            match (link.drain_state(), link.next_arrival()) {
                (_, None) => PumpAct::Nothing,
                (None, Some(t)) => PumpAct::New(t),
                (Some((h, armed)), Some(t)) if t < armed => PumpAct::Retarget(h, t),
                _ => PumpAct::Nothing,
            }
        };
        match act {
            PumpAct::Nothing => {}
            PumpAct::New(t) => {
                debug_assert!(
                    t >= eng.now(),
                    "arm_pump New in the past: key={key:?} t={t:?} now={:?}",
                    eng.now()
                );
                let fab = self.clone();
                let h = eng.schedule_recurring_at(t, move |eng| fab.drain_link(eng, key));
                if let Some(link) = self.inner.borrow_mut().links.get_mut(&key) {
                    link.set_drain(Some((h, t)));
                }
            }
            PumpAct::Retarget(h, t) => {
                // A `false` here means the pump is mid-fire; its own
                // re-arm return value will pick the new head up.
                if eng.reschedule(h, t) {
                    if let Some(link) = self.inner.borrow_mut().links.get_mut(&key) {
                        link.set_drain(Some((h, t)));
                    }
                }
            }
        }
    }

    /// One firing of a link's drain pump: deliver everything due now, then
    /// re-arm at the next pending arrival (or park until the next busy
    /// period when the queue drained).
    fn drain_link(&self, eng: &mut Engine, key: (NodeId, NodeId)) -> Option<SimTime> {
        loop {
            let pkt = {
                let mut inner = self.inner.borrow_mut();
                inner.links.get_mut(&key).and_then(|l| l.pop_due(eng.now()))
            };
            match pkt {
                Some(p) => self.deliver(eng, p),
                None => break,
            }
        }
        let mut inner = self.inner.borrow_mut();
        let link = inner.links.get_mut(&key)?;
        match link.next_arrival() {
            Some(t) => {
                if let Some((h, _)) = link.drain_state() {
                    link.set_drain(Some((h, t)));
                }
                Some(t)
            }
            None => {
                link.set_drain(None);
                None
            }
        }
    }

    /// Posts an RDMA Write on a UC QP. The payload is fragmented into
    /// MTU-sized packets (`Only` for single-packet messages, else
    /// `First/Middle/Last`), each serialized in order on the link. The send
    /// completion (if `signaled`) is raised when the last packet finishes
    /// serializing — drops do not affect it (UC has no acks).
    pub fn post_uc_write(
        &self,
        eng: &mut Engine,
        src: QpAddr,
        wr: WriteWr,
    ) -> Result<(), PostError> {
        self.post_uc_write_seg(eng, src, wr, false)
    }

    /// Like [`post_uc_write`](Self::post_uc_write) but forces *every* packet
    /// to be an independent single-packet message (`WriteSeg::Only`) with its
    /// own immediate — the SDR per-packet strategy (paper §3.2.1). The
    /// per-packet immediate is produced by the caller via offsets in `wr.imm`
    /// being ignored; use one call per packet instead for distinct
    /// immediates. This variant exists for bulk data without immediates.
    pub fn post_uc_write_per_packet(
        &self,
        eng: &mut Engine,
        src: QpAddr,
        wr: WriteWr,
    ) -> Result<(), PostError> {
        self.post_uc_write_seg(eng, src, wr, true)
    }

    fn post_uc_write_seg(
        &self,
        eng: &mut Engine,
        src: QpAddr,
        wr: WriteWr,
        per_packet: bool,
    ) -> Result<(), PostError> {
        let key;
        {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let node = &mut inner.nodes[src.node.0 as usize];
            if node.qp_type(src.qp) != QpType::Uc {
                return Err(PostError::WrongQpType);
            }
            let dst = node.qp_peer(src.qp).ok_or(PostError::NotConnected)?;
            key = (src.node, dst.node);
            let link = inner.links.get_mut(&key).ok_or(PostError::NoLink)?;
            let mtu = link.config().mtu;

            let total = wr.data.len();
            let n_pkts = if total == 0 { 1 } else { total.div_ceil(mtu) };
            for i in 0..n_pkts {
                let lo = i * mtu;
                let hi = ((i + 1) * mtu).min(total);
                let payload = wr.data.slice(lo..hi);
                let seg = if per_packet || n_pkts == 1 {
                    WriteSeg::Only
                } else if i == 0 {
                    WriteSeg::First
                } else if i == n_pkts - 1 {
                    WriteSeg::Last
                } else {
                    WriteSeg::Middle
                };
                let (mkey, offset, imm, crc) = match seg {
                    WriteSeg::Only => {
                        let last = i == n_pkts - 1;
                        (
                            wr.remote_mkey,
                            wr.remote_offset + lo as u64,
                            if last { wr.imm } else { None },
                            if last { wr.crc } else { None },
                        )
                    }
                    WriteSeg::First => (wr.remote_mkey, wr.remote_offset, None, None),
                    WriteSeg::Middle => (wr.remote_mkey, 0, None, None),
                    WriteSeg::Last => (wr.remote_mkey, 0, wr.imm, wr.crc),
                };
                let pkt = Packet {
                    src,
                    dst,
                    psn: node.next_psn(src.qp),
                    kind: PacketKind::Write {
                        seg,
                        mkey,
                        offset,
                        imm,
                        crc,
                    },
                    payload,
                };
                link.enqueue(eng.now(), pkt);
            }

            if wr.signaled {
                // All packets of this post have been placed on paths; the
                // local completion fires when the last of them leaves the
                // wire.
                let done_at = link.all_paths_free();
                let fabric = self.clone();
                let (cq, qp, wr_id) = (node.qp_send_cq(src.qp), src.qp, wr.wr_id);
                let byte_len = total as u32;
                let node_id = src.node;
                eng.schedule_at(done_at, move |eng| {
                    fabric.node_mut(node_id, |n| {
                        n.push_cqe(
                            eng,
                            cq,
                            Cqe {
                                qp,
                                op: CqeOp::SendComplete,
                                imm: None,
                                crc: None,
                                byte_len,
                                src: None,
                                wr_id,
                                null_write: false,
                            },
                        )
                    });
                });
            }
        }
        self.arm_pump(eng, key);
        Ok(())
    }

    /// Posts a UD send (single datagram ≤ MTU) to an explicit destination.
    pub fn post_ud_send(
        &self,
        eng: &mut Engine,
        src: QpAddr,
        dst: QpAddr,
        data: Bytes,
        imm: Option<u32>,
    ) -> Result<(), PostError> {
        let key = (src.node, dst.node);
        {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let node = &mut inner.nodes[src.node.0 as usize];
            if node.qp_type(src.qp) != QpType::Ud {
                return Err(PostError::WrongQpType);
            }
            let link = inner.links.get_mut(&key).ok_or(PostError::NoLink)?;
            if data.len() > link.config().mtu {
                return Err(PostError::PayloadTooLarge);
            }
            let pkt = Packet {
                src,
                dst,
                psn: node.next_psn(src.qp),
                kind: PacketKind::Send { imm },
                payload: data,
            };
            link.enqueue(eng.now(), pkt);
        }
        self.arm_pump(eng, key);
        Ok(())
    }

    /// Injects a raw packet (used by the RC go-back-N protocol objects).
    /// Returns the transmit outcome so protocols can account wire time.
    pub fn send_raw(&self, eng: &mut Engine, pkt: Packet) -> Result<TxOutcome, PostError> {
        let key = (pkt.src.node, pkt.dst.node);
        let out = {
            let mut inner = self.inner.borrow_mut();
            let link = inner.links.get_mut(&key).ok_or(PostError::NoLink)?;
            link.enqueue(eng.now(), pkt)
        };
        self.arm_pump(eng, key);
        Ok(out)
    }

    fn deliver(&self, eng: &mut Engine, pkt: Packet) {
        let mut inner = self.inner.borrow_mut();
        let idx = pkt.dst.node.0 as usize;
        if idx < inner.nodes.len() {
            if !inner.attached[idx] {
                // Restart dead window: the packet reaches a dead port.
                inner.restart_drops[idx] += 1;
                return;
            }
            inner.nodes[idx].handle_packet(eng, pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossModel;
    use crate::nic::RecvWqe;

    /// Two nodes, duplex lossless 8 Gbit/s link, one UC QP pair.
    fn two_node_uc(p_drop: f64) -> (Engine, Fabric, QpAddr, QpAddr) {
        let eng = Engine::new();
        let fab = Fabric::new();
        let a = fab.add_node(1 << 20);
        let b = fab.add_node(1 << 20);
        let mut cfg = LinkConfig::intra_dc(8e9);
        cfg.loss = LossModel::Iid { p: p_drop };
        cfg.seed = 33;
        fab.link_duplex(a, b, cfg);
        let qa = fab.node_mut(a, |n| {
            let cq = n.create_cq();
            n.create_qp(QpType::Uc, cq, cq)
        });
        let qb = fab.node_mut(b, |n| {
            let cq = n.create_cq();
            n.create_qp(QpType::Uc, cq, cq)
        });
        let addr_a = QpAddr { node: a, qp: qa };
        let addr_b = QpAddr { node: b, qp: qb };
        fab.node_mut(a, |n| n.connect_qp(qa, addr_b));
        fab.node_mut(b, |n| n.connect_qp(qb, addr_a));
        (eng, fab, addr_a, addr_b)
    }

    #[test]
    fn end_to_end_write_with_imm() {
        let (mut eng, fab, a, b) = two_node_uc(0.0);
        let mr = fab.node_mut(b.node, |n| n.alloc_mr(8192));
        fab.post_uc_write(
            &mut eng,
            a,
            WriteWr {
                remote_mkey: mr.mkey,
                remote_offset: 64,
                data: Bytes::from_static(b"planetary"),
                imm: Some(11),
                crc: None,
                wr_id: 5,
                signaled: true,
            },
        )
        .unwrap();
        eng.run();
        fab.node_mut(b.node, |n| {
            assert_eq!(n.mem().read(mr.addr + 64, 9), b"planetary");
            let cqe = n.poll_cq(crate::packet::CqId(0)).unwrap();
            assert_eq!(cqe.imm, Some(11));
        });
        // Sender got its send completion too.
        fab.node_mut(a.node, |n| {
            let cqe = n.poll_cq(crate::packet::CqId(0)).unwrap();
            assert_eq!(cqe.op, CqeOp::SendComplete);
            assert_eq!(cqe.wr_id, 5);
        });
    }

    #[test]
    fn large_write_fragments_and_reassembles() {
        let (mut eng, fab, a, b) = two_node_uc(0.0);
        let mr = fab.node_mut(b.node, |n| n.alloc_mr(64 * 1024));
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        fab.post_uc_write(
            &mut eng,
            a,
            WriteWr {
                remote_mkey: mr.mkey,
                remote_offset: 0,
                data: Bytes::from(data.clone()),
                imm: Some(1),
                crc: None,
                wr_id: 0,
                signaled: false,
            },
        )
        .unwrap();
        eng.run();
        fab.node_mut(b.node, |n| {
            assert_eq!(n.mem().read(mr.addr, 20_000), &data[..]);
            assert_eq!(n.poll_cq(crate::packet::CqId(0)).unwrap().byte_len, 20_000);
        });
    }

    #[test]
    fn lossy_multi_packet_message_never_completes() {
        let (mut eng, fab, a, b) = two_node_uc(0.2);
        let mr = fab.node_mut(b.node, |n| n.alloc_mr(256 * 1024));
        // 40 packets at 20% loss: virtually guaranteed to lose one.
        fab.post_uc_write(
            &mut eng,
            a,
            WriteWr {
                remote_mkey: mr.mkey,
                remote_offset: 0,
                data: Bytes::from(vec![9u8; 160_000]),
                imm: Some(1),
                crc: None,
                wr_id: 0,
                signaled: false,
            },
        )
        .unwrap();
        eng.run();
        fab.node_mut(b.node, |n| {
            assert!(n.poll_cq(crate::packet::CqId(0)).is_none());
        });
    }

    #[test]
    fn per_packet_writes_survive_loss_individually() {
        let (mut eng, fab, a, b) = two_node_uc(0.2);
        let mr = fab.node_mut(b.node, |n| n.alloc_mr(256 * 1024));
        fab.post_uc_write_per_packet(
            &mut eng,
            a,
            WriteWr {
                remote_mkey: mr.mkey,
                remote_offset: 0,
                data: Bytes::from(vec![9u8; 160_000]),
                imm: None,
                crc: None,
                wr_id: 0,
                signaled: false,
            },
        )
        .unwrap();
        eng.run();
        // ~80% of the 40 packets land individually.
        let landed = fab.node(b.node, |n| n.stats().writes_landed);
        assert!((25..40).contains(&landed), "landed {landed}");
    }

    #[test]
    fn ud_send_roundtrip_and_mtu_enforcement() {
        let mut eng = Engine::new();
        let fab = Fabric::new();
        let a = fab.add_node(1 << 16);
        let b = fab.add_node(1 << 16);
        fab.link_duplex(a, b, LinkConfig::intra_dc(8e9));
        let qa = fab.node_mut(a, |n| {
            let cq = n.create_cq();
            n.create_qp(QpType::Ud, cq, cq)
        });
        let (qb, mr) = fab.node_mut(b, |n| {
            let cq = n.create_cq();
            let qp = n.create_qp(QpType::Ud, cq, cq);
            let mr = n.alloc_mr(4096);
            n.post_recv(
                qp,
                RecvWqe {
                    wr_id: 1,
                    addr: mr.addr,
                    len: mr.len,
                },
            );
            (qp, mr)
        });
        let src = QpAddr { node: a, qp: qa };
        let dst = QpAddr { node: b, qp: qb };
        assert_eq!(
            fab.post_ud_send(&mut eng, src, dst, Bytes::from(vec![0u8; 5000]), None),
            Err(PostError::PayloadTooLarge)
        );
        fab.post_ud_send(&mut eng, src, dst, Bytes::from_static(b"cts"), Some(2))
            .unwrap();
        eng.run();
        fab.node_mut(b, |n| {
            let cqe = n.poll_cq(crate::packet::CqId(0)).unwrap();
            assert_eq!(cqe.imm, Some(2));
            assert_eq!(n.mem().read(mr.addr, 3), b"cts");
        });
    }

    #[test]
    fn drain_pump_is_one_event_per_busy_period() {
        // A 10-packet train arms exactly one pump; the pump node re-arms
        // through its own return value, so pending_events stays at 1 no
        // matter how many packets are in flight.
        let (mut eng, fab, a, _b) = two_node_uc(0.0);
        let mr = fab.node_mut(crate::packet::NodeId(1), |n| n.alloc_mr(64 * 1024));
        fab.post_uc_write(
            &mut eng,
            a,
            WriteWr {
                remote_mkey: mr.mkey,
                remote_offset: 0,
                data: Bytes::from(vec![7u8; 10 * 4096]),
                imm: None,
                crc: None,
                wr_id: 0,
                signaled: false,
            },
        )
        .unwrap();
        assert_eq!(
            eng.pending_events(),
            1,
            "10 in-flight packets ride one drain event"
        );
        assert_eq!(
            fab.inner
                .borrow()
                .links
                .get(&(a.node, crate::packet::NodeId(1)))
                .unwrap()
                .in_flight(),
            10
        );
        eng.run();
        let delivered = fab
            .link_stats(a.node, crate::packet::NodeId(1))
            .unwrap()
            .delivered;
        assert_eq!(delivered, 10);
    }

    /// Posts `n` independent single-packet writes from `a` at `now`.
    fn post_train(eng: &mut Engine, fab: &Fabric, a: QpAddr, mr: &crate::nic::Mr, n: usize) {
        fab.post_uc_write_per_packet(
            eng,
            a,
            WriteWr {
                remote_mkey: mr.mkey,
                remote_offset: 0,
                data: Bytes::from(vec![3u8; n * 4096]),
                imm: None,
                crc: None,
                wr_id: 0,
                signaled: false,
            },
        )
        .unwrap();
    }

    #[test]
    fn fault_plan_blackout_claims_in_flight_window() {
        let (mut eng, fab, a, b) = two_node_uc(0.0);
        let mr = fab.node_mut(b.node, |n| n.alloc_mr(1 << 20));
        // 40 packets serialize over ~167 us; arrivals trail by the 2 us
        // propagation delay. All are posted (and in flight) before the
        // blackout window [50 us, 110 us) opens — only delivery-time loss
        // can claim them.
        post_train(&mut eng, &fab, a, &mr, 40);
        let plan = FaultPlan::new().with(FaultEvent::Blackout {
            at: SimTime::from_micros(50),
            duration: SimTime::from_micros(60),
        });
        let h = fab
            .apply_fault_plan(&mut eng, a.node, b.node, &plan)
            .unwrap();
        assert_eq!(h.timer_count(), 1, "one timer per event");
        eng.run();
        let s = fab.link_stats(a.node, b.node).unwrap();
        assert_eq!(s.sent, 40);
        assert!(
            s.dropped >= 10 && s.delivered >= 10,
            "blackout window splits the train: dropped {} delivered {}",
            s.dropped,
            s.delivered
        );
        assert_eq!(s.dropped + s.delivered, 40);
        let down = fab.inner.borrow().links[&(a.node, b.node)].is_down();
        assert!(!down, "link healed after the window");
        assert_eq!(eng.pending_events(), 0, "finite plan leaves no timers");
    }

    #[test]
    fn fault_plan_flap_and_drift_play_out_and_rest() {
        let (mut eng, fab, a, b) = two_node_uc(0.0);
        let plan = FaultPlan::new_duplex()
            .with(FaultEvent::Flap {
                at: SimTime::from_micros(10),
                cycles: 3,
                down: SimTime::from_micros(5),
                up: SimTime::from_micros(5),
            })
            .with(FaultEvent::Drift {
                at: SimTime::from_micros(20),
                period: SimTime::from_micros(40),
                steps: 8,
                floor_p: 1e-4,
                peak_p: 0.25,
                cycles: 2,
            });
        fab.apply_fault_plan(&mut eng, a.node, b.node, &plan)
            .unwrap();
        eng.run();
        assert_eq!(eng.pending_events(), 0, "flap + drift are finite");
        let inner = fab.inner.borrow();
        for key in [(a.node, b.node), (b.node, a.node)] {
            let link = &inner.links[&key];
            assert!(!link.is_down(), "flap leaves the link up");
            assert_eq!(
                link.config().loss,
                LossModel::Iid { p: 1e-4 },
                "drift rests at the floor rate (duplex: both directions)"
            );
        }
    }

    #[test]
    fn fault_plan_validates_and_cancels() {
        let (mut eng, fab, a, b) = two_node_uc(0.0);
        let bad = FaultPlan::new().with(FaultEvent::SetLoss {
            at: SimTime::ZERO,
            model: LossModel::Iid { p: 2.0 },
        });
        assert!(fab
            .apply_fault_plan(&mut eng, a.node, b.node, &bad)
            .is_err());
        // A cancelled plan never touches the link.
        let plan = FaultPlan::new().with(FaultEvent::Blackout {
            at: SimTime::from_micros(50),
            duration: SimTime::from_micros(60),
        });
        let h = fab
            .apply_fault_plan(&mut eng, a.node, b.node, &plan)
            .unwrap();
        h.cancel(&mut eng);
        let mr = fab.node_mut(b.node, |n| n.alloc_mr(1 << 20));
        post_train(&mut eng, &fab, a, &mr, 40);
        eng.run();
        let s = fab.link_stats(a.node, b.node).unwrap();
        assert_eq!(s.delivered, 40, "cancelled blackout drops nothing");
        assert_eq!(eng.pending_events(), 0);
    }

    #[test]
    fn peer_restart_claims_in_flight_and_reattaches() {
        use crate::fault::RestartSide;
        let (mut eng, fab, a, b) = two_node_uc(0.0);
        let mr = fab.node_mut(b.node, |n| n.alloc_mr(1 << 20));
        // 40 packets serialize over ~167 us. The receiver crashes at
        // 50 us: its port is dead for 60 us, so arrivals inside
        // [50 us, 110 us) die at the port, while the tail arriving after
        // re-attach lands normally.
        post_train(&mut eng, &fab, a, &mr, 40);
        let plan = FaultPlan::new().with(FaultEvent::PeerRestart {
            at: SimTime::from_micros(50),
            side: RestartSide::B,
            dead_time: SimTime::from_micros(60),
        });
        let restarts = crate::engine::shared(Vec::new());
        let seen = restarts.clone();
        fab.on_restart(b.node, move |_, inc| seen.borrow_mut().push(inc));
        let h = fab
            .apply_fault_plan(&mut eng, a.node, b.node, &plan)
            .unwrap();
        assert_eq!(h.timer_count(), 1);
        assert_eq!(fab.node_incarnation(b.node), 0);
        eng.run();
        assert_eq!(*restarts.borrow(), vec![1], "hook saw the new incarnation");
        assert_eq!(fab.node_incarnation(b.node), 1);
        assert!(fab.is_attached(b.node), "re-attached after the dead time");
        let s = fab.link_stats(a.node, b.node).unwrap();
        let port_drops = fab.restart_drops(b.node);
        let landed = fab.node(b.node, |n| n.stats().writes_landed);
        assert_eq!(s.sent, 40);
        assert_eq!(s.dropped, 0, "the wire itself is healthy");
        assert!(
            port_drops > 0 && landed > 0,
            "dead window splits the train: port {port_drops} landed {landed}"
        );
        assert_eq!(landed + port_drops, s.delivered);
        assert!(
            landed > 0 && landed < 40,
            "head landed before the crash or tail after re-attach: {landed}"
        );
        assert_eq!(eng.pending_events(), 0, "restart plan is finite");
    }

    #[test]
    fn try_link_rejects_invalid_configs() {
        let fab = Fabric::new();
        let a = fab.add_node(1 << 16);
        let b = fab.add_node(1 << 16);
        let bad = LinkConfig::intra_dc(8e9).with_loss(LossModel::Iid { p: -0.5 });
        assert!(fab.try_link(a, b, bad.clone()).is_err());
        assert!(fab.try_link_duplex(a, b, bad).is_err());
        assert!(fab.link_stats(a, b).is_none(), "nothing installed");
        assert!(fab.try_link_duplex(a, b, LinkConfig::intra_dc(8e9)).is_ok());
        assert!(fab.link_stats(a, b).is_some());
    }

    #[test]
    fn post_errors() {
        let mut eng = Engine::new();
        let fab = Fabric::new();
        let a = fab.add_node(1 << 16);
        let qa = fab.node_mut(a, |n| {
            let cq = n.create_cq();
            n.create_qp(QpType::Uc, cq, cq)
        });
        let src = QpAddr { node: a, qp: qa };
        let wr = WriteWr {
            remote_mkey: MkeyId(0),
            remote_offset: 0,
            data: Bytes::new(),
            imm: None,
            crc: None,
            wr_id: 0,
            signaled: false,
        };
        assert_eq!(
            fab.post_uc_write(&mut eng, src, wr.clone()),
            Err(PostError::NotConnected)
        );
        let b = fab.add_node(1 << 16);
        fab.node_mut(a, |n| {
            n.connect_qp(
                qa,
                QpAddr {
                    node: b,
                    qp: crate::packet::QpNum(0),
                },
            )
        });
        assert_eq!(fab.post_uc_write(&mut eng, src, wr), Err(PostError::NoLink));
    }
}
