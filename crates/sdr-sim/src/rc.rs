//! Reliable Connection baseline: NIC-style go-back-N retransmission.
//!
//! Commodity RDMA NICs implement retransmission-based reliability (go-back-N
//! or selective repeat) in the ASIC (paper §2.2). This module provides the
//! go-back-N variant as the *hardware baseline* the paper argues against for
//! long-haul links: a single drop forces the sender to rewind and re-inject
//! everything from the lost packet, and detection costs at least an RTO.
//!
//! The endpoint runs entirely on the discrete-event engine, exchanging
//! Write and Ack/NAK packets through the [`Fabric`].

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;

use crate::engine::Engine;
use crate::equeue::TimerHandle;
use crate::fabric::Fabric;
use crate::nic::Waker;
use crate::packet::{MkeyId, Packet, PacketKind, QpAddr, WriteSeg};
use crate::time::SimTime;

/// Cap on the exponential RTO backoff: the effective timeout saturates at
/// `rto << RTO_BACKOFF_CAP` (64× base). During a dead-link window the
/// sender therefore rewinds O(log) times and then probes at the capped
/// cadence, instead of storming a retransmit burst every base RTO.
pub const RTO_BACKOFF_CAP: u32 = 6;

/// Tuning knobs of the go-back-N endpoint.
#[derive(Clone, Debug)]
pub struct RcConfig {
    /// Send window in packets.
    pub window: usize,
    /// Base retransmission timeout for the oldest unacked packet. Doubles
    /// on every expiry without progress, up to [`RTO_BACKOFF_CAP`]
    /// doublings, and restarts at the base value when an ACK acknowledges
    /// new data (Karn-style restart).
    pub rto: SimTime,
    /// Receiver sends a cumulative ACK every this many in-order packets
    /// (and always on the last packet of a message).
    pub ack_every: u32,
    /// Payload bytes per packet.
    pub mtu: usize,
}

impl Default for RcConfig {
    fn default() -> Self {
        RcConfig {
            window: 256,
            rto: SimTime::from_millis(1),
            ack_every: 16,
            mtu: 4096,
        }
    }
}

/// Counters exported by an RC endpoint.
#[derive(Clone, Copy, Debug, Default)]
pub struct RcStats {
    /// Data packets sent, including retransmissions.
    pub data_sent: u64,
    /// Packets retransmitted by go-back-N rewinds or RTOs.
    pub retransmitted: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// NAKs sent (receiver side).
    pub naks_sent: u64,
    /// ACKs sent (receiver side).
    pub acks_sent: u64,
}

struct SendMsg {
    data: Bytes,
    remote_mkey: MkeyId,
    remote_offset: u64,
    imm: Option<u32>,
    n_pkts: u32,
    base: u32,
    next: u32,
    on_complete: Option<Box<dyn FnOnce(&mut Engine)>>,
}

/// One end of a go-back-N reliable connection.
pub struct RcEndpoint {
    fabric: Fabric,
    local: QpAddr,
    peer: QpAddr,
    cfg: RcConfig,
    // Sender state.
    msg: Option<SendMsg>,
    /// The single RTO timer: a re-armable engine timer pushed out on every
    /// ACK that makes progress and cancelled at completion — no
    /// generation-stamped no-op events ever fire.
    rto_timer: Option<TimerHandle>,
    /// Current backoff exponent: effective RTO is `rto << backoff`,
    /// saturating at [`RTO_BACKOFF_CAP`].
    backoff: u32,
    // Receiver state.
    epsn: u32,
    last_nak: Option<u32>,
    in_order_since_ack: u32,
    recv_bytes: u64,
    stats: RcStats,
}

impl RcEndpoint {
    /// Creates an endpoint on `local` talking to `peer` and hooks its inbox
    /// waker. The QP must be of type [`QpType::Rc`](crate::nic::QpType::Rc).
    pub fn new(
        fabric: &Fabric,
        local: QpAddr,
        peer: QpAddr,
        cfg: RcConfig,
    ) -> Rc<RefCell<RcEndpoint>> {
        let ep = Rc::new(RefCell::new(RcEndpoint {
            fabric: fabric.clone(),
            local,
            peer,
            cfg,
            msg: None,
            rto_timer: None,
            backoff: 0,
            epsn: 0,
            last_nak: None,
            in_order_since_ack: 0,
            recv_bytes: 0,
            stats: RcStats::default(),
        }));
        let hook = ep.clone();
        let fab = fabric.clone();
        fabric.node_mut(local.node, |n| {
            n.set_inbox_waker(
                local.qp,
                Waker::new(move |eng| {
                    while let Some(pkt) = fab.node_mut(local.node, |n| n.pop_inbox(local.qp)) {
                        hook.borrow_mut().on_packet(eng, pkt);
                    }
                }),
            );
        });
        ep
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> RcStats {
        self.stats
    }

    /// Total payload bytes received in order.
    pub fn received_bytes(&self) -> u64 {
        self.recv_bytes
    }

    /// Posts a reliable write of `data` to the peer's memory. `on_complete`
    /// runs when the final cumulative ACK arrives. One message at a time.
    ///
    /// # Panics
    /// Panics if a message is already in flight.
    pub fn post_write(
        this: &Rc<RefCell<RcEndpoint>>,
        eng: &mut Engine,
        data: Bytes,
        remote_mkey: MkeyId,
        remote_offset: u64,
        imm: Option<u32>,
        on_complete: impl FnOnce(&mut Engine) + 'static,
    ) {
        {
            let mut ep = this.borrow_mut();
            assert!(
                ep.msg.is_none(),
                "RC endpoint supports one message in flight"
            );
            let mtu = ep.cfg.mtu;
            let n_pkts = if data.is_empty() {
                1
            } else {
                data.len().div_ceil(mtu) as u32
            };
            ep.msg = Some(SendMsg {
                data,
                remote_mkey,
                remote_offset,
                imm,
                n_pkts,
                base: 0,
                next: 0,
                on_complete: Some(Box::new(on_complete)),
            });
            ep.backoff = 0;
            ep.pump(eng);
        }
        Self::arm_timer(this, eng);
    }

    /// Effective timeout under the current backoff exponent.
    fn rto_effective(&self) -> SimTime {
        self.cfg.rto * (1u64 << self.backoff)
    }

    /// Pushes the RTO deadline out to `now + rto` and restarts the backoff
    /// at the base timeout (an ACK made progress — the Karn-style restart:
    /// only fresh evidence the channel is alive resets the exponent).
    fn bump_timer(&mut self, eng: &mut Engine) {
        self.backoff = 0;
        if let Some(h) = self.rto_timer {
            let at = eng.now().saturating_add(self.cfg.rto);
            let _ = eng.reschedule(h, at);
        }
    }

    /// Sends as many packets as the window allows.
    fn pump(&mut self, eng: &mut Engine) {
        let Some(msg) = &mut self.msg else { return };
        let window_end = (msg.base + self.cfg.window as u32).min(msg.n_pkts);
        while msg.next < window_end {
            let i = msg.next;
            msg.next += 1;
            let mtu = self.cfg.mtu;
            let lo = i as usize * mtu;
            let hi = ((i as usize + 1) * mtu).min(msg.data.len());
            let last = i == msg.n_pkts - 1;
            let seg = if msg.n_pkts == 1 {
                WriteSeg::Only
            } else if i == 0 {
                WriteSeg::First
            } else if last {
                WriteSeg::Last
            } else {
                WriteSeg::Middle
            };
            let pkt = Packet {
                src: self.local,
                dst: self.peer,
                psn: i,
                kind: PacketKind::Write {
                    seg,
                    mkey: msg.remote_mkey,
                    crc: None,
                    // GBN retransmits from an arbitrary packet, so every
                    // packet carries its absolute target offset.
                    offset: msg.remote_offset + lo as u64,
                    imm: if last { msg.imm } else { None },
                },
                payload: if lo < msg.data.len() {
                    msg.data.slice(lo..hi)
                } else {
                    Bytes::new()
                },
            };
            self.stats.data_sent += 1;
            let _ = self.fabric.send_raw(eng, pkt);
        }
    }

    fn arm_timer(this: &Rc<RefCell<RcEndpoint>>, eng: &mut Engine) {
        let rto = {
            let ep = this.borrow();
            if ep.msg.is_none() {
                return;
            }
            ep.cfg.rto
        };
        let me = this.clone();
        // One recurring timer per message: the timer only ever fires when
        // the full RTO elapsed without progress (progress *reschedules* it
        // instead of letting it fire as a no-op), rewinds, backs off
        // exponentially, and re-arms its own node in place.
        let h = eng.schedule_recurring_in(rto, move |eng| {
            let mut ep = me.borrow_mut();
            match &mut ep.msg {
                Some(_) => {
                    // No progress since the timer was (re)armed: rewind
                    // and double the next wait (capped) — a dead link
                    // costs O(log) rewinds, not one per base RTO.
                    ep.stats.timeouts += 1;
                    let msg = ep.msg.as_mut().unwrap();
                    let outstanding = msg.next - msg.base;
                    msg.next = msg.base;
                    ep.stats.retransmitted += outstanding as u64;
                    ep.pump(eng);
                    ep.backoff = (ep.backoff + 1).min(RTO_BACKOFF_CAP);
                    Some(eng.now().saturating_add(ep.rto_effective()))
                }
                // Completed; the handle was cancelled there, so this arm
                // is only a backstop.
                None => None,
            }
        });
        this.borrow_mut().rto_timer = Some(h);
    }

    fn on_packet(&mut self, eng: &mut Engine, pkt: Packet) {
        match pkt.kind {
            PacketKind::Ack { psn, nak } => self.on_ack(eng, psn, nak),
            PacketKind::Write {
                seg,
                mkey,
                offset,
                imm,
                ..
            } => self.on_data(eng, pkt.psn, seg, mkey, offset, imm, pkt.payload),
            PacketKind::Send { .. } => {}
        }
    }

    fn on_ack(&mut self, eng: &mut Engine, psn: u32, nak: bool) {
        let Some(msg) = &mut self.msg else { return };
        let mut progress = false;
        if psn > msg.base {
            msg.base = psn;
            progress = true; // progress: reset the RTO window
        }
        if nak && psn >= msg.base && psn < msg.next {
            // Go-back-N rewind: retransmit everything from the hole.
            self.stats.retransmitted += (msg.next - psn) as u64;
            msg.base = psn;
            msg.next = psn;
            progress = true;
        }
        let done = msg.base >= msg.n_pkts;
        if done {
            if let Some(h) = self.rto_timer.take() {
                eng.cancel(h);
            }
            if let Some(cb) = self.msg.take().unwrap().on_complete {
                cb(eng);
            }
        } else {
            if progress {
                self.bump_timer(eng);
            }
            self.pump(eng);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_data(
        &mut self,
        eng: &mut Engine,
        psn: u32,
        seg: WriteSeg,
        mkey: MkeyId,
        offset: u64,
        imm: Option<u32>,
        payload: Bytes,
    ) {
        if psn != self.epsn {
            if psn > self.epsn && self.last_nak != Some(self.epsn) {
                self.last_nak = Some(self.epsn);
                self.stats.naks_sent += 1;
                self.send_ack(eng, self.epsn, true);
            }
            return; // out-of-order packet discarded (no buffering in GBN)
        }
        self.epsn += 1;
        self.last_nak = None;
        self.recv_bytes += payload.len() as u64;
        // Land the payload through the key table (ordering already enforced).
        let (local, peer) = (self.local, self.peer);
        self.fabric.node_mut(local.node, |n| {
            n.land_write(eng, local.qp, peer, mkey, offset, &payload, imm);
        });
        self.in_order_since_ack += 1;
        let last = matches!(seg, WriteSeg::Last | WriteSeg::Only);
        if last || self.in_order_since_ack >= self.cfg.ack_every {
            self.in_order_since_ack = 0;
            self.stats.acks_sent += 1;
            self.send_ack(eng, self.epsn, false);
        }
    }

    fn send_ack(&mut self, eng: &mut Engine, psn: u32, nak: bool) {
        let pkt = Packet {
            src: self.local,
            dst: self.peer,
            psn: 0,
            kind: PacketKind::Ack { psn, nak },
            payload: Bytes::new(),
        };
        let _ = self.fabric.send_raw(eng, pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::link::LinkConfig;
    use crate::loss::LossModel;
    use crate::nic::QpType;
    use std::cell::Cell;

    fn rc_pair(
        p_drop: f64,
        seed: u64,
    ) -> (
        Engine,
        Fabric,
        Rc<RefCell<RcEndpoint>>,
        Rc<RefCell<RcEndpoint>>,
        crate::nic::Mr,
    ) {
        let eng = Engine::new();
        let fab = Fabric::new();
        let a = fab.add_node(1 << 22);
        let b = fab.add_node(1 << 22);
        let cfg = LinkConfig::intra_dc(8e9)
            .with_loss(LossModel::Iid { p: p_drop })
            .with_seed(seed);
        fab.link_duplex(a, b, cfg);
        let qa = fab.node_mut(a, |n| {
            let cq = n.create_cq();
            n.create_qp(QpType::Rc, cq, cq)
        });
        let qb = fab.node_mut(b, |n| {
            let cq = n.create_cq();
            n.create_qp(QpType::Rc, cq, cq)
        });
        let addr_a = QpAddr { node: a, qp: qa };
        let addr_b = QpAddr { node: b, qp: qb };
        let mr = fab.node_mut(b, |n| n.alloc_mr(1 << 21));
        let rc_cfg = RcConfig {
            rto: SimTime::from_micros(200),
            ..RcConfig::default()
        };
        let ep_a = RcEndpoint::new(&fab, addr_a, addr_b, rc_cfg.clone());
        let ep_b = RcEndpoint::new(&fab, addr_b, addr_a, rc_cfg);
        (eng, fab, ep_a, ep_b, mr)
    }

    fn roundtrip(p_drop: f64, seed: u64, len: usize) -> (bool, RcStats, RcStats) {
        let (mut eng, fab, ep_a, ep_b, mr) = rc_pair(p_drop, seed);
        let data: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        RcEndpoint::post_write(
            &ep_a,
            &mut eng,
            Bytes::from(data.clone()),
            mr.mkey,
            0,
            Some(1),
            move |_| d.set(true),
        );
        eng.set_event_limit(5_000_000);
        eng.run();
        let ok = done.get()
            && fab.node(crate::packet::NodeId(1), |n| {
                n.mem().read(mr.addr, len) == &data[..]
            });
        let stats = (ok, ep_a.borrow().stats(), ep_b.borrow().stats());
        stats
    }

    #[test]
    fn lossless_transfer_completes_without_retransmission() {
        let (ok, s_a, _) = roundtrip(0.0, 1, 100_000);
        assert!(ok);
        assert_eq!(s_a.retransmitted, 0);
        assert_eq!(s_a.data_sent, 25); // 100000 / 4096 → 25 packets
    }

    #[test]
    fn lossy_transfer_still_delivers_all_data() {
        let (ok, s_a, s_b) = roundtrip(0.05, 7, 200_000);
        assert!(ok, "go-back-N must recover from 5% loss");
        assert!(s_a.retransmitted > 0, "retransmissions expected");
        assert!(s_b.naks_sent + s_a.timeouts > 0);
    }

    #[test]
    fn rto_backoff_bounds_rewinds_through_a_blackout() {
        use crate::fault::{FaultEvent, FaultPlan};
        // A 50 ms blackout against a 200 us base RTO: a fixed-RTO sender
        // would rewind ~250 times; exponential backoff pays
        // log2(64) = 6 doublings then probes at 12.8 ms, so the whole
        // outage costs ~10 rewinds.
        let (mut eng, fab, ep_a, _ep_b, mr) = rc_pair(0.0, 21);
        let plan = FaultPlan::new_duplex().with(FaultEvent::Blackout {
            at: SimTime::from_micros(50),
            duration: SimTime::from_millis(50),
        });
        fab.apply_fault_plan(
            &mut eng,
            crate::packet::NodeId(0),
            crate::packet::NodeId(1),
            &plan,
        )
        .unwrap();
        let data: Vec<u8> = (0..100_000).map(|i| (i % 253) as u8).collect();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        RcEndpoint::post_write(
            &ep_a,
            &mut eng,
            Bytes::from(data.clone()),
            mr.mkey,
            0,
            None,
            move |_| d.set(true),
        );
        eng.run();
        assert!(done.get(), "transfer survives the blackout");
        fab.node(crate::packet::NodeId(1), |n| {
            assert_eq!(n.mem().read(mr.addr, data.len()), &data[..]);
        });
        let timeouts = ep_a.borrow().stats().timeouts;
        assert!(
            (2..=14).contains(&timeouts),
            "backoff caps rewinds at O(log): {timeouts}"
        );
    }

    #[test]
    fn gbn_retransmits_more_than_lost() {
        // The go-back-N pathology: retransmitted ≥ drops (usually ≫).
        let (ok, s_a, _) = roundtrip(0.02, 13, 400_000);
        assert!(ok);
        let sent_min = 400_000 / 4096 + 1;
        let lost_est = (s_a.data_sent as f64 * 0.02) as u64;
        assert!(
            s_a.retransmitted >= lost_est,
            "retransmitted {} < approx lost {}",
            s_a.retransmitted,
            lost_est
        );
        assert!(s_a.data_sent as usize > sent_min);
    }
}
