//! Node memory, memory regions and memory-key translation.
//!
//! The SDR receive path relies on three Verbs memory features the simulator
//! must model faithfully (paper §3.2.2–§3.3):
//!
//! * **Direct keys** — plain registered regions backing user buffers.
//! * **A zero-based indirect "root" key** whose slot table maps message `i`
//!   to offset range `[i·M, i·M + M)` (Figure 5). Posting a receive installs
//!   the user buffer's key into a slot; completing it swaps the slot to…
//! * **The NULL key** (`ibv_alloc_null_mr`) — writes targeting it are
//!   *discarded but still produce completions*, which is the first stage of
//!   the paper's late-packet protection.

use std::collections::HashMap;

use crate::packet::MkeyId;

/// Byte-addressable memory of one node, with a bump allocator for regions.
pub struct Memory {
    buf: Vec<u8>,
    next: u64,
}

impl Memory {
    /// Creates a memory of `capacity` bytes, zero-initialised.
    pub fn new(capacity: usize) -> Self {
        Memory {
            buf: vec![0; capacity],
            next: 0,
        }
    }

    /// Allocates a region of `len` bytes; returns its base address.
    ///
    /// # Panics
    /// Panics when the memory is exhausted — simulation configs size node
    /// memory up front.
    pub fn alloc(&mut self, len: u64) -> u64 {
        let base = self.next;
        assert!(
            base + len <= self.buf.len() as u64,
            "node memory exhausted: want {len} at {base}, capacity {}",
            self.buf.len()
        );
        self.next += len;
        base
    }

    /// Copies `data` to `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.buf[a..a + data.len()].copy_from_slice(data);
    }

    /// Reads `len` bytes at `addr`.
    pub fn read(&self, addr: u64, len: usize) -> &[u8] {
        let a = addr as usize;
        &self.buf[a..a + len]
    }

    /// Fills a region with a byte value (used to model repost cleanup).
    pub fn fill(&mut self, addr: u64, len: usize, value: u8) {
        let a = addr as usize;
        self.buf[a..a + len].fill(value);
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

/// What a memory key resolves to.
#[derive(Clone, Debug)]
pub enum MkeyTarget {
    /// Discard writes, but still complete them (late-packet stage 1).
    Null,
    /// A plain registered region.
    Direct {
        /// Base address within node memory.
        base: u64,
        /// Region length in bytes.
        len: u64,
    },
    /// A zero-based table of slots of fixed size; slot `i` covers offsets
    /// `[i*slot_size, (i+1)*slot_size)` and forwards into another key.
    Indirect {
        /// Size of each slot in bytes (the QP's max message size `M`).
        slot_size: u64,
        /// Per-slot inner keys; `None` behaves like an invalid access.
        slots: Vec<Option<MkeyId>>,
    },
}

/// Result of resolving `(mkey, offset, len)` against a node's key table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolved {
    /// Write lands at this absolute address in node memory.
    Addr(u64),
    /// Write is discarded (NULL key) but must still raise a completion.
    Null,
}

/// Errors surfaced by translation. On a real NIC these would be access
/// faults; the simulator counts them and drops the packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessError {
    /// Key not present in the table.
    UnknownKey(MkeyId),
    /// Offset/length outside the key's range.
    OutOfBounds,
    /// Indirect slot not populated.
    EmptySlot,
    /// Indirection chain too deep (guards against cycles).
    TooDeep,
}

/// Per-node memory key table.
#[derive(Default)]
pub struct MkeyTable {
    map: HashMap<u32, MkeyTarget>,
    next: u32,
}

/// Maximum depth of indirect-key chains; the SDR layout needs two levels
/// (root → buffer), four leaves margin for experiments.
const MAX_DEPTH: u32 = 4;

impl MkeyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a target and returns its new key id.
    pub fn insert(&mut self, target: MkeyTarget) -> MkeyId {
        let id = self.next;
        self.next += 1;
        self.map.insert(id, target);
        MkeyId(id)
    }

    /// Registers a direct region.
    pub fn insert_direct(&mut self, base: u64, len: u64) -> MkeyId {
        self.insert(MkeyTarget::Direct { base, len })
    }

    /// Allocates a NULL key (the simulator's `ibv_alloc_null_mr`).
    pub fn insert_null(&mut self) -> MkeyId {
        self.insert(MkeyTarget::Null)
    }

    /// Allocates an indirect root key with `slots` empty slots of
    /// `slot_size` bytes each.
    pub fn insert_indirect(&mut self, slot_size: u64, slots: usize) -> MkeyId {
        self.insert(MkeyTarget::Indirect {
            slot_size,
            slots: vec![None; slots],
        })
    }

    /// Points `slot` of the indirect key `root` at `inner`
    /// (or clears it with `None`).
    ///
    /// # Panics
    /// Panics if `root` is not an indirect key or `slot` is out of range —
    /// these are programming errors in the layer above, not wire events.
    pub fn set_indirect_slot(&mut self, root: MkeyId, slot: usize, inner: Option<MkeyId>) {
        match self.map.get_mut(&root.0) {
            Some(MkeyTarget::Indirect { slots, .. }) => {
                slots[slot] = inner;
            }
            _ => panic!("mkey {root:?} is not an indirect key"),
        }
    }

    /// Translates `(mkey, offset)` for a write of `len` bytes.
    pub fn resolve(&self, mkey: MkeyId, offset: u64, len: u64) -> Result<Resolved, AccessError> {
        self.resolve_depth(mkey, offset, len, 0)
    }

    fn resolve_depth(
        &self,
        mkey: MkeyId,
        offset: u64,
        len: u64,
        depth: u32,
    ) -> Result<Resolved, AccessError> {
        if depth >= MAX_DEPTH {
            return Err(AccessError::TooDeep);
        }
        match self.map.get(&mkey.0) {
            None => Err(AccessError::UnknownKey(mkey)),
            Some(MkeyTarget::Null) => Ok(Resolved::Null),
            Some(MkeyTarget::Direct { base, len: rlen }) => {
                if offset + len <= *rlen {
                    Ok(Resolved::Addr(base + offset))
                } else {
                    Err(AccessError::OutOfBounds)
                }
            }
            Some(MkeyTarget::Indirect { slot_size, slots }) => {
                let slot = (offset / slot_size) as usize;
                let inner_off = offset % slot_size;
                if slot >= slots.len() {
                    return Err(AccessError::OutOfBounds);
                }
                // A write must not straddle a slot boundary; SDR packets are
                // MTU-sized and slots are MTU-aligned so this never happens
                // in correct operation.
                if inner_off + len > *slot_size {
                    return Err(AccessError::OutOfBounds);
                }
                match slots[slot] {
                    None => Err(AccessError::EmptySlot),
                    Some(inner) => self.resolve_depth(inner, inner_off, len, depth + 1),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_key_translates_with_bounds_check() {
        let mut t = MkeyTable::new();
        let k = t.insert_direct(1000, 64);
        assert_eq!(t.resolve(k, 0, 64), Ok(Resolved::Addr(1000)));
        assert_eq!(t.resolve(k, 10, 4), Ok(Resolved::Addr(1010)));
        assert_eq!(t.resolve(k, 61, 4), Err(AccessError::OutOfBounds));
    }

    #[test]
    fn null_key_discards() {
        let mut t = MkeyTable::new();
        let k = t.insert_null();
        assert_eq!(t.resolve(k, 12345, 4096), Ok(Resolved::Null));
    }

    #[test]
    fn unknown_key_faults() {
        let t = MkeyTable::new();
        assert_eq!(
            t.resolve(MkeyId(99), 0, 1),
            Err(AccessError::UnknownKey(MkeyId(99)))
        );
    }

    #[test]
    fn indirect_key_implements_figure5_layout() {
        // Root key with M = 1024-byte slots; message i lands in slot i.
        let mut t = MkeyTable::new();
        let buf0 = t.insert_direct(0, 1024);
        let buf1 = t.insert_direct(4096, 1024);
        let root = t.insert_indirect(1024, 4);
        t.set_indirect_slot(root, 0, Some(buf0));
        t.set_indirect_slot(root, 1, Some(buf1));

        // Offset 100 → slot 0 at inner offset 100.
        assert_eq!(t.resolve(root, 100, 4), Ok(Resolved::Addr(100)));
        // Offset 1024+8 → slot 1 at inner offset 8 → 4096+8.
        assert_eq!(t.resolve(root, 1032, 4), Ok(Resolved::Addr(4104)));
        // Slot 2 is empty.
        assert_eq!(t.resolve(root, 2048, 4), Err(AccessError::EmptySlot));
        // Slot out of range.
        assert_eq!(t.resolve(root, 4096, 4), Err(AccessError::OutOfBounds));
    }

    #[test]
    fn completed_message_slot_redirects_to_null() {
        // The late-packet protection flips a slot from the buffer key to the
        // NULL key; subsequent writes resolve to Null (and will still CQE).
        let mut t = MkeyTable::new();
        let buf = t.insert_direct(0, 1024);
        let null = t.insert_null();
        let root = t.insert_indirect(1024, 2);
        t.set_indirect_slot(root, 0, Some(buf));
        assert_eq!(t.resolve(root, 0, 8), Ok(Resolved::Addr(0)));
        t.set_indirect_slot(root, 0, Some(null));
        assert_eq!(t.resolve(root, 0, 8), Ok(Resolved::Null));
    }

    #[test]
    fn straddling_writes_fault() {
        let mut t = MkeyTable::new();
        let buf = t.insert_direct(0, 4096);
        let root = t.insert_indirect(1024, 4);
        t.set_indirect_slot(root, 0, Some(buf));
        t.set_indirect_slot(root, 1, Some(buf));
        assert_eq!(t.resolve(root, 1000, 100), Err(AccessError::OutOfBounds));
    }

    #[test]
    fn indirection_depth_is_bounded() {
        let mut t = MkeyTable::new();
        // Create a self-referential chain root -> root.
        let root = t.insert_indirect(1024, 1);
        t.set_indirect_slot(root, 0, Some(root));
        assert_eq!(t.resolve(root, 0, 4), Err(AccessError::TooDeep));
    }

    #[test]
    fn memory_alloc_write_read_roundtrip() {
        let mut m = Memory::new(4096);
        let a = m.alloc(128);
        let b = m.alloc(128);
        assert_ne!(a, b);
        m.write(b, &[1, 2, 3]);
        assert_eq!(m.read(b, 3), &[1, 2, 3]);
        m.fill(b, 3, 0);
        assert_eq!(m.read(b, 3), &[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "node memory exhausted")]
    fn memory_exhaustion_panics() {
        let mut m = Memory::new(100);
        m.alloc(101);
    }
}
