//! Scripted fault injection for links.
//!
//! A [`FaultPlan`] is a timed script of channel events — loss steps,
//! Gilbert–Elliott parameter shifts, diurnal drift, hard blackout windows,
//! and up/down flaps — applied to one link (or a duplex pair) through
//! [`Fabric::apply_fault_plan`](crate::Fabric::apply_fault_plan). Every
//! event rides a cancellable engine timer, so a plan can be torn down
//! mid-script via the returned [`FaultHandle`].
//!
//! Because the fabric draws packet fates at *delivery* time (see
//! [`Link::pop_due`](crate::Link::pop_due)), every event in a plan affects
//! packets already in flight when it fires: a blackout beginning at `t`
//! claims the whole in-flight window, not just packets posted after `t`.

use crate::loss::LossModel;
use crate::time::SimTime;

/// One timed channel event in a [`FaultPlan`].
#[derive(Clone, Debug)]
pub enum FaultEvent {
    /// At `at`, replace the link's loss model ([`Link::set_loss`]
    /// semantics: the process restarts in the good state). Use with a
    /// [`LossModel::GilbertElliott`] model to script a burst-parameter
    /// shift, or [`LossModel::Iid`] for a plain loss step.
    ///
    /// [`Link::set_loss`]: crate::Link::set_loss
    SetLoss {
        /// Absolute instant the new model takes effect.
        at: SimTime,
        /// The replacement model.
        model: LossModel,
    },
    /// Hard outage: the link is down for `[at, at + duration)`. Every
    /// packet reaching its delivery instant inside the window — including
    /// packets in flight when it opens — is dropped. The underlying loss
    /// process is untouched (its RNG stream is not consumed), so the
    /// post-heal drop pattern is exactly what it would have been.
    Blackout {
        /// Outage start.
        at: SimTime,
        /// Outage length (the link heals at `at + duration`).
        duration: SimTime,
    },
    /// Repeated down/up cycles starting at `at`: down for `down`, up for
    /// `up`, `cycles` times. The link is left up after the last cycle.
    Flap {
        /// First down transition.
        at: SimTime,
        /// Down/up cycles to run.
        cycles: u32,
        /// Outage length per cycle.
        down: SimTime,
        /// Healed length per cycle.
        up: SimTime,
    },
    /// Endpoint crash/restart: at `at`, the chosen endpoint of the pair
    /// crashes — its incarnation is bumped, every packet in flight toward
    /// it and all volatile NIC state at it (posted recvs, inboxes,
    /// unpolled completions, in-progress receive reassembly) is dropped —
    /// and the NIC re-attaches after `dead_time`. Packets arriving during
    /// the dead window are dropped at the NIC port. Registered memory
    /// survives (delivered bytes persist, as does anything the layer
    /// above checkpointed).
    PeerRestart {
        /// Crash instant.
        at: SimTime,
        /// Which endpoint of the `(a, b)` pair restarts.
        side: RestartSide,
        /// How long the endpoint stays dead before re-attaching (> 0).
        dead_time: SimTime,
    },
    /// Diurnal loss drift: starting at `at`, the i.i.d. drop rate sweeps
    /// geometrically from `floor_p` up to `peak_p` and back over each
    /// `period`, stepped `steps` times per period, for `cycles` periods
    /// (then rests at `floor_p`). Models the paper's Figure 2: drop rates
    /// swinging orders of magnitude with ISP congestion over the day.
    Drift {
        /// Sweep start.
        at: SimTime,
        /// Length of one full floor → peak → floor sweep.
        period: SimTime,
        /// Loss-model updates per period (≥ 2).
        steps: u32,
        /// Off-peak drop probability (must be > 0 so the geometric sweep
        /// is well-defined).
        floor_p: f64,
        /// Peak drop probability (≥ `floor_p`).
        peak_p: f64,
        /// Periods to run before resting at `floor_p` (≥ 1; plans are
        /// finite so a drained engine means a finished plan).
        cycles: u32,
    },
}

/// Which endpoint of the link pair a [`FaultEvent::PeerRestart`] hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartSide {
    /// The first node of the `(a, b)` pair handed to
    /// [`Fabric::apply_fault_plan`](crate::Fabric::apply_fault_plan).
    A,
    /// The second node of the pair.
    B,
}

impl FaultEvent {
    /// The instant the event first fires.
    pub fn start(&self) -> SimTime {
        match *self {
            FaultEvent::SetLoss { at, .. }
            | FaultEvent::Blackout { at, .. }
            | FaultEvent::Flap { at, .. }
            | FaultEvent::PeerRestart { at, .. }
            | FaultEvent::Drift { at, .. } => at,
        }
    }

    /// Validates the event's parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            FaultEvent::SetLoss { model, .. } => model.validate(),
            FaultEvent::Blackout { duration, .. } => {
                if *duration == SimTime::ZERO {
                    Err("blackout duration must be positive".into())
                } else {
                    Ok(())
                }
            }
            FaultEvent::PeerRestart { dead_time, .. } => {
                if *dead_time == SimTime::ZERO {
                    Err("restart dead time must be positive".into())
                } else {
                    Ok(())
                }
            }
            FaultEvent::Flap {
                cycles, down, up, ..
            } => {
                if *cycles == 0 {
                    Err("flap needs at least one cycle".into())
                } else if *down == SimTime::ZERO || *up == SimTime::ZERO {
                    Err("flap dwell times must be positive".into())
                } else {
                    Ok(())
                }
            }
            FaultEvent::Drift {
                period,
                steps,
                floor_p,
                peak_p,
                cycles,
                ..
            } => {
                if *period == SimTime::ZERO {
                    Err("drift period must be positive".into())
                } else if *steps < 2 {
                    Err("drift needs at least two steps per period".into())
                } else if *cycles == 0 {
                    Err("drift needs at least one cycle".into())
                } else if !(*floor_p > 0.0 && *floor_p <= 1.0) {
                    Err(format!("drift floor_p = {floor_p} must be in (0, 1]"))
                } else if !(*peak_p >= *floor_p && *peak_p <= 1.0) {
                    Err(format!("drift peak_p = {peak_p} must be in [floor_p, 1]"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// A scripted schedule of channel faults for one link (or duplex pair).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The timed events; order is irrelevant (each schedules its own
    /// timers).
    pub events: Vec<FaultEvent>,
    /// Apply each event to both directions of the pair.
    pub duplex: bool,
}

impl FaultPlan {
    /// An empty single-direction plan (builder style).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// An empty duplex plan (builder style).
    pub fn new_duplex() -> Self {
        FaultPlan {
            events: Vec::new(),
            duplex: true,
        }
    }

    /// Appends an event (builder style).
    pub fn with(mut self, ev: FaultEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// Validates every event in the plan.
    pub fn validate(&self) -> Result<(), String> {
        for ev in &self.events {
            ev.validate()?;
        }
        Ok(())
    }
}

/// The armed timers of an applied [`FaultPlan`] — one per event. Dropping
/// the handle leaves the plan running; [`cancel`](Self::cancel) stops
/// every event that has not fully played out.
#[derive(Debug, Default)]
pub struct FaultHandle {
    pub(crate) timers: Vec<crate::equeue::TimerHandle>,
}

impl FaultHandle {
    /// Cancels every still-scheduled event timer of the plan. Cancelling
    /// mid-window leaves the link in whatever state the last fired event
    /// put it (a blackout whose heal timer is cancelled stays down).
    pub fn cancel(&self, eng: &mut crate::engine::Engine) {
        for &h in &self.timers {
            eng.cancel(h);
        }
    }

    /// Number of event timers the plan armed.
    pub fn timer_count(&self) -> usize {
        self.timers.len()
    }
}
