//! Wire-level packet representation and endpoint addressing.

use bytes::Bytes;

/// Identifies a node (an endpoint host/NIC pair) in the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A queue pair number, unique within its node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QpNum(pub u32);

/// A completion queue id, unique within its node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CqId(pub u32);

/// A memory key id, unique within its node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MkeyId(pub u32);

/// Fully-qualified queue pair address: node + QP number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QpAddr {
    /// The node hosting the QP.
    pub node: NodeId,
    /// The QP number on that node.
    pub qp: QpNum,
}

/// Position of a packet within a multi-packet RDMA Write message.
///
/// SDR issues one Write-with-immediate *per packet* (`Only`), precisely to
/// avoid the UC expected-PSN behaviour that discards whole multi-packet
/// messages on reordering or loss (paper §3.2.1). `First/Middle/Last` exist
/// so the simulator can also model that conventional behaviour, both for the
/// RC baseline and for the ablation experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteSeg {
    /// A single-packet message.
    Only,
    /// First packet of a multi-packet message (carries mkey + offset).
    First,
    /// Middle packet.
    Middle,
    /// Last packet (carries the immediate, if any).
    Last,
}

/// What a packet asks the receiving NIC to do.
#[derive(Clone, Debug, PartialEq)]
pub enum PacketKind {
    /// One-sided RDMA Write (optionally with immediate data).
    Write {
        /// Segment position within the message.
        seg: WriteSeg,
        /// Remote memory key; meaningful on `Only`/`First` segments.
        mkey: MkeyId,
        /// Byte offset within the mkey's address range.
        offset: u64,
        /// Immediate data, delivered as a receive CQE on `Only`/`Last`.
        imm: Option<u32>,
        /// Sender-computed payload checksum (CRC32C over the posted
        /// message), delivered alongside `imm` in the receive CQE. The
        /// fabric carries it opaquely — it models integrity bits in the
        /// transport header, so wire *payload* corruption does not touch
        /// it and the receiver can compare it against what landed.
        crc: Option<u32>,
    },
    /// Two-sided send (UD datagram or connected send).
    Send {
        /// Immediate data, if any.
        imm: Option<u32>,
    },
    /// Transport-level acknowledgment (used by the RC baseline).
    Ack {
        /// Cumulative acknowledgment: all PSNs `< psn` received.
        psn: u32,
        /// `true` if this is a negative acknowledgment requesting a
        /// go-back-N rewind to `psn`.
        nak: bool,
    },
}

/// A packet in flight.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Originating QP.
    pub src: QpAddr,
    /// Destination QP.
    pub dst: QpAddr,
    /// Packet sequence number within the sender's QP.
    pub psn: u32,
    /// Operation requested.
    pub kind: PacketKind,
    /// Payload bytes (cheaply cloneable slice).
    pub payload: Bytes,
}

impl Packet {
    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_is_cheap_to_clone() {
        let payload = Bytes::from(vec![7u8; 1 << 20]);
        let p = Packet {
            src: QpAddr {
                node: NodeId(0),
                qp: QpNum(1),
            },
            dst: QpAddr {
                node: NodeId(1),
                qp: QpNum(2),
            },
            psn: 9,
            kind: PacketKind::Send { imm: Some(4) },
            payload,
        };
        let q = p.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(p.payload.as_ptr(), q.payload.as_ptr());
        assert_eq!(q.payload_len(), 1 << 20);
    }
}
