//! Differential proof that the timing-wheel and binary-heap engine
//! backends execute identical `(time, seq)` orders.
//!
//! The wheel replaced the heap as the default queue in PR 5; the heap is
//! retained (`SDR_SIM_QUEUE=heap`, [`Engine::with_queue`]) precisely so
//! this suite can keep proving the two are observationally equivalent —
//! over randomized workloads of one-shot schedules, nested schedules,
//! recurring events, cancels and re-arms, the full execution trace
//! (fire time + firing order + executed/pending counters) must match
//! exactly. A second set of directed tests stresses the cancel-while-firing
//! window and the cancelled-timer accounting rules.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use sdr_sim::{Engine, QueueKind, SimTime, TimerHandle};

/// One step of a randomized queue workload, interpreted identically on
/// both backends.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Schedule a one-shot at `now + dt` that logs `tag`.
    Once { dt: u64, tag: u32 },
    /// Schedule a one-shot at `now + dt` that logs `tag` and, when it
    /// fires, schedules a nested one-shot `dt2` later logging `tag + 1`.
    Nested { dt: u64, dt2: u64, tag: u32 },
    /// Schedule a recurring event at `now + dt` with period `period`,
    /// firing `count` times, logging `tag` each fire.
    Recurring {
        dt: u64,
        period: u64,
        count: u32,
        tag: u32,
    },
    /// Cancel the `k`-th handle created so far (modulo live count).
    Cancel { k: usize },
    /// Re-arm the `k`-th handle to `now + dt`.
    Reschedule { k: usize, dt: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> + Clone {
    (0u32..6, 0u64..5_000_000, 0u64..600_000, 0usize..64, 1u32..5).prop_map(
        |(which, dt, dt2, k, count)| match which {
            0 | 1 => Op::Once {
                dt,
                tag: dt as u32 ^ 0x5151,
            },
            2 => Op::Nested {
                dt,
                dt2,
                tag: dt as u32 ^ 0xA3A3,
            },
            3 => Op::Recurring {
                dt,
                period: dt2 + 1,
                count,
                tag: dt as u32 ^ 0x77,
            },
            4 => Op::Cancel { k },
            _ => Op::Reschedule { k, dt },
        },
    )
}

/// Executes the op program on one backend and returns the trace:
/// `(log of (fire-time, tag), executed, pending, final now)`.
fn run_program(kind: QueueKind, ops: &[Op]) -> (Vec<(u64, u32)>, u64, usize, u64) {
    let mut eng = Engine::with_queue(kind);
    let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
    let handles: Rc<RefCell<Vec<TimerHandle>>> = Rc::new(RefCell::new(Vec::new()));

    // Interleave scheduling with execution: every op happens inside its
    // own driver event so cancels/re-arms race real queue state. Driver
    // events ride one recurring timer at a fixed cadence, like a protocol
    // control loop would.
    let ops: Vec<Op> = ops.to_vec();
    let mut i = 0usize;
    let (l, h) = (log.clone(), handles.clone());
    eng.schedule_recurring_at(SimTime(0), move |eng| {
        let op = ops[i];
        i += 1;
        match op {
            Op::Once { dt, tag } => {
                let l = l.clone();
                let hd = eng.schedule_in_handle(SimTime(dt), move |e| {
                    l.borrow_mut().push((e.now().0, tag));
                });
                h.borrow_mut().push(hd);
            }
            Op::Nested { dt, dt2, tag } => {
                let l = l.clone();
                let hd = eng.schedule_in_handle(SimTime(dt), move |e| {
                    l.borrow_mut().push((e.now().0, tag));
                    let l2 = l.clone();
                    e.schedule_in(SimTime(dt2), move |e| {
                        l2.borrow_mut().push((e.now().0, tag.wrapping_add(1)));
                    });
                });
                h.borrow_mut().push(hd);
            }
            Op::Recurring {
                dt,
                period,
                count,
                tag,
            } => {
                let l = l.clone();
                let mut left = count;
                let hd = eng.schedule_recurring_in(SimTime(dt), move |e| {
                    l.borrow_mut().push((e.now().0, tag));
                    left -= 1;
                    (left > 0).then(|| e.now() + SimTime(period))
                });
                h.borrow_mut().push(hd);
            }
            Op::Cancel { k } => {
                let hs = h.borrow();
                if !hs.is_empty() {
                    let hd = hs[k % hs.len()];
                    drop(hs);
                    eng.cancel(hd);
                }
            }
            Op::Reschedule { k, dt } => {
                let hs = h.borrow();
                if !hs.is_empty() {
                    let hd = hs[k % hs.len()];
                    drop(hs);
                    eng.reschedule(hd, eng.now() + SimTime(dt));
                }
            }
        }
        (i < ops.len()).then(|| eng.now() + SimTime(100_000))
    });

    eng.run();
    let trace = log.borrow().clone();
    (
        trace,
        eng.executed_events(),
        eng.pending_events(),
        eng.now().0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The backbone differential: arbitrary schedule/cancel/re-arm
    /// programs produce byte-identical execution traces on both backends.
    #[test]
    fn wheel_and_heap_execute_identical_orders(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let wheel = run_program(QueueKind::Wheel, &ops);
        let heap = run_program(QueueKind::Heap, &ops);
        prop_assert_eq!(&wheel.0, &heap.0, "fire traces diverge");
        prop_assert_eq!(wheel.1, heap.1, "executed-event counts diverge");
        prop_assert_eq!(wheel.2, heap.2, "pending counts diverge");
        prop_assert_eq!(wheel.3, heap.3, "final times diverge");
    }

    /// Loaded-queue ordering: N events at random times (many collisions)
    /// pop in exact (time, schedule-order) on the wheel.
    #[test]
    fn loaded_wheel_pops_sorted_stable(
        times in proptest::collection::vec(0u64..2_000_000, 1..400),
    ) {
        let mut eng = Engine::with_queue(QueueKind::Wheel);
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &t) in times.iter().enumerate() {
            let l = log.clone();
            eng.schedule_at(SimTime(t), move |e| l.borrow_mut().push((e.now().0, i)));
        }
        eng.run();
        let got = log.borrow().clone();
        let mut want: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        // Stable by time: equal times keep schedule order.
        want.sort_by_key(|&(t, _)| t);
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------------
// Directed cancel / accounting stress
// ---------------------------------------------------------------------------

fn on_both(f: impl Fn(&mut Engine)) {
    for kind in [QueueKind::Wheel, QueueKind::Heap] {
        let mut eng = Engine::with_queue(kind);
        f(&mut eng);
    }
}

/// A same-instant chain where each firing event cancels the next: only
/// every other event runs, on both backends, and the cancelled ones are
/// neither executed nor charged.
#[test]
fn cancel_chain_at_one_instant() {
    on_both(|eng| {
        let t = SimTime::from_nanos(5);
        let handles: Rc<RefCell<Vec<TimerHandle>>> = Rc::new(RefCell::new(Vec::new()));
        let fired: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10 {
            let (h, f) = (handles.clone(), fired.clone());
            let hd = eng.schedule_at_handle(t, move |e| {
                f.borrow_mut().push(i);
                // Cancel the successor (if any): it must not fire.
                let hs = h.borrow();
                if let Some(&next) = hs.get(i + 1) {
                    drop(hs);
                    assert!(e.cancel(next), "successor was pending");
                }
            });
            handles.borrow_mut().push(hd);
        }
        eng.run();
        assert_eq!(*fired.borrow(), vec![0, 2, 4, 6, 8]);
        assert_eq!(eng.executed_events(), 5, "cancelled events are not charged");
        assert_eq!(eng.pending_events(), 0);
    });
}

/// Cancel-while-firing: a recurring event is cancelled *by another event*
/// in the gap where its body has been taken for execution at the same
/// instant. The re-arm must be suppressed.
#[test]
fn cancel_while_firing_suppresses_rearm() {
    on_both(|eng| {
        let slot: Rc<RefCell<Option<TimerHandle>>> = Rc::new(RefCell::new(None));
        let fires = Rc::new(RefCell::new(0u32));
        let f = fires.clone();
        let s = slot.clone();
        // The recurring event fires first (scheduled first at t), then the
        // killer — then the recurrence would fire again one period later
        // if the cancel failed to reach the firing node.
        let h = eng.schedule_recurring_at(SimTime::from_nanos(10), move |e| {
            *f.borrow_mut() += 1;
            // Schedule the killer at the same instant, *after* this body
            // began executing: it runs within the same tick.
            let s2 = s.clone();
            e.schedule_at(e.now(), move |e| {
                let h = s2.borrow().expect("stored");
                assert!(e.cancel(h), "firing node is cancellable");
                assert!(!e.cancel(h), "second cancel is stale");
            });
            Some(e.now() + SimTime::from_nanos(10))
        });
        *slot.borrow_mut() = Some(h);
        eng.run();
        assert_eq!(*fires.borrow(), 1, "cancel mid-fire kills the recurrence");
        assert_eq!(eng.pending_events(), 0);
    });
}

/// Dense churn around cancel/re-arm of *many* timers parked in one far
/// slot: exercises tombstone reaping in cascades.
#[test]
fn mass_cancel_in_far_slots_reaps_lazily() {
    on_both(|eng| {
        let fired = Rc::new(RefCell::new(0u32));
        let mut handles = Vec::new();
        // 1000 timers parked several wheel levels out.
        for i in 0..1000u64 {
            let f = fired.clone();
            handles.push(
                eng.schedule_at_handle(SimTime::from_micros(100) + SimTime(i), move |_| {
                    *f.borrow_mut() += 1
                }),
            );
        }
        assert_eq!(eng.pending_events(), 1000);
        // Cancel three quarters of them before time moves at all.
        for (i, h) in handles.iter().enumerate() {
            if i % 4 != 0 {
                assert!(eng.cancel(*h));
            }
        }
        assert_eq!(eng.pending_events(), 250);
        eng.set_event_limit(250);
        eng.run();
        assert_eq!(
            *fired.borrow(),
            250,
            "every survivor fires within the limit"
        );
        assert_eq!(eng.executed_events(), 250);
        assert_eq!(eng.pending_events(), 0);
    });
}

/// Re-arm storms: a timer rescheduled many times fires exactly once, at
/// the last deadline, in fresh FIFO rank.
#[test]
fn rearm_storm_fires_once_at_final_deadline() {
    on_both(|eng| {
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let h = eng.schedule_at_handle(SimTime::from_nanos(10), move |_| l.borrow_mut().push(1));
        // Bounce it across levels, ending at 777ns.
        for t in [5_000u64, 80, 2_000_000, 40, 777] {
            assert!(eng.reschedule(h, SimTime::from_nanos(t)));
        }
        let l = log.clone();
        eng.schedule_at(SimTime::from_nanos(777), move |_| l.borrow_mut().push(2));
        eng.run();
        // Handle re-ranked at its last reschedule: the plain event at the
        // same instant was scheduled after it, so fires after it.
        assert_eq!(*log.borrow(), vec![1, 2]);
        assert_eq!(eng.executed_events(), 2);
        assert!(
            !eng.reschedule(h, SimTime::from_nanos(9999)),
            "fired handle is stale"
        );
    });
}

/// The event limit interacts with cancellation: a runaway chain is capped
/// by executed events only — parked cancelled timers do not eat budget.
#[test]
fn event_limit_counts_only_real_executions() {
    on_both(|eng| {
        // 100 far-future timers, all cancelled.
        let doomed: Vec<TimerHandle> = (0..100)
            .map(|_| eng.schedule_at_handle(SimTime::from_secs(5), |_| panic!("cancelled")))
            .collect();
        for h in doomed {
            eng.cancel(h);
        }
        // A 10-deep chain under a limit of 10 completes fully.
        let depth = Rc::new(RefCell::new(0u32));
        fn chain(eng: &mut Engine, d: Rc<RefCell<u32>>, left: u32) {
            if left == 0 {
                return;
            }
            eng.schedule_in(SimTime::from_nanos(1), move |e| {
                *d.borrow_mut() += 1;
                let d2 = d.clone();
                chain(e, d2, left - 1);
            });
        }
        chain(eng, depth.clone(), 10);
        eng.set_event_limit(10);
        eng.run();
        assert_eq!(*depth.borrow(), 10, "the cancelled timers cost no budget");
    });
}
