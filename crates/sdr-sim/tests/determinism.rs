//! The substrate's reproducibility contract: identical seeds give
//! bit-identical simulations; different seeds give different drop patterns.
//! Every experiment in the repository leans on this.

use bytes::Bytes;
use sdr_sim::{Engine, Fabric, LinkConfig, LossModel, NodeStats, QpAddr, QpType, WriteWr};

fn run_once(seed: u64) -> (NodeStats, u64) {
    let mut eng = Engine::new();
    let fab = Fabric::new();
    let a = fab.add_node(1 << 22);
    let b = fab.add_node(1 << 22);
    let cfg = LinkConfig::intra_dc(8e9)
        .with_loss(LossModel::Iid { p: 0.1 })
        .with_seed(seed);
    fab.link_duplex(a, b, cfg);
    let qa = fab.node_mut(a, |n| {
        let cq = n.create_cq();
        n.create_qp(QpType::Uc, cq, cq)
    });
    let qb = fab.node_mut(b, |n| {
        let cq = n.create_cq();
        n.create_qp(QpType::Uc, cq, cq)
    });
    fab.node_mut(a, |n| n.connect_qp(qa, QpAddr { node: b, qp: qb }));
    fab.node_mut(b, |n| n.connect_qp(qb, QpAddr { node: a, qp: qa }));
    let mr = fab.node_mut(b, |n| n.alloc_mr(1 << 21));
    for i in 0..50u64 {
        fab.post_uc_write_per_packet(
            &mut eng,
            QpAddr { node: a, qp: qa },
            WriteWr {
                remote_mkey: mr.mkey,
                remote_offset: 0,
                data: Bytes::from(vec![i as u8; 32 * 1024]),
                imm: None,
                crc: None,
                wr_id: i,
                signaled: false,
            },
        )
        .unwrap();
    }
    eng.run();
    (fab.node(b, |n| n.stats()), eng.executed_events())
}

#[test]
fn same_seed_is_bit_identical() {
    let (s1, e1) = run_once(1234);
    let (s2, e2) = run_once(1234);
    assert_eq!(s1.writes_landed, s2.writes_landed);
    assert_eq!(s1.cqes, s2.cqes);
    assert_eq!(e1, e2, "event counts must match exactly");
}

#[test]
fn different_seeds_differ() {
    let (s1, _) = run_once(1);
    let (s2, _) = run_once(2);
    // 400 packets at 10% loss: landing counts colliding across seeds is
    // possible but (with these two seeds) does not happen.
    assert_ne!(s1.writes_landed, s2.writes_landed);
}

#[test]
fn loss_rate_is_respected_in_aggregate() {
    let (s, _) = run_once(99);
    // 50 messages × 8 packets = 400 offered, ~10% dropped.
    let landed = s.writes_landed as f64;
    assert!(
        landed > 400.0 * 0.8 && landed < 400.0 * 0.98,
        "landed {landed}"
    );
}
