//! Differential coverage for the log-linear histogram: its quantiles must
//! track the exact order statistics `sdr-model` computes for the paper's
//! figures (`sdr-model/src/stats.rs` backs `sdr-model/src/quantile.rs`'s
//! analytic-vs-stochastic cross-check), within the bucket scheme's
//! guaranteed ≤ 1/32 relative error plus interpolation slack.

use proptest::collection::vec;
use proptest::prelude::*;
use sdr_model::stats::percentile_sorted;
use sdr_trace::Histogram;

/// The histogram takes the ceiling rank and returns the bucket's *upper*
/// edge; the exact reference interpolates between adjacent order
/// statistics (ranks that differ from the ceiling rank by at most one).
/// Both must therefore land inside the same one-order-statistic bracket,
/// widened by the bucket scheme's 1/32 relative error.
fn check_quantile(sorted: &[f64], h: &Histogram, q: f64) {
    let exact = percentile_sorted(sorted, q);
    let got = h.value_at_quantile(q) as f64;
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    let sample = sorted[rank];
    // Tight per-convention check: the histogram's answer is the upper
    // bucket edge of its rank's sample — within 1/32 above it.
    assert!(
        got >= sample && got <= sample * (1.0 + 1.0 / 32.0) + 1.0,
        "q={q}: histogram {got} vs rank sample {sample} (n={n})"
    );
    // Differential vs the exact interpolated quantile: both answers lie
    // in the bracket spanned by the neighboring order statistics.
    let lo = sorted[rank.saturating_sub(1)];
    let hi = sorted[(rank + 1).min(n - 1)] * (1.0 + 1.0 / 32.0) + 1.0;
    for (label, v) in [("histogram", got), ("exact", exact)] {
        assert!(
            v >= lo && v <= hi,
            "q={q}: {label} {v} outside bracket [{lo}, {hi}] (n={n})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Log-linear quantiles vs exact order statistics over random samples
    /// spanning six orders of magnitude.
    #[test]
    fn quantiles_track_exact_order_statistics(
        samples in vec(0u64..10_000_000, 1usize..400)
    ) {
        let h = Histogram::default();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(h.count() == samples.len() as u64);
        for q in [0.5, 0.9, 0.99, 0.999] {
            check_quantile(&sorted, &h, q);
        }
        // Exact extremes are tracked outside the buckets.
        prop_assert!(h.max() == *samples.iter().max().unwrap());
        prop_assert!(h.min() == *samples.iter().min().unwrap());
    }

    /// Heavy-tailed shape (powers spanning the whole octave range): the
    /// relative-error bound must hold far from the linear region too.
    #[test]
    fn quantiles_hold_across_octaves(shifts in vec(0u32..60, 2usize..64)) {
        let h = Histogram::default();
        let samples: Vec<u64> = shifts.iter().map(|&s| 1u64 << s).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.99] {
            check_quantile(&sorted, &h, q);
        }
    }
}

/// Directed saturation test: the top of the `u64` range lands in the
/// final (overflow) bucket without wrapping, quantiles stay ordered, and
/// the exact max is reported rather than a quantized bucket edge.
#[test]
fn saturating_values_land_in_the_overflow_bucket() {
    let h = Histogram::default();
    h.record(u64::MAX);
    h.record(u64::MAX - 1);
    h.record(1);
    assert_eq!(h.count(), 3);
    assert_eq!(h.max(), u64::MAX);
    assert_eq!(h.min(), 1);
    // p999 must reach the overflow bucket and be capped at the exact max.
    assert_eq!(h.p999(), u64::MAX);
    assert!(h.p50() >= 1);
    // Quantiles are monotone even against the saturated bucket.
    assert!(h.p50() <= h.p99() && h.p99() <= h.p999());
    // The mean saturates arithmetically but must not panic or wrap into
    // nonsense ordering against the max.
    assert!(h.mean() <= u64::MAX as f64 * 1.001);
}
