//! # sdr-trace — unified metrics registry + sim-time flight recorder
//!
//! ## Observability
//!
//! The paper's whole premise (§5.2, Fig. 2) is that WAN channel behavior
//! drifts three orders of magnitude over hours; a stack that *adapts* to
//! that drift is only operable if its internal decisions are observable.
//! Before this crate the workspace had eleven disjoint `*Stats` structs
//! and, when a chaos case failed, the only evidence was a replay seed and
//! a panic message — the rich state (estimator trajectories, switch
//! decisions, RTO fires, DRR occupancy, slot parks) evaporated. This
//! crate is the one observability layer every other crate threads
//! through:
//!
//! * [`Registry`] — a named set of [`Counter`]s, [`Gauge`]s and
//!   log-linear [`Histogram`]s. Handles are registered once at setup
//!   (the only allocating step) and recorded lock-free on hot paths: an
//!   increment is a branch on a relaxed atomic (the kill switch) plus a
//!   relaxed `fetch_add`. Warm paths allocate **nothing** — asserted by
//!   the counting-allocator suite in `sdr-reliability/tests/flow_alloc.rs`.
//! * [`Histogram`] — HDR-style log-linear buckets: 32 linear sub-buckets
//!   per power of two over the full `u64` range (1920 fixed buckets,
//!   ≤ 1/32 relative error), with `p50`/`p99`/`p999` quantile queries by
//!   cumulative scan. Values are whatever unit the call site picks
//!   (microseconds for latencies, counts for batch sizes).
//! * [`FlightRecorder`] — a fixed-capacity ring of compact structured
//!   [`Event`]s (`{at_ps, kind, a, b}`), one recorder per simulated
//!   node, recording scheme starts/handovers, `SwitchPropose`/`SwitchAck`,
//!   RTO fires/backoff, slot park/drain, fault injections, incarnation
//!   bumps and abort/resume transitions stamped with picosecond sim time.
//!   On an assertion failure the last-N-events timelines from both nodes
//!   are dumped next to the replay key ([`FlightRecorder::timeline`]),
//!   turning "case 1234 failed" into a readable two-node causal history.
//! * **Kill switch** — [`set_enabled`] / the `SDR_TRACE` environment
//!   variable (`SDR_TRACE=0` disables). Disabled, every record call
//!   compiles down to one relaxed atomic load and a branch; the
//!   `flow_sweep` bench gates that enabling metrics costs ≤ 2% goodput.
//!
//! Ownership convention across the workspace: the sim `Engine` owns a
//! registry for substrate metrics (events executed, wheel cascade depth);
//! the `Fabric` owns a registry for everything above it (links, control
//! plane, flows, adaptive decisions) plus one `FlightRecorder` per node.
//! Reliability objects reach them through the `Fabric` handle they
//! already hold, so no plumbing changes at call sites.
//!
//! The crate is dependency-free: timestamps are raw `u64` picoseconds
//! (the same unit as `sdr_sim::SimTime`), so `sdr-sim` can depend on it
//! without a cycle.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Kill switch
// ---------------------------------------------------------------------------

/// 0 = uninitialized (read `SDR_TRACE` on first use), 1 = on, 2 = off.
static STATE: AtomicU8 = AtomicU8::new(0);

#[cold]
fn init_from_env() -> bool {
    let on = match std::env::var("SDR_TRACE") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("off")),
        Err(_) => true,
    };
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Whether recording is live. One relaxed atomic load on the warm path;
/// the first call reads the `SDR_TRACE` environment variable (default on,
/// `SDR_TRACE=0` disables).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_from_env(),
    }
}

/// Flips the process-wide kill switch. Metrics and recorder state are
/// retained — only future record calls are gated.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// A monotone event counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (a no-op while the kill switch is off).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins signed gauge. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value (a no-op while the kill switch is off).
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Log-linear histogram
// ---------------------------------------------------------------------------

/// Linear sub-buckets per power of two: 2^5 = 32 ⇒ ≤ 1/32 relative error.
const SUB_BITS: usize = 5;
const SUB: usize = 1 << SUB_BITS;
/// 32 linear buckets below 32, then 59 octaves (msb 5..=63) × 32.
const BUCKETS: usize = SUB + (64 - SUB_BITS) * SUB;

/// Maps a value to its bucket. Identity below 32; above, the bucket key
/// is `(msb, next 5 bits)`, which is continuous at octave boundaries
/// (`bucket(31) = 31`, `bucket(32) = 32`, `bucket(64) = 64`).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let octave = msb - SUB_BITS + 1;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    octave * SUB + sub
}

/// Smallest value mapping to bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        ((SUB + i % SUB) as u64) << (i / SUB - 1)
    }
}

/// Largest value mapping to bucket `i` (the quantile representative: the
/// true sample is ≤ this and within 1/32 below it).
fn bucket_high(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_low(i + 1) - 1
    }
}

struct HistogramCore {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

/// An HDR-style log-linear histogram over `u64` values: fixed bucket
/// array (no allocation after construction), lock-free recording,
/// quantiles by cumulative scan with ≤ 1/32 relative error. Cloning
/// shares the underlying buckets.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        let buckets: Box<[AtomicU64; BUCKETS]> = (0..BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .try_into()
            .unwrap_or_else(|_| unreachable!("BUCKETS-sized vec"));
        Histogram(Arc::new(HistogramCore {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }))
    }
}

impl Histogram {
    /// Records one value (a no-op while the kill switch is off).
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.0.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded value (exact, not bucket-quantized).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (exact; 0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.0.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper edge of the first
    /// bucket whose cumulative count reaches `ceil(q · n)` (so the true
    /// sample at that rank is ≤ the returned value and within 1/32 of it).
    /// Returns 0 on an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // The exact max beats the bucket edge for the top bucket.
                return bucket_high(i).min(self.max());
            }
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// 99.9th percentile — the paper's tail metric.
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named set of metrics. Registration (`counter`/`gauge`/`histogram`)
/// is the cold path and idempotent: re-registering a name returns the
/// existing handle, so independent subsystems can share a metric without
/// coordination. Cloning the registry shares the set.
#[derive(Clone, Default)]
pub struct Registry {
    slots: Arc<Mutex<BTreeMap<String, Slot>>>,
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or retrieves) the counter `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Counter::default()))
        {
            Slot::Counter(c) => c.clone(),
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// Registers (or retrieves) the gauge `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Gauge::default()))
        {
            Slot::Gauge(g) => g.clone(),
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// Registers (or retrieves) the histogram `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Histogram::default()))
        {
            Slot::Histogram(h) => h.clone(),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Current value of counter `name` (0 when unregistered) — a
    /// convenience for reports that read someone else's metric.
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.slots.lock().unwrap().get(name) {
            Some(Slot::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.slots.lock().unwrap();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => counters.push((name.clone(), c.get())),
                Slot::Gauge(g) => gauges.push((name.clone(), g.get())),
                Slot::Histogram(h) => histograms.push((
                    name.clone(),
                    HistSummary {
                        count: h.count(),
                        mean: h.mean(),
                        min: h.min(),
                        p50: h.p50(),
                        p99: h.p99(),
                        p999: h.p999(),
                        max: h.max(),
                    },
                )),
            }
        }
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Quantile summary of one histogram at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistSummary {
    /// Recorded values.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Exact minimum.
    pub min: u64,
    /// Median (≤ 1/32 relative error).
    pub p50: u64,
    /// 99th percentile (≤ 1/32 relative error).
    pub p99: u64,
    /// 99.9th percentile (≤ 1/32 relative error).
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
}

/// A point-in-time copy of a [`Registry`], ready to embed in a
/// `BENCH_*.json` or print next to a failure.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistSummary)>,
}

impl Snapshot {
    /// The snapshot as one JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {..}}}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}\"{name}\": {v}");
        }
        s.push_str("}, \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}\"{name}\": {v}");
        }
        s.push_str("}, \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(
                s,
                "{sep}\"{name}\": {{\"count\": {}, \"mean\": {:.3}, \"min\": {}, \
                 \"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
                h.count, h.mean, h.min, h.p50, h.p99, h.p999, h.max
            );
        }
        s.push_str("}}");
        s
    }

    /// Human-readable multi-line rendering (one metric per line).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(s, "  {name:<40} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(s, "  {name:<40} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                s,
                "  {name:<40} n={} mean={:.1} p50={} p99={} p999={} max={}",
                h.count, h.mean, h.p50, h.p99, h.p999, h.max
            );
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// What happened, compactly. The `a`/`b` payloads of [`Event`] are
/// kind-specific (documented per variant as `a` / `b`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum EventKind {
    /// A scheme segment started. `a` = epoch, `b` = scheme discriminant.
    SchemeStart,
    /// A handover committed. `a` = epoch it applies from, `b` = scheme.
    SchemeHandover,
    /// `SwitchPropose` sent. `a` = handshake seq, `b` = proposed scheme.
    SwitchPropose,
    /// `SwitchAck` sent or accepted. `a` = handshake seq, `b` = epoch.
    SwitchAck,
    /// RTO expiry drained. `a` = transfer/flow id, `b` = chunks expired.
    RtoFire,
    /// RTO backoff exponent climbed. `a` = transfer/flow id, `b` = exponent.
    RtoBackoff,
    /// An open parked for want of a receive slot. `a` = flow id.
    SlotPark,
    /// A parked open drained into a slot. `a` = flow id.
    SlotDrain,
    /// Fault injection: loss model replaced. `a`/`b` unused.
    FaultLoss,
    /// Fault injection: blackout. `a` = 1 down / 0 healed, `b` = duration ps.
    FaultBlackout,
    /// Fault injection: flap edge. `a` = 1 down / 0 up, `b` = cycles left.
    FaultFlap,
    /// Fault injection: peer restart. `a` = node id, `b` = dead time ps.
    FaultRestart,
    /// Fault injection: diurnal drift step. `a` = step, `b` = loss ppm.
    FaultDrift,
    /// Control-plane incarnation bumped. `a` = node id, `b` = incarnation.
    Incarnation,
    /// A transfer aborted. `a` = transfer/flow id, `b` = reason discriminant.
    Abort,
    /// A transfer resumed. `a` = transfer/flow id, `b` = segments remaining.
    Resume,
}

impl EventKind {
    /// Stable kebab-case label used by timelines and JSON dumps.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SchemeStart => "scheme-start",
            EventKind::SchemeHandover => "scheme-handover",
            EventKind::SwitchPropose => "switch-propose",
            EventKind::SwitchAck => "switch-ack",
            EventKind::RtoFire => "rto-fire",
            EventKind::RtoBackoff => "rto-backoff",
            EventKind::SlotPark => "slot-park",
            EventKind::SlotDrain => "slot-drain",
            EventKind::FaultLoss => "fault-loss",
            EventKind::FaultBlackout => "fault-blackout",
            EventKind::FaultFlap => "fault-flap",
            EventKind::FaultRestart => "fault-restart",
            EventKind::FaultDrift => "fault-drift",
            EventKind::Incarnation => "incarnation",
            EventKind::Abort => "abort",
            EventKind::Resume => "resume",
        }
    }
}

/// One recorded event: picosecond sim-time stamp, kind, two payload words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Sim time in picoseconds (`sdr_sim::SimTime.0`).
    pub at_ps: u64,
    /// What happened.
    pub kind: EventKind,
    /// First kind-specific payload (see [`EventKind`]).
    pub a: u64,
    /// Second kind-specific payload (see [`EventKind`]).
    pub b: u64,
}

struct Ring {
    buf: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Total events ever recorded (≥ `buf.len()`).
    recorded: u64,
}

/// A fixed-capacity per-node ring of [`Event`]s. The buffer is allocated
/// once at construction; recording into it never allocates. Cloning
/// shares the ring (the usual shape: the fabric owns one per node, every
/// layer on that node records into it).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Rc<RefCell<Ring>>,
    cap: usize,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` events (capacity ≥ 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity >= 1, "flight recorder needs capacity");
        FlightRecorder {
            inner: Rc::new(RefCell::new(Ring {
                buf: Vec::with_capacity(capacity),
                head: 0,
                recorded: 0,
            })),
            cap: capacity,
        }
    }

    /// Records one event (a no-op while the kill switch is off).
    #[inline]
    pub fn record(&self, at_ps: u64, kind: EventKind, a: u64, b: u64) {
        if !enabled() {
            return;
        }
        let mut r = self.inner.borrow_mut();
        let ev = Event { at_ps, kind, a, b };
        if r.buf.len() < self.cap {
            r.buf.push(ev); // within pre-reserved capacity: no allocation
        } else {
            let head = r.head;
            r.buf[head] = ev;
            r.head = (head + 1) % self.cap;
        }
        r.recorded += 1;
    }

    /// Total events ever recorded (including ones the ring has evicted).
    pub fn recorded(&self) -> u64 {
        self.inner.borrow().recorded
    }

    /// The retained events, oldest first (recording order — monotone in
    /// sim time when the recording site is a single engine).
    pub fn events(&self) -> Vec<Event> {
        let r = self.inner.borrow();
        let mut out = Vec::with_capacity(r.buf.len());
        out.extend_from_slice(&r.buf[r.head..]);
        out.extend_from_slice(&r.buf[..r.head]);
        out
    }

    /// Human-readable timeline of the last `last_n` events, one per line:
    /// `[      12.345678 ms] scheme-handover   a=2 b=1`.
    pub fn timeline(&self, last_n: usize) -> String {
        let events = self.events();
        let skip = events.len().saturating_sub(last_n);
        let mut s = String::new();
        if skip > 0 {
            let _ = writeln!(s, "  … {skip} earlier events elided …");
        }
        for ev in &events[skip..] {
            let _ = writeln!(
                s,
                "  [{:>14.6} ms] {:<16} a={} b={}",
                ev.at_ps as f64 / 1e9,
                ev.kind.label(),
                ev.a,
                ev.b
            );
        }
        if events.is_empty() {
            s.push_str("  (no events recorded)\n");
        }
        s
    }

    /// The last `last_n` events as a JSON array of
    /// `{"at_ps": .., "kind": "..", "a": .., "b": ..}` objects.
    pub fn to_json(&self, last_n: usize) -> String {
        let events = self.events();
        let skip = events.len().saturating_sub(last_n);
        let mut s = String::from("[");
        for (i, ev) in events[skip..].iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(
                s,
                "{sep}{{\"at_ps\": {}, \"kind\": \"{}\", \"a\": {}, \"b\": {}}}",
                ev.at_ps,
                ev.kind.label(),
                ev.a,
                ev.b
            );
        }
        s.push(']');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exhaustive near the linear/log boundary, sampled above.
        let mut prev = 0usize;
        for v in 0u64..4096 {
            let b = bucket_index(v);
            assert!(b >= prev, "bucket({v}) regressed");
            assert!(bucket_low(b) <= v && v <= bucket_high(b), "v={v} b={b}");
            prev = b;
        }
        for shift in 5u32..64 {
            for off in [0u64, 1, 31] {
                let v = (1u64 << shift) + (off << (shift.saturating_sub(5)));
                let b = bucket_index(v);
                assert!(bucket_low(b) <= v && v <= bucket_high(b));
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_within_one_thirty_second() {
        for v in [100u64, 1000, 12_345, 1 << 20, u64::MAX / 3] {
            let b = bucket_index(v);
            let width = bucket_high(b) - bucket_low(b);
            assert!(
                (width as f64) <= bucket_low(b) as f64 / 32.0 + 1.0,
                "v={v}: width {width} vs low {}",
                bucket_low(b)
            );
        }
    }

    #[test]
    fn histogram_quantiles_on_a_ramp() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        let p50 = h.p50();
        assert!((485..=516).contains(&p50), "p50 {p50}");
        let p99 = h.p99();
        assert!((960..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn registry_is_idempotent_and_kind_checked() {
        let r = Registry::new();
        let c1 = r.counter("x");
        let c2 = r.counter("x");
        c1.inc();
        c2.add(2);
        assert_eq!(r.counter_value("x"), 3);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("x".into(), 3)]);
        assert!(snap.to_json().contains("\"x\": 3"));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        let _ = r.gauge("x");
        let _ = r.counter("x");
    }

    #[test]
    fn recorder_wraps_and_keeps_order() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(i * 100, EventKind::RtoFire, i, 0);
        }
        assert_eq!(rec.recorded(), 10);
        let evs = rec.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(
            evs.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert!(evs.windows(2).all(|w| w[0].at_ps <= w[1].at_ps));
        let tl = rec.timeline(3);
        assert!(tl.contains("rto-fire"));
        assert!(tl.contains("elided"));
        assert!(rec.to_json(4).starts_with('['));
    }

    #[test]
    fn kill_switch_gates_recording() {
        set_enabled(true);
        let c = Counter::default();
        let h = Histogram::default();
        let rec = FlightRecorder::new(2);
        c.inc();
        h.record(5);
        rec.record(1, EventKind::Abort, 0, 0);
        set_enabled(false);
        c.inc();
        h.record(5);
        rec.record(2, EventKind::Abort, 0, 0);
        set_enabled(true);
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 1);
        assert_eq!(rec.recorded(), 1);
    }
}
