//! The software-defined scheme runtime (§4): the shared building blocks
//! reliability schemes are composed from.
//!
//! The paper's central architectural claim is that reliability is
//! *software-defined*: SDR exposes a partial-completion bitmap and leaves
//! the scheme — Selective Repeat, Erasure Coding, Go-Back-N, or anything
//! else — to host software composed from a small set of common mechanisms.
//! This module is that mechanism layer. Each scheme in this crate is a thin
//! *policy* over it:
//!
//! * [`tick_loop`] — **timer management**: one recurring engine event
//!   (boxed once, re-armed in place) that runs until the policy says
//!   [`Tick::Stop`]. Every scheme's retransmission scan, bitmap poll and
//!   ACK cadence runs on it. Policies whose next action has a known time
//!   return [`Tick::Until`] and *sleep to the deadline* — the SR sender
//!   sleeps to its earliest chunk RTO and the GBN sender to its base
//!   timer, instead of polling every quarter-RTT — and the returned
//!   [`TimerHandle`] lets completion cancel the loop outright.
//! * [`ChunkTimers`] — **retransmission timers + ACK bookkeeping** for ARQ
//!   senders: per-chunk last-send stamps, acked flags with a monotone
//!   first-unacked cursor, RTO expiry scans and the NACK double-send guard.
//! * [`StreamTx`] — **sender message-slot lifecycle**: open-on-CTS,
//!   whole-message injection, chunk/window retransmission and stream close
//!   over one [`SdrQp`] streaming send.
//! * [`begin_on_cts`] / [`wire_ctrl`] — **control-endpoint dispatch**: the
//!   begin-now-or-on-credit hook and the handler plumbing every scheme
//!   needs to react to CTS credits and [`CtrlMsg`] datagrams.
//! * [`Completion`] — **report plumbing**: the exactly-once done callback
//!   with the transfer's start instant.
//! * [`RxDriver`] + [`RxScheme`] — the **receiver driver**: posts buffers,
//!   polls at a fixed cadence, heals lost CTS credits, fires the done
//!   callback exactly once, repeats the final ACK for `linger` ticks to
//!   tolerate ACK loss, and releases every receive slot exactly once.
//!
//! `sr.rs`, `ec.rs` and `gbn.rs` contain only what is genuinely different
//! between the schemes: the ACK wire policy and the repair rule. Adding a
//! new scheme means implementing [`RxScheme`] plus a sender policy — no new
//! timer, lifecycle or control plumbing.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use sdr_core::{RecvHandle, SdrQp, SendHandle, TwoLevelBitmap};
use sdr_sim::{Engine, EventKind, FlightRecorder, QpAddr, SimTime, TimerHandle};

use crate::ack::CtrlMsg;
use crate::control::CtrlPath;
use crate::telemetry::{ChannelEstimator, FirstPassCursor};

// ---------------------------------------------------------------------------
// Failure semantics
// ---------------------------------------------------------------------------

/// Maximum retransmission-timeout backoff exponent: an unacknowledged
/// timeout at most doubles the effective RTO this many times (a 64× cap),
/// mirroring `sdr_sim::rc::RTO_BACKOFF_CAP`. The cap bounds the post-heal
/// discovery latency after a long blackout while still collapsing the
/// retransmission storm to O(log blackout / RTO) copies per chunk.
pub const RTO_BACKOFF_CAP: u32 = 6;

/// Why a transfer ended without delivering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The transfer's deadline expired before delivery.
    Deadline,
    /// The local application tore the transfer down.
    Requested,
    /// The peer announced an abort on the control path.
    Peer,
    /// The local endpoint crashed and restarted: volatile protocol state
    /// is gone, but registered memory — and the receiver's
    /// [`DeliveryManifest`] checkpoint — survives for a resume.
    Restart,
    /// The end-to-end digest check failed: wire corruption survived the
    /// packet-level checksums (a corrupted duplicate overwrote memory
    /// whose bitmap bit was already set) and the delivered bytes would
    /// have been wrong. A clean abort — never a silent corruption.
    Corrupt,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Deadline => write!(f, "deadline"),
            AbortReason::Requested => write!(f, "requested"),
            AbortReason::Peer => write!(f, "peer"),
            AbortReason::Restart => write!(f, "restart"),
            AbortReason::Corrupt => write!(f, "corrupt"),
        }
    }
}

/// Per-segment completion checkpoint of an adaptive transfer.
///
/// The receiver marks a segment delivered the instant its scheme receiver
/// completes (every byte of the segment landed and verified). The manifest
/// lives in host memory above the NIC, so it **survives an abort and a
/// crash/restart** — it is exactly what
/// [`TransferOutcome::Aborted`] hands back, and what
/// [`AdaptiveController::resume_receiver`] resumes from: only segments not
/// marked delivered are retransmitted, and delivered bytes are never
/// re-sent.
///
/// [`AdaptiveController::resume_receiver`]: crate::adapt::AdaptiveController::resume_receiver
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryManifest {
    msg_bytes: u64,
    segment_bytes: u64,
    /// Bit `i` = segment `i` fully delivered. `total_segments()` bits.
    done: Vec<u64>,
}

impl DeliveryManifest {
    /// An all-undelivered manifest for a `msg_bytes` transfer partitioned
    /// into `segment_bytes` segments.
    pub fn new(msg_bytes: u64, segment_bytes: u64) -> Self {
        assert!(msg_bytes > 0, "empty transfer");
        assert!(segment_bytes > 0, "zero segment size");
        let n = msg_bytes.div_ceil(segment_bytes);
        DeliveryManifest {
            msg_bytes,
            segment_bytes,
            done: vec![0; (n as usize).div_ceil(64)],
        }
    }

    /// Total message length in bytes.
    pub fn msg_bytes(&self) -> u64 {
        self.msg_bytes
    }

    /// Segment (submessage) size the message is partitioned into.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Number of segments in the partition.
    pub fn total_segments(&self) -> u32 {
        self.msg_bytes.div_ceil(self.segment_bytes) as u32
    }

    /// `(offset, len)` of segment `i` within the message.
    pub fn segment(&self, i: u32) -> (u64, u64) {
        let off = i as u64 * self.segment_bytes;
        debug_assert!(off < self.msg_bytes);
        (off, self.segment_bytes.min(self.msg_bytes - off))
    }

    /// Marks segment `i` delivered; returns `true` when newly marked.
    pub fn mark_delivered(&mut self, i: u32) -> bool {
        debug_assert!(i < self.total_segments());
        let (w, b) = (i as usize / 64, i % 64);
        let newly = self.done[w] >> b & 1 == 0;
        self.done[w] |= 1 << b;
        newly
    }

    /// True when segment `i` has been delivered.
    pub fn is_delivered(&self, i: u32) -> bool {
        self.done[i as usize / 64] >> (i % 64) & 1 == 1
    }

    /// Segments delivered so far.
    pub fn delivered_segments(&self) -> u32 {
        self.done.iter().map(|w| w.count_ones()).sum()
    }

    /// Bytes delivered so far (sum of delivered segment lengths).
    pub fn delivered_bytes(&self) -> u64 {
        (0..self.total_segments())
            .filter(|&i| self.is_delivered(i))
            .map(|i| self.segment(i).1)
            .sum()
    }

    /// True once every segment is delivered.
    pub fn is_complete(&self) -> bool {
        self.delivered_segments() == self.total_segments()
    }

    /// Indices of the segments not yet delivered, in offset order — the
    /// resume plan both ends rebuild identically from the same manifest.
    pub fn undelivered(&self) -> Vec<u32> {
        (0..self.total_segments())
            .filter(|&i| !self.is_delivered(i))
            .collect()
    }

    /// Serializes for the [`CtrlMsg::ResumeState`] wire reply.
    ///
    /// [`CtrlMsg::ResumeState`]: crate::ack::CtrlMsg::ResumeState
    pub(crate) fn encode_into(&self, b: &mut bytes::BytesMut) {
        use bytes::BufMut;
        b.put_u64_le(self.msg_bytes);
        b.put_u64_le(self.segment_bytes);
        for w in &self.done {
            b.put_u64_le(*w);
        }
    }

    /// Parses a wire manifest; `None` on malformed input (bad geometry,
    /// truncation, or stray bits past the last segment).
    pub(crate) fn decode_from(buf: &mut bytes::Bytes) -> Option<Self> {
        use bytes::Buf;
        if buf.remaining() < 16 {
            return None;
        }
        let msg_bytes = buf.get_u64_le();
        let segment_bytes = buf.get_u64_le();
        if msg_bytes == 0 || segment_bytes == 0 {
            return None;
        }
        let n = msg_bytes.div_ceil(segment_bytes);
        // A control datagram caps at a couple KiB; reject absurd segment
        // counts before allocating.
        if n > (crate::ack::MAX_SACK_BITS * 64) as u64 {
            return None;
        }
        let words = (n as usize).div_ceil(64);
        if buf.remaining() < words * 8 {
            return None;
        }
        let done: Vec<u64> = (0..words).map(|_| buf.get_u64_le()).collect();
        let tail = n as usize % 64;
        if tail != 0 && done[words - 1] >> tail != 0 {
            return None; // bits past the last segment
        }
        Some(DeliveryManifest {
            msg_bytes,
            segment_bytes,
            done,
        })
    }
}

/// How a transfer ended: delivered byte-identical, or aborted with a
/// reason. Every scheme report carries one, so an aborted transfer reports
/// `Aborted{..}` instead of hanging its completion callback. An adaptive
/// *receiver* abort additionally carries the [`DeliveryManifest`]
/// checkpoint a resume restarts from; scheme-level and sender-side aborts
/// carry `None` (the sender learns delivery state from the peer's
/// `ResumeState`, never from local guesses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransferOutcome {
    /// Every byte was delivered and acknowledged.
    Delivered,
    /// The transfer was torn down before delivery.
    Aborted {
        /// Why it was torn down.
        reason: AbortReason,
        /// The receiver's per-segment completion checkpoint, when this
        /// side maintains one (adaptive receiver aborts).
        manifest: Option<DeliveryManifest>,
    },
}

impl TransferOutcome {
    /// An aborted outcome with no manifest (scheme-level and sender-side
    /// teardowns).
    pub fn aborted(reason: AbortReason) -> Self {
        TransferOutcome::Aborted {
            reason,
            manifest: None,
        }
    }

    /// True for the delivered outcome.
    pub fn is_delivered(&self) -> bool {
        matches!(self, TransferOutcome::Delivered)
    }

    /// The abort reason, when aborted.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match self {
            TransferOutcome::Delivered => None,
            TransferOutcome::Aborted { reason, .. } => Some(*reason),
        }
    }

    /// The surviving delivery checkpoint, when aborted with one.
    pub fn manifest(&self) -> Option<&DeliveryManifest> {
        match self {
            TransferOutcome::Delivered => None,
            TransferOutcome::Aborted { manifest, .. } => manifest.as_ref(),
        }
    }
}

impl std::fmt::Display for TransferOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferOutcome::Delivered => write!(f, "delivered"),
            TransferOutcome::Aborted { reason, manifest } => match manifest {
                Some(m) => write!(
                    f,
                    "aborted({reason}, {}/{} segments delivered)",
                    m.delivered_segments(),
                    m.total_segments()
                ),
                None => write!(f, "aborted({reason})"),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Timer management
// ---------------------------------------------------------------------------

/// Outcome of one recurring tick: run again after the interval, sleep to a
/// deadline, or stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tick {
    /// Re-arm the tick one interval from now.
    Again,
    /// Sleep until the given absolute deadline (clamped a tick past now) —
    /// the path schemes whose next action has a *known* time take (the
    /// earliest RTO expiry, the FTO, a linger deadline) instead of polling
    /// every interval.
    Until(SimTime),
    /// Tear the tick down (the protocol object is done).
    Stop,
}

/// Runs `f` at `interval` cadence (or at the deadlines it returns via
/// [`Tick::Until`]) until it returns [`Tick::Stop`]. The first invocation
/// happens one interval from now.
///
/// The loop is one recurring engine event re-armed in place — the closure
/// is boxed exactly once for the lifetime of the loop (the old
/// implementation re-boxed a shim closure every tick). The returned
/// [`TimerHandle`] lets the owner [`cancel`](Engine::cancel) the loop the
/// moment the protocol completes (so a deadline sleep never outlives the
/// transfer and stretches the simulation) or
/// [`reschedule`](Engine::reschedule) it when an external event moves the
/// next deadline earlier.
pub fn tick_loop(
    eng: &mut Engine,
    interval: SimTime,
    mut f: impl FnMut(&mut Engine) -> Tick + 'static,
) -> TimerHandle {
    eng.schedule_recurring_in(interval, move |eng| match f(eng) {
        Tick::Again => Some(eng.now().saturating_add(interval)),
        // Clamp: a deadline at-or-before now would re-fire at the same
        // instant forever; one tick of slack keeps buggy policies visible
        // (event limit) without wedging the instant.
        Tick::Until(t) => Some(t.max(eng.now().saturating_add(SimTime(1)))),
        Tick::Stop => None,
    })
}

// ---------------------------------------------------------------------------
// Retransmission timers
// ---------------------------------------------------------------------------

/// Per-chunk retransmission state for ARQ senders: acked flags, last-send
/// stamps, a monotone first-unacked cursor and an exponential RTO backoff.
///
/// Acks are monotone while a message is live, so the cursor never rewinds —
/// the expiry scan and `first_unacked` are amortized O(1) per chunk over
/// the transfer, not O(total) per tick.
///
/// **Backoff**: each expiry scan that retransmits anything doubles the
/// effective timeout (`base << backoff`, capped at [`RTO_BACKOFF_CAP`]);
/// any ACK progress (a chunk newly acked) resets it. On a live channel
/// ACKs flow every RTT, so the backoff stays at zero and behavior matches
/// a fixed RTO; during a blackout no ACKs arrive, the scan cadence decays
/// geometrically, and each chunk is retransmitted O(log outage/RTO) times
/// instead of outage/RTO times. Karn's rule still governs RTT *sampling*
/// ([`rtt_sample`](Self::rtt_sample)) — only never-retransmitted chunks
/// yield samples.
pub struct ChunkTimers {
    acked: Vec<bool>,
    acked_count: usize,
    last_sent: Vec<SimTime>,
    /// Chunks that have been retransmitted at least once — their ACK
    /// round-trips are ambiguous (Karn's rule) and never yield RTT samples.
    resent: Vec<bool>,
    cursor: usize,
    /// Current RTO backoff exponent (`0..=RTO_BACKOFF_CAP`).
    backoff: u32,
    /// Optional flight-recorder binding `(recorder, transfer id)`: RTO
    /// scans that fire record [`EventKind::RtoFire`]/[`EventKind::RtoBackoff`]
    /// stamped with the transfer id, so chaos forensics can reconstruct
    /// the retransmission clock of a failing transfer.
    trace: Option<(FlightRecorder, u64)>,
}

impl ChunkTimers {
    /// Timers for a message of `total` chunks, nothing sent or acked yet.
    pub fn new(total: usize) -> Self {
        ChunkTimers {
            acked: vec![false; total],
            acked_count: 0,
            last_sent: vec![SimTime::ZERO; total],
            resent: vec![false; total],
            cursor: 0,
            backoff: 0,
            trace: None,
        }
    }

    /// Binds a flight recorder: subsequent RTO scans that retransmit
    /// anything record `rto-fire` (b = chunks expired) and `rto-backoff`
    /// (b = new exponent) events under transfer `id`.
    pub fn set_trace(&mut self, rec: FlightRecorder, id: u64) {
        self.trace = Some((rec, id));
    }

    /// The current backoff exponent (zero while ACKs keep arriving).
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// The effective retransmission timeout: `base << backoff`.
    pub fn effective_timeout(&self, base: SimTime) -> SimTime {
        SimTime(base.0.saturating_mul(1u64 << self.backoff))
    }

    /// Total chunks tracked.
    pub fn total(&self) -> usize {
        self.acked.len()
    }

    /// Chunks acked so far.
    pub fn acked_count(&self) -> usize {
        self.acked_count
    }

    /// True once every chunk is acked.
    pub fn is_complete(&self) -> bool {
        self.acked_count == self.acked.len()
    }

    /// Stamps every chunk as sent at `now` (the initial whole-message
    /// injection).
    pub fn all_sent_at(&mut self, now: SimTime) {
        for t in self.last_sent.iter_mut() {
            *t = now;
        }
    }

    /// Stamps chunk `c` as (re)sent at `now`.
    pub fn record_sent(&mut self, c: usize, now: SimTime) {
        self.last_sent[c] = now;
    }

    /// Marks chunk `c` acked; returns `true` when it was newly acked.
    /// Out-of-range indices (a stale or corrupt ACK) are ignored. Any new
    /// ack is forward progress, so it resets the RTO backoff (the
    /// Karn-compliant *restart*: the retransmission clock returns to the
    /// base timeout, while RTT sampling stays governed by
    /// [`rtt_sample`](Self::rtt_sample)'s never-retransmitted rule).
    pub fn mark_acked(&mut self, c: usize) -> bool {
        if c < self.acked.len() && !self.acked[c] {
            self.acked[c] = true;
            self.acked_count += 1;
            self.backoff = 0;
            true
        } else {
            false
        }
    }

    /// Acks every chunk below `n` (a cumulative ACK point).
    pub fn ack_prefix(&mut self, n: usize) {
        for c in self.cursor..n.min(self.acked.len()) {
            self.mark_acked(c);
        }
        self.advance_cursor();
    }

    /// The lowest unacked chunk, if any (the GBN base / SR scan floor).
    pub fn first_unacked(&mut self) -> Option<usize> {
        self.advance_cursor();
        (self.cursor < self.acked.len()).then_some(self.cursor)
    }

    /// When chunk `c` has been unacked for at least `timeout` since its
    /// last send, stamps it sent-now and returns `true` — the claim step
    /// shared by RTO expiry and the NACK fast path (the guard keeps
    /// duplicate reports within one tick from double-sending).
    pub fn claim_for_resend(&mut self, c: usize, now: SimTime, timeout: SimTime) -> bool {
        if c < self.acked.len()
            && !self.acked[c]
            && now.saturating_sub(self.last_sent[c]) >= timeout
        {
            self.last_sent[c] = now;
            self.resent[c] = true;
            true
        } else {
            false
        }
    }

    /// Calls `f` for every unacked chunk whose timeout expired at `now`,
    /// stamping each as resent-now (the periodic RTO scan). The timeout in
    /// effect is `timeout << backoff`; a scan that retransmits anything
    /// doubles the backoff (capped at [`RTO_BACKOFF_CAP`]), so consecutive
    /// unproductive rounds — a blackout — space out geometrically. Returns
    /// the earliest next expiry among the chunks still unacked after the
    /// scan, computed under the *post-scan* backoff (`None` once
    /// everything is acked) — the deadline the sender's tick loop sleeps
    /// to instead of polling.
    pub fn take_expired(
        &mut self,
        now: SimTime,
        timeout: SimTime,
        mut f: impl FnMut(usize),
    ) -> Option<SimTime> {
        self.advance_cursor();
        let eff = self.effective_timeout(timeout);
        let mut fired = false;
        let mut expired = 0u64;
        let mut earliest_sent: Option<SimTime> = None;
        for c in self.cursor..self.acked.len() {
            if !self.acked[c] {
                if now.saturating_sub(self.last_sent[c]) >= eff {
                    self.last_sent[c] = now;
                    self.resent[c] = true;
                    fired = true;
                    expired += 1;
                    f(c);
                }
                let sent = self.last_sent[c];
                earliest_sent = Some(earliest_sent.map_or(sent, |n: SimTime| n.min(sent)));
            }
        }
        if fired {
            self.backoff = (self.backoff + 1).min(RTO_BACKOFF_CAP);
            if let Some((rec, id)) = &self.trace {
                rec.record(now.as_picos(), EventKind::RtoFire, *id, expired);
                rec.record(
                    now.as_picos(),
                    EventKind::RtoBackoff,
                    *id,
                    self.backoff as u64,
                );
            }
        }
        let eff_after = self.effective_timeout(timeout);
        earliest_sent.map(|s| s.saturating_add(eff_after))
    }

    /// The ACK round-trip of chunk `c` acked at `now`: `now − last_sent`,
    /// but only for chunks never retransmitted — a retransmitted chunk's
    /// ACK is ambiguous between copies (Karn's rule), so it yields no
    /// sample. Call right after [`mark_acked`](Self::mark_acked) reports a
    /// *newly* acked chunk; this is the telemetry feed for the adaptive
    /// controller's RTT estimate.
    pub fn rtt_sample(&self, c: usize, now: SimTime) -> Option<SimTime> {
        (c < self.acked.len() && !self.resent[c]).then(|| now.saturating_sub(self.last_sent[c]))
    }

    fn advance_cursor(&mut self) {
        while self.cursor < self.acked.len() && self.acked[self.cursor] {
            self.cursor += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Sender message-slot lifecycle
// ---------------------------------------------------------------------------

/// One streaming SDR send with chunk-granular retransmission: the sender
/// half of the message-slot lifecycle (open on CTS, inject, repair, close).
pub struct StreamTx {
    qp: SdrQp,
    local_addr: u64,
    msg_bytes: u64,
    chunk_bytes: u64,
    total_chunks: usize,
    hdl: Option<SendHandle>,
}

impl StreamTx {
    /// A not-yet-open stream for `[local_addr, local_addr + msg_bytes)`.
    pub fn new(qp: &SdrQp, local_addr: u64, msg_bytes: u64) -> Self {
        let chunk_bytes = qp.config().chunk_bytes;
        let total_chunks = qp.config().chunks_for(msg_bytes) as usize;
        StreamTx {
            qp: qp.clone(),
            local_addr,
            msg_bytes,
            chunk_bytes,
            total_chunks,
            hdl: None,
        }
    }

    /// Chunks in the message.
    pub fn total_chunks(&self) -> usize {
        self.total_chunks
    }

    /// True once the stream is open (the CTS credit arrived and the full
    /// message was injected).
    pub fn is_open(&self) -> bool {
        self.hdl.is_some()
    }

    /// Opens the stream and injects the whole message. Returns `false`
    /// (and does nothing) while the peer's CTS credit has not arrived;
    /// `true` when the stream is (or already was) open.
    pub fn try_begin(&mut self, eng: &mut Engine) -> bool {
        if self.hdl.is_some() {
            return true;
        }
        match self
            .qp
            .send_stream_start(eng, self.local_addr, self.msg_bytes, None)
        {
            Ok(hdl) => {
                self.qp
                    .send_stream_continue(eng, &hdl, 0, self.msg_bytes)
                    .expect("initial injection");
                self.hdl = Some(hdl);
                true
            }
            Err(_) => false,
        }
    }

    /// Retransmits chunk `c`.
    pub fn resend_chunk(&self, eng: &mut Engine, c: usize) {
        let hdl = self.hdl.expect("resend only after begin");
        let off = c as u64 * self.chunk_bytes;
        let len = self.chunk_bytes.min(self.msg_bytes - off);
        self.qp
            .send_stream_continue(eng, &hdl, off, len)
            .expect("retransmission");
    }

    /// Retransmits the window `[from, from + count)` clamped to the message
    /// (a Go-Back-N rewind). Returns how many chunks were re-injected.
    pub fn resend_window(&self, eng: &mut Engine, from: usize, count: usize) -> usize {
        let hdl = self.hdl.expect("resend only after begin");
        let end = (from + count).min(self.total_chunks);
        if from >= end {
            return 0;
        }
        let off = from as u64 * self.chunk_bytes;
        let len = (end as u64 * self.chunk_bytes).min(self.msg_bytes) - off;
        self.qp
            .send_stream_continue(eng, &hdl, off, len)
            .expect("rewind retransmission");
        end - from
    }

    /// Closes the stream (no further chunks will be injected).
    pub fn end(&self) {
        if let Some(hdl) = self.hdl {
            let _ = self.qp.send_stream_end(&hdl);
        }
    }

    /// Quiesces the stream — the exactly-once close the ARQ senders run at
    /// completion and a handover teardown can run early: idempotent
    /// (repeated calls and calls racing [`end`](Self::end) are no-ops) and
    /// drops the send handle so no later code path can inject into the old
    /// scheme's slot. Returns `true` when this call performed the close.
    pub fn quiesce(&mut self) -> bool {
        match self.hdl.take() {
            Some(hdl) => self.qp.send_stream_end(&hdl).is_ok(),
            None => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Control-endpoint dispatch
// ---------------------------------------------------------------------------

/// Installs `f` as `ep`'s control handler with the shared-state clone the
/// schemes all need: the handler gets the protocol object's `Rc` so it can
/// borrow it per message without keeping it borrowed across engine calls.
/// `ep` is any [`CtrlPath`] — the raw endpoint for static deployments, the
/// adaptive layer's epoch gate during adaptive transfers.
pub fn wire_ctrl<T: 'static>(
    ep: &Rc<dyn CtrlPath>,
    inner: &Rc<RefCell<T>>,
    mut f: impl FnMut(&Rc<RefCell<T>>, &mut Engine, QpAddr, CtrlMsg) + 'static,
) {
    let me = inner.clone();
    ep.install_handler(Box::new(move |eng, src, msg| f(&me, eng, src, msg)));
}

/// Runs `begin` now and, if it reports not-ready (`false`), re-runs it on
/// every future CTS credit — the begin-now-or-on-credit hook every sender
/// uses to start as soon as the receiver posts its buffer.
pub fn begin_on_cts<T: 'static>(
    eng: &mut Engine,
    qp: &SdrQp,
    inner: &Rc<RefCell<T>>,
    mut begin: impl FnMut(&Rc<RefCell<T>>, &mut Engine) -> bool + 'static,
) {
    if begin(inner, eng) {
        return;
    }
    let me = inner.clone();
    qp.set_cts_callback(move |eng, _seq, _len| {
        begin(&me, eng);
    });
}

// ---------------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------------

/// Exactly-once completion plumbing: the transfer's start instant plus the
/// scheme's done callback, armed once and never re-fired.
pub struct Completion<R> {
    started: Option<SimTime>,
    fired: bool,
    cb: Option<Box<dyn FnOnce(&mut Engine, R)>>,
}

impl<R> Completion<R> {
    /// Wraps the scheme's done callback.
    pub fn new(cb: impl FnOnce(&mut Engine, R) + 'static) -> Self {
        Completion {
            started: None,
            fired: false,
            cb: Some(Box::new(cb)),
        }
    }

    /// True once [`finish`](Self::finish) has run.
    pub fn is_done(&self) -> bool {
        self.fired
    }

    /// Records the first-injection instant (idempotent).
    pub fn mark_started(&mut self, now: SimTime) {
        self.started.get_or_insert(now);
    }

    /// The first-injection instant, if any.
    pub fn started(&self) -> Option<SimTime> {
        self.started
    }

    /// Elapsed time since the first injection (zero when never started).
    pub fn elapsed(&self, now: SimTime) -> SimTime {
        now.saturating_sub(self.started.unwrap_or(now))
    }

    /// Marks the transfer done and hands back the callback (exactly once;
    /// `None` on repeats). The caller invokes it *after* dropping any
    /// `RefCell` borrow of the protocol state, since the callback may
    /// re-enter the protocol object.
    pub fn finish(&mut self) -> Option<Box<dyn FnOnce(&mut Engine, R)>> {
        if self.fired {
            return None;
        }
        self.fired = true;
        self.cb.take()
    }
}

// ---------------------------------------------------------------------------
// Receiver driver
// ---------------------------------------------------------------------------

/// Scheme-independent receiver state: the QP, the control path to the peer
/// and the posted receive slots. Handed to the [`RxScheme`] on every tick.
pub struct RxCommon {
    qp: SdrQp,
    ctrl: Rc<dyn CtrlPath>,
    peer_ctrl: QpAddr,
    hdls: Vec<RecvHandle>,
    /// Channel telemetry, when bound: the estimator plus one first-pass
    /// cursor per posted slot. The driver scans after every scheme poll.
    telemetry: Option<(Rc<RefCell<ChannelEstimator>>, Vec<FirstPassCursor>)>,
}

impl RxCommon {
    /// Receiver plumbing over `qp` talking to `peer_ctrl` via `ctrl`.
    pub fn new(qp: &SdrQp, ctrl: Rc<dyn CtrlPath>, peer_ctrl: QpAddr) -> Self {
        RxCommon {
            qp: qp.clone(),
            ctrl,
            peer_ctrl,
            hdls: Vec::new(),
            telemetry: None,
        }
    }

    /// Binds a channel estimator: after every poll the driver first-pass
    /// scans each slot's packet bitmap and feeds the gap counts into it
    /// (the loss half of the telemetry loop; see
    /// [`telemetry`](crate::telemetry)).
    pub fn bind_estimator(&mut self, est: Rc<RefCell<ChannelEstimator>>) {
        let cursors = vec![FirstPassCursor::default(); self.hdls.len()];
        self.telemetry = Some((est, cursors));
    }

    /// Posts a receive buffer and tracks its slot for lifecycle management.
    /// Returns the handle's index among this receiver's slots.
    pub fn post(&mut self, eng: &mut Engine, addr: u64, len: u64) -> usize {
        let hdl = self.qp.recv_post(eng, addr, len).expect("receive post");
        self.hdls.push(hdl);
        if let Some((_, cursors)) = &mut self.telemetry {
            cursors.resize(self.hdls.len(), FirstPassCursor::default());
        }
        self.hdls.len() - 1
    }

    /// One telemetry pass: first-pass scan every slot's packet bitmap and
    /// feed the estimator. No-op without a bound estimator.
    fn feed_estimator(&mut self) {
        let Some((est, cursors)) = &mut self.telemetry else {
            return;
        };
        let (mut seen, mut lost) = (0u64, 0u64);
        for (i, hdl) in self.hdls.iter().enumerate() {
            if let Ok(bm) = self.qp.recv_bitmap(hdl) {
                let (s, l) = cursors[i].scan(bm.packets());
                seen += s;
                lost += l;
            }
        }
        if seen > 0 {
            est.borrow_mut().observe_packets(seen, lost);
        }
    }

    /// True once any packet has landed in any posted slot.
    pub fn any_packet(&self) -> bool {
        self.hdls.iter().any(|h| {
            self.qp
                .recv_bitmap(h)
                .is_ok_and(|bm| bm.packets().count_set() > 0)
        })
    }

    /// `(observed, total)` packet counts across the posted slots, where
    /// `observed` is each slot's first-pass high-water mark — how far the
    /// sender's injection has *reached*, independent of holes. The
    /// adaptive receiver posts the next segment once the outstanding
    /// remainder falls below its pipeline lead, keeping the wire full
    /// across segment boundaries.
    pub fn frontier(&self) -> (u64, u64) {
        let (mut observed, mut total) = (0u64, 0u64);
        for h in &self.hdls {
            if let Ok(bm) = self.qp.recv_bitmap(h) {
                let p = bm.packets();
                observed += p.highest_set().map_or(0, |x| x as u64 + 1);
                total += p.len() as u64;
            }
        }
        (observed, total)
    }

    /// Number of posted slots.
    pub fn slots(&self) -> usize {
        self.hdls.len()
    }

    /// The bitmap of posted slot `i`.
    pub fn bitmap(&self, i: usize) -> Arc<TwoLevelBitmap> {
        self.qp.recv_bitmap(&self.hdls[i]).expect("live handle")
    }

    /// Re-issues slot `i`'s CTS when nothing has arrived on it yet — the
    /// lost-credit healing every scheme performs on its poll cadence
    /// (CTS rides the unreliable control path). Returns `true` when the
    /// slot has seen at least one packet (schemes arm arrival-triggered
    /// timers off this).
    pub fn heal_cts(&self, eng: &mut Engine, i: usize, bitmap: &TwoLevelBitmap) -> bool {
        if bitmap.packets().count_set() == 0 {
            let _ = self.qp.resend_cts(eng, &self.hdls[i]);
            false
        } else {
            true
        }
    }

    /// Whether the QP records per-packet arrival CRCs (see
    /// [`SdrConfig::payload_checksums`](sdr_core::SdrConfig)). Schemes
    /// gate their staged-data audits on this to skip the read-back cost
    /// when there is nothing to compare against.
    pub fn payload_checksums(&self) -> bool {
        self.qp.config().payload_checksums
    }

    /// Re-checks `data` — the staged bytes of slot `i`'s chunk `chunk` —
    /// against the arrival CRCs the QP recorded as the packets landed.
    /// `false` means some packet was overwritten by a corrupted duplicate
    /// *after* its bit was recorded: the staged bytes are stale and must
    /// not feed a decode (a later clean duplicate heals the memory and
    /// the recorded CRCs in place, so a NACK-driven resend converges).
    /// Vacuously `true` when payload checksums are off.
    pub fn verify_chunk(&self, i: usize, chunk: usize, data: &[u8]) -> bool {
        let cfg = self.qp.config();
        let ppc = (cfg.chunk_bytes / cfg.mtu_bytes) as usize;
        self.qp
            .verify_packet_range(&self.hdls[i], chunk * ppc, data)
            .unwrap_or(true)
    }

    /// Sends a control message to the peer.
    pub fn send(&self, eng: &mut Engine, msg: &CtrlMsg) {
        self.ctrl.send_ctrl(eng, self.peer_ctrl, msg);
    }
}

/// A reliability scheme's receive policy: what to scan and what to say.
/// The [`RxDriver`] supplies the cadence, CTS healing access, completion
/// callback, linger repeats and the exactly-once slot release.
pub trait RxScheme: 'static {
    /// Scheme-specific payload for the done callback (receiver statistics).
    type Done;

    /// One bitmap poll: emit whatever control traffic the scheme calls for
    /// and return `true` once the whole message is delivered. Runs once
    /// per tick until it reports completion; must send the scheme's final
    /// positive ACK on the completing tick.
    fn poll(&mut self, eng: &mut Engine, rx: &mut RxCommon) -> bool;

    /// One post-completion tick: repeat the final ACK so its loss on the
    /// control path cannot strand the sender. Defaults to re-running
    /// [`poll`](Self::poll), which is the right repeat for every scheme
    /// whose completing-tick traffic *is* the final ACK.
    fn linger(&mut self, eng: &mut Engine, rx: &mut RxCommon) {
        let _ = self.poll(eng, rx);
    }

    /// The payload handed to the done callback at the completion instant.
    fn done_payload(&self) -> Self::Done;
}

struct RxState<S: RxScheme> {
    common: RxCommon,
    scheme: S,
    completed_at: Option<SimTime>,
    lingers_left: u32,
    released: bool,
    done_cb: Option<Box<dyn FnOnce(&mut Engine, SimTime, S::Done)>>,
    /// The poll loop's timer, for immediate teardown on quiesce.
    tick: Option<TimerHandle>,
}

/// The generic receiver driver: owns the poll tick, the completion
/// callback, the linger-ACK countdown and the exactly-once buffer release.
pub struct RxDriver<S: RxScheme> {
    inner: Rc<RefCell<RxState<S>>>,
}

impl<S: RxScheme> RxDriver<S> {
    /// Starts the receive loop: `scheme.poll` runs every `tick` until it
    /// reports completion; `done` then fires exactly once; the final ACK
    /// repeats for `linger_acks` further ticks before every posted slot is
    /// released (exactly once) and the loop stops.
    pub fn start(
        eng: &mut Engine,
        tick: SimTime,
        common: RxCommon,
        scheme: S,
        linger_acks: u32,
        done: impl FnOnce(&mut Engine, SimTime, S::Done) + 'static,
    ) -> Self {
        let inner = Rc::new(RefCell::new(RxState {
            common,
            scheme,
            completed_at: None,
            lingers_left: linger_acks,
            released: false,
            done_cb: Some(Box::new(done)),
            tick: None,
        }));
        let me = inner.clone();
        let h = tick_loop(eng, tick, move |eng| Self::tick(&me, eng));
        inner.borrow_mut().tick = Some(h);
        RxDriver { inner }
    }

    fn tick(inner: &Rc<RefCell<RxState<S>>>, eng: &mut Engine) -> Tick {
        let mut st = inner.borrow_mut();
        if st.released {
            return Tick::Stop;
        }
        let complete = {
            let RxState {
                common,
                scheme,
                completed_at,
                ..
            } = &mut *st;
            let complete = if completed_at.is_some() {
                scheme.linger(eng, common);
                true
            } else {
                scheme.poll(eng, common)
            };
            // Telemetry rides the same cadence as the scheme poll: scan
            // the bitmaps' new high-water ranges for first-pass gaps.
            common.feed_estimator();
            complete
        };
        if !complete {
            return Tick::Again;
        }
        if st.completed_at.is_none() {
            st.completed_at = Some(eng.now());
            if let Some(cb) = st.done_cb.take() {
                let (now, payload) = (eng.now(), st.scheme.done_payload());
                drop(st);
                cb(eng, now, payload);
                st = inner.borrow_mut();
            }
        }
        // Keep re-ACKing for a while (the final ACK can drop), then release
        // the buffers — exactly once.
        if st.lingers_left == 0 {
            let RxState {
                common, released, ..
            } = &mut *st;
            for h in &common.hdls {
                let _ = common.qp.recv_complete(eng, h);
            }
            *released = true;
            Tick::Stop
        } else {
            st.lingers_left -= 1;
            Tick::Again
        }
    }

    /// Quiesce-and-rebind support for scheme handovers: releases every
    /// posted slot *now* (exactly once — the same `released` latch the
    /// natural linger countdown uses, so racing the countdown is safe) and
    /// stops the poll loop on its next tick. The adaptive receiver calls
    /// this on a completed segment's driver once the sender's `SegDone`
    /// watermark confirms the final ACK round-trip — from then on the
    /// remaining linger repeats would only hold slots the successor scheme
    /// needs. Returns `true` when this call performed the release.
    pub fn quiesce(&self, eng: &mut Engine) -> bool {
        let mut st = self.inner.borrow_mut();
        if st.released {
            return false;
        }
        let RxState {
            common,
            released,
            tick,
            ..
        } = &mut *st;
        for h in &common.hdls {
            let _ = common.qp.recv_complete(eng, h);
        }
        *released = true;
        // Tear the poll loop down now instead of letting it wake once
        // more only to observe `released`.
        if let Some(h) = tick.take() {
            eng.cancel(h);
        }
        true
    }

    /// True once the scheme reported completion.
    pub fn is_complete(&self) -> bool {
        self.inner.borrow().completed_at.is_some()
    }

    /// The completion instant, if reached.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.inner.borrow().completed_at
    }

    /// True once every posted slot has been released back to the QP.
    pub fn is_released(&self) -> bool {
        self.inner.borrow().released
    }

    /// Reads scheme-specific state (mid-run statistics).
    pub fn scheme<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.inner.borrow().scheme)
    }

    /// True once any packet has landed in any of this driver's slots.
    pub fn any_packet(&self) -> bool {
        self.inner.borrow().common.any_packet()
    }

    /// `(observed, total)` packets across this driver's slots (see
    /// [`RxCommon::frontier`]).
    pub fn frontier(&self) -> (u64, u64) {
        self.inner.borrow().common.frontier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_timers_track_acks_and_cursor() {
        let mut t = ChunkTimers::new(4);
        assert_eq!(t.total(), 4);
        assert!(!t.is_complete());
        assert_eq!(t.first_unacked(), Some(0));
        assert!(t.mark_acked(1));
        assert!(!t.mark_acked(1), "re-ack is not new");
        assert!(!t.mark_acked(99), "out of range ignored");
        assert_eq!(t.first_unacked(), Some(0), "cursor stops at the hole");
        t.ack_prefix(2);
        assert_eq!(t.first_unacked(), Some(2));
        t.ack_prefix(4);
        assert!(t.is_complete());
        assert_eq!(t.first_unacked(), None);
    }

    #[test]
    fn chunk_timers_expiry_scan_and_claim_guard() {
        let mut t = ChunkTimers::new(3);
        let t0 = SimTime::from_secs_f64(1.0);
        let rto = SimTime::from_secs_f64(0.5);
        t.all_sent_at(t0);
        // Nothing expired right after sending; the deadline is one RTO out.
        let mut hits = Vec::new();
        let next = t.take_expired(t0, rto, |c| hits.push(c));
        assert!(hits.is_empty());
        assert_eq!(next, Some(t0 + rto), "sleep-to deadline is one RTO out");
        // After an RTO, every unacked chunk fires once and is re-stamped.
        let t1 = t0 + rto;
        t.mark_acked(1);
        let next = t.take_expired(t1, rto, |c| hits.push(c));
        assert_eq!(hits, vec![0, 2]);
        assert_eq!(
            next,
            Some(t1 + rto * 2),
            "a firing scan doubles the effective RTO (backoff)"
        );
        hits.clear();
        let _ = t.take_expired(t1, rto, |c| hits.push(c));
        assert!(hits.is_empty(), "stamped chunks do not re-fire");
        // The claim guard: a second claim within the guard window fails.
        let t2 = t1 + rto;
        assert!(t.claim_for_resend(0, t2, rto));
        assert!(!t.claim_for_resend(0, t2, rto), "double-send guarded");
        assert!(!t.claim_for_resend(1, t2, rto), "acked chunks never claim");
    }

    #[test]
    fn rtt_samples_follow_karns_rule() {
        let mut t = ChunkTimers::new(3);
        let t0 = SimTime::from_secs_f64(1.0);
        let rtt = SimTime::from_secs_f64(0.01);
        let rto = SimTime::from_secs_f64(0.05);
        t.all_sent_at(t0);
        // Chunk 0 acked on its first transmission: clean sample.
        assert!(t.mark_acked(0));
        assert_eq!(t.rtt_sample(0, t0 + rtt), Some(rtt));
        // Chunk 1 expires and is retransmitted: its later ACK is ambiguous.
        let _ = t.take_expired(t0 + rto, rto, |_| {});
        assert!(t.mark_acked(1));
        assert_eq!(t.rtt_sample(1, t0 + rto + rtt), None, "Karn's rule");
        // Out-of-range chunks never sample.
        assert_eq!(t.rtt_sample(99, t0), None);
    }

    #[test]
    fn rto_backoff_doubles_on_silence_and_resets_on_progress() {
        let mut t = ChunkTimers::new(2);
        let t0 = SimTime::ZERO;
        let rto = SimTime::from_secs_f64(0.1);
        t.all_sent_at(t0);
        assert_eq!(t.backoff(), 0);
        // Consecutive unproductive rounds: the backoff climbs one per
        // firing scan and saturates at the cap (64× the base RTO).
        let mut now = t0;
        for round in 1..=10u32 {
            now = now.saturating_add(t.effective_timeout(rto));
            let mut fired = 0;
            let next = t.take_expired(now, rto, |_| fired += 1);
            assert_eq!(fired, 2, "both chunks retransmit each round");
            assert_eq!(t.backoff(), round.min(RTO_BACKOFF_CAP));
            assert_eq!(next, Some(now + rto * (1u64 << t.backoff())));
        }
        assert_eq!(t.effective_timeout(rto), rto * 64, "capped at 64×");
        // ACK progress restarts the clock at the base timeout.
        assert!(t.mark_acked(0));
        assert_eq!(t.backoff(), 0);
        let next = t.take_expired(now, rto, |_| {});
        assert_eq!(next, Some(now + rto), "post-progress deadline is base RTO");
    }

    #[test]
    fn completion_fires_exactly_once_and_tracks_start() {
        let mut c: Completion<u32> = Completion::new(|_eng, _r| {});
        assert!(!c.is_done());
        let t1 = SimTime::from_secs_f64(1.0);
        let t2 = SimTime::from_secs_f64(3.0);
        c.mark_started(t1);
        c.mark_started(t2); // idempotent
        assert_eq!(c.started(), Some(t1));
        assert_eq!(c.elapsed(t2), t2.saturating_sub(t1));
        assert!(c.finish().is_some());
        assert!(c.is_done());
        assert!(c.finish().is_none(), "second finish yields nothing");
    }

    #[test]
    fn delivery_manifest_tracks_segments_and_bytes() {
        // 10 bytes in 4-byte segments: (0,4) (4,4) (8,2).
        let mut m = DeliveryManifest::new(10, 4);
        assert_eq!(m.total_segments(), 3);
        assert_eq!(m.segment(2), (8, 2));
        assert_eq!(m.delivered_bytes(), 0);
        assert!(!m.is_complete());
        assert!(m.mark_delivered(2));
        assert!(!m.mark_delivered(2), "re-mark is not new");
        assert_eq!(m.delivered_bytes(), 2, "tail segment is short");
        assert_eq!(m.undelivered(), vec![0, 1]);
        m.mark_delivered(0);
        m.mark_delivered(1);
        assert!(m.is_complete());
        assert_eq!(m.delivered_bytes(), 10);
        assert!(m.undelivered().is_empty());
    }

    #[test]
    fn delivery_manifest_wire_roundtrip_rejects_corruption() {
        let mut m = DeliveryManifest::new(40 << 20, 2 << 20);
        for i in [0, 3, 7, 19] {
            m.mark_delivered(i);
        }
        let mut b = bytes::BytesMut::new();
        m.encode_into(&mut b);
        let mut wire = b.freeze();
        assert_eq!(DeliveryManifest::decode_from(&mut wire), Some(m.clone()));
        // Truncated.
        let mut b2 = bytes::BytesMut::new();
        m.encode_into(&mut b2);
        let mut short = b2.freeze().slice(0..17);
        assert_eq!(DeliveryManifest::decode_from(&mut short), None);
        // Stray bits past the last segment.
        let mut b3 = bytes::BytesMut::new();
        m.encode_into(&mut b3);
        let mut bad = b3.to_vec();
        *bad.last_mut().unwrap() |= 0x80; // segment 20 of 20 (bit 20 set)
        assert_eq!(
            DeliveryManifest::decode_from(&mut bytes::Bytes::from(bad)),
            None
        );
        // Zero geometry.
        let mut zeros = bytes::Bytes::from_static(&[0u8; 16]);
        assert_eq!(DeliveryManifest::decode_from(&mut zeros), None);
    }

    #[test]
    fn tick_loop_reschedules_until_stop() {
        let mut eng = Engine::new();
        let count = Rc::new(RefCell::new(0));
        let c = count.clone();
        tick_loop(&mut eng, SimTime::from_secs_f64(1.0), move |_eng| {
            *c.borrow_mut() += 1;
            if *c.borrow() == 3 {
                Tick::Stop
            } else {
                Tick::Again
            }
        });
        eng.run();
        assert_eq!(*count.borrow(), 3);
    }
}
