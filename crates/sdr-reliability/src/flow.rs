//! The many-flow engine: one node driving thousands of concurrent
//! transfers over a shared control plane, a shared tick, and a fair
//! injection arbiter.
//!
//! Everything else in this crate runs *one* transfer per protocol object:
//! one tick loop, one control endpoint binding, one estimator warmed from
//! cold. That is the right shape for validating schemes against the
//! models, and the wrong shape for the paper's planetary-scale pitch — a
//! storage or inference front-end node serves **flows as a population**:
//! thousands live at once, most are short, and they share one wire. The
//! [`FlowManager`] is the population-scale runtime:
//!
//! * **Sharded slot/QP table** — flows hash over `shards` QP pairs per
//!   peer (`flow_id % shards`, computed identically on both ends), so
//!   admission pressure on one slot table never serializes the node and
//!   the per-QP order-based CTS matching stays shallow.
//! * **One control plane** — every flow's control traffic rides a single
//!   [`ControlEndpoint`], demultiplexed by the
//!   [`FLOW_XFER_BIT`](crate::control::FLOW_XFER_BIT)-tagged stamp `xfer`
//!   (the flow id). The stamp's replay filter is already
//!   keyed per `(peer, xfer)`, so each flow gets its own dedup window for
//!   free.
//! * **One shared tick** — a single recurring wheel timer serves *all*
//!   flows through a [`DueIndex`] (a min-heap of per-flow deadlines with
//!   lazy invalidation). A node with 10 000 parked flows wakes exactly
//!   when the earliest deadline is due, not 10 000 times per RTO.
//! * **Fair injection** — senders never write to the wire directly; they
//!   enqueue chunk work items into a per-peer [`DrrArbiter`]
//!   (deficit-round-robin with per-flow weights) and a pacing pump drains
//!   it, keeping the link busy only a small horizon ahead of now
//!   ([`Fabric::tx_busy_until`]). Scheduling stays late-bound: an
//!   elephant's backlog waits in the arbiter where mice overtake it every
//!   round, not in a deep device queue where nothing can.
//! * **Warm starts** — a per-peer [`EstimatorRegistry`] outlives flows;
//!   short flows open under the scheme the *aggregate* traffic to that
//!   peer has justified (EC beyond the loss threshold, SR-NACK below),
//!   instead of each flow re-learning the channel from cold.
//!
//! ## Flow lifecycle
//!
//! ```text
//! sender                               receiver
//! open_flow → FlowOpen ─────────────▶ admit (slots free?) or park
//!             (retried, idempotent)    recv_post data [+ parity]
//!           ◀───────────── FlowAck    (carries receiver's recv seqs)
//! order stream starts by seq,
//! start on CTS, enqueue chunks
//! into the DRR arbiter
//!   pump: inject while wire <
//!   horizon ahead ───────────────▶    poll at ack cadence:
//!   RTO/NACK repair loop       ◀──    SrAck+Telemetry / EcNack (FTO)
//! complete on SrAck/EcAck:
//!   FlowFin ─────────────────────▶    cut ACK linger short
//! ```
//!
//! Both directions of the handshake are idempotent against loss: the
//! sender re-sends `FlowOpen` on a backed-off retry deadline until the
//! `FlowAck` arrives (duplicates get the admission snapshot again), and a
//! lost CTS heals through the receiver's poll loop exactly as in the
//! single-flow schemes.
//!
//! EC flows run one submessage per flow (`k` = data chunks) with the
//! parity staged through the shared [`EncodePool`]; the receiver decodes
//! in place through one manager-wide [`EcScratch`] — flows rent from a
//! single warm pool instead of each growing their own. The EC fallback
//! NACK carries *missing data chunk indices* (chunk-granular §4.1.2
//! selective repeat).
//!
//! [`EncodePool`]: sdr_erasure::EncodePool
//! [`Fabric::tx_busy_until`]: sdr_sim::Fabric::tx_busy_until

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use sdr_core::{RecvHandle, SdrConfig, SdrContext, SdrError, SdrQp, SendHandle};
use sdr_erasure::{EncodePool, ErasureCode, ReedSolomon, XorCode};
use sdr_sim::{
    Counter, Engine, EventKind, Fabric, FlightRecorder, Histogram, NodeId, QpAddr, SimTime,
    TimerHandle,
};

use crate::ack::{build_sr_ack, CtrlMsg, SchemeSpec};
use crate::control::ControlEndpoint;
use crate::ec::EcScratch;
use crate::runtime::{tick_loop, ChunkTimers, Tick};
use crate::telemetry::{
    ChannelEstimator, EstimatorRegistry, FirstPassCursor, TelemetryConfig, TelemetryCounters,
};

/// Work-item tag bit marking a parity-stream chunk (data chunks use the
/// plain index).
pub const PARITY_TAG: u32 = 1 << 31;

/// Give up opening a flow after this many unanswered `FlowOpen` rounds.
const OPEN_RETRY_CAP: u32 = 64;

/// Exponent cap for the open-retry backoff (`open_retry << n`).
const OPEN_BACKOFF_CAP: u32 = 6;

/// Send a cumulative `Telemetry` report every n-th receiver poll.
const TELEMETRY_EVERY: u32 = 4;

/// Most data-chunk indices one flow-EC fallback NACK carries.
const MAX_FLOW_NACKS: usize = 256;

// ---------------------------------------------------------------------------
// Deficit-round-robin arbiter
// ---------------------------------------------------------------------------

/// One unit of injection work: a chunk of some flow's data or parity
/// stream. `tag` is the chunk index, with [`PARITY_TAG`] set for parity
/// chunks; `bytes` is the chunk's wire length (the last data chunk may be
/// short).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// Chunk index (data), or `PARITY_TAG | index` (parity).
    pub tag: u32,
    /// Chunk length in bytes.
    pub bytes: u64,
}

struct FlowQueue {
    q: VecDeque<WorkItem>,
    backlog_bytes: u64,
    deficit: u64,
    weight: u64,
    queued: bool,
}

/// Deficit-round-robin injection arbiter with per-flow weights and
/// per-flow byte-accurate backlog accounting.
///
/// Flows [`register`](Self::register) once, [`enqueue`](Self::enqueue)
/// chunk work items as they become sendable (initial injection, RTO
/// expiry, NACK repair), and the pump [`poll`](Self::poll)s items out
/// under DRR: the head-of-ring flow serves items while its deficit
/// affords them; when it cannot afford its next item it earns
/// `quantum × weight` and rotates to the back. An elephant's multi-
/// megabyte backlog therefore advances at most one quantum per round past
/// any backlogged mouse — no starvation, bounded per-round unfairness
/// (the classic DRR bound: `quantum × weight + one item` per flow per
/// round).
///
/// Steady-state polls and enqueues allocate nothing: per-flow queues are
/// retained ring buffers, and the active ring reuses its capacity.
pub struct DrrArbiter {
    quantum: u64,
    flows: HashMap<u64, FlowQueue>,
    active: VecDeque<u64>,
    total_backlog: u64,
}

impl DrrArbiter {
    /// An empty arbiter granting `quantum` bytes per flow per round.
    pub fn new(quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        DrrArbiter {
            quantum,
            flows: HashMap::new(),
            active: VecDeque::new(),
            total_backlog: 0,
        }
    }

    /// Registers flow `key` with the given weight (≥ 1: a weight-2 flow
    /// earns twice the quantum per round). Re-registering resets the
    /// flow's queue.
    pub fn register(&mut self, key: u64, weight: u64) {
        assert!(weight >= 1, "weight must be at least 1");
        let prev = self.flows.insert(
            key,
            FlowQueue {
                q: VecDeque::new(),
                backlog_bytes: 0,
                deficit: 0,
                weight,
                queued: false,
            },
        );
        if let Some(p) = prev {
            self.total_backlog -= p.backlog_bytes;
        }
    }

    /// Drops flow `key` and its backlog; returns the dropped byte count.
    /// Any stale active-ring entry is skipped lazily by `poll`.
    pub fn deregister(&mut self, key: u64) -> u64 {
        match self.flows.remove(&key) {
            Some(f) => {
                self.total_backlog -= f.backlog_bytes;
                f.backlog_bytes
            }
            None => 0,
        }
    }

    /// Queues one work item for flow `key` (FIFO per flow) and activates
    /// the flow in the service ring.
    pub fn enqueue(&mut self, key: u64, item: WorkItem) {
        let f = self.flows.get_mut(&key).expect("flow registered");
        f.q.push_back(item);
        f.backlog_bytes += item.bytes;
        self.total_backlog += item.bytes;
        if !f.queued {
            f.queued = true;
            self.active.push_back(key);
        }
    }

    /// The next item to inject under DRR, with its flow key. `None` when
    /// no flow has backlog.
    pub fn poll(&mut self) -> Option<(u64, WorkItem)> {
        loop {
            let key = *self.active.front()?;
            let Some(f) = self.flows.get_mut(&key) else {
                // Deregistered while active: drop the stale ring entry.
                self.active.pop_front();
                continue;
            };
            let Some(&head) = f.q.front() else {
                // Drained while at the head (emptied by a previous poll):
                // retire from the ring with no deficit carry-over.
                f.deficit = 0;
                f.queued = false;
                self.active.pop_front();
                continue;
            };
            if f.deficit >= head.bytes {
                f.deficit -= head.bytes;
                f.q.pop_front();
                f.backlog_bytes -= head.bytes;
                self.total_backlog -= head.bytes;
                if f.q.is_empty() {
                    f.deficit = 0;
                    f.queued = false;
                    self.active.pop_front();
                }
                return Some((key, head));
            }
            // Cannot afford the head item: earn one round's quantum and
            // rotate to the back of the ring.
            f.deficit += self.quantum * f.weight;
            self.active.pop_front();
            self.active.push_back(key);
        }
    }

    /// Bytes queued for flow `key`.
    pub fn backlog_bytes(&self, key: u64) -> u64 {
        self.flows.get(&key).map_or(0, |f| f.backlog_bytes)
    }

    /// Bytes queued across all flows.
    pub fn total_backlog(&self) -> u64 {
        self.total_backlog
    }

    /// True when any flow has queued work.
    pub fn has_work(&self) -> bool {
        self.total_backlog > 0
    }

    /// Registered flows (backlogged or not).
    pub fn flows(&self) -> usize {
        self.flows.len()
    }
}

// ---------------------------------------------------------------------------
// Due-deadline index
// ---------------------------------------------------------------------------

/// Identifies a flow in the due index: sender flows by id, receiver flows
/// by `(peer, id)` (ids are only unique per *sender*).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlowKey {
    /// A sender-side flow (locally assigned id).
    Tx(u64),
    /// A receiver-side flow (opened by `peer`).
    Rx(NodeId, u64),
}

/// Min-heap of `(deadline, stamp, flow)` entries driving the shared tick:
/// one recurring timer pops everything due and sleeps to the earliest
/// remainder, so a node with thousands of parked flows wakes once per
/// deadline, not once per flow per interval.
///
/// Entries are lazily invalidated: rescheduling a flow pushes a new entry
/// with a fresh stamp and leaves the old one to be skipped at pop time
/// (the flow records its live stamp). Pushes and pops reuse the heap's
/// capacity — the steady state allocates nothing.
#[derive(Default)]
pub struct DueIndex {
    heap: BinaryHeap<Reverse<(SimTime, u64, FlowKey)>>,
}

impl DueIndex {
    /// An empty index.
    pub fn new() -> Self {
        DueIndex::default()
    }

    /// Queues `(at, stamp, key)`.
    pub fn push(&mut self, at: SimTime, stamp: u64, key: FlowKey) {
        self.heap.push(Reverse((at, stamp, key)));
    }

    /// The earliest entry, without removing it.
    pub fn peek(&self) -> Option<(SimTime, u64, FlowKey)> {
        self.heap.peek().map(|Reverse(e)| *e)
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<(SimTime, u64, FlowKey)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Entries queued (including stale ones awaiting lazy removal).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

// ---------------------------------------------------------------------------
// Configuration and reports
// ---------------------------------------------------------------------------

/// Tuning for a [`FlowManager`].
#[derive(Clone, Debug)]
pub struct FlowCfg {
    /// Per-shard SDR QP configuration (slot table depth, chunk size…).
    pub qp: SdrConfig,
    /// QP pairs per peer; flows hash over them by `flow_id % shards`.
    pub shards: usize,
    /// Link bandwidth toward peers (pacing and FTO computation).
    pub bandwidth_bps: f64,
    /// Nominal round-trip time (cadence defaults derive from it).
    pub rtt: SimTime,
    /// DRR quantum in bytes (defaults to one chunk).
    pub quantum_bytes: u64,
    /// How far ahead of now the pacer keeps the wire busy.
    pub pace_horizon: SimTime,
    /// Receiver poll / ACK cadence.
    pub ack_interval: SimTime,
    /// Sender per-chunk retransmission timeout (ARQ flows).
    pub rto: SimTime,
    /// `FlowOpen` retry base interval (backed off exponentially).
    pub open_retry: SimTime,
    /// Final-ACK linger repeats after a receive flow resolves.
    pub linger_acks: u32,
    /// Estimator tuning for the per-peer registry.
    pub telemetry: TelemetryConfig,
    /// Registry entries untouched this long are stale.
    pub registry_max_age: SimTime,
    /// Warm loss estimate above which new flows open under EC.
    pub ec_loss_threshold: f64,
    /// Parity overprovision factor:
    /// `m ≈ ceil(chunks × chunk_loss × factor) + 1`.
    pub ec_parity_factor: f64,
}

/// On-the-wire cost budgeted per control datagram, in bits: a couple
/// hundred bytes of ack/telemetry payload plus the per-packet link
/// header. Used to pace the control plane against the population size.
const CTRL_WIRE_BITS: f64 = 2048.0;

/// Fraction of link bandwidth the reverse control path may consume.
/// Acks, telemetry, CTS credits and final acks all share that path with
/// any reverse data traffic; letting per-flow polls run at a fixed
/// cadence saturates it once enough flows poll at once.
const CTRL_BUDGET_FRAC: f64 = 0.05;

/// Minimum per-flow control cadence that keeps `live` flows' poll
/// traffic within [`CTRL_BUDGET_FRAC`] of the link.
fn ctrl_pacing(cfg: &FlowCfg, live: usize) -> SimTime {
    SimTime::from_secs_f64(
        live.max(1) as f64 * CTRL_WIRE_BITS / (CTRL_BUDGET_FRAC * cfg.bandwidth_bps),
    )
}

impl FlowCfg {
    /// Defaults derived from the link: quantum = chunk, horizon = 4
    /// chunks of serialization, cadences from the RTT.
    ///
    /// The RTO is floored by the full sent-to-acked pipeline, not just the
    /// RTT: a chunk stamped sent at *injection* still sits up to a pacing
    /// horizon in the wire queue, then one way across, then up to an ack
    /// interval at the receiver, then the ack's way back. On fat
    /// short-RTT links the horizon dominates the RTT, and an RTT-only RTO
    /// expires chunks that are merely queued — a retransmit storm that
    /// feeds on its own queueing.
    pub fn new(qp: SdrConfig, bandwidth_bps: f64, rtt: SimTime) -> Self {
        let chunk = qp.chunk_bytes;
        let chunk_serialize = SimTime::from_secs_f64(chunk as f64 * 8.0 / bandwidth_bps);
        let pace_horizon = SimTime(chunk_serialize.0.saturating_mul(4).max(1));
        let ack_interval = SimTime((rtt.0 / 4).max(1));
        let pipeline = pace_horizon.0 + rtt.0 + ack_interval.0;
        FlowCfg {
            qp,
            shards: 4,
            bandwidth_bps,
            rtt,
            quantum_bytes: chunk,
            pace_horizon,
            ack_interval,
            rto: SimTime(rtt.0.saturating_mul(3).max(pipeline.saturating_mul(2))),
            open_retry: SimTime(rtt.0.saturating_mul(2)),
            linger_acks: 8,
            telemetry: TelemetryConfig::default(),
            registry_max_age: SimTime(rtt.0.saturating_mul(1000)),
            ec_loss_threshold: 2e-3,
            ec_parity_factor: 3.0,
        }
    }
}

/// Sender-side completion report for one flow.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// The flow id.
    pub id: u64,
    /// Peer node the flow was sent to.
    pub peer: NodeId,
    /// Message bytes.
    pub bytes: u64,
    /// Scheme the flow ran under.
    pub spec: SchemeSpec,
    /// When `open_flow` was called.
    pub opened_at: SimTime,
    /// When the final acknowledgment arrived (or the open was abandoned).
    pub done_at: SimTime,
    /// Chunk retransmissions (RTO + NACK repairs).
    pub retransmits: u64,
    /// `FlowOpen` rounds beyond the first.
    pub open_retries: u32,
    /// True when the transfer fully completed; false when the open was
    /// abandoned after [`OPEN_RETRY_CAP`] unanswered rounds.
    pub delivered: bool,
}

/// Receiver-side completion notice for one flow.
#[derive(Clone, Copy, Debug)]
pub struct RxFlowDone {
    /// The sender-assigned flow id.
    pub id: u64,
    /// The sending node.
    pub peer: NodeId,
    /// Destination buffer address (as allocated at admission).
    pub addr: u64,
    /// Message bytes.
    pub bytes: u64,
    /// When the message fully resolved.
    pub at: SimTime,
    /// True when the flow resolved by erasure decode (EC only).
    pub decoded: bool,
}

/// Aggregate manager counters (diagnostics and benches).
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowStats {
    /// Flows opened on this node (sender side).
    pub opened: u64,
    /// Sender flows completed (delivered or abandoned).
    pub tx_done: u64,
    /// Receiver flows resolved.
    pub rx_done: u64,
    /// Chunk retransmissions across all sender flows.
    pub retransmits: u64,
    /// Receive flows resolved by erasure decode.
    pub decoded: u64,
    /// Admissions parked for lack of slots (then admitted later).
    pub parked_opens: u64,
    /// `FlowOpen` retry datagrams sent.
    pub open_retries: u64,
    /// Work items injected by the pump.
    pub injected: u64,
    /// Sender flows that fully delivered (`tx_done` minus abandoned
    /// opens). Maintained here once so benches read the aggregate instead
    /// of recomputing it by walking [`FlowReport`]s; `flow_many.rs`
    /// asserts the two bookkeepings agree.
    pub delivered: u64,
    /// Message bytes across delivered sender flows, ditto.
    pub bytes_delivered: u64,
}

// ---------------------------------------------------------------------------
// Flow state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TxPhase {
    /// `FlowOpen` sent, awaiting `FlowAck`.
    Opening,
    /// Seqs assigned; stream starts queued behind CTS arrival.
    Starting,
    /// Streams open; chunks flow through the arbiter.
    Streaming,
}

struct TxFlow {
    peer: NodeId,
    peer_ctrl: QpAddr,
    shard: usize,
    src_addr: u64,
    bytes: u64,
    chunks: usize,
    spec: SchemeSpec,
    phase: TxPhase,
    data_hdl: Option<SendHandle>,
    parity_hdl: Option<SendHandle>,
    parity_addr: u64,
    parity_chunks: usize,
    /// Initial work items still awaiting first injection; the RTO clock
    /// for a chunk starts at its first injection, so the flow enters the
    /// due index only once this reaches zero.
    uninjected: usize,
    timers: ChunkTimers,
    est: Rc<RefCell<ChannelEstimator>>,
    last_telem: TelemetryCounters,
    opened_at: SimTime,
    open_retries: u32,
    deadline: SimTime,
    stamp: u64,
    retransmits: u64,
    done: Option<Box<dyn FnOnce(&mut Engine, FlowReport)>>,
}

struct RxFlow {
    peer_ctrl: QpAddr,
    shard: usize,
    bytes: u64,
    chunks: usize,
    chunk_bytes: u64,
    dst_addr: u64,
    data_h: RecvHandle,
    parity_h: Option<RecvHandle>,
    parity_addr: u64,
    parity_chunks: usize,
    code: Option<Arc<dyn ErasureCode>>,
    data_cursor: FirstPassCursor,
    parity_cursor: FirstPassCursor,
    counters: TelemetryCounters,
    est: Rc<RefCell<ChannelEstimator>>,
    polls: u32,
    fto: SimTime,
    fto_deadline: Option<SimTime>,
    resolved: bool,
    decoded: bool,
    final_ack: Option<CtrlMsg>,
    linger_left: u32,
    stamp: u64,
}

struct StartEntry {
    flow: u64,
    parity: bool,
}

struct PendingOpen {
    src: QpAddr,
    peer_node: NodeId,
    flow: u64,
    bytes: u64,
    spec: SchemeSpec,
}

struct Shard {
    qp: SdrQp,
    /// Stream starts pending CTS, keyed by the send seq each must consume
    /// (`send_stream_start` consumes seqs strictly in order).
    starts: BTreeMap<u64, StartEntry>,
    /// Opens parked for lack of receive slots on this shard.
    pending: VecDeque<PendingOpen>,
}

struct Port {
    peer_ctrl: QpAddr,
    shards: Vec<Shard>,
    arbiter: DrrArbiter,
    /// Retransmit fast-lane, drained ahead of the fair ring. Repairs are
    /// latency-critical — they pin recv slots and hold back completions —
    /// and queueing them behind a large population's fresh chunks lets
    /// the receiver re-NACK (and the sender re-claim) the same hole many
    /// times over before the first repair even reaches the wire. Volume
    /// is loss-proportional, so the bypass cannot starve the ring.
    urgent: VecDeque<(u64, WorkItem)>,
    pump_armed: bool,
}

/// Registry handles for the manager's hot paths, bound once at
/// construction (`flow.*` family in the fabric registry) plus the node's
/// flight recorder. Increments are lock-free and allocation-free; the
/// whole family is a no-op under the `sdr-trace` kill-switch.
struct FlowTrace {
    /// `flow.opened`: sender flows opened.
    opened: Counter,
    /// `flow.admitted`: receiver admissions granted (posts + FlowAck).
    admitted: Counter,
    /// `flow.parked`: opens parked for lack of receive slots.
    parked: Counter,
    /// `flow.drained`: parked opens later admitted.
    drained: Counter,
    /// `flow.injected`: work items injected by the DRR pump.
    injected: Counter,
    /// `flow.urgent`: repairs queued through the urgent fast lane.
    urgent: Counter,
    /// `flow.completion_us`: per-flow open→final-ACK time (delivered
    /// flows only), microseconds.
    completion_us: Histogram,
    /// This node's flight recorder (slot park/drain events).
    recorder: FlightRecorder,
}

impl FlowTrace {
    fn new(fabric: &Fabric, node: NodeId) -> FlowTrace {
        let reg = fabric.metrics();
        FlowTrace {
            opened: reg.counter("flow.opened"),
            admitted: reg.counter("flow.admitted"),
            parked: reg.counter("flow.parked"),
            drained: reg.counter("flow.drained"),
            injected: reg.counter("flow.injected"),
            urgent: reg.counter("flow.urgent"),
            completion_us: reg.histogram("flow.completion_us"),
            recorder: fabric.recorder(node),
        }
    }
}

struct Inner {
    ports: HashMap<NodeId, Port>,
    tx_flows: HashMap<u64, TxFlow>,
    rx_flows: HashMap<(NodeId, u64), RxFlow>,
    /// `(peer, flow)` keys currently parked in some shard's pending queue.
    parked: HashSet<(NodeId, u64)>,
    due: DueIndex,
    next_flow: u64,
    next_stamp: u64,
    tick: Option<TimerHandle>,
    tick_next: SimTime,
    registry: EstimatorRegistry,
    /// One decode/staging scratch shared by every flow on this node.
    scratch: Rc<RefCell<EcScratch>>,
    codes: HashMap<(u16, u16, bool), Arc<dyn ErasureCode>>,
    finished_tx: Vec<(Box<dyn FnOnce(&mut Engine, FlowReport)>, FlowReport)>,
    finished_rx: Vec<RxFlowDone>,
    on_rx_done: Option<Box<dyn FnMut(&mut Engine, RxFlowDone)>>,
    rx_alloc: Option<Box<dyn FnMut(u64) -> u64>>,
    stats: FlowStats,
    trace: FlowTrace,
}

struct ManagerCore {
    fabric: Fabric,
    ctx: SdrContext,
    ep: Rc<ControlEndpoint>,
    node: NodeId,
    cfg: FlowCfg,
    inner: RefCell<Inner>,
}

/// The many-flow engine (see the module docs for the architecture).
pub struct FlowManager {
    core: Rc<ManagerCore>,
}

impl FlowManager {
    /// Creates a manager on `node`, taking over `ctrl`'s *flow* handler
    /// (the classic handler slot stays free for single-transfer
    /// protocols sharing the endpoint).
    pub fn new(fabric: &Fabric, node: NodeId, ctrl: Rc<ControlEndpoint>, cfg: FlowCfg) -> Self {
        assert!(cfg.shards >= 1, "at least one shard");
        let registry = EstimatorRegistry::new(cfg.telemetry, cfg.registry_max_age);
        // Scratch sized generously: flows of any supported geometry rent
        // from the same capped pool.
        let scratch = Rc::new(RefCell::new(EcScratch::new(64, 32)));
        let core = Rc::new(ManagerCore {
            fabric: fabric.clone(),
            ctx: SdrContext::new(fabric, node),
            ep: ctrl,
            node,
            cfg,
            inner: RefCell::new(Inner {
                ports: HashMap::new(),
                tx_flows: HashMap::new(),
                rx_flows: HashMap::new(),
                parked: HashSet::new(),
                due: DueIndex::new(),
                next_flow: 1,
                next_stamp: 0,
                tick: None,
                tick_next: SimTime::MAX,
                registry,
                scratch,
                codes: HashMap::new(),
                finished_tx: Vec::new(),
                finished_rx: Vec::new(),
                on_rx_done: None,
                rx_alloc: None,
                stats: FlowStats::default(),
                trace: FlowTrace::new(fabric, node),
            }),
        });
        let c = core.clone();
        core.ep
            .set_flow_handler(move |eng, src, flow, msg| Self::on_ctrl(&c, eng, src, flow, msg));
        FlowManager { core }
    }

    /// This manager's node.
    pub fn node(&self) -> NodeId {
        self.core.node
    }

    /// Connects two managers: creates `shards` QP pairs between them and
    /// registers each as the other's port. Flows may then open in either
    /// direction.
    pub fn connect(a: &FlowManager, b: &FlowManager) {
        assert_eq!(
            a.core.cfg.shards, b.core.cfg.shards,
            "both ends must agree on the shard count"
        );
        let shards = a.core.cfg.shards;
        let mut qps_a = Vec::with_capacity(shards);
        let mut qps_b = Vec::with_capacity(shards);
        for _ in 0..shards {
            let qa = a.core.ctx.qp_create(a.core.cfg.qp).expect("valid config");
            let qb = b.core.ctx.qp_create(b.core.cfg.qp).expect("valid config");
            qa.connect(qb.info()).expect("shape matches");
            qb.connect(qa.info()).expect("shape matches");
            qps_a.push(qa);
            qps_b.push(qb);
        }
        a.add_port(b.core.node, b.core.ep.addr(), qps_a);
        b.add_port(a.core.node, a.core.ep.addr(), qps_b);
    }

    fn add_port(&self, peer: NodeId, peer_ctrl: QpAddr, qps: Vec<SdrQp>) {
        let core = &self.core;
        for (i, qp) in qps.iter().enumerate() {
            let c = core.clone();
            // CTS arrival may unblock the head of this shard's start
            // queue; each start can cascade into the next.
            qp.set_cts_callback(move |eng, _seq, _len| {
                {
                    let mut inner = c.inner.borrow_mut();
                    inner.try_starts(&c, eng, peer, i);
                }
                Self::pump_kick(&c, eng, peer);
            });
        }
        let shards = qps
            .into_iter()
            .map(|qp| Shard {
                qp,
                starts: BTreeMap::new(),
                pending: VecDeque::new(),
            })
            .collect();
        self.core.inner.borrow_mut().ports.insert(
            peer,
            Port {
                peer_ctrl,
                shards,
                arbiter: DrrArbiter::new(self.core.cfg.quantum_bytes),
                urgent: VecDeque::new(),
                pump_armed: false,
            },
        );
    }

    /// Replaces the receive-buffer allocator (default: fresh
    /// [`SdrContext::alloc_buffer`] per admitted flow). A bench recycling
    /// completed buffers installs its pool here.
    pub fn set_rx_allocator(&self, f: impl FnMut(u64) -> u64 + 'static) {
        self.core.inner.borrow_mut().rx_alloc = Some(Box::new(f));
    }

    /// Installs the receiver-side completion callback, fired once per
    /// resolved incoming flow (before its ACK linger).
    pub fn on_rx_done(&self, f: impl FnMut(&mut Engine, RxFlowDone) + 'static) {
        self.core.inner.borrow_mut().on_rx_done = Some(Box::new(f));
    }

    /// Opens a flow of `bytes` from `src_addr` toward `peer`, choosing the
    /// scheme from the peer's registry estimate (EC beyond the loss
    /// threshold, SR-NACK otherwise). `done` fires exactly once with the
    /// completion report. Returns the flow id.
    pub fn open_flow(
        &self,
        eng: &mut Engine,
        peer: NodeId,
        src_addr: u64,
        bytes: u64,
        done: impl FnOnce(&mut Engine, FlowReport) + 'static,
    ) -> u64 {
        let spec = self.choose_spec(eng.now(), peer, bytes);
        self.open_flow_with_spec(eng, peer, src_addr, bytes, spec, done)
    }

    /// [`open_flow`](Self::open_flow) with an explicit scheme (tests and
    /// callers that know better than the registry).
    pub fn open_flow_with_spec(
        &self,
        eng: &mut Engine,
        peer: NodeId,
        src_addr: u64,
        bytes: u64,
        spec: SchemeSpec,
        done: impl FnOnce(&mut Engine, FlowReport) + 'static,
    ) -> u64 {
        assert!(bytes > 0, "empty flows are not a thing");
        let core = &self.core;
        let now = eng.now();
        let (id, peer_ctrl, first_deadline) = {
            let mut inner = core.inner.borrow_mut();
            let id = inner.next_flow;
            inner.next_flow += 1;
            let port = inner.ports.get(&peer).expect("peer connected");
            let peer_ctrl = port.peer_ctrl;
            let shard = (id % core.cfg.shards as u64) as usize;
            let chunk = core.cfg.qp.chunk_bytes;
            let chunks = core.cfg.qp.chunks_for(bytes) as usize;
            let (spec, parity_addr, parity_chunks) = match spec {
                SchemeSpec::EcMds { m, .. } | SchemeSpec::EcXor { m, .. }
                    if bytes.is_multiple_of(chunk) && chunks + m as usize <= 255 =>
                {
                    // Stage parity now through the shared encode pool so
                    // the FlowAck handler only has to queue stream starts.
                    let spec = match spec {
                        SchemeSpec::EcXor { .. } => SchemeSpec::EcXor {
                            k: chunks as u16,
                            m,
                        },
                        _ => SchemeSpec::EcMds {
                            k: chunks as u16,
                            m,
                        },
                    };
                    let addr = inner.stage_parity(core, src_addr, chunks, spec);
                    (spec, addr, m as usize)
                }
                // Unaligned or oversized messages fall back to ARQ.
                SchemeSpec::EcMds { .. } | SchemeSpec::EcXor { .. } => (SchemeSpec::SrNack, 0, 0),
                s => (s, 0, 0),
            };
            let est = inner.registry.checkout(peer, now);
            let mut timers = ChunkTimers::new(chunks);
            timers.set_trace(inner.trace.recorder.clone(), id);
            let flow = TxFlow {
                peer,
                peer_ctrl,
                shard,
                src_addr,
                bytes,
                chunks,
                spec,
                phase: TxPhase::Opening,
                data_hdl: None,
                parity_hdl: None,
                parity_addr,
                parity_chunks,
                uninjected: 0,
                timers,
                est,
                last_telem: TelemetryCounters::default(),
                opened_at: now,
                open_retries: 0,
                deadline: SimTime::MAX,
                stamp: 0,
                retransmits: 0,
                done: Some(Box::new(done)),
            };
            inner.tx_flows.insert(id, flow);
            inner.stats.opened += 1;
            inner.trace.opened.inc();
            let at = now.saturating_add(core.cfg.open_retry);
            inner.schedule(FlowKey::Tx(id), at);
            (id, peer_ctrl, at)
        };
        let spec = core.inner.borrow().tx_flows[&id].spec;
        core.ep
            .send_flow(eng, peer_ctrl, id, &CtrlMsg::FlowOpen { bytes, spec });
        Self::ensure_tick(core, eng, first_deadline);
        id
    }

    /// Scheme a fresh flow toward `peer` would open under right now.
    ///
    /// EC erasures are *chunks* (a chunk with any packet missing is an
    /// erasure), so the packet-loss estimate is first amplified to a
    /// chunk-loss probability before sizing parity.
    pub fn choose_spec(&self, now: SimTime, peer: NodeId, bytes: u64) -> SchemeSpec {
        let core = &self.core;
        let chunk = core.cfg.qp.chunk_bytes;
        let chunks = core.cfg.qp.chunks_for(bytes) as usize;
        let inner = core.inner.borrow();
        match inner.registry.estimate(peer, now) {
            Some((loss, _rtt))
                if loss > core.cfg.ec_loss_threshold
                    && bytes.is_multiple_of(chunk)
                    && chunks + 1 < 255 =>
            {
                let pkts_per_chunk = (chunk / core.cfg.qp.mtu_bytes).max(1) as f64;
                let chunk_loss = 1.0 - (1.0 - loss.min(1.0)).powf(pkts_per_chunk);
                let m = ((chunks as f64 * chunk_loss * core.cfg.ec_parity_factor).ceil() as usize
                    + 1)
                .clamp(1, 255 - chunks);
                SchemeSpec::EcMds {
                    k: chunks as u16,
                    m: m as u16,
                }
            }
            _ => SchemeSpec::SrNack,
        }
    }

    /// Confident `(loss, rtt)` toward `peer`, if the registry has one.
    pub fn registry_estimate(&self, now: SimTime, peer: NodeId) -> Option<(f64, SimTime)> {
        self.core.inner.borrow().registry.estimate(peer, now)
    }

    /// Ages out stale registry entries; returns how many were evicted.
    pub fn sweep_registry(&self, now: SimTime) -> usize {
        self.core.inner.borrow_mut().registry.sweep(now)
    }

    /// Live flows `(sender-side, receiver-side)`.
    pub fn live_flows(&self) -> (usize, usize) {
        let inner = self.core.inner.borrow();
        (inner.tx_flows.len(), inner.rx_flows.len())
    }

    /// Opens parked for admission right now.
    pub fn parked_opens(&self) -> usize {
        self.core.inner.borrow().parked.len()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> FlowStats {
        self.core.inner.borrow().stats
    }

    // -- control dispatch ---------------------------------------------------

    fn on_ctrl(core: &Rc<ManagerCore>, eng: &mut Engine, src: QpAddr, flow: u64, msg: CtrlMsg) {
        {
            let mut inner = core.inner.borrow_mut();
            match msg {
                // Sender → receiver.
                CtrlMsg::FlowOpen { bytes, spec } => {
                    inner.on_flow_open(core, eng, src, flow, bytes, spec);
                }
                CtrlMsg::FlowFin => inner.on_flow_fin(src, flow),
                // Receiver → sender.
                CtrlMsg::FlowAck {
                    data_seq,
                    parity_seq,
                } => inner.on_flow_ack(core, eng, flow, data_seq, parity_seq),
                CtrlMsg::SrAck {
                    cumulative,
                    window_start,
                    sack_bits,
                    sack_len,
                    nacks,
                } => inner.on_sr_ack(
                    core,
                    eng,
                    flow,
                    cumulative,
                    window_start,
                    &sack_bits,
                    sack_len,
                    &nacks,
                ),
                CtrlMsg::FlowDone { seen, lost } => inner.on_flow_done(core, eng, flow, seen, lost),
                CtrlMsg::EcNack { failed } => inner.on_ec_nack(core, eng, flow, &failed),
                CtrlMsg::Telemetry { seen, lost } => inner.on_telemetry(eng, flow, seen, lost),
                // Anything else is not flow traffic; drop it.
                _ => {}
            }
        }
        Self::drain_finished(core, eng);
        Self::pump_kick_all(core, eng);
        Self::retick(core, eng);
    }

    // -- shared tick --------------------------------------------------------

    /// Arms (or pulls forward) the shared tick so it fires by `at`.
    fn ensure_tick(core: &Rc<ManagerCore>, eng: &mut Engine, at: SimTime) {
        let mut inner = core.inner.borrow_mut();
        match inner.tick {
            Some(h) => {
                if at < inner.tick_next {
                    let _ = eng.reschedule(h, at);
                    inner.tick_next = at;
                }
            }
            None => {
                let delay = SimTime(at.saturating_sub(eng.now()).0.max(1));
                let c = core.clone();
                let h = tick_loop(eng, delay, move |eng| Self::tick(&c, eng));
                inner.tick = Some(h);
                inner.tick_next = at;
            }
        }
    }

    fn tick(core: &Rc<ManagerCore>, eng: &mut Engine) -> Tick {
        {
            let mut inner = core.inner.borrow_mut();
            inner.run_due(core, eng);
        }
        Self::drain_finished(core, eng);
        Self::pump_kick_all(core, eng);
        // Decide the next wake *after* the drains: completion callbacks may
        // have opened new flows with earlier deadlines.
        let mut inner = core.inner.borrow_mut();
        match inner.due.peek() {
            Some((at, _, _)) => {
                let at = at.max(eng.now().saturating_add(SimTime(1)));
                inner.tick_next = at;
                Tick::Until(at)
            }
            None => {
                inner.tick = None;
                inner.tick_next = SimTime::MAX;
                Tick::Stop
            }
        }
    }

    /// Invokes queued completion callbacks outside any `Inner` borrow (a
    /// callback may re-enter the manager, e.g. to open the next flow).
    fn drain_finished(core: &Rc<ManagerCore>, eng: &mut Engine) {
        loop {
            let mut tx = {
                let mut inner = core.inner.borrow_mut();
                if inner.finished_tx.is_empty() && inner.finished_rx.is_empty() {
                    return;
                }
                std::mem::take(&mut inner.finished_tx)
            };
            for (cb, report) in tx.drain(..) {
                cb(eng, report);
            }
            let rx = {
                let mut inner = core.inner.borrow_mut();
                if inner.finished_tx.is_empty() {
                    // Hand the drained vec's capacity back for reuse.
                    inner.finished_tx = tx;
                }
                std::mem::take(&mut inner.finished_rx)
            };
            if !rx.is_empty() {
                let cb = core.inner.borrow_mut().on_rx_done.take();
                if let Some(mut f) = cb {
                    for d in rx {
                        f(eng, d);
                    }
                    let mut inner = core.inner.borrow_mut();
                    if inner.on_rx_done.is_none() {
                        inner.on_rx_done = Some(f);
                    }
                }
            }
        }
    }

    // -- pacing pump --------------------------------------------------------

    /// Ensures `peer`'s pump is armed when its arbiter has work.
    fn pump_kick(core: &Rc<ManagerCore>, eng: &mut Engine, peer: NodeId) {
        let arm = {
            let mut inner = core.inner.borrow_mut();
            match inner.ports.get_mut(&peer) {
                Some(p) if (p.arbiter.has_work() || !p.urgent.is_empty()) && !p.pump_armed => {
                    p.pump_armed = true;
                    true
                }
                _ => false,
            }
        };
        if arm {
            let c = core.clone();
            eng.schedule_recurring_in(SimTime(1), move |eng| {
                let next = Self::pump(&c, eng, peer);
                // A pump round may have pushed the first RTO deadline for a
                // freshly injected flow; make sure the shared tick covers it.
                Self::retick(&c, eng);
                next
            });
        }
    }

    fn pump_kick_all(core: &Rc<ManagerCore>, eng: &mut Engine) {
        // Small fixed scratch: the overwhelmingly common case is 1 peer.
        let peers: Vec<NodeId> = {
            let inner = core.inner.borrow();
            inner
                .ports
                .iter()
                .filter(|(_, p)| (p.arbiter.has_work() || !p.urgent.is_empty()) && !p.pump_armed)
                .map(|(n, _)| *n)
                .collect()
        };
        for peer in peers {
            Self::pump_kick(core, eng, peer);
        }
    }

    /// One pump round: inject arbiter work until the wire is busy a full
    /// horizon ahead, then sleep until it drains back under the horizon.
    fn pump(core: &Rc<ManagerCore>, eng: &mut Engine, peer: NodeId) -> Option<SimTime> {
        let mut inner = core.inner.borrow_mut();
        let inner = &mut *inner;
        let now = eng.now();
        let horizon = core.cfg.pace_horizon;
        let rto = inner.tx_rto(core);
        let port = inner.ports.get_mut(&peer)?;
        loop {
            let busy = core
                .fabric
                .tx_busy_until(core.node, peer)
                .unwrap_or(now)
                .max(now);
            if busy >= now.saturating_add(horizon) {
                // Wire saturated a horizon ahead: resume when it drains.
                return Some(
                    busy.saturating_sub(horizon)
                        .max(now.saturating_add(SimTime(1))),
                );
            }
            // Repairs first, then the fair ring.
            let Some((fid, item)) = port.urgent.pop_front().or_else(|| port.arbiter.poll()) else {
                port.pump_armed = false;
                return None;
            };
            let Some(flow) = inner.tx_flows.get_mut(&fid) else {
                continue; // completed while queued
            };
            let hdl = if item.tag & PARITY_TAG != 0 {
                flow.parity_hdl
            } else {
                flow.data_hdl
            };
            let Some(hdl) = hdl else { continue };
            let c = (item.tag & !PARITY_TAG) as u64;
            let off = c * core.cfg.qp.chunk_bytes;
            let qp = &port.shards[flow.shard].qp;
            match qp.send_stream_continue(eng, &hdl, off, item.bytes) {
                Ok(()) => {
                    inner.stats.injected += 1;
                    inner.trace.injected.inc();
                    if item.tag & PARITY_TAG == 0 {
                        flow.timers.record_sent(c as usize, eng.now());
                    }
                    if flow.uninjected > 0 {
                        flow.uninjected -= 1;
                        if flow.uninjected == 0 && matches!(flow.spec, SchemeSpec::SrNack) {
                            // Initial injection done: the RTO clock starts.
                            // (`retick` after this pump round arms or pulls
                            // forward the shared tick to cover it.)
                            let at = eng.now().saturating_add(rto);
                            inner.next_stamp += 1;
                            let stamp = inner.next_stamp;
                            flow.stamp = stamp;
                            flow.deadline = at;
                            inner.due.push(at, stamp, FlowKey::Tx(fid));
                        }
                    }
                }
                // The stream closed under us (completion raced the queue).
                Err(SdrError::StreamEnded) | Err(SdrError::BadHandle) => continue,
                Err(e) => panic!("stream injection failed: {e:?}"),
            }
        }
    }
}

impl FlowManager {
    /// Re-arms (or pulls forward) the shared tick from the due index.
    /// `Inner` methods push deadlines while the manager borrow is held and
    /// cannot touch the engine-side timer themselves; every entry point
    /// that may have pushed one (control dispatch, pump rounds) calls this
    /// after releasing the borrow.
    fn retick(core: &Rc<ManagerCore>, eng: &mut Engine) {
        let at = {
            let inner = core.inner.borrow();
            match inner.due.peek() {
                Some((at, _, _)) if inner.tick.is_none() || at < inner.tick_next => Some(at),
                _ => None,
            }
        };
        if let Some(at) = at {
            Self::ensure_tick(core, eng, at.max(eng.now().saturating_add(SimTime(1))));
        }
    }
}

impl Inner {
    /// Receiver poll cadence: the configured interval, stretched so the
    /// whole rx population stays inside the control budget. A flow can't
    /// learn anything new faster than its chunks arrive, and every poll
    /// round puts an ack on the reverse path that also carries CTS
    /// credits and final acks — polling thousands of flows at `rtt/4`
    /// buries the very messages that complete them.
    fn rx_ack_interval(&self, core: &ManagerCore) -> SimTime {
        core.cfg
            .ack_interval
            .max(ctrl_pacing(&core.cfg, self.rx_flows.len()))
    }

    /// Sender RTO widened by a round trip of control pacing: against a
    /// large population the receiver legitimately acks this slowly, and
    /// an unwidened RTO would expire chunks whose acks are merely
    /// queued behind the rest of the population's.
    fn tx_rto(&self, core: &ManagerCore) -> SimTime {
        let pace = ctrl_pacing(&core.cfg, self.tx_flows.len());
        core.cfg
            .rto
            .saturating_add(SimTime(pace.0.saturating_mul(2)))
    }

    /// Pushes a fresh due entry for `key` (lazy-invalidating any older
    /// one) and records the stamp/deadline on the flow.
    fn schedule(&mut self, key: FlowKey, at: SimTime) {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        match key {
            FlowKey::Tx(id) => {
                let f = self.tx_flows.get_mut(&id).expect("live flow");
                f.stamp = stamp;
                f.deadline = at;
            }
            FlowKey::Rx(peer, id) => {
                let f = self.rx_flows.get_mut(&(peer, id)).expect("live flow");
                f.stamp = stamp;
            }
        }
        self.due.push(at, stamp, key);
    }

    fn run_due(&mut self, core: &Rc<ManagerCore>, eng: &mut Engine) {
        let now = eng.now();
        while let Some((at, stamp, key)) = self.due.peek() {
            if at > now {
                break;
            }
            self.due.pop();
            let live = match key {
                FlowKey::Tx(id) => self.tx_flows.get(&id).is_some_and(|f| f.stamp == stamp),
                FlowKey::Rx(p, id) => self
                    .rx_flows
                    .get(&(p, id))
                    .is_some_and(|f| f.stamp == stamp),
            };
            if !live {
                continue;
            }
            match key {
                FlowKey::Tx(id) => self.service_tx(core, eng, id),
                FlowKey::Rx(peer, id) => self.service_rx(core, eng, peer, id),
            }
        }
    }

    // -- sender side --------------------------------------------------------

    fn service_tx(&mut self, core: &Rc<ManagerCore>, eng: &mut Engine, id: u64) {
        let now = eng.now();
        let rto = self.tx_rto(core);
        let flow = self.tx_flows.get_mut(&id).expect("validated");
        match flow.phase {
            TxPhase::Opening => {
                flow.open_retries += 1;
                if flow.open_retries > OPEN_RETRY_CAP {
                    self.fail_open(core, eng, id);
                    return;
                }
                self.stats.open_retries += 1;
                let (dst, bytes, spec) = (flow.peer_ctrl, flow.bytes, flow.spec);
                let backoff = flow.open_retries.min(OPEN_BACKOFF_CAP);
                let at =
                    now.saturating_add(SimTime(core.cfg.open_retry.0.saturating_mul(1 << backoff)));
                core.ep
                    .send_flow(eng, dst, id, &CtrlMsg::FlowOpen { bytes, spec });
                self.schedule(FlowKey::Tx(id), at);
            }
            // A lost CTS heals from the receiver side; nothing to do.
            TxPhase::Starting => {}
            TxPhase::Streaming => {
                if !matches!(flow.spec, SchemeSpec::SrNack) {
                    return; // EC repair is NACK-driven
                }
                let peer = flow.peer;
                let mut expired = 0u64;
                let chunk = core.cfg.qp.chunk_bytes;
                let bytes = flow.bytes;
                let port = self.ports.get_mut(&peer).expect("port");
                let next = flow.timers.take_expired(now, rto, |c| {
                    let off = c as u64 * chunk;
                    let len = chunk.min(bytes - off);
                    port.urgent.push_back((
                        id,
                        WorkItem {
                            tag: c as u32,
                            bytes: len,
                        },
                    ));
                    expired += 1;
                });
                flow.retransmits += expired;
                self.stats.retransmits += expired;
                self.trace.urgent.add(expired);
                if let Some(at) = next {
                    self.schedule(FlowKey::Tx(id), at.max(now.saturating_add(SimTime(1))));
                }
            }
        }
    }

    fn on_flow_ack(
        &mut self,
        core: &Rc<ManagerCore>,
        eng: &mut Engine,
        id: u64,
        data_seq: u64,
        parity_seq: u64,
    ) {
        let Some(flow) = self.tx_flows.get_mut(&id) else {
            return; // duplicate ack after completion
        };
        if flow.phase != TxPhase::Opening {
            return; // duplicate ack (open retry crossed the first ack)
        }
        flow.phase = TxPhase::Starting;
        // Park the deadline: open retries stop, CTS healing is the
        // receiver's job from here.
        flow.deadline = SimTime::MAX;
        flow.stamp = u64::MAX;
        let peer = flow.peer;
        let shard_idx = flow.shard;
        let has_parity = flow.parity_chunks > 0;
        let port = self.ports.get_mut(&peer).expect("port");
        port.arbiter.register(id, 1);
        let shard = &mut port.shards[shard_idx];
        shard.starts.insert(
            data_seq,
            StartEntry {
                flow: id,
                parity: false,
            },
        );
        if has_parity {
            debug_assert_ne!(parity_seq, u64::MAX, "EC ack must carry a parity seq");
            shard.starts.insert(
                parity_seq,
                StartEntry {
                    flow: id,
                    parity: true,
                },
            );
        }
        self.try_starts(core, eng, peer, shard_idx);
    }

    /// Opens every start at the head of the shard's seq-ordered queue
    /// whose CTS credit has arrived, and floods its chunks into the
    /// arbiter. Starts strictly in seq order — `send_stream_start`
    /// consumes send seqs sequentially.
    fn try_starts(&mut self, core: &Rc<ManagerCore>, eng: &mut Engine, peer: NodeId, shard: usize) {
        let chunk = core.cfg.qp.chunk_bytes;
        let Some(port) = self.ports.get_mut(&peer) else {
            return;
        };
        loop {
            let sh = &mut port.shards[shard];
            let seq = sh.qp.next_send_seq();
            let Some(entry) = sh.starts.get(&seq) else {
                break;
            };
            if !sh.qp.has_cts(seq) {
                break;
            }
            let fid = entry.flow;
            let parity = entry.parity;
            let flow = self.tx_flows.get_mut(&fid).expect("started flow is live");
            let (addr, len) = if parity {
                (flow.parity_addr, flow.parity_chunks as u64 * chunk)
            } else {
                (flow.src_addr, flow.bytes)
            };
            let hdl = sh
                .qp
                .send_stream_start(eng, addr, len, None)
                .expect("CTS credit checked");
            sh.starts.remove(&seq);
            if parity {
                flow.parity_hdl = Some(hdl);
                for c in 0..flow.parity_chunks {
                    port.arbiter.enqueue(
                        fid,
                        WorkItem {
                            tag: PARITY_TAG | c as u32,
                            bytes: chunk,
                        },
                    );
                    flow.uninjected += 1;
                }
            } else {
                flow.data_hdl = Some(hdl);
                for c in 0..flow.chunks {
                    let off = c as u64 * chunk;
                    port.arbiter.enqueue(
                        fid,
                        WorkItem {
                            tag: c as u32,
                            bytes: chunk.min(flow.bytes - off),
                        },
                    );
                    flow.uninjected += 1;
                }
                // Streaming begins once the data stream is open (a parity
                // stream may still be queued behind other flows' starts).
                flow.phase = TxPhase::Streaming;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_sr_ack(
        &mut self,
        core: &Rc<ManagerCore>,
        eng: &mut Engine,
        id: u64,
        cumulative: u32,
        window_start: u32,
        sack_bits: &[u64],
        sack_len: u32,
        nacks: &[u32],
    ) {
        let now = eng.now();
        let rto = self.tx_rto(core);
        let Some(flow) = self.tx_flows.get_mut(&id) else {
            return; // late ack after completion
        };
        if flow.phase != TxPhase::Streaming {
            return;
        }
        // At most one RTT sample per ACK, Karn-gated.
        let mut rtt_sample = None;
        if let Some(first) = flow.timers.first_unacked() {
            if first < cumulative as usize {
                rtt_sample = flow.timers.rtt_sample(first, now);
            }
        }
        flow.timers.ack_prefix(cumulative as usize);
        for b in 0..(sack_len as usize) {
            if sack_bits
                .get(b / 64)
                .is_some_and(|w| w >> (b % 64) & 1 == 1)
            {
                let c = window_start as usize + b;
                if flow.timers.mark_acked(c) && rtt_sample.is_none() {
                    rtt_sample = flow.timers.rtt_sample(c, now);
                }
            }
        }
        if let Some(s) = rtt_sample {
            flow.est.borrow_mut().observe_rtt(s);
        }
        flow.est.borrow_mut().note_progress(now);
        if flow.timers.is_complete() {
            self.finish_tx(core, eng, id, true);
            return;
        }
        // NACK fast path: claim-and-requeue reported holes into the
        // urgent lane. The claim guard covers the pacing horizon on top
        // of half an RTO — a repair can legitimately sit that long in the
        // wire queue before the receiver could have seen it.
        if !nacks.is_empty() && flow.uninjected == 0 {
            let guard = SimTime(rto.0 / 2 + core.cfg.pace_horizon.0);
            let chunk = core.cfg.qp.chunk_bytes;
            let bytes = flow.bytes;
            let peer = flow.peer;
            let mut claimed = 0u64;
            let port = self.ports.get_mut(&peer).expect("port");
            for &c in nacks {
                if flow.timers.claim_for_resend(c as usize, now, guard) {
                    let off = c as u64 * chunk;
                    port.urgent.push_back((
                        id,
                        WorkItem {
                            tag: c,
                            bytes: chunk.min(bytes - off),
                        },
                    ));
                    claimed += 1;
                }
            }
            flow.retransmits += claimed;
            self.stats.retransmits += claimed;
            self.trace.urgent.add(claimed);
        }
    }

    /// Final acknowledgment: absorb the receiver's closing first-pass
    /// counters — per-poll telemetry stops at resolution, so this is the
    /// only way the observation's tail reaches the shared estimator —
    /// then complete the flow.
    fn on_flow_done(
        &mut self,
        core: &Rc<ManagerCore>,
        eng: &mut Engine,
        id: u64,
        seen: u64,
        lost: u64,
    ) {
        let now = eng.now();
        let Some(flow) = self.tx_flows.get_mut(&id) else {
            return; // linger repeat after completion
        };
        if flow.phase != TxPhase::Streaming {
            return;
        }
        let d_seen = seen.saturating_sub(flow.last_telem.seen);
        let d_lost = lost.saturating_sub(flow.last_telem.lost).min(d_seen);
        if d_seen > 0 {
            flow.last_telem = TelemetryCounters { seen, lost };
            let mut est = flow.est.borrow_mut();
            est.observe_packets(d_seen, d_lost);
            est.note_progress(now);
        }
        self.finish_tx(core, eng, id, true);
    }

    /// Flow-EC fallback: `failed` carries missing *data chunk* indices;
    /// selective-repeat exactly those (claim-guarded against NACK storms).
    fn on_ec_nack(&mut self, core: &Rc<ManagerCore>, eng: &mut Engine, id: u64, failed: &[u32]) {
        let now = eng.now();
        let rto = self.tx_rto(core);
        let Some(flow) = self.tx_flows.get_mut(&id) else {
            return;
        };
        if flow.phase != TxPhase::Streaming || flow.uninjected > 0 {
            return;
        }
        let Some(port) = self.ports.get_mut(&flow.peer) else {
            return;
        };
        let chunk = core.cfg.qp.chunk_bytes;
        let guard = SimTime(rto.0 / 2 + core.cfg.pace_horizon.0);
        let mut claimed = 0u64;
        for &c in failed {
            if flow.timers.claim_for_resend(c as usize, now, guard) {
                let off = c as u64 * chunk;
                port.urgent.push_back((
                    id,
                    WorkItem {
                        tag: c,
                        bytes: chunk.min(flow.bytes - off),
                    },
                ));
                claimed += 1;
            }
        }
        flow.retransmits += claimed;
        self.stats.retransmits += claimed;
        self.trace.urgent.add(claimed);
        flow.est.borrow_mut().note_progress(now);
    }

    fn on_telemetry(&mut self, eng: &mut Engine, id: u64, seen: u64, lost: u64) {
        let now = eng.now();
        let Some(flow) = self.tx_flows.get_mut(&id) else {
            return;
        };
        // Per-flow cumulative → delta, then into the *shared* per-peer
        // estimator (its own absorb would conflate many flows' counters).
        let d_seen = seen.saturating_sub(flow.last_telem.seen);
        let d_lost = lost.saturating_sub(flow.last_telem.lost).min(d_seen);
        if d_seen > 0 {
            flow.last_telem = TelemetryCounters { seen, lost };
            let mut est = flow.est.borrow_mut();
            est.observe_packets(d_seen, d_lost);
            est.note_progress(now);
        }
    }

    fn finish_tx(&mut self, core: &Rc<ManagerCore>, eng: &mut Engine, id: u64, delivered: bool) {
        let mut flow = self.tx_flows.remove(&id).expect("live flow");
        if let Some(port) = self.ports.get_mut(&flow.peer) {
            port.arbiter.deregister(id);
            let qp = &port.shards[flow.shard].qp;
            for hdl in [flow.data_hdl.take(), flow.parity_hdl.take()]
                .into_iter()
                .flatten()
            {
                let _ = qp.send_stream_end(&hdl);
                qp.send_release(hdl);
            }
        }
        if delivered {
            // Cut the receiver's ACK linger short (best-effort, once).
            core.ep
                .send_flow(eng, flow.peer_ctrl, id, &CtrlMsg::FlowFin);
        }
        self.finished_tx.push((
            flow.done.take().expect("reported once"),
            FlowReport {
                id,
                peer: flow.peer,
                bytes: flow.bytes,
                spec: flow.spec,
                opened_at: flow.opened_at,
                done_at: eng.now(),
                retransmits: flow.retransmits,
                open_retries: flow.open_retries,
                delivered,
            },
        ));
        self.stats.tx_done += 1;
        if delivered {
            self.stats.delivered += 1;
            self.stats.bytes_delivered += flow.bytes;
            let us = eng.now().saturating_sub(flow.opened_at).as_picos() / 1_000_000;
            self.trace.completion_us.record(us);
        }
    }

    fn fail_open(&mut self, core: &Rc<ManagerCore>, eng: &mut Engine, id: u64) {
        self.finish_tx(core, eng, id, false);
    }

    // -- receiver side ------------------------------------------------------

    fn on_flow_open(
        &mut self,
        core: &Rc<ManagerCore>,
        eng: &mut Engine,
        src: QpAddr,
        id: u64,
        bytes: u64,
        spec: SchemeSpec,
    ) {
        let peer_node = src.node;
        if let Some(flow) = self.rx_flows.get(&(peer_node, id)) {
            // Duplicate open (our FlowAck was lost): re-send the snapshot.
            let ack = CtrlMsg::FlowAck {
                data_seq: flow.data_h.seq(),
                parity_seq: flow.parity_h.as_ref().map_or(u64::MAX, |h| h.seq()),
            };
            core.ep.send_flow(eng, src, id, &ack);
            return;
        }
        if self.parked.contains(&(peer_node, id)) {
            return; // already queued for admission
        }
        let open = PendingOpen {
            src,
            peer_node,
            flow: id,
            bytes,
            spec,
        };
        if !self.try_admit(core, eng, &open) {
            let shard = (id % core.cfg.shards as u64) as usize;
            if let Some(port) = self.ports.get_mut(&peer_node) {
                port.shards[shard].pending.push_back(open);
                self.parked.insert((peer_node, id));
                self.stats.parked_opens += 1;
                self.trace.parked.inc();
                self.trace.recorder.record(
                    eng.now().as_picos(),
                    EventKind::SlotPark,
                    id,
                    shard as u64,
                );
            }
        }
    }

    /// Attempts to admit one open: posts the receive buffers, answers
    /// with the admission snapshot, and schedules the flow's poll loop.
    /// `false` when the shard's slot table cannot take the posts.
    fn try_admit(&mut self, core: &Rc<ManagerCore>, eng: &mut Engine, open: &PendingOpen) -> bool {
        let now = eng.now();
        let chunk = core.cfg.qp.chunk_bytes;
        let chunks = core.cfg.qp.chunks_for(open.bytes) as usize;
        let shard_idx = (open.flow % core.cfg.shards as u64) as usize;
        let (parity_chunks, code) = match open.spec {
            SchemeSpec::EcMds { k, m }
                if k as usize == chunks && m >= 1 && open.bytes.is_multiple_of(chunk) =>
            {
                (m as usize, Some(self.code_for(k, m, false)))
            }
            SchemeSpec::EcXor { k, m }
                if k as usize == chunks && m >= 1 && open.bytes.is_multiple_of(chunk) =>
            {
                (m as usize, Some(self.code_for(k, m, true)))
            }
            _ => (0, None),
        };
        let needed = if code.is_some() { 2 } else { 1 };
        let Some(port) = self.ports.get_mut(&open.peer_node) else {
            return false; // no port to that peer (mis-addressed open)
        };
        let shard = &mut port.shards[shard_idx];
        if shard.qp.recv_slots_free() < needed {
            return false;
        }
        let dst_addr = match &mut self.rx_alloc {
            Some(f) => f(open.bytes),
            None => core.ctx.alloc_buffer(open.bytes),
        };
        let data_h = shard
            .qp
            .recv_post(eng, dst_addr, open.bytes)
            .expect("slot availability checked");
        let (parity_h, parity_addr) = if code.is_some() {
            let len = parity_chunks as u64 * chunk;
            let addr = core.ctx.alloc_buffer(len);
            let h = shard
                .qp
                .recv_post(eng, addr, len)
                .expect("slot availability checked");
            (Some(h), addr)
        } else {
            (None, 0)
        };
        let est = self.registry.checkout(open.peer_node, now);
        // FTO: worst-case injection of data+parity plus two RTTs.
        let inj = SimTime::from_secs_f64(
            (chunks + parity_chunks) as f64 * chunk as f64 * 8.0 / core.cfg.bandwidth_bps,
        );
        let fto = inj
            .saturating_add(core.cfg.rtt)
            .saturating_add(core.cfg.rtt);
        let ack = CtrlMsg::FlowAck {
            data_seq: data_h.seq(),
            parity_seq: parity_h.as_ref().map_or(u64::MAX, |h| h.seq()),
        };
        let flow = RxFlow {
            peer_ctrl: open.src,
            shard: shard_idx,
            bytes: open.bytes,
            chunks,
            chunk_bytes: chunk,
            dst_addr,
            data_h,
            parity_h,
            parity_addr,
            parity_chunks,
            code,
            data_cursor: FirstPassCursor::default(),
            parity_cursor: FirstPassCursor::default(),
            counters: TelemetryCounters::default(),
            est,
            polls: 0,
            fto,
            fto_deadline: None,
            resolved: false,
            decoded: false,
            final_ack: None,
            linger_left: core.cfg.linger_acks,
            stamp: 0,
        };
        self.rx_flows.insert((open.peer_node, open.flow), flow);
        let iv = self.rx_ack_interval(core);
        self.schedule(
            FlowKey::Rx(open.peer_node, open.flow),
            now.saturating_add(iv),
        );
        core.ep.send_flow(eng, open.src, open.flow, &ack);
        self.trace.admitted.inc();
        true
    }

    /// Admits as many of the shard's parked opens as now fit (called when
    /// a resolve frees slots).
    fn admit_pending(
        &mut self,
        core: &Rc<ManagerCore>,
        eng: &mut Engine,
        peer: NodeId,
        shard: usize,
    ) {
        loop {
            let Some(open) = self
                .ports
                .get_mut(&peer)
                .and_then(|p| p.shards[shard].pending.pop_front())
            else {
                return;
            };
            if self.try_admit(core, eng, &open) {
                self.parked.remove(&(open.peer_node, open.flow));
                self.trace.drained.inc();
                self.trace.recorder.record(
                    eng.now().as_picos(),
                    EventKind::SlotDrain,
                    open.flow,
                    shard as u64,
                );
            } else {
                // Still no room: park it back at the front and stop.
                self.ports.get_mut(&peer).expect("port").shards[shard]
                    .pending
                    .push_front(open);
                return;
            }
        }
    }

    fn service_rx(&mut self, core: &Rc<ManagerCore>, eng: &mut Engine, peer: NodeId, id: u64) {
        let now = eng.now();
        let key = (peer, id);
        // Linger: repeat the final ACK so a lost one cannot wedge the
        // sender; FlowFin (or the countdown) retires the flow.
        let linger = {
            let Some(flow) = self.rx_flows.get_mut(&key) else {
                return;
            };
            if flow.resolved {
                if flow.linger_left == 0 {
                    self.rx_flows.remove(&key);
                    return;
                }
                flow.linger_left -= 1;
                Some((flow.peer_ctrl, flow.final_ack.clone().expect("resolved")))
            } else {
                None
            }
        };
        if let Some((dst, ack)) = linger {
            core.ep.send_flow(eng, dst, id, &ack);
            let iv = self.rx_ack_interval(core);
            self.schedule(FlowKey::Rx(peer, id), now.saturating_add(iv));
            return;
        }
        // First-pass loss telemetry, CTS healing and the resolution check.
        let (data_done, dst, is_ec) = {
            let flow = self.rx_flows.get_mut(&key).expect("live");
            flow.polls += 1;
            let qp = &self.ports[&peer].shards[flow.shard].qp;
            let mut seen = 0u64;
            let mut lost = 0u64;
            if let Ok(bm) = qp.recv_bitmap(&flow.data_h) {
                let (s, l) = flow.data_cursor.scan(bm.packets());
                seen += s;
                lost += l;
            }
            if let Some(ph) = &flow.parity_h {
                if let Ok(bm) = qp.recv_bitmap(ph) {
                    let (s, l) = flow.parity_cursor.scan(bm.packets());
                    seen += s;
                    lost += l;
                }
            }
            if seen > 0 {
                flow.counters.seen += seen;
                flow.counters.lost += lost;
                let mut est = flow.est.borrow_mut();
                est.observe_packets(seen, lost);
                est.note_progress(now);
                if flow.fto_deadline.is_none() && flow.code.is_some() {
                    flow.fto_deadline = Some(now.saturating_add(flow.fto));
                }
            }
            if flow.counters.seen == 0 {
                // Nothing arrived at all: the CTS (or every first-pass
                // packet) may have been lost — heal both credits.
                let _ = qp.resend_cts(eng, &flow.data_h);
                if let Some(ph) = &flow.parity_h {
                    let _ = qp.resend_cts(eng, ph);
                }
            }
            let data_done = qp
                .recv_bitmap(&flow.data_h)
                .map(|bm| bm.chunks().first_n_set(flow.chunks))
                .unwrap_or(false);
            (data_done, flow.peer_ctrl, flow.code.is_some())
        };
        let decoded = if !data_done && is_ec {
            self.try_decode(core, peer, id)
        } else {
            false
        };
        if data_done || decoded {
            self.rx_flows.get_mut(&key).expect("live").decoded = decoded;
            self.resolve_rx(core, eng, peer, id);
            return;
        }
        // Not resolved: scheme-specific repair nudge.
        if !is_ec {
            let ack = {
                let flow = &self.rx_flows[&key];
                let qp = &self.ports[&peer].shards[flow.shard].qp;
                let bm = qp.recv_bitmap(&flow.data_h).expect("slot active");
                build_sr_ack(bm.chunks(), flow.chunks, true)
            };
            core.ep.send_flow(eng, dst, id, &ack);
        } else {
            // FTO expiry: NACK the missing data chunks for §4.1.2
            // chunk-granular selective repeat, then re-arm the FTO.
            let nack = {
                let flow = self.rx_flows.get_mut(&key).expect("live");
                if flow.fto_deadline.is_some_and(|d| now >= d) {
                    flow.fto_deadline = Some(now.saturating_add(flow.fto));
                    let qp = &self.ports[&peer].shards[flow.shard].qp;
                    let mut failed = Vec::new();
                    if let Ok(bm) = qp.recv_bitmap(&flow.data_h) {
                        bm.chunks().for_each_missing_in_first_n(flow.chunks, |c| {
                            if failed.len() < MAX_FLOW_NACKS {
                                failed.push(c as u32);
                            }
                        });
                    }
                    Some(CtrlMsg::EcNack { failed })
                } else {
                    None
                }
            };
            if let Some(n) = nack {
                core.ep.send_flow(eng, dst, id, &n);
            }
        }
        let telem = {
            let flow = &self.rx_flows[&key];
            if flow.polls.is_multiple_of(TELEMETRY_EVERY) {
                Some(CtrlMsg::Telemetry {
                    seen: flow.counters.seen,
                    lost: flow.counters.lost,
                })
            } else {
                None
            }
        };
        if let Some(t) = telem {
            core.ep.send_flow(eng, dst, id, &t);
        }
        let iv = self.rx_ack_interval(core);
        self.schedule(FlowKey::Rx(peer, id), now.saturating_add(iv));
    }

    /// Attempts an in-place erasure decode of the flow's single
    /// submessage through the manager-shared scratch. `true` when the
    /// message is now fully present in the destination buffer.
    fn try_decode(&mut self, core: &Rc<ManagerCore>, peer: NodeId, id: u64) -> bool {
        let key = (peer, id);
        let flow = self.rx_flows.get(&key).expect("live");
        let qp = &self.ports[&peer].shards[flow.shard].qp;
        let Ok(data_bm) = qp.recv_bitmap(&flow.data_h) else {
            return false;
        };
        let Ok(parity_bm) = qp.recv_bitmap(flow.parity_h.as_ref().expect("ec flow")) else {
            return false;
        };
        let code = flow.code.as_ref().expect("ec flow").clone();
        let k = flow.chunks;
        let m = flow.parity_chunks;
        let chunk_len = flow.chunk_bytes as usize;
        let (dst_addr, parity_addr) = (flow.dst_addr, flow.parity_addr);
        let scratch_rc = self.scratch.clone();
        let mut scratch_guard = scratch_rc.borrow_mut();
        let scratch = &mut *scratch_guard;
        scratch.data_present.clear();
        scratch.data_present.resize(k, true);
        let flags = &mut scratch.data_present;
        data_bm
            .chunks()
            .for_each_missing_in_first_n(k, |c| flags[c] = false);
        scratch.parity_present.clear();
        scratch.parity_present.resize(m, true);
        let flags = &mut scratch.parity_present;
        parity_bm
            .chunks()
            .for_each_missing_in_first_n(m, |c| flags[c] = false);
        scratch.present.clear();
        let (present, dp, pp) = (
            &mut scratch.present,
            &scratch.data_present,
            &scratch.parity_present,
        );
        present.extend_from_slice(dp);
        present.extend_from_slice(pp);
        if !code.can_recover(&scratch.present) {
            return false;
        }
        debug_assert!(scratch.shards.is_empty());
        for c in 0..k {
            if scratch.data_present[c] {
                let mut b = scratch.take(chunk_len);
                core.ctx
                    .read_buffer_into(dst_addr + c as u64 * chunk_len as u64, &mut b);
                scratch.shards.push(Some(b));
            } else {
                scratch.shards.push(None);
            }
        }
        for c in 0..m {
            if scratch.parity_present[c] {
                let mut b = scratch.take(chunk_len);
                core.ctx
                    .read_buffer_into(parity_addr + c as u64 * chunk_len as u64, &mut b);
                scratch.shards.push(Some(b));
            } else {
                scratch.shards.push(None);
            }
        }
        {
            let EcScratch { pool, shards, .. } = scratch;
            code.reconstruct_into(shards, &mut |len| pool.take(len))
                .expect("can_recover checked");
        }
        for c in 0..k {
            if !scratch.data_present[c] {
                let shard = scratch.shards[c].as_ref().expect("reconstructed");
                core.ctx
                    .write_buffer(dst_addr + c as u64 * chunk_len as u64, shard);
            }
        }
        let mut staged = std::mem::take(&mut scratch.shards);
        for b in staged.drain(..).flatten() {
            scratch.put(b);
        }
        scratch.shards = staged;
        self.stats.decoded += 1;
        true
    }

    /// The flow's message is fully present: release the slots (freeing
    /// admission capacity), snapshot the final ACK for the linger loop,
    /// notify, and start lingering.
    fn resolve_rx(&mut self, core: &Rc<ManagerCore>, eng: &mut Engine, peer: NodeId, id: u64) {
        let now = eng.now();
        let key = (peer, id);
        let flow = self.rx_flows.get_mut(&key).expect("live");
        let shard = flow.shard;
        // Final ack + closing telemetry in one message (cheap to clone
        // for linger repeats).
        let final_ack = CtrlMsg::FlowDone {
            seen: flow.counters.seen,
            lost: flow.counters.lost,
        };
        {
            let qp = &self.ports[&peer].shards[shard].qp;
            qp.recv_complete(eng, &flow.data_h).expect("live slot");
            if let Some(ph) = &flow.parity_h {
                qp.recv_complete(eng, ph).expect("live slot");
            }
        }
        flow.resolved = true;
        flow.final_ack = Some(final_ack.clone());
        let dst = flow.peer_ctrl;
        let done = RxFlowDone {
            id,
            peer,
            addr: flow.dst_addr,
            bytes: flow.bytes,
            at: now,
            decoded: flow.decoded,
        };
        core.ep.send_flow(eng, dst, id, &final_ack);
        let iv = self.rx_ack_interval(core);
        self.schedule(FlowKey::Rx(peer, id), now.saturating_add(iv));
        self.stats.rx_done += 1;
        self.finished_rx.push(done);
        // Freed slots: admit whoever was parked on this shard.
        self.admit_pending(core, eng, peer, shard);
    }

    fn on_flow_fin(&mut self, src: QpAddr, id: u64) {
        // The sender is satisfied: no more final-ACK repeats needed.
        if let Some(f) = self.rx_flows.get(&(src.node, id)) {
            if f.resolved {
                self.rx_flows.remove(&(src.node, id));
            }
        }
    }

    // -- EC helpers ---------------------------------------------------------

    fn code_for(&mut self, k: u16, m: u16, xor: bool) -> Arc<dyn ErasureCode> {
        self.codes
            .entry((k, m, xor))
            .or_insert_with(|| {
                if xor {
                    Arc::new(XorCode::new(k as usize, m as usize))
                } else {
                    Arc::new(ReedSolomon::new(k as usize, m as usize))
                }
            })
            .clone()
    }

    /// Stages the flow's parity into a fresh buffer via the shared encode
    /// pool, renting every staging buffer from the manager scratch.
    fn stage_parity(
        &mut self,
        core: &Rc<ManagerCore>,
        src_addr: u64,
        chunks: usize,
        spec: SchemeSpec,
    ) -> u64 {
        let chunk = core.cfg.qp.chunk_bytes as usize;
        let (m, xor) = match spec {
            SchemeSpec::EcMds { m, .. } => (m as usize, false),
            SchemeSpec::EcXor { m, .. } => (m as usize, true),
            _ => unreachable!("parity staging is EC-only"),
        };
        let code = self.code_for(chunks as u16, m as u16, xor);
        let parity_addr = core.ctx.alloc_buffer((m * chunk) as u64);
        let scratch_rc = self.scratch.clone();
        let mut scratch_guard = scratch_rc.borrow_mut();
        let scratch = &mut *scratch_guard;
        let mut data: Vec<Vec<u8>> = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let mut b = scratch.take(chunk);
            core.ctx
                .read_buffer_into(src_addr + (c * chunk) as u64, &mut b);
            data.push(b);
        }
        let mut parity: Vec<Vec<u8>> = (0..m).map(|_| scratch.take(chunk)).collect();
        {
            let data_refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
            let mut parity_refs: Vec<&mut [u8]> =
                parity.iter_mut().map(|b| b.as_mut_slice()).collect();
            EncodePool::global().encode_striped(code.as_ref(), &data_refs, &mut parity_refs, 1);
        }
        for (c, b) in parity.iter().enumerate() {
            core.ctx.write_buffer(parity_addr + (c * chunk) as u64, b);
        }
        for b in data.into_iter().chain(parity) {
            scratch.put(b);
        }
        parity_addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn item(tag: u32, bytes: u64) -> WorkItem {
        WorkItem { tag, bytes }
    }

    #[test]
    fn drr_is_fifo_per_flow_and_byte_exact() {
        let mut arb = DrrArbiter::new(1024);
        arb.register(1, 1);
        arb.register(2, 1);
        for c in 0..4 {
            arb.enqueue(1, item(c, 1024));
            arb.enqueue(2, item(c, 1024));
        }
        assert_eq!(arb.total_backlog(), 8 * 1024);
        let mut got: HashMap<u64, Vec<u32>> = HashMap::new();
        while let Some((k, it)) = arb.poll() {
            got.entry(k).or_default().push(it.tag);
        }
        assert_eq!(got[&1], vec![0, 1, 2, 3]);
        assert_eq!(got[&2], vec![0, 1, 2, 3]);
        assert_eq!(arb.total_backlog(), 0);
        assert!(!arb.has_work());
    }

    #[test]
    fn drr_elephant_cannot_starve_mice() {
        // One elephant with a deep backlog, nine mice with one item each:
        // every mouse is served within the first rotation.
        let mut arb = DrrArbiter::new(1024);
        arb.register(0, 1);
        for c in 0..1000 {
            arb.enqueue(0, item(c, 1024));
        }
        for f in 1..10 {
            arb.register(f, 1);
            arb.enqueue(f, item(0, 1024));
        }
        let mut polls_to_serve: HashMap<u64, usize> = HashMap::new();
        for n in 0..1009 {
            let (k, _) = arb.poll().expect("work remains");
            polls_to_serve.entry(k).or_insert(n);
        }
        for f in 1..10 {
            assert!(
                polls_to_serve[&f] < 20,
                "mouse {f} first served at poll {}",
                polls_to_serve[&f]
            );
        }
    }

    #[test]
    fn drr_weight_doubles_share() {
        // Quantum = item size: a weight-2 flow earns exactly two items per
        // round against a weight-1 flow's one.
        let mut arb = DrrArbiter::new(100);
        arb.register(1, 1);
        arb.register(2, 2);
        for c in 0..300 {
            arb.enqueue(1, item(c, 100));
            arb.enqueue(2, item(c, 100));
        }
        let mut served = [0u64; 3];
        for _ in 0..90 {
            let (k, _) = arb.poll().expect("backlogged");
            served[k as usize] += 1;
        }
        assert_eq!(served[1] * 2, served[2]);
    }

    #[test]
    fn drr_deregister_drops_backlog_and_stale_ring_entries() {
        let mut arb = DrrArbiter::new(64);
        arb.register(1, 1);
        arb.register(2, 1);
        arb.enqueue(1, item(0, 64));
        arb.enqueue(2, item(0, 64));
        assert_eq!(arb.deregister(1), 64);
        let (k, _) = arb.poll().expect("flow 2 remains");
        assert_eq!(k, 2);
        assert_eq!(arb.poll(), None);
        assert_eq!(arb.deregister(1), 0);
    }

    #[test]
    fn due_index_pops_in_deadline_order() {
        let mut due = DueIndex::new();
        due.push(SimTime(30), 3, FlowKey::Tx(3));
        due.push(SimTime(10), 1, FlowKey::Tx(1));
        due.push(SimTime(20), 2, FlowKey::Rx(NodeId(7), 2));
        assert_eq!(due.peek(), Some((SimTime(10), 1, FlowKey::Tx(1))));
        assert_eq!(due.pop(), Some((SimTime(10), 1, FlowKey::Tx(1))));
        assert_eq!(due.pop(), Some((SimTime(20), 2, FlowKey::Rx(NodeId(7), 2))));
        assert_eq!(due.pop(), Some((SimTime(30), 3, FlowKey::Tx(3))));
        assert_eq!(due.pop(), None);
    }

    #[derive(Clone, Debug)]
    struct FlowProgram {
        weight: u64,
        sizes: Vec<u64>,
    }

    fn flow_program() -> impl Strategy<Value = FlowProgram> {
        (1u64..4, proptest::collection::vec(1u64..5000, 1..30))
            .prop_map(|(weight, sizes)| FlowProgram { weight, sizes })
    }

    proptest! {
        /// Randomized flow populations: every enqueued item is delivered
        /// exactly once, in per-flow FIFO order, and no backlogged flow
        /// waits longer than the DRR service bound for its first item.
        #[test]
        fn drr_delivery_is_byte_exact_and_starvation_free(
            programs in proptest::collection::vec(flow_program(), 1..12)
        ) {
            let quantum = 1024u64;
            let mut arb = DrrArbiter::new(quantum);
            let mut expect: HashMap<u64, VecDeque<(u32, u64)>> = HashMap::new();
            let mut total_items = 0usize;
            for (f, p) in programs.iter().enumerate() {
                let key = f as u64;
                arb.register(key, p.weight);
                let exp = expect.entry(key).or_default();
                for (c, &s) in p.sizes.iter().enumerate() {
                    arb.enqueue(key, item(c as u32, s));
                    exp.push_back((c as u32, s));
                    total_items += 1;
                }
            }
            // Service bound: every poll either delivers an item (at most
            // total_items times) or rotates the ring, and each full ring
            // rotation grants every flow one quantum × weight — so a flow
            // whose head item is `s` bytes is first served within
            // total_items + n_flows × ceil(s / quantum) polls.
            let n_flows = programs.len();
            let mut first_served: HashMap<u64, usize> = HashMap::new();
            let mut polls = 0usize;
            while let Some((k, it)) = arb.poll() {
                first_served.entry(k).or_insert(polls);
                polls += 1;
                let exp = expect.get_mut(&k).expect("registered");
                let (tag, bytes) = exp.pop_front().expect("not over-delivered");
                prop_assert_eq!(it.tag, tag, "per-flow FIFO order");
                prop_assert_eq!(it.bytes, bytes);
            }
            for (key, exp) in &expect {
                prop_assert!(exp.is_empty(), "flow {} shorted {} items", key, exp.len());
            }
            prop_assert_eq!(arb.total_backlog(), 0);
            for (f, p) in programs.iter().enumerate() {
                let head = p.sizes[0];
                let bound = total_items + n_flows * (head.div_ceil(quantum) as usize + 1);
                let served_at = first_served[&(f as u64)];
                prop_assert!(
                    served_at <= bound,
                    "flow {} first served at poll {} > bound {}",
                    f, served_at, bound
                );
            }
        }

        /// Interleaved arrivals: enqueue/poll in random order still
        /// conserves bytes exactly.
        #[test]
        fn drr_interleaved_arrivals_conserve_bytes(
            ops in proptest::collection::vec((0u64..6, 1u64..2000, any::<bool>()), 1..200)
        ) {
            let mut arb = DrrArbiter::new(512);
            for f in 0..6 {
                arb.register(f, 1);
            }
            let mut queued: u64 = 0;
            let mut served: u64 = 0;
            for (tag, (f, s, poll_now)) in ops.into_iter().enumerate() {
                arb.enqueue(f, item(tag as u32, s));
                queued += s;
                if poll_now {
                    if let Some((_, it)) = arb.poll() {
                        served += it.bytes;
                    }
                }
                prop_assert_eq!(arb.total_backlog(), queued - served);
            }
            while let Some((_, it)) = arb.poll() {
                served += it.bytes;
            }
            prop_assert_eq!(queued, served);
            prop_assert_eq!(arb.total_backlog(), 0);
        }
    }
}
