//! Online channel telemetry: the live loss-rate and RTT estimates the
//! adaptive controller re-runs the advisor against.
//!
//! The paper's advisor (§5.2) picks a scheme from *assumed* channel
//! parameters before the transfer; Figure 2 shows the real WAN drop rate
//! drifting three orders of magnitude over hours. This module closes the
//! loop: a [`ChannelEstimator`] is fed
//!
//! * **loss observations** from the receiver's bitmap polls — per poll, the
//!   [`RxDriver`](crate::runtime::RxDriver) scans each receive slot's
//!   packet bitmap *first-pass*: packets between the previous and current
//!   high-water mark either arrived or are holes, and a hole at first
//!   observation was a wire drop (retransmissions fill it later, but the
//!   range is never re-scanned, so each drop is counted exactly once);
//! * **RTT samples** from ACK round-trips on the control plane — the SR
//!   sender samples `now − last_sent` for chunks acked on their first
//!   transmission (Karn's rule: retransmitted chunks are ambiguous and
//!   never sampled), and the adaptive controller samples its
//!   `SwitchPropose → SwitchAck` handshakes.
//!
//! Both streams feed exponentially weighted moving averages. **Confidence
//! gating** keeps cold estimates from flapping the controller: until
//! [`min_packets`](TelemetryConfig::min_packets) first-pass packets have
//! been observed, [`loss_estimate`](ChannelEstimator::loss_estimate)
//! returns `None` and the controller must not switch. The receiver ships
//! its counters to the sender as cumulative [`CtrlMsg::Telemetry`] reports,
//! so control-datagram loss only delays the estimate.
//!
//! [`CtrlMsg::Telemetry`]: crate::ack::CtrlMsg::Telemetry

use sdr_core::AtomicBitmap;
use sdr_sim::SimTime;

/// Tuning for the [`ChannelEstimator`].
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Per-packet EWMA weight for the loss estimate: one observed packet
    /// moves the estimate by this fraction toward the observation. Small
    /// values smooth over bursts; the default (2⁻¹²) converges within a
    /// few thousand packets — a fraction of one 64 KiB-chunk segment.
    pub loss_alpha: f64,
    /// First-pass packets required before [`loss_estimate`] reports at all
    /// (the cold-start confidence gate).
    ///
    /// [`loss_estimate`]: ChannelEstimator::loss_estimate
    pub min_packets: u64,
    /// EWMA weight per RTT sample.
    pub rtt_alpha: f64,
    /// RTT samples required before [`rtt_estimate`] reports.
    ///
    /// [`rtt_estimate`]: ChannelEstimator::rtt_estimate
    pub min_rtt_samples: u64,
    /// Upward-step freshness threshold: while the fast loss EWMA exceeds
    /// the slow reference EWMA (`loss_alpha / 32`) by this factor, the
    /// channel is mid-step and the fast estimate is still climbing — i.e.
    /// very likely an *under*-estimate of where the loss rate will settle.
    /// [`loss_step_fresh`](ChannelEstimator::loss_step_fresh) reports this
    /// window; the adaptive controller's conservative first-split rule
    /// keys off it.
    pub step_ratio: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            loss_alpha: 1.0 / 4096.0,
            min_packets: 2048,
            rtt_alpha: 0.25,
            min_rtt_samples: 2,
            step_ratio: 4.0,
        }
    }
}

/// A snapshot of the estimator's cumulative counters (what the receiver
/// ships to the sender in [`CtrlMsg::Telemetry`]).
///
/// [`CtrlMsg::Telemetry`]: crate::ack::CtrlMsg::Telemetry
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryCounters {
    /// First-pass packets observed (arrived or counted lost).
    pub seen: u64,
    /// Packets counted lost on their first pass.
    pub lost: u64,
}

/// EWMA channel estimator with confidence tracking. One instance lives on
/// the receiver (fed by bitmap polls), one on the sender (fed by
/// [`TelemetryCounters`] deltas and ACK round-trip RTT samples).
#[derive(Debug)]
pub struct ChannelEstimator {
    cfg: TelemetryConfig,
    seen: u64,
    lost: u64,
    loss_ewma: f64,
    /// Slow reference EWMA (`loss_alpha / 32`): lags the fast estimate
    /// through a step, making `fast / slow` a step-in-progress detector.
    loss_slow_ewma: f64,
    ewma_primed: bool,
    /// Confidence granted by [`seed`](Self::seed) (a carried-over prior
    /// from a previous life) rather than earned from observations.
    seed_confident: bool,
    rtt_ewma: f64,
    rtt_samples: u64,
    /// Last cumulative counters absorbed from the peer (sender side).
    peer: TelemetryCounters,
    /// Last instant the channel showed life ([`note_progress`]): a packet
    /// observation, an advancing peer report, or any explicit progress
    /// note. `None` until the first note.
    ///
    /// [`note_progress`]: ChannelEstimator::note_progress
    last_progress: Option<SimTime>,
}

impl ChannelEstimator {
    /// A cold estimator.
    pub fn new(cfg: TelemetryConfig) -> Self {
        ChannelEstimator {
            cfg,
            seen: 0,
            lost: 0,
            loss_ewma: 0.0,
            loss_slow_ewma: 0.0,
            ewma_primed: false,
            seed_confident: false,
            rtt_ewma: 0.0,
            rtt_samples: 0,
            peer: TelemetryCounters::default(),
            last_progress: None,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Feeds one first-pass observation block: `seen` packets crossed the
    /// high-water mark, `lost` of them were holes. The EWMA advances by
    /// the per-packet weight compounded over the block.
    pub fn observe_packets(&mut self, seen: u64, lost: u64) {
        debug_assert!(lost <= seen);
        if seen == 0 {
            return;
        }
        self.seen += seen;
        self.lost += lost;
        let sample = lost as f64 / seen as f64;
        if !self.ewma_primed {
            self.loss_ewma = sample;
            self.loss_slow_ewma = sample;
            self.ewma_primed = true;
            return;
        }
        // Weight of a block of n packets: 1 − (1 − α)ⁿ.
        let w = -f64::exp_m1(seen as f64 * f64::ln_1p(-self.cfg.loss_alpha));
        self.loss_ewma += w * (sample - self.loss_ewma);
        let ws = -f64::exp_m1(seen as f64 * f64::ln_1p(-self.cfg.loss_alpha / 32.0));
        self.loss_slow_ewma += ws * (sample - self.loss_slow_ewma);
    }

    /// Absorbs the peer's cumulative counters (a [`CtrlMsg::Telemetry`]
    /// report): the delta since the last absorbed report is fed as one
    /// observation block. Stale or duplicate reports (cumulative counters
    /// not advancing) are ignored, so datagram loss and reordering on the
    /// control path are harmless.
    ///
    /// [`CtrlMsg::Telemetry`]: crate::ack::CtrlMsg::Telemetry
    pub fn absorb_report(&mut self, counters: TelemetryCounters) {
        if counters.seen <= self.peer.seen {
            return;
        }
        let seen = counters.seen - self.peer.seen;
        let lost = counters.lost.saturating_sub(self.peer.lost).min(seen);
        self.peer = counters;
        self.observe_packets(seen, lost);
    }

    /// Feeds one RTT sample from a control-plane round trip.
    pub fn observe_rtt(&mut self, sample: SimTime) {
        let s = sample.as_secs_f64();
        if self.rtt_samples == 0 {
            self.rtt_ewma = s;
        } else {
            self.rtt_ewma += self.cfg.rtt_alpha * (s - self.rtt_ewma);
        }
        self.rtt_samples += 1;
    }

    /// Warm-starts the estimator from a previous life's estimates — the
    /// resume path's seed. A seeded loss prior primes both EWMAs and
    /// grants confidence immediately (the resumed controller may advise
    /// from the first tick instead of re-earning `min_packets` cold); a
    /// seeded RTT satisfies the sample floor. The cumulative first-pass
    /// counters are untouched, so a receiver-side estimator's telemetry
    /// reports stay truthful — though seeding is meant for the *sender*
    /// estimator, whose state died with the aborted transfer. Blackout
    /// entry ([`decay_confidence`](Self::decay_confidence)) revokes seeded
    /// confidence like earned confidence: a pre-outage prior says nothing
    /// about the channel that comes back.
    pub fn seed(&mut self, loss: Option<f64>, rtt: Option<SimTime>) {
        if let Some(p) = loss {
            self.loss_ewma = p;
            self.loss_slow_ewma = p;
            self.ewma_primed = true;
            self.seed_confident = true;
        }
        if let Some(r) = rtt {
            self.rtt_ewma = r.as_secs_f64();
            self.rtt_samples = self.rtt_samples.max(self.cfg.min_rtt_samples);
        }
    }

    /// The per-packet loss estimate, once confident (`None` while cold —
    /// the gate that keeps a controller from flapping on startup noise).
    pub fn loss_estimate(&self) -> Option<f64> {
        self.is_confident().then_some(self.loss_ewma)
    }

    /// The RTT estimate, once at least `min_rtt_samples` arrived.
    pub fn rtt_estimate(&self) -> Option<SimTime> {
        (self.rtt_samples >= self.cfg.min_rtt_samples)
            .then(|| SimTime::from_secs_f64(self.rtt_ewma))
    }

    /// True once the loss estimate is confident (earned from observations
    /// or granted by a [`seed`](Self::seed)).
    pub fn is_confident(&self) -> bool {
        self.seed_confident || self.seen >= self.cfg.min_packets
    }

    /// True while a *fresh upward loss step* is still propagating through
    /// the estimator: the estimate is confident, but the fast EWMA exceeds
    /// the slow reference by [`step_ratio`](TelemetryConfig::step_ratio) —
    /// the estimate is still climbing toward where the channel actually
    /// settled, so any decision made on its current value should round
    /// *pessimistic*. Once both EWMAs converge the window closes.
    pub fn loss_step_fresh(&self) -> bool {
        self.is_confident()
            && self.ewma_primed
            && self.loss_ewma > self.loss_slow_ewma.max(1e-12) * self.cfg.step_ratio
    }

    /// Records channel life at `now` — the blackout detector's heartbeat.
    /// The adaptive endpoints note progress whenever a peer datagram
    /// arrives (any datagram proves the path is up); call it once at
    /// transfer start so [`blackout`](Self::blackout) measures from a
    /// defined instant.
    pub fn note_progress(&mut self, now: SimTime) {
        self.last_progress = Some(now);
    }

    /// The last noted progress instant, if any.
    pub fn last_progress(&self) -> Option<SimTime> {
        self.last_progress
    }

    /// True when no progress has been noted for at least `threshold` —
    /// silence ≫ RTO means the channel is dark, not merely lossy: every
    /// retransmission and its ACK died for that long. `false` until the
    /// first progress note (a transfer that never started is not a
    /// blackout).
    pub fn blackout(&self, now: SimTime, threshold: SimTime) -> bool {
        self.last_progress
            .is_some_and(|t| now.saturating_sub(t) >= threshold)
    }

    /// Forgets the loss estimate (counters, EWMAs, priming) so the
    /// estimator returns to the cold, unconfident state and must re-earn
    /// [`min_packets`](TelemetryConfig::min_packets) fresh observations —
    /// what the adaptive controller calls on blackout entry, because a
    /// pre-outage estimate says nothing about the channel that comes back.
    /// The peer-report dedup watermark and the RTT estimate survive:
    /// replayed cumulative reports must still be ignored, and propagation
    /// delay does not change with an outage.
    pub fn decay_confidence(&mut self) {
        self.seen = 0;
        self.lost = 0;
        self.loss_ewma = 0.0;
        self.loss_slow_ewma = 0.0;
        self.ewma_primed = false;
        self.seed_confident = false;
    }

    /// Cumulative first-pass counters (what the receiver reports).
    pub fn counters(&self) -> TelemetryCounters {
        TelemetryCounters {
            seen: self.seen,
            lost: self.lost,
        }
    }

    /// First-pass packets observed so far.
    pub fn packets_seen(&self) -> u64 {
        self.seen
    }

    /// RTT samples observed so far.
    pub fn rtt_samples(&self) -> u64 {
        self.rtt_samples
    }
}

/// Per-slot cursor for first-pass gap scans of one receive bitmap: tracks
/// the high-water mark already scanned so every packet below it is counted
/// exactly once — as arrived or as a first-pass hole — no matter how often
/// the driver polls or how late retransmissions fill the holes.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstPassCursor {
    scanned: usize,
}

impl FirstPassCursor {
    /// Scans the bitmap's new range `[scanned, high_water]` and returns
    /// `(seen, lost)` for it, advancing the cursor. Word-level bitmap
    /// reads; O(words) per poll. The two prefix counts are separate
    /// atomic scans, so a concurrent retransmission filling a bit below
    /// the cursor between them could make the difference exceed the
    /// range — clamp instead of underflowing (the sample is one packet
    /// off at worst).
    pub fn scan(&mut self, packets: &AtomicBitmap) -> (u64, u64) {
        let Some(hw) = packets.highest_set() else {
            return (0, 0);
        };
        let hw = hw + 1; // exclusive
        if hw <= self.scanned {
            return (0, 0);
        }
        let range = hw - self.scanned;
        let set = packets
            .count_set_in_first_n(hw)
            .saturating_sub(packets.count_set_in_first_n(self.scanned))
            .min(range);
        self.scanned = hw;
        (range as u64, (range - set) as u64)
    }
}

/// A long-lived per-peer [`ChannelEstimator`] registry. One estimator per
/// peer **outlives the transfers that feed it**, so a short flow opened
/// against a peer the node has talked to before starts under the right
/// scheme immediately instead of re-learning the channel from cold — the
/// flow-manager half of the adaptive loop, where individual flows are too
/// short to earn confidence on their own but the *aggregate* per-peer
/// traffic is plenty.
///
/// Entries age out: a peer untouched for longer than `max_age` is dropped
/// on the next sweep (or replaced on the next checkout), because a
/// days-old loss estimate from Figure 2's drifting WAN is worse than
/// admitting ignorance. Live flows keep their checked-out handle
/// ([`Rc`]) regardless — eviction only forgets the *registry's* pointer.
pub struct EstimatorRegistry {
    cfg: TelemetryConfig,
    max_age: SimTime,
    entries: std::collections::HashMap<sdr_sim::NodeId, RegistryEntry>,
}

struct RegistryEntry {
    est: std::rc::Rc<std::cell::RefCell<ChannelEstimator>>,
    last_touch: SimTime,
}

impl EstimatorRegistry {
    /// An empty registry whose entries go stale `max_age` after their last
    /// checkout.
    pub fn new(cfg: TelemetryConfig, max_age: SimTime) -> Self {
        EstimatorRegistry {
            cfg,
            max_age,
            entries: std::collections::HashMap::new(),
        }
    }

    /// The estimator for `peer`, creating a cold one (or replacing a stale
    /// one) as needed, and touching the entry's age.
    pub fn checkout(
        &mut self,
        peer: sdr_sim::NodeId,
        now: SimTime,
    ) -> std::rc::Rc<std::cell::RefCell<ChannelEstimator>> {
        let cfg = self.cfg;
        let max_age = self.max_age;
        let e = self
            .entries
            .entry(peer)
            .and_modify(|e| {
                if now.saturating_sub(e.last_touch) > max_age {
                    e.est = std::rc::Rc::new(std::cell::RefCell::new(ChannelEstimator::new(cfg)));
                }
                e.last_touch = now;
            })
            .or_insert_with(|| RegistryEntry {
                est: std::rc::Rc::new(std::cell::RefCell::new(ChannelEstimator::new(cfg))),
                last_touch: now,
            });
        e.est.clone()
    }

    /// Confident `(loss, rtt)` estimates for `peer`, or `None` when the
    /// entry is missing, stale, or still cold. Read-only: does not touch
    /// the entry's age or create one.
    pub fn estimate(&self, peer: sdr_sim::NodeId, now: SimTime) -> Option<(f64, SimTime)> {
        let e = self.entries.get(&peer)?;
        if now.saturating_sub(e.last_touch) > self.max_age {
            return None;
        }
        let est = e.est.borrow();
        Some((est.loss_estimate()?, est.rtt_estimate()?))
    }

    /// Drops every entry untouched for longer than `max_age`; returns how
    /// many were evicted.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let max_age = self.max_age;
        let before = self.entries.len();
        self.entries
            .retain(|_, e| now.saturating_sub(e.last_touch) <= max_age);
        before - self.entries.len()
    }

    /// Peers currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no peer is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_pass_cursor_counts_each_hole_exactly_once() {
        let bm = AtomicBitmap::new(128);
        let mut c = FirstPassCursor::default();
        assert_eq!(c.scan(&bm), (0, 0), "empty bitmap: nothing seen");
        // Packets 0..10 arrive except 3 and 7.
        for i in 0..10 {
            if i != 3 && i != 7 {
                bm.set(i);
            }
        }
        assert_eq!(c.scan(&bm), (10, 2));
        assert_eq!(c.scan(&bm), (0, 0), "no high-water advance, no counts");
        // The holes are retransmitted and filled; 10..20 arrive intact.
        bm.set(3);
        bm.set(7);
        for i in 10..20 {
            bm.set(i);
        }
        assert_eq!(c.scan(&bm), (10, 0), "filled holes are not re-counted");
        // A burst drop: 20..84 with only the last arriving.
        bm.set(83);
        assert_eq!(c.scan(&bm), (64, 63));
    }

    #[test]
    fn estimator_confidence_gates_cold_start() {
        let cfg = TelemetryConfig {
            min_packets: 100,
            ..TelemetryConfig::default()
        };
        let mut e = ChannelEstimator::new(cfg);
        e.observe_packets(99, 10);
        assert_eq!(e.loss_estimate(), None, "cold estimator reports nothing");
        assert!(!e.is_confident());
        e.observe_packets(1, 0);
        assert!(e.is_confident());
        let est = e.loss_estimate().expect("warm");
        assert!(est > 0.05 && est < 0.15, "estimate {est}");
    }

    #[test]
    fn seeded_estimator_is_confident_until_blackout_revokes_it() {
        let cfg = TelemetryConfig {
            min_packets: 100,
            min_rtt_samples: 4,
            ..TelemetryConfig::default()
        };
        let mut e = ChannelEstimator::new(cfg);
        assert_eq!(e.loss_estimate(), None);
        assert_eq!(e.rtt_estimate(), None);
        e.seed(Some(1e-3), Some(SimTime::from_micros(500)));
        assert!(e.is_confident(), "seed grants immediate confidence");
        let est = e.loss_estimate().expect("seeded");
        assert!((est - 1e-3).abs() < 1e-9, "estimate {est}");
        let rtt = e.rtt_estimate().expect("seeded rtt");
        assert_eq!(rtt, SimTime::from_micros(500));
        // The seed primes the EWMAs: fresh observations refine, not reset.
        e.observe_packets(1000, 1);
        assert!(e.loss_estimate().is_some());
        // Blackout entry revokes seeded confidence like earned confidence.
        e.decay_confidence();
        assert_eq!(e.loss_estimate(), None, "prior says nothing post-outage");
        assert!(e.rtt_estimate().is_some(), "RTT survives decay");
    }

    #[test]
    fn estimator_converges_to_step_loss() {
        let mut e = ChannelEstimator::new(TelemetryConfig::default());
        // Clean phase: 100k packets, no loss.
        for _ in 0..100 {
            e.observe_packets(1000, 0);
        }
        assert!(e.loss_estimate().expect("warm") < 1e-6);
        // Step to 1e-2: within ~20k packets the EWMA crosses half the step.
        for _ in 0..20 {
            e.observe_packets(1000, 10);
        }
        let est = e.loss_estimate().expect("warm");
        assert!(est > 2e-3, "estimate {est} should have moved");
        // And converges close to 1e-2 with enough samples.
        for _ in 0..300 {
            e.observe_packets(1000, 10);
        }
        let est = e.loss_estimate().expect("warm");
        assert!((est - 1e-2).abs() < 2e-3, "estimate {est}");
    }

    #[test]
    fn cumulative_reports_tolerate_loss_and_reordering() {
        let mut rx = ChannelEstimator::new(TelemetryConfig::default());
        let mut tx = ChannelEstimator::new(TelemetryConfig::default());
        rx.observe_packets(1000, 10);
        let first = rx.counters();
        rx.observe_packets(1000, 30);
        let second = rx.counters();
        // The first report is lost; the second alone covers everything.
        tx.absorb_report(second);
        assert_eq!(
            tx.counters(),
            TelemetryCounters {
                seen: 2000,
                lost: 40
            }
        );
        // The stale first report arrives late: ignored.
        tx.absorb_report(first);
        assert_eq!(tx.packets_seen(), 2000);
        // A duplicate of the newest: ignored too.
        tx.absorb_report(second);
        assert_eq!(tx.packets_seen(), 2000);
    }

    #[test]
    fn loss_step_freshness_window_opens_and_closes() {
        let cfg = TelemetryConfig {
            loss_alpha: 1.0 / 1024.0,
            min_packets: 512,
            ..TelemetryConfig::default()
        };
        let mut e = ChannelEstimator::new(cfg);
        // A long clean-but-slightly-lossy steady phase: both EWMAs settle
        // at the same level — no step freshness.
        for _ in 0..200 {
            e.observe_packets(256, 0);
        }
        e.observe_packets(256, 1);
        for _ in 0..200 {
            e.observe_packets(256, 0);
        }
        assert!(e.is_confident());
        assert!(!e.loss_step_fresh(), "steady channel is not a step");
        // The loss steps up three orders of magnitude: the fast EWMA runs
        // ahead of the slow reference — the freshness window opens while
        // the estimate is still climbing.
        for _ in 0..12 {
            e.observe_packets(256, 3); // ~1.2e-2
        }
        assert!(
            e.loss_step_fresh(),
            "fast EWMA {:.2e} should be running ahead",
            e.loss_estimate().unwrap()
        );
        // After enough post-step traffic the slow EWMA catches up and the
        // window closes again.
        for _ in 0..2000 {
            e.observe_packets(256, 3);
        }
        assert!(e.is_confident());
        assert!(
            !e.loss_step_fresh(),
            "converged estimate is no longer fresh"
        );
    }

    #[test]
    fn blackout_detection_and_confidence_decay() {
        let cfg = TelemetryConfig {
            min_packets: 100,
            ..TelemetryConfig::default()
        };
        let mut e = ChannelEstimator::new(cfg);
        let thresh = SimTime::from_secs_f64(0.080);
        // A transfer that never started is not a blackout.
        assert!(!e.blackout(SimTime::from_secs_f64(10.0), thresh));
        e.note_progress(SimTime::from_secs_f64(1.0));
        assert!(!e.blackout(SimTime::from_secs_f64(1.079), thresh));
        assert!(e.blackout(SimTime::from_secs_f64(1.080), thresh));
        // Fresh progress closes the window again.
        e.note_progress(SimTime::from_secs_f64(1.5));
        assert!(!e.blackout(SimTime::from_secs_f64(1.579), thresh));

        // Warm the estimator, absorb a peer report, learn an RTT.
        e.observe_rtt(SimTime::from_secs_f64(0.010));
        e.observe_rtt(SimTime::from_secs_f64(0.010));
        e.observe_packets(150, 15);
        e.absorb_report(TelemetryCounters {
            seen: 500,
            lost: 50,
        });
        assert!(e.is_confident());
        // Decay: the loss estimate is forgotten and must be re-earned...
        e.decay_confidence();
        assert!(!e.is_confident());
        assert_eq!(e.loss_estimate(), None);
        // ...but the peer dedup watermark survives (a replayed cumulative
        // report is still ignored)...
        e.absorb_report(TelemetryCounters {
            seen: 500,
            lost: 50,
        });
        assert_eq!(e.packets_seen(), 0, "replayed report stays deduped");
        // ...and the RTT estimate survives too.
        assert!(e.rtt_estimate().is_some());
        // Re-earning confidence works from scratch.
        e.observe_packets(100, 1);
        assert!(e.is_confident());
    }

    #[test]
    fn rtt_ewma_tracks_samples() {
        let mut e = ChannelEstimator::new(TelemetryConfig::default());
        assert_eq!(e.rtt_estimate(), None);
        e.observe_rtt(SimTime::from_secs_f64(0.010));
        assert_eq!(e.rtt_estimate(), None, "one sample is not confident");
        e.observe_rtt(SimTime::from_secs_f64(0.012));
        let rtt = e.rtt_estimate().expect("two samples").as_secs_f64();
        assert!(rtt > 0.0099 && rtt < 0.0121, "rtt {rtt}");
        for _ in 0..50 {
            e.observe_rtt(SimTime::from_secs_f64(0.020));
        }
        let rtt = e.rtt_estimate().expect("many samples").as_secs_f64();
        assert!((rtt - 0.020).abs() < 1e-4, "rtt {rtt} converges");
    }

    #[test]
    fn registry_ages_out_stale_entries() {
        let mut reg = EstimatorRegistry::new(TelemetryConfig::default(), SimTime::from_secs(10));
        let a = sdr_sim::NodeId(0);
        let b = sdr_sim::NodeId(1);

        // Warm up peer A with enough traffic to be confident.
        let est = reg.checkout(a, SimTime::from_secs(1));
        est.borrow_mut().observe_packets(4096, 41);
        est.borrow_mut().observe_rtt(SimTime::from_millis(10));
        est.borrow_mut().observe_rtt(SimTime::from_millis(10));
        assert!(reg.estimate(a, SimTime::from_secs(2)).is_some());

        // Peer B is cold: tracked, but no confident estimate yet.
        let _ = reg.checkout(b, SimTime::from_secs(2));
        assert_eq!(reg.len(), 2);
        assert!(reg.estimate(b, SimTime::from_secs(2)).is_none());

        // Within max_age the warm estimate survives a sweep.
        assert_eq!(reg.sweep(SimTime::from_secs(9)), 0);
        assert!(reg.estimate(a, SimTime::from_secs(9)).is_some());

        // Past max_age the stale entry stops reporting and sweeps away.
        assert!(
            reg.estimate(a, SimTime::from_secs(30)).is_none(),
            "stale entry must not serve a days-old estimate"
        );
        assert_eq!(reg.sweep(SimTime::from_secs(30)), 2);
        assert!(reg.is_empty());
    }

    #[test]
    fn registry_checkout_replaces_stale_entry_with_cold_one() {
        let mut reg = EstimatorRegistry::new(TelemetryConfig::default(), SimTime::from_secs(10));
        let a = sdr_sim::NodeId(7);
        let est = reg.checkout(a, SimTime::from_secs(1));
        est.borrow_mut().observe_packets(4096, 400);
        est.borrow_mut().observe_rtt(SimTime::from_millis(5));
        est.borrow_mut().observe_rtt(SimTime::from_millis(5));
        assert!(est.borrow().loss_estimate().is_some());

        // Checking the peer out again long past max_age yields a *fresh*
        // estimator, not the stale one — but the old handle stays valid
        // for whatever flow still holds it.
        let est2 = reg.checkout(a, SimTime::from_secs(100));
        assert!(!std::rc::Rc::ptr_eq(&est, &est2), "stale entry replaced");
        assert!(
            est2.borrow().loss_estimate().is_none(),
            "replacement is cold"
        );
        assert!(
            est.borrow().loss_estimate().is_some(),
            "old handle unaffected"
        );

        // A fresh checkout within max_age returns the same entry.
        let est3 = reg.checkout(a, SimTime::from_secs(101));
        assert!(std::rc::Rc::ptr_eq(&est2, &est3), "fresh entry is shared");
    }

    #[test]
    fn registry_warm_entry_seeds_scheme_choice() {
        // The flow-manager decision path in miniature: a warm registry
        // entry reports (loss, rtt) that an opener can feed straight into
        // scheme selection; a cold or stale one forces the conservative
        // default.
        let mut reg = EstimatorRegistry::new(TelemetryConfig::default(), SimTime::from_secs(60));
        let peer = sdr_sim::NodeId(3);
        assert!(reg.estimate(peer, SimTime::ZERO).is_none(), "cold: no seed");

        let est = reg.checkout(peer, SimTime::from_secs(1));
        {
            let mut e = est.borrow_mut();
            e.observe_packets(8192, 82); // ~1% loss
            e.observe_rtt(SimTime::from_millis(20));
            e.observe_rtt(SimTime::from_millis(20));
        }
        let (loss, rtt) = reg
            .estimate(peer, SimTime::from_secs(2))
            .expect("warm entry seeds the next flow");
        assert!(loss > 0.004 && loss < 0.02, "loss {loss}");
        assert!((rtt.as_secs_f64() - 0.020).abs() < 1e-3, "rtt {rtt:?}");
    }
}
