//! Model-guided protocol selection.
//!
//! The paper's thesis is that *no single reliability scheme wins everywhere*
//! (§2.1) and that SDR's value is letting deployments pick and tune per
//! connection (§5.2). This module operationalizes that: given channel
//! parameters and a message size, it evaluates the candidate schemes with
//! the `sdr-model` framework and recommends the best one.
//!
//! Tie-breaking follows §5.2.2: when EC's advantage is marginal, prefer SR —
//! erasure coding pays a real CPU cost for encoding (and decoding under
//! drops, Figure 11) that the latency model does not see.

use sdr_model::{
    ec_summary, gbn_summary, sr_summary, Channel, EcConfig, GbnConfig, SrConfig, Summary,
};

/// A candidate reliability scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scheme {
    /// Selective Repeat with `RTO = rto_rtts · RTT`.
    SrRto {
        /// Timeout multiplier (3 in the paper's `SR RTO`).
        rto_rtts: f64,
    },
    /// Selective Repeat with the NACK optimization (1-RTT repair).
    SrNack,
    /// MDS erasure coding with the given data/parity split.
    EcMds {
        /// Data chunks per submessage.
        k: u32,
        /// Parity chunks per submessage.
        m: u32,
    },
    /// XOR erasure coding with the given split.
    EcXor {
        /// Data chunks per submessage.
        k: u32,
        /// Parity chunks per submessage.
        m: u32,
    },
    /// Go-Back-N with a BDP-sized window — the commodity-NIC baseline.
    /// Evaluated so the ranking always exhibits the Bertsekas–Gallager gap
    /// (§4); it is dominated by SR and never chosen over it.
    Gbn {
        /// RTO multiplier (matches the SR RTO scenario for comparability).
        rto_rtts: f64,
    },
}

impl Scheme {
    /// True for Selective Repeat variants (the ARQ representative the
    /// tie-break prefers; GBN, though also ARQ, is the dominated baseline).
    pub fn is_sr(&self) -> bool {
        matches!(self, Scheme::SrRto { .. } | Scheme::SrNack)
    }

    /// True for the Go-Back-N baseline.
    pub fn is_gbn(&self) -> bool {
        matches!(self, Scheme::Gbn { .. })
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::SrRto { rto_rtts } => write!(f, "SR RTO({rto_rtts} RTT)"),
            Scheme::SrNack => write!(f, "SR NACK"),
            Scheme::EcMds { k, m } => write!(f, "MDS EC({k},{m})"),
            Scheme::EcXor { k, m } => write!(f, "XOR EC({k},{m})"),
            Scheme::Gbn { rto_rtts } => write!(f, "GBN RTO({rto_rtts} RTT)"),
        }
    }
}

/// An evaluated candidate.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The scheme evaluated.
    pub scheme: Scheme,
    /// Predicted completion-time statistics.
    pub summary: Summary,
}

/// The advisor's output.
#[derive(Clone, Debug)]
pub struct Recommendation {
    /// The chosen scheme.
    pub scheme: Scheme,
    /// Predicted statistics of the chosen scheme.
    pub summary: Summary,
    /// All evaluated candidates, sorted by mean completion time.
    pub candidates: Vec<Candidate>,
}

/// If EC's mean advantage over the best SR variant is below this factor,
/// recommend SR anyway (encode/decode CPU cost, §5.2.2).
const EC_ADVANTAGE_THRESHOLD: f64 = 1.05;

/// Evaluates the standard candidate set and recommends a scheme for
/// `message_bytes` on `ch`. `trials` stochastic samples per candidate
/// (≥ 2000 recommended for stable tails).
pub fn recommend(ch: &Channel, message_bytes: u64, trials: usize, seed: u64) -> Recommendation {
    let sr_rto = SrConfig::rto_multiple(ch, 3.0);
    let sr_nack = SrConfig::nack(ch);
    let mut candidates = vec![
        Candidate {
            scheme: Scheme::SrRto { rto_rtts: 3.0 },
            summary: sr_summary(ch, message_bytes, &sr_rto, trials, seed),
        },
        Candidate {
            scheme: Scheme::SrNack,
            summary: sr_summary(ch, message_bytes, &sr_nack, trials, seed ^ 1),
        },
    ];
    // The paper's MDS splits (Figure 10d) plus the XOR alternative.
    for (k, m) in [(32u32, 8u32), (32, 4), (16, 8), (8, 8)] {
        let cfg = EcConfig::mds(k, m);
        candidates.push(Candidate {
            scheme: Scheme::EcMds { k, m },
            summary: ec_summary(ch, message_bytes, &cfg, &sr_rto, trials, seed ^ 2),
        });
    }
    let xor = EcConfig::xor(32, 8);
    candidates.push(Candidate {
        scheme: Scheme::EcXor { k: 32, m: 8 },
        summary: ec_summary(ch, message_bytes, &xor, &sr_rto, trials, seed ^ 3),
    });
    // The commodity-NIC baseline: always ranked so the report shows the
    // SR-vs-GBN gap, never recommended over SR (it is dominated; on exact
    // ties the stable sort keeps SR first, and near-ties fall to the SR
    // tie-break below like a marginal EC win would).
    candidates.push(Candidate {
        scheme: Scheme::Gbn { rto_rtts: 3.0 },
        summary: gbn_summary(
            ch,
            message_bytes,
            &GbnConfig::bdp_window(ch, 3.0),
            trials,
            seed ^ 4,
        ),
    });

    candidates.sort_by(|a, b| a.summary.mean.total_cmp(&b.summary.mean));
    let best = candidates[0];
    let best_sr = candidates
        .iter()
        .find(|c| c.scheme.is_sr())
        .expect("SR candidates always present");

    let chosen = if best.scheme.is_sr() {
        best
    } else if best_sr.summary.mean <= best.summary.mean * EC_ADVANTAGE_THRESHOLD {
        // EC wins only marginally: the encode cost makes SR preferable.
        *best_sr
    } else {
        best
    };

    Recommendation {
        scheme: chosen.scheme,
        summary: chosen.summary,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_zone_recommends_ec() {
        // Figure 9's red area: 128 MiB at 1e-4 packet drop, 400 G / 25 ms —
        // EC beats SR by multiples.
        let ch = Channel::new(400e9, 0.025, 1e-4);
        let rec = recommend(&ch, 128 << 20, 2000, 1);
        assert!(
            matches!(rec.scheme, Scheme::EcMds { .. }),
            "expected MDS EC, got {}",
            rec.scheme
        );
    }

    #[test]
    fn large_message_low_loss_recommends_sr() {
        // §5.2.2: 8 GiB at 1e-6 — injection-bound, retransmissions hide in
        // the pipeline, EC's 25% parity overhead loses.
        let ch = Channel::new(400e9, 0.025, 1e-6);
        let rec = recommend(&ch, 8 << 30, 1200, 2);
        assert!(rec.scheme.is_sr(), "expected SR, got {}", rec.scheme);
    }

    #[test]
    fn tiny_messages_prefer_sr_via_tiebreak() {
        // Small messages: SR and EC complete in ~1 RTT either way; the CPU
        // tie-break must choose SR.
        let ch = Channel::new(400e9, 0.025, 1e-5);
        let rec = recommend(&ch, 64 * 1024, 1500, 3);
        assert!(rec.scheme.is_sr(), "expected SR, got {}", rec.scheme);
    }

    #[test]
    fn candidates_are_sorted_by_mean() {
        let ch = Channel::new(400e9, 0.025, 1e-4);
        let rec = recommend(&ch, 128 << 20, 800, 4);
        for w in rec.candidates.windows(2) {
            assert!(w[0].summary.mean <= w[1].summary.mean);
        }
        assert_eq!(rec.candidates.len(), 8);
    }

    #[test]
    fn gbn_is_ranked_but_never_beats_sr() {
        // The Bertsekas–Gallager ordering (§4): GBN appears in every
        // ranking as the baseline, costs at least as much as the best SR
        // variant, and is never the recommendation.
        for (p, msg, seed) in [
            (1e-4, 128u64 << 20, 5u64),
            (1e-6, 8 << 30, 6),
            (1e-3, 1 << 20, 7),
        ] {
            let ch = Channel::new(400e9, 0.025, p);
            let rec = recommend(&ch, msg, 1200, seed);
            let gbn = rec
                .candidates
                .iter()
                .find(|c| c.scheme.is_gbn())
                .expect("GBN always evaluated");
            let best_sr = rec
                .candidates
                .iter()
                .find(|c| c.scheme.is_sr())
                .expect("SR always evaluated");
            assert!(
                gbn.summary.mean >= best_sr.summary.mean * 0.999,
                "p={p}: GBN {} must not beat SR {}",
                gbn.summary.mean,
                best_sr.summary.mean
            );
            assert!(!rec.scheme.is_gbn(), "p={p}: GBN never recommended");
        }
    }
}
