//! Reliability-layer control path.
//!
//! The example protocols use the two-connection design of §4.1: the
//! data-path SDR QP for zero-copy transfer plus a low-overhead UD QP for
//! protocol acknowledgments. SDR deliberately leaves control-path wireup to
//! the application; this endpoint is that application-side piece.
//!
//! Every outgoing datagram is prefixed with a [`CtrlStamp`] — `(transfer,
//! incarnation, incarnation-echo, seq)` — and every incoming datagram is
//! filtered against per-`(peer, transfer)` replay state *before* it is
//! acted on: datagrams from a peer's stale incarnation (a pre-crash
//! life), datagrams echoing *this* endpoint's previous incarnation (sent
//! by the peer before it observed a local crash — the wire can hold
//! milliseconds of such backlog at the crash instant), and duplicate
//! copies of already-delivered datagrams are all dropped at the endpoint,
//! so the handlers above see each control message at most once per
//! incarnation pair. The handshakes they implement (CTS credits,
//! `SwitchPropose/Ack`, `SegDone`, `Abort`, `ResumeQuery/State`) are
//! therefore idempotent under arbitrary wire duplication and reordering
//! by construction. [`CtrlMsg::ResumeQuery`] is exempt from the echo
//! check: it is the read-only probe that re-teaches a sender the live
//! incarnation after a peer restart.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use sdr_sim::{
    Counter, CqId, Engine, Fabric, FlightRecorder, NodeId, QpAddr, QpNum, QpType, RecvWqe,
    Registry, Waker,
};

use crate::ack::{CtrlMsg, CtrlStamp};

/// Receive-buffer count and size for control datagrams.
const CTRL_DEPTH: usize = 128;
const CTRL_BUF_BYTES: u64 = 2048;

/// How far behind the per-peer high-water sequence a reordered datagram
/// may arrive and still be admitted (the dedup window in datagrams).
/// Anything older is indistinguishable from a late duplicate and is
/// dropped — control traffic is periodic, so the information it carried
/// has long been superseded.
const REPLAY_WINDOW: u32 = 128;

/// Size of the CRC32C trailer sealing every control datagram.
const CTRL_CRC_BYTES: usize = 4;

/// Seals a stamped control frame with its CRC32C trailer (computed over
/// stamp + body, appended little-endian). [`ControlEndpoint::send`] calls
/// this on every outgoing datagram; it is public within the crate so
/// tests injecting hand-built wire frames produce valid ones.
pub(crate) fn seal_ctrl_frame(frame: &mut BytesMut) {
    let crc = sdr_erasure::crc32c(frame);
    frame.extend_from_slice(&crc.to_le_bytes());
}

/// Replay state for one `(peer, transfer)` stream.
#[derive(Clone, Copy, Debug)]
struct PeerFilter {
    /// Highest incarnation seen from the peer.
    inc: u32,
    /// Highest sequence seen within `inc`.
    high: u32,
    /// Bit `d` = sequence `high - d` already delivered (`d <
    /// REPLAY_WINDOW`).
    window: u128,
}

/// Verdict for one incoming stamped datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Admit {
    /// Fresh: deliver to the handler.
    Accept,
    /// From a stale incarnation or older than the replay window.
    Stale,
    /// A copy of an already-delivered datagram.
    Duplicate,
}

impl PeerFilter {
    fn first(stamp: CtrlStamp) -> PeerFilter {
        PeerFilter {
            inc: stamp.inc,
            high: stamp.seq,
            window: 1,
        }
    }

    fn admit(&mut self, stamp: CtrlStamp) -> Admit {
        if stamp.inc < self.inc {
            return Admit::Stale;
        }
        if stamp.inc > self.inc {
            // The peer restarted: its new life starts a fresh sequence
            // space, and nothing from the old one is admissible again.
            *self = PeerFilter::first(stamp);
            return Admit::Accept;
        }
        if stamp.seq > self.high {
            let ahead = stamp.seq - self.high;
            self.window = if ahead >= REPLAY_WINDOW {
                1
            } else {
                self.window << ahead | 1
            };
            self.high = stamp.seq;
            return Admit::Accept;
        }
        let behind = self.high - stamp.seq;
        if behind >= REPLAY_WINDOW {
            return Admit::Stale;
        }
        if self.window >> behind & 1 == 1 {
            return Admit::Duplicate;
        }
        self.window |= 1 << behind;
        Admit::Accept
    }
}

/// Wire-filter drop counters (diagnostics; also what the chaos suites
/// assert on).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtrlFilterStats {
    /// Datagrams dropped as stale (old incarnation or past the replay
    /// window).
    pub stale: u64,
    /// Datagrams dropped as duplicates.
    pub duplicates: u64,
    /// Datagrams that failed to parse (truncated stamp or body).
    pub malformed: u64,
    /// Datagrams whose CRC32C trailer failed verification (wire
    /// corruption). Dropped before the replay filter — a frame that
    /// fails its checksum carries no trustworthy bits at all, not even
    /// the stamp.
    pub corrupt: u64,
}

/// Handler invoked per received control message: `(engine, src, message)`.
pub type CtrlHandler = Box<dyn FnMut(&mut Engine, QpAddr, CtrlMsg)>;

/// Stamp-`xfer` bit marking a datagram as flow-manager traffic. Transfer
/// ids with this bit set are demultiplexed to the endpoint's *flow*
/// handler, which receives the flow id (`xfer & !FLOW_XFER_BIT`) alongside
/// the message; everything else goes to the classic single-transfer
/// handler. Legacy transfer ids never collide — they are small
/// out-of-band-agreed integers, nowhere near bit 63.
pub const FLOW_XFER_BIT: u64 = 1 << 63;

/// Handler invoked per received *flow* control message:
/// `(engine, src, flow_id, message)`.
pub type FlowCtrlHandler = Box<dyn FnMut(&mut Engine, QpAddr, u64, CtrlMsg)>;

/// A path reliability schemes send their control messages down and receive
/// them from. [`ControlEndpoint`] is the direct implementation (messages go
/// on the wire as-is); the adaptive layer interposes an epoch gate that
/// wraps scheme traffic in [`CtrlMsg::Seg`] envelopes so a lingering ACK
/// from before a scheme handover cannot poison the successor scheme.
/// Schemes are written against this trait and never know which one they
/// ride.
pub trait CtrlPath {
    /// Sends a control message to `dst` (unreliably — it can drop).
    fn send_ctrl(&self, eng: &mut Engine, dst: QpAddr, msg: &CtrlMsg);

    /// Installs the receive handler for messages arriving on this path.
    fn install_handler(&self, f: CtrlHandler);
}

/// A UD endpoint carrying stamped [`CtrlMsg`] datagrams for a reliability
/// protocol.
pub struct ControlEndpoint {
    fabric: Fabric,
    node: NodeId,
    qp: QpNum,
    #[allow(dead_code)]
    cq: CqId,
    handler: Rc<RefCell<Option<CtrlHandler>>>,
    /// Demultiplexed handler for [`FLOW_XFER_BIT`]-stamped datagrams.
    flow_handler: Rc<RefCell<Option<FlowCtrlHandler>>>,
    /// ACK datagrams sent (diagnostics).
    sent: Rc<RefCell<u64>>,
    /// First receive-buffer address (for re-posting after a restart).
    buf_base: u64,
    /// Stamp state for outgoing datagrams.
    xfer: Cell<u64>,
    inc: Rc<Cell<u32>>,
    next_seq: Cell<u32>,
    /// Peer incarnations as learned from accepted datagrams — what the
    /// outgoing stamps echo back.
    peer_inc: Rc<RefCell<HashMap<QpAddr, u32>>>,
    /// Replay state per `(peer, transfer)` stream.
    filters: Rc<RefCell<HashMap<(QpAddr, u64), PeerFilter>>>,
    drops: Rc<Cell<CtrlFilterStats>>,
    /// This node's flight recorder (shared with every layer on the node);
    /// exposed so the adaptive machinery above can record its decisions.
    recorder: FlightRecorder,
}

impl ControlEndpoint {
    /// Creates the endpoint on `node`, pre-posting its receive buffers and
    /// hooking a completion waker that stamp-filters and dispatches to the
    /// handler.
    pub fn new(fabric: &Fabric, node: NodeId) -> Self {
        let handler: Rc<RefCell<Option<CtrlHandler>>> = Rc::new(RefCell::new(None));
        let flow_handler: Rc<RefCell<Option<FlowCtrlHandler>>> = Rc::new(RefCell::new(None));
        let filters: Rc<RefCell<HashMap<(QpAddr, u64), PeerFilter>>> =
            Rc::new(RefCell::new(HashMap::new()));
        let drops: Rc<Cell<CtrlFilterStats>> = Rc::new(Cell::new(CtrlFilterStats::default()));
        let inc: Rc<Cell<u32>> = Rc::new(Cell::new(0));
        let peer_inc: Rc<RefCell<HashMap<QpAddr, u32>>> = Rc::new(RefCell::new(HashMap::new()));
        let (qp, cq, buf_base) = fabric.node_mut(node, |n| {
            let cq = n.create_cq();
            let qp = n.create_qp(QpType::Ud, cq, cq);
            let base = n.mem_mut().alloc(CTRL_DEPTH as u64 * CTRL_BUF_BYTES);
            for i in 0..CTRL_DEPTH {
                let addr = base + i as u64 * CTRL_BUF_BYTES;
                n.post_recv(
                    qp,
                    RecvWqe {
                        wr_id: addr,
                        addr,
                        len: CTRL_BUF_BYTES,
                    },
                );
            }
            (qp, cq, base)
        });
        let fab = fabric.clone();
        let h = handler.clone();
        let fh = flow_handler.clone();
        let flt = filters.clone();
        let drp = drops.clone();
        let own_inc = inc.clone();
        let peers = peer_inc.clone();
        // Registry mirrors of the filter drop counters, summed across
        // every endpoint of the fabric (satellite: these were collected
        // but never surfaced).
        let trace: [Counter; 4] = [
            fabric.metrics().counter("ctrl.stale"),
            fabric.metrics().counter("ctrl.duplicates"),
            fabric.metrics().counter("ctrl.malformed"),
            fabric.metrics().counter("ctrl.corrupt"),
        ];
        fabric.node_mut(node, |n| {
            n.set_cq_waker(
                cq,
                Waker::new(move |eng| {
                    while let Some(cqe) = fab.node_mut(node, |n| n.poll_cq(cq)) {
                        if cqe.op != sdr_sim::CqeOp::RecvSend {
                            continue;
                        }
                        let addr = cqe.wr_id;
                        let payload = fab.node_mut(node, |n| {
                            let data =
                                Bytes::copy_from_slice(n.mem().read(addr, cqe.byte_len as usize));
                            // Recycle the buffer immediately.
                            n.post_recv(
                                qp,
                                RecvWqe {
                                    wr_id: addr,
                                    addr,
                                    len: CTRL_BUF_BYTES,
                                },
                            );
                            data
                        });
                        let src = cqe.src.expect("UD receive has a source");
                        let mut d = drp.get();
                        // CRC32C trailer first: control rides the same
                        // corrupting wire as data, and a frame that fails
                        // its checksum carries no trustworthy bits at all
                        // — not even the stamp — so it dies before the
                        // replay filter and never reaches a handler.
                        let n = payload.len();
                        if n < CTRL_CRC_BYTES
                            || sdr_erasure::crc32c(&payload[..n - CTRL_CRC_BYTES])
                                != u32::from_le_bytes(
                                    payload[n - CTRL_CRC_BYTES..]
                                        .try_into()
                                        .expect("length checked"),
                                )
                        {
                            d.corrupt += 1;
                            trace[3].inc();
                            drp.set(d);
                            continue;
                        }
                        let mut payload = payload.slice(0..n - CTRL_CRC_BYTES);
                        // Stamp filter next: stale-incarnation traffic and
                        // duplicates die before the decoder even runs.
                        let Some(stamp) = CtrlStamp::decode_from(&mut payload) else {
                            d.malformed += 1;
                            trace[2].inc();
                            drp.set(d);
                            continue;
                        };
                        let verdict = {
                            use std::collections::hash_map::Entry;
                            let mut filters = flt.borrow_mut();
                            match filters.entry((src, stamp.xfer)) {
                                // First datagram of the stream primes the
                                // filter and is delivered.
                                Entry::Vacant(v) => {
                                    v.insert(PeerFilter::first(stamp));
                                    Admit::Accept
                                }
                                Entry::Occupied(mut o) => o.get_mut().admit(stamp),
                            }
                        };
                        match verdict {
                            Admit::Accept => {}
                            Admit::Stale => {
                                d.stale += 1;
                                trace[0].inc();
                                drp.set(d);
                                continue;
                            }
                            Admit::Duplicate => {
                                d.duplicates += 1;
                                trace[1].inc();
                                drp.set(d);
                                continue;
                            }
                        }
                        let Some(msg) = CtrlMsg::decode(payload) else {
                            d.malformed += 1;
                            trace[2].inc();
                            drp.set(d);
                            continue;
                        };
                        // Incarnation echo: a datagram addressed to this
                        // endpoint's previous life was sent before the
                        // peer observed the crash — only the read-only
                        // resume probe may cross that boundary (it is how
                        // the peer learns the live incarnation).
                        if stamp.dst_inc != own_inc.get() && msg != CtrlMsg::ResumeQuery {
                            d.stale += 1;
                            trace[0].inc();
                            drp.set(d);
                            continue;
                        }
                        peers.borrow_mut().insert(src, stamp.inc);
                        // Take the handler out while calling so the handler
                        // itself may send control messages re-entrantly.
                        // Flow-stamped datagrams go to the flow handler
                        // (which also learns which flow the stamp named);
                        // everything else to the classic handler.
                        if stamp.xfer & FLOW_XFER_BIT != 0 {
                            let taken = fh.borrow_mut().take();
                            if let Some(mut f) = taken {
                                f(eng, src, stamp.xfer & !FLOW_XFER_BIT, msg);
                                let mut slot = fh.borrow_mut();
                                if slot.is_none() {
                                    *slot = Some(f);
                                }
                            }
                        } else {
                            let taken = h.borrow_mut().take();
                            if let Some(mut f) = taken {
                                f(eng, src, msg);
                                let mut slot = h.borrow_mut();
                                if slot.is_none() {
                                    *slot = Some(f);
                                }
                            }
                        }
                    }
                }),
            );
        });
        ControlEndpoint {
            fabric: fabric.clone(),
            node,
            qp,
            cq,
            handler,
            flow_handler,
            sent: Rc::new(RefCell::new(0)),
            buf_base,
            xfer: Cell::new(0),
            inc,
            next_seq: Cell::new(0),
            peer_inc,
            filters,
            drops,
            recorder: fabric.recorder(node),
        }
    }

    /// This node's flight recorder — the shared ring every layer on the
    /// node records into (see [`sdr_sim::Fabric::recorder`]).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The stack-wide metrics registry (owned by the fabric) — where the
    /// layers above register their `ctrl.*`/`adapt.*`/`flow.*` families.
    pub fn metrics(&self) -> Registry {
        self.fabric.metrics().clone()
    }

    /// This endpoint's address (exchange out-of-band with the peer).
    pub fn addr(&self) -> QpAddr {
        QpAddr {
            node: self.node,
            qp: self.qp,
        }
    }

    /// Installs the receive handler.
    pub fn set_handler(&self, f: impl FnMut(&mut Engine, QpAddr, CtrlMsg) + 'static) {
        *self.handler.borrow_mut() = Some(Box::new(f));
    }

    /// Installs the flow receive handler: it gets every datagram whose
    /// stamp carries [`FLOW_XFER_BIT`], along with the flow id the stamp
    /// named. Coexists with the classic handler — a [`FlowManager`] and a
    /// single-transfer protocol can share one endpoint.
    ///
    /// [`FlowManager`]: crate::flow::FlowManager
    pub fn set_flow_handler(&self, f: impl FnMut(&mut Engine, QpAddr, u64, CtrlMsg) + 'static) {
        *self.flow_handler.borrow_mut() = Some(Box::new(f));
    }

    /// Sends `msg` stamped as flow `flow_id` traffic (sets the outgoing
    /// transfer id to `FLOW_XFER_BIT | flow_id` for this datagram and
    /// leaves it there — flow senders stamp every datagram explicitly).
    pub fn send_flow(&self, eng: &mut Engine, dst: QpAddr, flow_id: u64, msg: &CtrlMsg) {
        self.set_transfer(FLOW_XFER_BIT | flow_id);
        self.send(eng, dst, msg);
    }

    /// Sends a control message to `dst`, prefixed with this endpoint's
    /// current [`CtrlStamp`]. Control datagrams ride the same lossy links
    /// as data — they can drop, and the protocols must tolerate that.
    pub fn send(&self, eng: &mut Engine, dst: QpAddr, msg: &CtrlMsg) {
        *self.sent.borrow_mut() += 1;
        let seq = self.next_seq.get();
        self.next_seq.set(seq.wrapping_add(1));
        let stamp = CtrlStamp {
            xfer: self.xfer.get(),
            inc: self.inc.get(),
            dst_inc: self.peer_inc.borrow().get(&dst).copied().unwrap_or(0),
            seq,
        };
        let mut b = BytesMut::with_capacity(84);
        stamp.encode_into(&mut b);
        b.extend_from_slice(&msg.encode());
        seal_ctrl_frame(&mut b);
        // Drop errors deliberately: an unroutable ACK behaves like a lost one.
        let _ = self
            .fabric
            .post_ud_send(eng, self.addr(), dst, b.freeze(), None);
    }

    /// Control datagrams sent so far.
    pub fn sent_count(&self) -> u64 {
        *self.sent.borrow()
    }

    /// Binds this endpoint's outgoing stamps to transfer `xfer`. Both ends
    /// of a transfer agree on the id out-of-band (like the QP wireup); a
    /// resumed transfer keeps its id so the peer's replay filter state
    /// carries across the resume.
    pub fn set_transfer(&self, xfer: u64) {
        self.xfer.set(xfer);
    }

    /// The transfer id outgoing stamps currently carry.
    pub fn transfer_id(&self) -> u64 {
        self.xfer.get()
    }

    /// This endpoint's current incarnation.
    pub fn incarnation(&self) -> u32 {
        self.inc.get()
    }

    /// Crash/restart transition: bumps the outgoing incarnation (the
    /// peer's filter retires the old life's entire in-flight window on the
    /// first new-incarnation datagram; the incarnation echo retires the
    /// peer's own in-flight traffic addressed to the old life), restarts
    /// the datagram sequence, and clears the local replay filters and
    /// learned peer incarnations — they were volatile state and did not
    /// survive the crash. Pair with [`reattach`](Self::reattach).
    pub fn bump_incarnation(&self) {
        self.inc.set(self.inc.get().wrapping_add(1));
        self.next_seq.set(0);
        self.filters.borrow_mut().clear();
        self.peer_inc.borrow_mut().clear();
    }

    /// Re-posts the endpoint's receive ring after a NIC restart cleared
    /// the receive queue (`Node::reset_volatile`). The buffers live in
    /// registered memory, which survives the crash — only the postings
    /// were volatile. Call exactly once per restart, after the reset.
    pub fn reattach(&self) {
        self.fabric.node_mut(self.node, |n| {
            for i in 0..CTRL_DEPTH {
                let addr = self.buf_base + i as u64 * CTRL_BUF_BYTES;
                n.post_recv(
                    self.qp,
                    RecvWqe {
                        wr_id: addr,
                        addr,
                        len: CTRL_BUF_BYTES,
                    },
                );
            }
        });
    }

    /// Wire-filter drop counters (stale, duplicate, malformed).
    pub fn filter_stats(&self) -> CtrlFilterStats {
        self.drops.get()
    }
}

impl CtrlPath for ControlEndpoint {
    fn send_ctrl(&self, eng: &mut Engine, dst: QpAddr, msg: &CtrlMsg) {
        self.send(eng, dst, msg);
    }

    fn install_handler(&self, f: CtrlHandler) {
        *self.handler.borrow_mut() = Some(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_sim::LinkConfig;

    #[test]
    fn control_roundtrip_and_handler_dispatch() {
        let mut eng = Engine::new();
        let fabric = Fabric::new();
        let a = fabric.add_node(1 << 20);
        let b = fabric.add_node(1 << 20);
        fabric.link_duplex(a, b, LinkConfig::intra_dc(8e9));
        let ep_a = ControlEndpoint::new(&fabric, a);
        let ep_b = ControlEndpoint::new(&fabric, b);

        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        ep_b.set_handler(move |_eng, src, msg| {
            g.borrow_mut().push((src, msg));
        });

        ep_a.send(&mut eng, ep_b.addr(), &CtrlMsg::EcAck);
        ep_a.send(
            &mut eng,
            ep_b.addr(),
            &CtrlMsg::EcNack { failed: vec![3, 9] },
        );
        eng.run();

        let got = got.borrow();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, ep_a.addr());
        assert_eq!(got[0].1, CtrlMsg::EcAck);
        assert_eq!(got[1].1, CtrlMsg::EcNack { failed: vec![3, 9] });
        assert_eq!(ep_a.sent_count(), 2);
    }

    #[test]
    fn flow_traffic_demuxes_to_flow_handler() {
        let mut eng = Engine::new();
        let fabric = Fabric::new();
        let a = fabric.add_node(1 << 20);
        let b = fabric.add_node(1 << 20);
        fabric.link_duplex(a, b, LinkConfig::intra_dc(8e9));
        let ep_a = ControlEndpoint::new(&fabric, a);
        let ep_b = ControlEndpoint::new(&fabric, b);

        let plain = Rc::new(RefCell::new(Vec::new()));
        let flows = Rc::new(RefCell::new(Vec::new()));
        let (p, f) = (plain.clone(), flows.clone());
        ep_b.set_handler(move |_eng, _src, msg| p.borrow_mut().push(msg));
        ep_b.set_flow_handler(move |_eng, _src, id, msg| f.borrow_mut().push((id, msg)));

        // Interleave legacy and flow-stamped traffic on the same endpoint:
        // each stream reaches exactly its own handler.
        ep_a.set_transfer(7);
        ep_a.send(&mut eng, ep_b.addr(), &CtrlMsg::EcAck);
        ep_a.send_flow(&mut eng, ep_b.addr(), 42, &CtrlMsg::FlowFin);
        ep_a.set_transfer(7);
        ep_a.send(&mut eng, ep_b.addr(), &CtrlMsg::SegDone { below: 1 });
        ep_a.send_flow(
            &mut eng,
            ep_b.addr(),
            1,
            &CtrlMsg::FlowAck {
                data_seq: 5,
                parity_seq: u64::MAX,
            },
        );
        eng.run();

        assert_eq!(
            *plain.borrow(),
            vec![CtrlMsg::EcAck, CtrlMsg::SegDone { below: 1 }]
        );
        assert_eq!(
            *flows.borrow(),
            vec![
                (42, CtrlMsg::FlowFin),
                (
                    1,
                    CtrlMsg::FlowAck {
                        data_seq: 5,
                        parity_seq: u64::MAX,
                    }
                ),
            ]
        );
    }

    #[test]
    fn handler_can_reply_reentrantly() {
        let mut eng = Engine::new();
        let fabric = Fabric::new();
        let a = fabric.add_node(1 << 20);
        let b = fabric.add_node(1 << 20);
        fabric.link_duplex(a, b, LinkConfig::intra_dc(8e9));
        let ep_a = Rc::new(ControlEndpoint::new(&fabric, a));
        let ep_b = Rc::new(ControlEndpoint::new(&fabric, b));

        // B echoes every EcNack back as EcAck.
        let ep_b2 = ep_b.clone();
        ep_b.set_handler(move |eng, src, _msg| {
            ep_b2.send(eng, src, &CtrlMsg::EcAck);
        });
        let acked = Rc::new(RefCell::new(0));
        let acked2 = acked.clone();
        ep_a.set_handler(move |_eng, _src, msg| {
            if msg == CtrlMsg::EcAck {
                *acked2.borrow_mut() += 1;
            }
        });
        ep_a.send(&mut eng, ep_b.addr(), &CtrlMsg::EcNack { failed: vec![] });
        eng.run();
        assert_eq!(*acked.borrow(), 1);
    }

    #[test]
    fn peer_filter_admits_fresh_drops_stale_and_duplicates() {
        let s = |inc: u32, seq: u32| CtrlStamp {
            xfer: 9,
            inc,
            dst_inc: 0,
            seq,
        };
        let mut f = PeerFilter::first(s(1, 10));
        // Duplicate of the priming datagram.
        assert_eq!(f.admit(s(1, 10)), Admit::Duplicate);
        // Forward progress, then a reordered datagram inside the window.
        assert_eq!(f.admit(s(1, 12)), Admit::Accept);
        assert_eq!(f.admit(s(1, 11)), Admit::Accept);
        assert_eq!(f.admit(s(1, 11)), Admit::Duplicate);
        // Older than the replay window: stale.
        assert_eq!(f.admit(s(1, 200)), Admit::Accept);
        assert_eq!(f.admit(s(1, 200 - REPLAY_WINDOW)), Admit::Stale);
        assert_eq!(f.admit(s(1, 201 - REPLAY_WINDOW)), Admit::Accept);
        // A jump past the whole window resets it; the skipped range is
        // then too old to admit.
        assert_eq!(f.admit(s(1, 200 + 2 * REPLAY_WINDOW)), Admit::Accept);
        assert_eq!(f.admit(s(1, 205)), Admit::Stale);
        // Stale incarnation dies regardless of sequence.
        assert_eq!(f.admit(s(0, u32::MAX)), Admit::Stale);
        // A newer incarnation resets everything — even a sequence the old
        // life already used is fresh again.
        assert_eq!(f.admit(s(2, 11)), Admit::Accept);
        assert_eq!(f.admit(s(2, 11)), Admit::Duplicate);
        assert_eq!(f.admit(s(1, 12)), Admit::Stale);
    }

    #[test]
    fn endpoint_filters_wire_duplicates() {
        // A duplicating link delivers extra copies of many datagrams; the
        // receiving endpoint must hand each message to the handler exactly
        // once and count the copies as duplicate drops.
        let mut eng = Engine::new();
        let fabric = Fabric::new();
        let a = fabric.add_node(1 << 20);
        let b = fabric.add_node(1 << 20);
        fabric.link(
            a,
            b,
            LinkConfig::intra_dc(8e9)
                .with_seed(31)
                .with_duplication(0.5),
        );
        fabric.link(b, a, LinkConfig::intra_dc(8e9));
        let ep_a = ControlEndpoint::new(&fabric, a);
        let ep_b = ControlEndpoint::new(&fabric, b);
        let got = Rc::new(RefCell::new(0u64));
        let g = got.clone();
        ep_b.set_handler(move |_eng, _src, _msg| *g.borrow_mut() += 1);
        const N: u64 = 200;
        for i in 0..N {
            ep_a.send(
                &mut eng,
                ep_b.addr(),
                &CtrlMsg::GbnAck {
                    cumulative: i as u32,
                },
            );
        }
        eng.run();
        assert_eq!(*got.borrow(), N, "each datagram delivered exactly once");
        let stats = ep_b.filter_stats();
        assert!(stats.duplicates > 20, "copies were filtered: {stats:?}");
        assert_eq!(stats.stale, 0);
        assert_eq!(stats.malformed, 0);
    }

    #[test]
    fn corrupted_datagrams_die_before_the_filter_and_handler() {
        // A corrupting wire flips bits in control frames; every flipped
        // frame must land in the `corrupt` class (the CRC trailer leaves
        // no trustworthy bits, not even the stamp) and intact frames
        // must keep flowing. No corrupted frame may reach a handler.
        let mut eng = Engine::new();
        let fabric = Fabric::new();
        let a = fabric.add_node(1 << 20);
        let b = fabric.add_node(1 << 20);
        fabric.link(
            a,
            b,
            // ~30 bytes/frame = 240 bits; at 2e-3/bit roughly 38% of
            // frames take at least one flip.
            LinkConfig::intra_dc(8e9)
                .with_seed(17)
                .with_corruption(2e-3),
        );
        fabric.link(b, a, LinkConfig::intra_dc(8e9));
        let ep_a = ControlEndpoint::new(&fabric, a);
        let ep_b = ControlEndpoint::new(&fabric, b);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        ep_b.set_handler(move |_eng, _src, msg| g.borrow_mut().push(msg));
        const N: u64 = 400;
        for i in 0..N {
            ep_a.send(
                &mut eng,
                ep_b.addr(),
                &CtrlMsg::GbnAck {
                    cumulative: i as u32,
                },
            );
        }
        eng.run();
        let stats = ep_b.filter_stats();
        assert!(
            stats.corrupt > 50,
            "flipped frames must be classified corrupt: {stats:?}"
        );
        assert_eq!(stats.malformed, 0, "corruption never reads as malformed");
        assert_eq!(
            got.borrow().len() as u64 + stats.corrupt,
            N,
            "every frame is either delivered intact or dropped corrupt"
        );
        // Delivered frames are bit-exact: the cumulative values form a
        // subsequence of what was sent.
        let mut expect = 0u32;
        for msg in got.borrow().iter() {
            let CtrlMsg::GbnAck { cumulative } = msg else {
                panic!("corrupted frame decoded as a different message");
            };
            assert!(*cumulative >= expect && *cumulative < N as u32);
            expect = *cumulative + 1;
        }
        assert_eq!(
            fabric.metrics().counter_value("ctrl.corrupt"),
            stats.corrupt,
            "registry mirror tracks the endpoint counter"
        );
    }

    #[test]
    fn incarnation_bump_retires_the_old_life() {
        let mut eng = Engine::new();
        let fabric = Fabric::new();
        let a = fabric.add_node(1 << 20);
        let b = fabric.add_node(1 << 20);
        fabric.link_duplex(a, b, LinkConfig::intra_dc(8e9));
        let ep_a = ControlEndpoint::new(&fabric, a);
        let ep_b = ControlEndpoint::new(&fabric, b);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        ep_b.set_handler(move |_eng, _src, msg| g.borrow_mut().push(msg));
        // Life 0 sends and delivers one datagram.
        ep_a.send(&mut eng, ep_b.addr(), &CtrlMsg::GbnAck { cumulative: 1 });
        eng.run();
        // Restart: life 1 re-uses sequence 0 — the peer must accept it
        // (new incarnation), then drop a late datagram from life 0.
        ep_a.bump_incarnation();
        assert_eq!(ep_a.incarnation(), 1);
        ep_a.send(&mut eng, ep_b.addr(), &CtrlMsg::GbnAck { cumulative: 2 });
        eng.run();
        assert_eq!(got.borrow().len(), 2, "new life's seq 0 is fresh");
        // Hand-build a stale life-0 datagram (stamp inc=0) and inject it.
        let mut wire = BytesMut::new();
        CtrlStamp {
            xfer: 0,
            inc: 0,
            dst_inc: 0,
            seq: 9,
        }
        .encode_into(&mut wire);
        wire.extend_from_slice(&CtrlMsg::GbnAck { cumulative: 3 }.encode());
        seal_ctrl_frame(&mut wire);
        let _ = fabric.post_ud_send(&mut eng, ep_a.addr(), ep_b.addr(), wire.freeze(), None);
        eng.run();
        assert_eq!(got.borrow().len(), 2, "stale-incarnation datagram dropped");
        assert_eq!(ep_b.filter_stats().stale, 1);
    }

    mod mutation {
        use super::*;
        use crate::ack::SchemeSpec;
        use crate::runtime::AbortReason;
        use proptest::prelude::*;

        /// A representative message for every codec shape: fixed-width,
        /// variable-length vectors, nesting, and enum payloads.
        fn sample_msg(sel: u64, x: u32) -> CtrlMsg {
            match sel {
                0 => CtrlMsg::SrAck {
                    cumulative: x,
                    window_start: x / 2,
                    sack_bits: vec![x as u64, !(x as u64), 0x5555_AAAA],
                    sack_len: 192,
                    nacks: vec![x, x + 7, x + 13],
                },
                1 => CtrlMsg::EcAck,
                2 => CtrlMsg::EcNack {
                    failed: vec![x % 97, x % 89, x % 83],
                },
                3 => CtrlMsg::GbnAck { cumulative: x },
                4 => CtrlMsg::Seg {
                    epoch: x % 1024,
                    inner: Box::new(CtrlMsg::GbnAck { cumulative: x }),
                },
                5 => CtrlMsg::SwitchPropose {
                    seq: x % 64,
                    epoch: x % 1024,
                    spec: SchemeSpec::EcMds { k: 32, m: 8 },
                },
                6 => CtrlMsg::SwitchAck {
                    seq: x % 64,
                    epoch: x % 1024,
                },
                7 => CtrlMsg::Telemetry {
                    seen: x as u64 * 3,
                    lost: x as u64,
                },
                8 => CtrlMsg::Abort {
                    reason: AbortReason::Deadline,
                },
                _ => CtrlMsg::DigestState { crc: x },
            }
        }

        /// Deterministic bit-position source for the flips.
        struct XorShift(u64);
        impl XorShift {
            fn next(&mut self) -> u64 {
                self.0 ^= self.0 << 13;
                self.0 ^= self.0 >> 7;
                self.0 ^= self.0 << 17;
                self.0
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]
            /// Codec mutation soak. A sealed control frame with up to five
            /// flipped bits (within CRC32C's guaranteed Hamming distance
            /// at these frame sizes) must die at the CRC gate — counted
            /// `corrupt`, never delivered, never `malformed` (a flipped
            /// frame carries no trustworthy bits, so it must not reach the
            /// decoder at all). The same mutant *re-sealed* (a valid
            /// trailer over garbage — what a buggy peer would produce)
            /// must never panic the parser: it is either dropped by the
            /// stamp/replay/echo filters, rejected by the decoder as
            /// `malformed`, or decodes to some well-formed message — and
            /// exactly one of those happens.
            #[test]
            fn flipped_frames_die_at_the_crc_gate_and_resealed_mutants_never_panic(
                sel in 0u64..10,
                x in any::<u32>(),
                seed in 1u64..u64::MAX,
                nflips in 1usize..=5,
            ) {
                let mut eng = Engine::new();
                let fabric = Fabric::new();
                let a = fabric.add_node(1 << 20);
                let b = fabric.add_node(1 << 20);
                fabric.link_duplex(a, b, LinkConfig::intra_dc(8e9));
                let ep_a = ControlEndpoint::new(&fabric, a);
                let ep_b = ControlEndpoint::new(&fabric, b);
                let got = Rc::new(RefCell::new(0u64));
                let g = got.clone();
                ep_b.set_handler(move |_eng, _src, _msg| *g.borrow_mut() += 1);

                let mut frame = BytesMut::new();
                CtrlStamp { xfer: 0, inc: 0, dst_inc: 0, seq: 0 }.encode_into(&mut frame);
                frame.extend_from_slice(&sample_msg(sel, x).encode());
                seal_ctrl_frame(&mut frame);

                // Flip `nflips` distinct bits anywhere in the sealed frame
                // (stamp, body, or trailer — the gate must hold for all).
                let mut rng = XorShift(seed);
                let bits = frame.len() * 8;
                let mut flipped = frame.to_vec();
                let mut picked = Vec::new();
                while picked.len() < nflips {
                    let pos = (rng.next() % bits as u64) as usize;
                    if !picked.contains(&pos) {
                        picked.push(pos);
                        flipped[pos / 8] ^= 1 << (pos % 8);
                    }
                }
                let _ = fabric.post_ud_send(
                    &mut eng, ep_a.addr(), ep_b.addr(), Bytes::from(flipped.clone()), None,
                );
                eng.run();
                let st = ep_b.filter_stats();
                prop_assert_eq!(*got.borrow(), 0, "flipped frame reached a handler");
                prop_assert_eq!(st.corrupt, 1, "flipped frame not classed corrupt");
                prop_assert_eq!(st.malformed, 0, "flipped frame reached the decoder");

                // Re-seal the mutant: the CRC gate passes by construction,
                // and every later stage must cope without panicking.
                flipped.truncate(flipped.len() - CTRL_CRC_BYTES);
                let mut resealed = BytesMut::new();
                resealed.extend_from_slice(&flipped);
                seal_ctrl_frame(&mut resealed);
                let _ = fabric.post_ud_send(
                    &mut eng, ep_a.addr(), ep_b.addr(), resealed.freeze(), None,
                );
                eng.run();
                let st = ep_b.filter_stats();
                prop_assert_eq!(st.corrupt, 1, "a valid trailer must pass the gate");
                prop_assert_eq!(
                    *got.borrow() + st.malformed + st.stale + st.duplicates,
                    1,
                    "resealed mutant neither delivered nor classified"
                );
            }
        }
    }
}
