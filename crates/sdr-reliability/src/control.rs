//! Reliability-layer control path.
//!
//! The example protocols use the two-connection design of §4.1: the
//! data-path SDR QP for zero-copy transfer plus a low-overhead UD QP for
//! protocol acknowledgments. SDR deliberately leaves control-path wireup to
//! the application; this endpoint is that application-side piece.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use sdr_sim::{CqId, Engine, Fabric, NodeId, QpAddr, QpNum, QpType, RecvWqe, Waker};

use crate::ack::CtrlMsg;

/// Receive-buffer count and size for control datagrams.
const CTRL_DEPTH: usize = 128;
const CTRL_BUF_BYTES: u64 = 2048;

/// Handler invoked per received control message: `(engine, src, message)`.
pub type CtrlHandler = Box<dyn FnMut(&mut Engine, QpAddr, CtrlMsg)>;

/// A path reliability schemes send their control messages down and receive
/// them from. [`ControlEndpoint`] is the direct implementation (messages go
/// on the wire as-is); the adaptive layer interposes an epoch gate that
/// wraps scheme traffic in [`CtrlMsg::Seg`] envelopes so a lingering ACK
/// from before a scheme handover cannot poison the successor scheme.
/// Schemes are written against this trait and never know which one they
/// ride.
pub trait CtrlPath {
    /// Sends a control message to `dst` (unreliably — it can drop).
    fn send_ctrl(&self, eng: &mut Engine, dst: QpAddr, msg: &CtrlMsg);

    /// Installs the receive handler for messages arriving on this path.
    fn install_handler(&self, f: CtrlHandler);
}

/// A UD endpoint carrying [`CtrlMsg`] datagrams for a reliability protocol.
pub struct ControlEndpoint {
    fabric: Fabric,
    node: NodeId,
    qp: QpNum,
    #[allow(dead_code)]
    cq: CqId,
    handler: Rc<RefCell<Option<CtrlHandler>>>,
    /// ACK datagrams sent (diagnostics).
    sent: Rc<RefCell<u64>>,
}

impl ControlEndpoint {
    /// Creates the endpoint on `node`, pre-posting its receive buffers and
    /// hooking a completion waker that dispatches to the handler.
    pub fn new(fabric: &Fabric, node: NodeId) -> Self {
        let handler: Rc<RefCell<Option<CtrlHandler>>> = Rc::new(RefCell::new(None));
        let (qp, cq) = fabric.node_mut(node, |n| {
            let cq = n.create_cq();
            let qp = n.create_qp(QpType::Ud, cq, cq);
            let base = n.mem_mut().alloc(CTRL_DEPTH as u64 * CTRL_BUF_BYTES);
            for i in 0..CTRL_DEPTH {
                let addr = base + i as u64 * CTRL_BUF_BYTES;
                n.post_recv(
                    qp,
                    RecvWqe {
                        wr_id: addr,
                        addr,
                        len: CTRL_BUF_BYTES,
                    },
                );
            }
            (qp, cq)
        });
        let fab = fabric.clone();
        let h = handler.clone();
        fabric.node_mut(node, |n| {
            n.set_cq_waker(
                cq,
                Waker::new(move |eng| {
                    while let Some(cqe) = fab.node_mut(node, |n| n.poll_cq(cq)) {
                        if cqe.op != sdr_sim::CqeOp::RecvSend {
                            continue;
                        }
                        let addr = cqe.wr_id;
                        let payload = fab.node_mut(node, |n| {
                            let data =
                                Bytes::copy_from_slice(n.mem().read(addr, cqe.byte_len as usize));
                            // Recycle the buffer immediately.
                            n.post_recv(
                                qp,
                                RecvWqe {
                                    wr_id: addr,
                                    addr,
                                    len: CTRL_BUF_BYTES,
                                },
                            );
                            data
                        });
                        let Some(msg) = CtrlMsg::decode(payload) else {
                            continue;
                        };
                        let src = cqe.src.expect("UD receive has a source");
                        // Take the handler out while calling so the handler
                        // itself may send control messages re-entrantly.
                        let taken = h.borrow_mut().take();
                        if let Some(mut f) = taken {
                            f(eng, src, msg);
                            let mut slot = h.borrow_mut();
                            if slot.is_none() {
                                *slot = Some(f);
                            }
                        }
                    }
                }),
            );
        });
        ControlEndpoint {
            fabric: fabric.clone(),
            node,
            qp,
            cq,
            handler,
            sent: Rc::new(RefCell::new(0)),
        }
    }

    /// This endpoint's address (exchange out-of-band with the peer).
    pub fn addr(&self) -> QpAddr {
        QpAddr {
            node: self.node,
            qp: self.qp,
        }
    }

    /// Installs the receive handler.
    pub fn set_handler(&self, f: impl FnMut(&mut Engine, QpAddr, CtrlMsg) + 'static) {
        *self.handler.borrow_mut() = Some(Box::new(f));
    }

    /// Sends a control message to `dst`. Control datagrams ride the same
    /// lossy links as data — they can drop, and the protocols must tolerate
    /// that.
    pub fn send(&self, eng: &mut Engine, dst: QpAddr, msg: &CtrlMsg) {
        *self.sent.borrow_mut() += 1;
        // Drop errors deliberately: an unroutable ACK behaves like a lost one.
        let _ = self
            .fabric
            .post_ud_send(eng, self.addr(), dst, msg.encode(), None);
    }

    /// Control datagrams sent so far.
    pub fn sent_count(&self) -> u64 {
        *self.sent.borrow()
    }
}

impl CtrlPath for ControlEndpoint {
    fn send_ctrl(&self, eng: &mut Engine, dst: QpAddr, msg: &CtrlMsg) {
        self.send(eng, dst, msg);
    }

    fn install_handler(&self, f: CtrlHandler) {
        *self.handler.borrow_mut() = Some(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_sim::LinkConfig;

    #[test]
    fn control_roundtrip_and_handler_dispatch() {
        let mut eng = Engine::new();
        let fabric = Fabric::new();
        let a = fabric.add_node(1 << 20);
        let b = fabric.add_node(1 << 20);
        fabric.link_duplex(a, b, LinkConfig::intra_dc(8e9));
        let ep_a = ControlEndpoint::new(&fabric, a);
        let ep_b = ControlEndpoint::new(&fabric, b);

        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        ep_b.set_handler(move |_eng, src, msg| {
            g.borrow_mut().push((src, msg));
        });

        ep_a.send(&mut eng, ep_b.addr(), &CtrlMsg::EcAck);
        ep_a.send(
            &mut eng,
            ep_b.addr(),
            &CtrlMsg::EcNack { failed: vec![3, 9] },
        );
        eng.run();

        let got = got.borrow();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, ep_a.addr());
        assert_eq!(got[0].1, CtrlMsg::EcAck);
        assert_eq!(got[1].1, CtrlMsg::EcNack { failed: vec![3, 9] });
        assert_eq!(ep_a.sent_count(), 2);
    }

    #[test]
    fn handler_can_reply_reentrantly() {
        let mut eng = Engine::new();
        let fabric = Fabric::new();
        let a = fabric.add_node(1 << 20);
        let b = fabric.add_node(1 << 20);
        fabric.link_duplex(a, b, LinkConfig::intra_dc(8e9));
        let ep_a = Rc::new(ControlEndpoint::new(&fabric, a));
        let ep_b = Rc::new(ControlEndpoint::new(&fabric, b));

        // B echoes every EcNack back as EcAck.
        let ep_b2 = ep_b.clone();
        ep_b.set_handler(move |eng, src, _msg| {
            ep_b2.send(eng, src, &CtrlMsg::EcAck);
        });
        let acked = Rc::new(RefCell::new(0));
        let acked2 = acked.clone();
        ep_a.set_handler(move |_eng, _src, msg| {
            if msg == CtrlMsg::EcAck {
                *acked2.borrow_mut() += 1;
            }
        });
        ep_a.send(&mut eng, ep_b.addr(), &CtrlMsg::EcNack { failed: vec![] });
        eng.run();
        assert_eq!(*acked.borrow(), 1);
    }
}
