//! Selective Repeat reliability over SDR (§4.1.1) — a policy over the
//! [`runtime`](crate::runtime) building blocks.
//!
//! Sender: streaming SDR sends inject message chunks; each unacknowledged
//! chunk carries a retransmission timeout (`RTO = RTT + α·RTT`) in a
//! [`ChunkTimers`] table; expiry retransmits the chunk via the
//! [`StreamTx`] slot. ACKs remove acknowledged ranges from the
//! retransmission scan; in NACK mode reported holes retransmit immediately
//! through the timers' claim guard (1-RTT repair instead of an RTO, §5.2.1).
//!
//! Receiver: an [`RxScheme`] that, per poll, encodes the SDR chunk bitmap
//! into a cumulative + selective ACK (plus holes in NACK mode). Poll
//! cadence, CTS healing, completion, linger-ACK repeats and buffer release
//! all come from the shared [`RxDriver`].

use std::cell::RefCell;
use std::rc::Rc;

use sdr_core::SdrQp;
use sdr_sim::{Engine, FlightRecorder, QpAddr, SimTime, TimerHandle};

use crate::ack::{build_sr_ack, CtrlMsg};
use crate::control::CtrlPath;
use crate::runtime::{
    begin_on_cts, tick_loop, wire_ctrl, AbortReason, ChunkTimers, Completion, RxCommon, RxDriver,
    RxScheme, StreamTx, Tick, TransferOutcome,
};
use crate::telemetry::ChannelEstimator;

/// Selective Repeat protocol tuning.
#[derive(Clone, Copy, Debug)]
pub struct SrProtoConfig {
    /// Chunk retransmission timeout.
    pub rto: SimTime,
    /// Receiver bitmap-poll / ACK cadence.
    pub ack_interval: SimTime,
    /// Sender retransmission-scan cadence.
    pub tick: SimTime,
    /// Enable the NACK optimization (receiver reports holes; sender
    /// retransmits without waiting for the RTO).
    pub nack: bool,
    /// How many extra final ACKs the receiver repeats before releasing the
    /// buffer (tolerates ACK loss on the control path).
    pub linger_acks: u32,
}

impl SrProtoConfig {
    /// The paper's `SR RTO` scenario: `RTO = 3 RTT`.
    pub fn rto_3rtt(rtt: SimTime) -> Self {
        SrProtoConfig {
            rto: rtt * 3,
            ack_interval: rtt / 4,
            tick: rtt / 4,
            nack: false,
            linger_acks: 25,
        }
    }

    /// The paper's `SR NACK` scenario: hole reports enable 1-RTT repair.
    pub fn nack(rtt: SimTime) -> Self {
        SrProtoConfig {
            rto: rtt * 3, // RTO stays as a safety net; NACKs do the work
            ack_interval: rtt / 4,
            tick: rtt / 4,
            nack: true,
            linger_acks: 25,
        }
    }
}

/// Sender-side transfer outcome.
#[derive(Clone, Debug)]
pub struct SrReport {
    /// Write completion time: first injection to final-ACK reception
    /// (§4.2.1's `T_protocol`).
    pub duration: SimTime,
    /// Chunks retransmitted.
    pub retransmitted: u64,
    /// ACK datagrams processed.
    pub acks: u64,
    /// How the transfer ended ([`TransferOutcome::Aborted`] after
    /// [`SrSender::abort`]; `duration` then covers start → abort).
    pub outcome: TransferOutcome,
}

struct SenderInner {
    stream: StreamTx,
    timers: ChunkTimers,
    cfg: SrProtoConfig,
    retransmitted: u64,
    acks: u64,
    completion: Completion<SrReport>,
    /// The retransmission-scan loop, once armed: it sleeps to the earliest
    /// chunk RTO ([`Tick::Until`]) and is cancelled the moment the final
    /// ACK lands, so no stale scan event outlives the transfer.
    tick: Option<TimerHandle>,
    /// When bound, newly acked never-retransmitted chunks feed ACK
    /// round-trip RTT samples into the estimator (Karn's rule applied by
    /// [`ChunkTimers::rtt_sample`]).
    telemetry: Option<Rc<RefCell<ChannelEstimator>>>,
}

/// The SR sender protocol object.
pub struct SrSender {
    inner: Rc<RefCell<SenderInner>>,
}

impl SrSender {
    /// Starts an SR-protected transfer of `[local_addr, local_addr +
    /// msg_bytes)` to the connected peer. `done` fires at completion with
    /// the sender-side report. The receiver must run [`SrReceiver`].
    pub fn start(
        eng: &mut Engine,
        qp: &SdrQp,
        ctrl: Rc<dyn CtrlPath>,
        peer_ctrl: QpAddr,
        local_addr: u64,
        msg_bytes: u64,
        cfg: SrProtoConfig,
        done: impl FnOnce(&mut Engine, SrReport) + 'static,
    ) -> SrSender {
        Self::start_with_telemetry(
            eng, qp, ctrl, peer_ctrl, local_addr, msg_bytes, cfg, None, done,
        )
    }

    /// [`start`](Self::start) with an optional channel estimator bound:
    /// ACK round-trips then feed RTT samples into it (the sender half of
    /// the adaptive telemetry loop).
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_telemetry(
        eng: &mut Engine,
        qp: &SdrQp,
        ctrl: Rc<dyn CtrlPath>,
        _peer_ctrl: QpAddr,
        local_addr: u64,
        msg_bytes: u64,
        cfg: SrProtoConfig,
        telemetry: Option<Rc<RefCell<ChannelEstimator>>>,
        done: impl FnOnce(&mut Engine, SrReport) + 'static,
    ) -> SrSender {
        let stream = StreamTx::new(qp, local_addr, msg_bytes);
        let total_chunks = stream.total_chunks();
        let inner = Rc::new(RefCell::new(SenderInner {
            stream,
            timers: ChunkTimers::new(total_chunks),
            cfg,
            retransmitted: 0,
            acks: 0,
            completion: Completion::new(done),
            tick: None,
            telemetry,
        }));

        // Control-path handler: apply ACKs.
        wire_ctrl(&ctrl, &inner, |me, eng, _src, msg| {
            if let CtrlMsg::SrAck {
                cumulative,
                window_start,
                sack_bits,
                sack_len,
                nacks,
            } = msg
            {
                Self::on_ack(
                    me,
                    eng,
                    cumulative,
                    window_start,
                    &sack_bits,
                    sack_len,
                    &nacks,
                );
            }
        });

        // Begin now if the CTS credit is already here; otherwise hook it.
        begin_on_cts(eng, qp, &inner, Self::try_begin);
        SrSender { inner }
    }

    /// True once the final ACK has been processed.
    pub fn is_done(&self) -> bool {
        self.inner.borrow().completion.is_done()
    }

    /// Binds a flight recorder to the retransmission timers: RTO scans
    /// that fire record `rto-fire`/`rto-backoff` events under transfer
    /// `id` (see [`ChunkTimers::set_trace`]).
    pub fn bind_trace(&self, rec: FlightRecorder, id: u64) {
        self.inner.borrow_mut().timers.set_trace(rec, id);
    }

    /// Tears the transfer down now: the retransmission scan is cancelled,
    /// the stream slot is quiesced (exactly once), and the done callback
    /// fires with [`TransferOutcome::Aborted`]. Idempotent — returns
    /// `false` when the transfer already completed or aborted. Local only:
    /// propagating the abort to the peer is the control plane's job (the
    /// adaptive layer announces it via `CtrlMsg::Abort`).
    pub fn abort(&self, eng: &mut Engine, reason: AbortReason) -> bool {
        let (cb, report) = {
            let mut i = self.inner.borrow_mut();
            if i.completion.is_done() {
                return false;
            }
            i.stream.quiesce();
            if let Some(h) = i.tick.take() {
                eng.cancel(h);
            }
            let report = SrReport {
                duration: i.completion.elapsed(eng.now()),
                retransmitted: i.retransmitted,
                acks: i.acks,
                outcome: TransferOutcome::aborted(reason),
            };
            let Some(cb) = i.completion.finish() else {
                return false;
            };
            (cb, report)
        };
        cb(eng, report);
        true
    }

    fn try_begin(inner: &Rc<RefCell<SenderInner>>, eng: &mut Engine) -> bool {
        let rto = {
            let mut i = inner.borrow_mut();
            // A stale CTS hook may re-fire after completion (the stream is
            // quiesced by then) — it must never re-open the stream and
            // consume a send sequence that belongs to a later transfer.
            if i.completion.is_done() || i.stream.is_open() {
                return true;
            }
            if !i.stream.try_begin(eng) {
                return false;
            }
            let now = eng.now();
            i.completion.mark_started(now);
            i.timers.all_sent_at(now);
            i.cfg.rto
        };
        // Retransmission scan: the whole message was just injected, so the
        // first deadline is one RTO out; after that every wake sleeps to
        // the earliest unacked chunk's expiry. ACKs (and the NACK fast
        // path) are event-driven and never wait on this loop.
        let me = inner.clone();
        let h = tick_loop(eng, rto, move |eng| Self::tick(&me, eng));
        inner.borrow_mut().tick = Some(h);
        true
    }

    fn tick(inner: &Rc<RefCell<SenderInner>>, eng: &mut Engine) -> Tick {
        let mut i = inner.borrow_mut();
        if i.completion.is_done() {
            return Tick::Stop;
        }
        let now = eng.now();
        let rto = i.cfg.rto;
        let SenderInner {
            stream,
            timers,
            retransmitted,
            ..
        } = &mut *i;
        let deadline = timers.take_expired(now, rto, |c| {
            stream.resend_chunk(eng, c);
            *retransmitted += 1;
        });
        match deadline {
            Some(d) => Tick::Until(d),
            // Everything acked: completion is about to run (the ACK
            // handler fires it and cancels this loop).
            None => Tick::Stop,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_ack(
        inner: &Rc<RefCell<SenderInner>>,
        eng: &mut Engine,
        cumulative: u32,
        window_start: u32,
        sack_bits: &[u64],
        sack_len: u32,
        nacks: &[u32],
    ) {
        let mut i = inner.borrow_mut();
        if i.completion.is_done() {
            return;
        }
        i.acks += 1;
        let backoff_before = i.timers.backoff();
        // At most one RTT sample per ACK: the first chunk this ACK newly
        // acknowledges, if it was never retransmitted (Karn's rule).
        let mut rtt_sample = None;
        let now = eng.now();
        if let Some(first) = i.timers.first_unacked() {
            if first < cumulative as usize {
                rtt_sample = i.timers.rtt_sample(first, now);
            }
        }
        i.timers.ack_prefix(cumulative as usize);
        for b in 0..(sack_len as usize) {
            if sack_bits[b / 64] >> (b % 64) & 1 == 1 {
                let c = window_start as usize + b;
                if i.timers.mark_acked(c) && rtt_sample.is_none() {
                    rtt_sample = i.timers.rtt_sample(c, now);
                }
            }
        }
        if let (Some(sample), Some(est)) = (rtt_sample, &i.telemetry) {
            est.borrow_mut().observe_rtt(sample);
        }
        // NACK fast path: retransmit reported holes immediately, guarded so
        // duplicate NACKs within a tick don't double-send.
        if i.cfg.nack && i.stream.is_open() {
            let now = eng.now();
            let guard = i.cfg.tick;
            let SenderInner {
                stream,
                timers,
                retransmitted,
                ..
            } = &mut *i;
            for &c in nacks {
                if timers.claim_for_resend(c as usize, now, guard) {
                    stream.resend_chunk(eng, c as usize);
                    *retransmitted += 1;
                }
            }
        }
        // Backoff heal: this ACK made progress after backed-off silence (a
        // blackout just ended), so the scan loop may be parked at a far
        // backed-off deadline — pull it back to one base RTO from now.
        if backoff_before > 0 && i.timers.backoff() == 0 && !i.timers.is_complete() {
            if let Some(h) = i.tick {
                let _ = eng.reschedule(h, eng.now().saturating_add(i.cfg.rto));
            }
        }
        if i.timers.is_complete() {
            i.stream.quiesce();
            // The scan loop may be asleep until a far RTO deadline: cancel
            // it so the drained simulation ends with the transfer.
            if let Some(h) = i.tick.take() {
                eng.cancel(h);
            }
            let report = SrReport {
                duration: i.completion.elapsed(eng.now()),
                retransmitted: i.retransmitted,
                acks: i.acks,
                outcome: TransferOutcome::Delivered,
            };
            if let Some(cb) = i.completion.finish() {
                drop(i);
                cb(eng, report);
            }
        }
    }
}

/// The SR receive policy: one bitmap, one cumulative + selective ACK per
/// poll (with holes in NACK mode).
struct SrRxScheme {
    total_chunks: usize,
    nack: bool,
}

impl RxScheme for SrRxScheme {
    type Done = ();

    fn poll(&mut self, eng: &mut Engine, rx: &mut RxCommon) -> bool {
        let bitmap = rx.bitmap(0);
        // Nothing arrived yet? The CTS may have been lost on the
        // unreliable control path — re-issue it.
        rx.heal_cts(eng, 0, &bitmap);
        let ack = build_sr_ack(bitmap.chunks(), self.total_chunks, self.nack);
        rx.send(eng, &ack);
        bitmap.is_complete()
    }

    fn done_payload(&self) {}
}

/// The SR receiver protocol object.
pub struct SrReceiver {
    driver: RxDriver<SrRxScheme>,
}

impl SrReceiver {
    /// Posts the receive buffer and starts the poll/ACK loop. `done` fires
    /// when all chunks have arrived (receiver-side completion instant).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        eng: &mut Engine,
        qp: &SdrQp,
        ctrl: Rc<dyn CtrlPath>,
        peer_ctrl: QpAddr,
        buf_addr: u64,
        msg_bytes: u64,
        cfg: SrProtoConfig,
        done: impl FnOnce(&mut Engine, SimTime) + 'static,
    ) -> SrReceiver {
        Self::start_with_telemetry(
            eng, qp, ctrl, peer_ctrl, buf_addr, msg_bytes, cfg, None, done,
        )
    }

    /// [`start`](Self::start) with an optional channel estimator bound to
    /// the driver: every poll then feeds first-pass gap counts into it
    /// (the receiver half of the adaptive telemetry loop).
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_telemetry(
        eng: &mut Engine,
        qp: &SdrQp,
        ctrl: Rc<dyn CtrlPath>,
        peer_ctrl: QpAddr,
        buf_addr: u64,
        msg_bytes: u64,
        cfg: SrProtoConfig,
        telemetry: Option<Rc<RefCell<ChannelEstimator>>>,
        done: impl FnOnce(&mut Engine, SimTime) + 'static,
    ) -> SrReceiver {
        let mut common = RxCommon::new(qp, ctrl, peer_ctrl);
        common.post(eng, buf_addr, msg_bytes);
        if let Some(est) = telemetry {
            common.bind_estimator(est);
        }
        let scheme = SrRxScheme {
            total_chunks: qp.config().chunks_for(msg_bytes) as usize,
            nack: cfg.nack,
        };
        let driver = RxDriver::start(
            eng,
            cfg.ack_interval,
            common,
            scheme,
            cfg.linger_acks,
            move |eng, t, ()| done(eng, t),
        );
        SrReceiver { driver }
    }

    /// True once every chunk has arrived.
    pub fn is_complete(&self) -> bool {
        self.driver.is_complete()
    }

    /// True once the receive buffer has been released back to the QP.
    pub fn is_released(&self) -> bool {
        self.driver.is_released()
    }

    /// Releases the receive slot now (exactly once) and stops the loop —
    /// the adaptive layer's quiesce-and-rebind path.
    pub fn quiesce(&self, eng: &mut Engine) -> bool {
        self.driver.quiesce(eng)
    }

    /// True once any packet of this transfer has arrived.
    pub fn any_packet(&self) -> bool {
        self.driver.any_packet()
    }

    /// `(observed, total)` packets (the injection frontier; see
    /// [`RxDriver::frontier`]).
    pub fn frontier(&self) -> (u64, u64) {
        self.driver.frontier()
    }
}
