//! Selective Repeat reliability over SDR (§4.1.1).
//!
//! Sender: streaming SDR sends inject message chunks; each unacknowledged
//! chunk carries a retransmission timeout (`RTO = RTT + α·RTT`); expiry
//! retransmits the chunk via `send_stream_continue`. ACKs remove
//! acknowledged ranges from the retransmission scan.
//!
//! Receiver: periodically polls the SDR chunk bitmap and returns ACKs
//! encoding a cumulative point plus a selective window; in NACK mode it also
//! lists holes below the high-water mark so the sender can repair after one
//! RTT instead of an RTO (§5.2.1).

use std::cell::RefCell;
use std::rc::Rc;

use sdr_core::{SdrQp, SendHandle};
use sdr_sim::{Engine, QpAddr, SimTime};

use crate::ack::{build_sr_ack, CtrlMsg};
use crate::control::ControlEndpoint;

/// Selective Repeat protocol tuning.
#[derive(Clone, Copy, Debug)]
pub struct SrProtoConfig {
    /// Chunk retransmission timeout.
    pub rto: SimTime,
    /// Receiver bitmap-poll / ACK cadence.
    pub ack_interval: SimTime,
    /// Sender retransmission-scan cadence.
    pub tick: SimTime,
    /// Enable the NACK optimization (receiver reports holes; sender
    /// retransmits without waiting for the RTO).
    pub nack: bool,
    /// How many extra final ACKs the receiver repeats before releasing the
    /// buffer (tolerates ACK loss on the control path).
    pub linger_acks: u32,
}

impl SrProtoConfig {
    /// The paper's `SR RTO` scenario: `RTO = 3 RTT`.
    pub fn rto_3rtt(rtt: SimTime) -> Self {
        SrProtoConfig {
            rto: rtt * 3,
            ack_interval: rtt / 4,
            tick: rtt / 4,
            nack: false,
            linger_acks: 25,
        }
    }

    /// The paper's `SR NACK` scenario: hole reports enable 1-RTT repair.
    pub fn nack(rtt: SimTime) -> Self {
        SrProtoConfig {
            rto: rtt * 3, // RTO stays as a safety net; NACKs do the work
            ack_interval: rtt / 4,
            tick: rtt / 4,
            nack: true,
            linger_acks: 25,
        }
    }
}

/// Sender-side transfer outcome.
#[derive(Clone, Copy, Debug)]
pub struct SrReport {
    /// Write completion time: first injection to final-ACK reception
    /// (§4.2.1's `T_protocol`).
    pub duration: SimTime,
    /// Chunks retransmitted.
    pub retransmitted: u64,
    /// ACK datagrams processed.
    pub acks: u64,
}

struct SenderInner {
    qp: SdrQp,
    ctrl: Rc<ControlEndpoint>,
    /// Kept for symmetry/diagnostics; ACKs arrive via the ctrl handler.
    #[allow(dead_code)]
    peer_ctrl: QpAddr,
    cfg: SrProtoConfig,
    local_addr: u64,
    msg_bytes: u64,
    chunk_bytes: u64,
    total_chunks: usize,
    hdl: Option<SendHandle>,
    acked: Vec<bool>,
    acked_count: usize,
    last_sent: Vec<SimTime>,
    start_time: SimTime,
    retransmitted: u64,
    acks: u64,
    done: bool,
    done_cb: Option<Box<dyn FnOnce(&mut Engine, SrReport)>>,
}

/// The SR sender protocol object.
pub struct SrSender {
    inner: Rc<RefCell<SenderInner>>,
}

impl SrSender {
    /// Starts an SR-protected transfer of `[local_addr, local_addr +
    /// msg_bytes)` to the connected peer. `done` fires at completion with
    /// the sender-side report. The receiver must run [`SrReceiver`].
    pub fn start(
        eng: &mut Engine,
        qp: &SdrQp,
        ctrl: Rc<ControlEndpoint>,
        peer_ctrl: QpAddr,
        local_addr: u64,
        msg_bytes: u64,
        cfg: SrProtoConfig,
        done: impl FnOnce(&mut Engine, SrReport) + 'static,
    ) -> SrSender {
        let chunk_bytes = qp.config().chunk_bytes;
        let total_chunks = qp.config().chunks_for(msg_bytes) as usize;
        let inner = Rc::new(RefCell::new(SenderInner {
            qp: qp.clone(),
            ctrl,
            peer_ctrl,
            cfg,
            local_addr,
            msg_bytes,
            chunk_bytes,
            total_chunks,
            hdl: None,
            acked: vec![false; total_chunks],
            acked_count: 0,
            last_sent: vec![SimTime::ZERO; total_chunks],
            start_time: SimTime::ZERO,
            retransmitted: 0,
            acks: 0,
            done: false,
            done_cb: Some(Box::new(done)),
        }));

        // Control-path handler: apply ACKs.
        {
            let me = inner.clone();
            let ep = inner.borrow().ctrl.clone();
            ep.set_handler(move |eng, _src, msg| {
                if let CtrlMsg::SrAck {
                    cumulative,
                    window_start,
                    sack_bits,
                    sack_len,
                    nacks,
                } = msg
                {
                    Self::on_ack(
                        &me,
                        eng,
                        cumulative,
                        window_start,
                        &sack_bits,
                        sack_len,
                        &nacks,
                    );
                }
            });
        }

        let sender = SrSender { inner };
        // Begin now if the CTS credit is already here; otherwise hook it.
        if !sender.try_begin(eng) {
            let me = sender.inner.clone();
            qp.set_cts_callback(move |eng, _seq, _len| {
                let s = SrSender { inner: me.clone() };
                s.try_begin(eng);
            });
        }
        sender
    }

    /// Sender-side report once finished (None while running).
    pub fn is_done(&self) -> bool {
        self.inner.borrow().done
    }

    fn try_begin(&self, eng: &mut Engine) -> bool {
        let mut i = self.inner.borrow_mut();
        if i.hdl.is_some() {
            return true;
        }
        let res = i.qp.send_stream_start(eng, i.local_addr, i.msg_bytes, None);
        match res {
            Ok(hdl) => {
                i.hdl = Some(hdl);
                i.start_time = eng.now();
                let now = eng.now();
                for t in i.last_sent.iter_mut() {
                    *t = now;
                }
                let (addr_len, hdl2) = (i.msg_bytes, hdl);
                i.qp.send_stream_continue(eng, &hdl2, 0, addr_len)
                    .expect("initial injection");
                drop(i);
                self.schedule_tick(eng);
                true
            }
            Err(_) => false,
        }
    }

    fn schedule_tick(&self, eng: &mut Engine) {
        let me = self.inner.clone();
        let tick = self.inner.borrow().cfg.tick;
        eng.schedule_in(tick, move |eng| {
            let s = SrSender { inner: me };
            s.tick(eng);
        });
    }

    fn tick(&self, eng: &mut Engine) {
        {
            let mut i = self.inner.borrow_mut();
            if i.done {
                return;
            }
            let now = eng.now();
            let rto = i.cfg.rto;
            let hdl = i.hdl.expect("tick only runs after begin");
            let (chunk_bytes, msg_bytes) = (i.chunk_bytes, i.msg_bytes);
            let mut to_resend = Vec::new();
            for c in 0..i.total_chunks {
                if !i.acked[c] && now.saturating_sub(i.last_sent[c]) >= rto {
                    to_resend.push(c);
                }
            }
            for c in to_resend {
                let off = c as u64 * chunk_bytes;
                let len = chunk_bytes.min(msg_bytes - off);
                i.qp.send_stream_continue(eng, &hdl, off, len)
                    .expect("retransmission");
                i.last_sent[c] = now;
                i.retransmitted += 1;
            }
        }
        self.schedule_tick(eng);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_ack(
        inner: &Rc<RefCell<SenderInner>>,
        eng: &mut Engine,
        cumulative: u32,
        window_start: u32,
        sack_bits: &[u64],
        sack_len: u32,
        nacks: &[u32],
    ) {
        let mut i = inner.borrow_mut();
        if i.done {
            return;
        }
        i.acks += 1;
        let total = i.total_chunks;
        let mark = |i: &mut SenderInner, c: usize| {
            if c < total && !i.acked[c] {
                i.acked[c] = true;
                i.acked_count += 1;
            }
        };
        for c in 0..(cumulative as usize).min(total) {
            mark(&mut i, c);
        }
        for b in 0..(sack_len as usize) {
            if sack_bits[b / 64] >> (b % 64) & 1 == 1 {
                mark(&mut i, window_start as usize + b);
            }
        }
        // NACK fast path: retransmit reported holes immediately, guarded so
        // duplicate NACKs within a tick don't double-send.
        if i.cfg.nack && i.hdl.is_some() {
            let now = eng.now();
            let guard = i.cfg.tick;
            let hdl = i.hdl.expect("checked");
            let (chunk_bytes, msg_bytes) = (i.chunk_bytes, i.msg_bytes);
            for &c in nacks {
                let c = c as usize;
                if c < total && !i.acked[c] && now.saturating_sub(i.last_sent[c]) >= guard {
                    let off = c as u64 * chunk_bytes;
                    let len = chunk_bytes.min(msg_bytes - off);
                    i.qp.send_stream_continue(eng, &hdl, off, len)
                        .expect("nack retransmission");
                    i.last_sent[c] = now;
                    i.retransmitted += 1;
                }
            }
        }
        if i.acked_count == total {
            i.done = true;
            if let Some(hdl) = i.hdl {
                let _ = i.qp.send_stream_end(&hdl);
            }
            let report = SrReport {
                duration: eng.now().saturating_sub(i.start_time),
                retransmitted: i.retransmitted,
                acks: i.acks,
            };
            if let Some(cb) = i.done_cb.take() {
                drop(i);
                cb(eng, report);
            }
        }
    }
}

struct ReceiverInner {
    qp: SdrQp,
    ctrl: Rc<ControlEndpoint>,
    peer_ctrl: QpAddr,
    cfg: SrProtoConfig,
    hdl: sdr_core::RecvHandle,
    total_chunks: usize,
    completed_at: Option<SimTime>,
    lingers_left: u32,
    released: bool,
    done_cb: Option<Box<dyn FnOnce(&mut Engine, SimTime)>>,
}

/// The SR receiver protocol object.
pub struct SrReceiver {
    inner: Rc<RefCell<ReceiverInner>>,
}

impl SrReceiver {
    /// Posts the receive buffer and starts the poll/ACK loop. `done` fires
    /// when all chunks have arrived (receiver-side completion instant).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        eng: &mut Engine,
        qp: &SdrQp,
        ctrl: Rc<ControlEndpoint>,
        peer_ctrl: QpAddr,
        buf_addr: u64,
        msg_bytes: u64,
        cfg: SrProtoConfig,
        done: impl FnOnce(&mut Engine, SimTime) + 'static,
    ) -> SrReceiver {
        let hdl = qp
            .recv_post(eng, buf_addr, msg_bytes)
            .expect("receive post");
        let total_chunks = qp.config().chunks_for(msg_bytes) as usize;
        let inner = Rc::new(RefCell::new(ReceiverInner {
            qp: qp.clone(),
            ctrl,
            peer_ctrl,
            cfg,
            hdl,
            total_chunks,
            completed_at: None,
            lingers_left: cfg.linger_acks,
            released: false,
            done_cb: Some(Box::new(done)),
        }));
        let rx = SrReceiver { inner };
        rx.schedule_tick(eng);
        rx
    }

    /// True once every chunk has arrived.
    pub fn is_complete(&self) -> bool {
        self.inner.borrow().completed_at.is_some()
    }

    fn schedule_tick(&self, eng: &mut Engine) {
        let me = self.inner.clone();
        let dt = self.inner.borrow().cfg.ack_interval;
        eng.schedule_in(dt, move |eng| {
            let rx = SrReceiver { inner: me };
            rx.tick(eng);
        });
    }

    fn tick(&self, eng: &mut Engine) {
        let reschedule = {
            let mut i = self.inner.borrow_mut();
            if i.released {
                false
            } else {
                let bitmap = i.qp.recv_bitmap(&i.hdl).expect("live handle");
                // Nothing arrived yet? The CTS may have been lost on the
                // unreliable control path — re-issue it.
                if bitmap.packets().count_set() == 0 {
                    let _ = i.qp.resend_cts(eng, &i.hdl);
                }
                let ack = build_sr_ack(bitmap.chunks(), i.total_chunks, i.cfg.nack);
                i.ctrl.send(eng, i.peer_ctrl, &ack);
                if bitmap.is_complete() {
                    if i.completed_at.is_none() {
                        i.completed_at = Some(eng.now());
                        if let Some(cb) = i.done_cb.take() {
                            let now = eng.now();
                            drop(i);
                            cb(eng, now);
                            i = self.inner.borrow_mut();
                        }
                    }
                    // Keep re-ACKing for a while (the final ACK can drop),
                    // then release the buffer.
                    if i.lingers_left == 0 {
                        i.qp.recv_complete(eng, &i.hdl).expect("release");
                        i.released = true;
                        false
                    } else {
                        i.lingers_left -= 1;
                        true
                    }
                } else {
                    true
                }
            }
        };
        if reschedule {
            self.schedule_tick(eng);
        }
    }
}
